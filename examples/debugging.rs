//! The Section-3 process-debugging loop, as a library workflow.
//!
//! Mirrors the paper's demonstration script (Figure 6): work on a
//! representative sample instead of the full data, sweep the loose-schema
//! clustering threshold, inspect the attribute partitions, drill into the
//! ground-truth pairs lost by blocking, then persist the winning
//! configuration and apply it to the full dataset in batch mode.
//!
//! ```text
//! cargo run --release --example debugging
//! ```

use sparker::datasets::{generate, DatasetConfig, Domain};
use sparker::{
    representative_sample, threshold_sweep, LostPairsReport, Pipeline, PipelineConfig, SampleConfig,
};
use sparker_core::profiles::{GroundTruth, Pair, ProfileCollection};
use std::collections::HashSet;

fn main() {
    let full = generate(&DatasetConfig {
        entities: 2000,
        unmatched_per_source: 500,
        domain: Domain::Products,
        seed: 3,
        ..DatasetConfig::default()
    });
    println!(
        "full dataset: {} profiles, {} matches",
        full.collection.len(),
        full.ground_truth.len()
    );

    // --- 1. Representative sample (K seeds + k/2 similar + k/2 random) ---
    let sample_ids = representative_sample(
        &full.collection,
        &SampleConfig {
            seeds: 150,
            companions_per_seed: 10,
            seed: 9,
        },
    );
    let id_set: HashSet<_> = sample_ids.iter().copied().collect();
    // Rebuild a small clean-clean collection from the sampled profiles.
    let sep = full.collection.separator();
    let s0: Vec<_> = full.collection.profiles()[..sep as usize]
        .iter()
        .filter(|p| id_set.contains(&p.id))
        .cloned()
        .collect();
    let s1: Vec<_> = full.collection.profiles()[sep as usize..]
        .iter()
        .filter(|p| id_set.contains(&p.id))
        .cloned()
        .collect();
    // Ground truth restricted to the sample, re-resolved by original id.
    let sample = ProfileCollection::clean_clean(s0, s1);
    let kept: Vec<(String, String)> = full
        .ground_truth
        .iter()
        .filter(|p| id_set.contains(&p.first) && id_set.contains(&p.second))
        .map(|p| {
            (
                full.collection.get(p.first).original_id.clone(),
                full.collection.get(p.second).original_id.clone(),
            )
        })
        .collect();
    let sample_gt =
        GroundTruth::from_original_ids(&sample, kept.iter().map(|(a, b)| (a.as_str(), b.as_str())))
            .expect("sampled ids resolve");
    println!(
        "sample: {} profiles, {} matches ({}x smaller)\n",
        sample.len(),
        sample_gt.len(),
        full.collection.len() / sample.len().max(1)
    );

    // --- 2. Threshold sweep on the sample (Figure 6(a)->(b)) -------------
    let mut base = PipelineConfig::default();
    base.blocking.loose_schema = Some(Default::default());
    let thresholds = [1.0, 0.8, 0.6, 0.45, 0.3, 0.15];
    println!(
        "{:>9} {:>11} {:>8} {:>12} {:>8} {:>10} {:>6}",
        "threshold", "partitions", "blocks", "candidates", "recall", "precision", "lost"
    );
    let rows = threshold_sweep(&sample, &sample_gt, &base, &thresholds);
    for r in &rows {
        println!(
            "{:>9.2} {:>11} {:>8} {:>12} {:>8.4} {:>10.4} {:>6}",
            r.threshold,
            r.attribute_partitions,
            r.blocks,
            r.quality.candidates,
            r.quality.recall,
            r.quality.precision,
            r.quality.lost_matches,
        );
    }

    // Pick the best threshold by (recall, then precision).
    let best = rows
        .iter()
        .max_by(|a, b| {
            (a.quality.recall, a.quality.precision)
                .partial_cmp(&(b.quality.recall, b.quality.precision))
                .unwrap()
        })
        .expect("sweep produced rows");
    println!("\nchosen threshold: {:.2}", best.threshold);

    // --- 3. False-positive drill-down (Figure 6(d)) ----------------------
    let mut tuned = base.clone();
    tuned.blocking.loose_schema.as_mut().unwrap().threshold = best.threshold;
    let blocker_out = Pipeline::new(tuned.clone()).run_blocker(&sample);
    let report = LostPairsReport::build(&sample, &sample_gt, &blocker_out.candidates);
    println!("lost ground-truth pairs on the sample: {}", report.len());
    for fp in report.lost.iter().take(3) {
        println!(
            "  {} <-> {} | shared keys: {}",
            fp.original_ids.0,
            fp.original_ids.1,
            if fp.shared_tokens.is_empty() {
                "(none — unrecoverable by token blocking)".to_string()
            } else {
                fp.shared_tokens.join(", ")
            }
        );
    }
    let common = report.most_common_shared_tokens(5);
    if !common.is_empty() {
        println!("  most common shared keys among lost pairs: {common:?}");
    }

    // --- 4. Persist the configuration and run in batch mode --------------
    let config_text = tuned.to_config_string();
    println!("\nsaved configuration:\n{config_text}");
    let restored = PipelineConfig::from_config_string(&config_text).expect("roundtrip");
    let batch = Pipeline::new(restored).run(&full.collection);
    let eval = batch.evaluate(&full.ground_truth);
    println!(
        "batch run on full data: blocking recall {:.4}, precision {:.4}; cluster F1 {:.4}",
        eval.blocking.recall, eval.blocking.precision, eval.clustering.f1
    );

    // Sanity check the full candidate pairs count: a Pair-typed artifact of
    // the run (useful when piping into other tools).
    let _pairs: Vec<Pair> = batch.similarity.pairs();
}
