//! Dirty ER on a bibliographic corpus with a *supervised* matcher.
//!
//! The paper's new version adds a supervised mode: the user labels pairs
//! (or brings a ground-truth sample) and a learned matcher replaces the
//! fixed threshold. This example deduplicates a single dirty source of
//! citation records: candidates come from the standard blocker, a logistic
//! matcher is trained on a labelled sample of candidate pairs, and
//! connected components produce the final entities.
//!
//! ```text
//! cargo run --release --example bibliographic_dirty
//! ```

use sparker::datasets::{generate_dirty, DatasetConfig, Domain};
use sparker::{PairQuality, Pipeline, PipelineConfig};
use sparker_core::clustering::connected_components;
use sparker_core::matching::SimilarityMeasure;
use sparker_core::matching::{Matcher, PerceptronMatcher, ThresholdMatcher, TrainConfig};
use sparker_core::profiles::Pair;

fn main() {
    // One dirty source: each paper appears 1–3 times with typos, dropped
    // tokens and missing attributes.
    let ds = generate_dirty(
        &DatasetConfig {
            entities: 800,
            domain: Domain::Bibliographic,
            seed: 11,
            ..DatasetConfig::default()
        },
        3,
    );
    println!(
        "dirty bibliography: {} records, {} duplicate pairs\n",
        ds.collection.len(),
        ds.ground_truth.len()
    );

    // Blocker only — candidates for both matchers.
    let pipeline = Pipeline::new(PipelineConfig::default());
    let blocker = pipeline.run_blocker(&ds.collection);
    println!("blocker: {} candidate pairs", blocker.candidates.len());

    // Label a sample of candidates from the ground truth (the supervised
    // mode's input; in the GUI the user labels these by hand).
    let mut candidates: Vec<Pair> = blocker.candidates.iter().copied().collect();
    candidates.sort();
    let labelled: Vec<(Pair, bool)> = candidates
        .iter()
        .step_by(4) // label every 4th candidate
        .map(|&p| (p, ds.ground_truth.contains(&p)))
        .collect();
    let positives = labelled.iter().filter(|(_, y)| *y).count();
    println!(
        "labelled sample: {} pairs ({} matches, {} non-matches)\n",
        labelled.len(),
        positives,
        labelled.len() - positives
    );

    // Supervised matcher.
    let learned = PerceptronMatcher::train(&ds.collection, &labelled, &TrainConfig::default());
    println!("learned feature weights:");
    for (name, w) in sparker_core::matching::FEATURE_NAMES
        .iter()
        .zip(learned.weights())
    {
        println!("  {name:<14} {w:>8.3}");
    }
    let supervised_graph = learned.match_pairs(&ds.collection, candidates.iter().copied());

    // Unsupervised baseline at the default threshold.
    let baseline = ThresholdMatcher::new(SimilarityMeasure::Jaccard, 0.35);
    let baseline_graph = baseline.match_pairs(&ds.collection, candidates.iter().copied());

    println!(
        "\n{:<22} {:>8} {:>10} {:>8}",
        "matcher", "recall", "precision", "F1"
    );
    for (name, graph) in [
        ("jaccard@0.35", &baseline_graph),
        ("supervised (logit)", &supervised_graph),
    ] {
        let clusters = connected_components(graph.edges(), ds.collection.len());
        let q = PairQuality::of_clusters(&clusters, &ds.ground_truth);
        println!(
            "{:<22} {:>8.4} {:>10.4} {:>8.4}",
            name, q.recall, q.precision, q.f1
        );
    }
}
