//! Clean–clean product matching, schema-agnostic vs Blast.
//!
//! Reproduces the paper's motivating comparison on an Abt-Buy-shaped
//! dataset: the two catalogues use different attribute names
//! (`name`/`description`/`price` vs `title`/`descr`/`cost`), so
//! schema-aware blocking would need manual alignment. Schema-agnostic token
//! blocking needs none but produces many spurious candidates; Blast's loose
//! schema (LSH attribute partitioning + entropy-weighted meta-blocking)
//! recovers the alignment from the values and prunes far more aggressively
//! at similar recall.
//!
//! ```text
//! cargo run --release --example product_deduplication
//! ```

use sparker::datasets::{generate, DatasetConfig, Domain};
use sparker::{BlockingConfig, Pipeline, PipelineConfig};
use sparker_core::profiles::SourceId;

fn main() {
    let ds = generate(&DatasetConfig {
        entities: 1000,
        unmatched_per_source: 250,
        domain: Domain::Products,
        seed: 7,
        ..DatasetConfig::default()
    });
    println!(
        "Abt-Buy-shaped dataset: {} profiles, {} true matches\n",
        ds.collection.len(),
        ds.ground_truth.len()
    );

    // --- Schema-agnostic pipeline -------------------------------------
    let agnostic = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
    let eval_a = agnostic.evaluate(&ds.ground_truth);

    // --- Blast pipeline ------------------------------------------------
    let blast_config = PipelineConfig {
        blocking: BlockingConfig::blast(),
        ..PipelineConfig::default()
    };
    let blast = Pipeline::new(blast_config).run(&ds.collection);
    let eval_b = blast.evaluate(&ds.ground_truth);

    // The loose schema the LSH partitioning discovered.
    if let Some(parts) = &blast.blocker.partitioning {
        println!("discovered attribute partitions:");
        for p in parts.partitions() {
            let members: Vec<String> = p
                .attributes
                .iter()
                .map(|(s, n)| format!("{}:{n}", if *s == SourceId(0) { "abt" } else { "buy" }))
                .collect();
            println!(
                "  partition {} (entropy {:.2}{}): {}",
                p.id.0,
                p.entropy,
                if p.is_blob { ", blob" } else { "" },
                members.join(", ")
            );
        }
        println!();
    }

    println!(
        "{:<18} {:>12} {:>8} {:>10} {:>8}",
        "blocking", "candidates", "recall", "precision", "RR"
    );
    for (name, eval) in [("schema-agnostic", &eval_a), ("blast", &eval_b)] {
        println!(
            "{:<18} {:>12} {:>8.4} {:>10.4} {:>8.4}",
            name,
            eval.blocking.candidates,
            eval.blocking.recall,
            eval.blocking.precision,
            eval.blocking.reduction_ratio,
        );
    }

    println!(
        "\nend-to-end F1: schema-agnostic {:.4}, blast {:.4}",
        eval_a.clustering.f1, eval_b.clustering.f1
    );
    println!(
        "candidate reduction from loose schema: {:.1}x fewer pairs",
        eval_a.blocking.candidates as f64 / eval_b.blocking.candidates.max(1) as f64
    );
}
