//! The distributed mode: the whole pipeline on the dataflow engine.
//!
//! SparkER's reason to exist is scaling ER on a cluster; this example runs
//! the same pipeline three times — on the sequential driver, entirely as
//! engine stages (dataflow blocking, dataflow filtering, broadcast-join
//! meta-blocking, broadcast matching, label-propagation connected
//! components), and as the morsel-driven pool pipeline
//! (`run_pipeline_parallel`: CSR candidate streaming + per-worker
//! union–find) — asserts the results are identical, and prints the
//! engine's per-stage accounting: the tasks/shuffle-volume numbers that
//! determine cluster cost.
//!
//! ```text
//! cargo run --release --example distributed
//! ```

use sparker::datasets::{generate, DatasetConfig, Domain};
use sparker::{Pipeline, PipelineConfig};
use sparker_core::dataflow::Context;

fn main() {
    let ds = generate(&DatasetConfig {
        entities: 1000,
        unmatched_per_source: 250,
        domain: Domain::Products,
        seed: 42,
        ..DatasetConfig::default()
    });
    let pipeline = Pipeline::new(PipelineConfig::default());

    // Sequential driver.
    let seq = pipeline.run(&ds.collection);
    println!(
        "sequential: blocking {:.1?}, candidates {:.1?}, matching {:.1?}, clustering {:.1?}",
        seq.timings.blocking, seq.timings.candidates, seq.timings.matching, seq.timings.clustering
    );

    // Dataflow engine.
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let ctx = Context::new(workers);
    let par = pipeline.run_dataflow(&ctx, &ds.collection);
    println!(
        "dataflow ({workers} workers): blocking {:.1?}, candidates {:.1?}, matching {:.1?}, clustering {:.1?}",
        par.timings.blocking, par.timings.candidates, par.timings.matching, par.timings.clustering
    );

    // Morsel-driven pool pipeline: candidates streamed out of the CSR
    // candidate graph, per-worker union-find clustering.
    let pool = pipeline.run_pipeline_parallel(&ctx, &ds.collection);
    println!(
        "pool ({workers} workers): blocking {:.1?}, candidates {:.1?}, matching {:.1?}, clustering {:.1?}",
        pool.timings.blocking, pool.timings.candidates, pool.timings.matching, pool.timings.clustering
    );

    // The defining property: identical results from all three modes.
    assert_eq!(seq.blocker.candidates, par.blocker.candidates);
    assert_eq!(seq.similarity, par.similarity);
    assert_eq!(seq.clusters, par.clusters);
    assert_eq!(seq.similarity, pool.similarity);
    assert_eq!(seq.clusters, pool.clusters);
    println!(
        "\nresults identical: {} candidates, {} matches, {} entities\n",
        par.blocker.candidates.len(),
        par.similarity.len(),
        par.clusters.num_clusters()
    );

    // Engine accounting: what a Spark UI would show.
    let snap = ctx.metrics();
    println!(
        "{:<18} {:>6} {:>12} {:>12} {:>10}",
        "stage", "tasks", "in-records", "out-records", "shuffled"
    );
    for s in &snap.stages {
        println!(
            "{:<18} {:>6} {:>12} {:>12} {:>10}",
            s.name, s.tasks, s.input_records, s.output_records, s.shuffle_records
        );
    }
    println!(
        "\ntotals: {} stages, {} tasks, {} broadcast variables, {} shuffled records",
        snap.stages.len(),
        snap.total_tasks(),
        snap.broadcasts,
        snap.total_shuffle_records()
    );
    let eval = par.evaluate(&ds.ground_truth);
    println!(
        "quality: blocking recall {:.4}, cluster F1 {:.4}",
        eval.blocking.recall, eval.clustering.f1
    );
}
