//! The distributed mode: one pipeline, three execution backends.
//!
//! SparkER's reason to exist is scaling ER on a cluster; this example runs
//! the *same* unified driver (`Pipeline::run_on`) once per
//! `ExecutionBackend` — sequential driver loops, the shuffle-based
//! dataflow engine (broadcast-join meta-blocking, label-propagation
//! connected components) and the morsel-driven pool (CSR candidate
//! streaming + per-worker union–find) — asserts the results are
//! identical, prints each run's per-stage `PipelineReport` table, and
//! dumps the engine's per-stage accounting: the tasks/shuffle-volume
//! numbers that determine cluster cost.
//!
//! ```text
//! cargo run --release --example distributed
//! ```

use sparker::datasets::{generate, DatasetConfig, Domain};
use sparker::{ExecutionBackend, Pipeline, PipelineConfig};

fn main() {
    let ds = generate(&DatasetConfig {
        entities: 1000,
        unmatched_per_source: 250,
        domain: Domain::Products,
        seed: 42,
        ..DatasetConfig::default()
    });
    let pipeline = Pipeline::new(PipelineConfig::default());

    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let backends = [
        ExecutionBackend::Sequential,
        ExecutionBackend::dataflow(workers),
        ExecutionBackend::pool(workers),
    ];

    let mut results = Vec::new();
    for backend in &backends {
        let result = pipeline.run_on(backend, &ds.collection);
        println!(
            "--- {} ({} worker{}) ---",
            backend.name(),
            backend.workers(),
            if backend.workers() == 1 { "" } else { "s" },
        );
        print!("{}", result.report.render_table());
        println!();
        results.push(result);
    }

    // The defining property: identical results from all three backends.
    let [seq, df, pool] = &results[..] else {
        unreachable!()
    };
    assert_eq!(seq.blocker.candidates, df.blocker.candidates);
    assert_eq!(seq.similarity, df.similarity);
    assert_eq!(seq.clusters, df.clusters);
    assert_eq!(seq.similarity, pool.similarity);
    assert_eq!(seq.clusters, pool.clusters);
    println!(
        "results identical: {} candidates, {} matches, {} entities\n",
        df.blocker.candidates.len(),
        df.similarity.len(),
        df.clusters.num_clusters()
    );

    // Engine accounting of the pool run: what a Spark UI would show. The
    // `pipeline/...` rows are the driver's stage-scope markers.
    let snap = backends[2].context().unwrap().metrics();
    println!(
        "{:<24} {:>6} {:>12} {:>12} {:>10}",
        "stage", "tasks", "in-records", "out-records", "shuffled"
    );
    for s in &snap.stages {
        println!(
            "{:<24} {:>6} {:>12} {:>12} {:>10}",
            s.name, s.tasks, s.input_records, s.output_records, s.shuffle_records
        );
    }
    println!(
        "\ntotals: {} stages, {} tasks, {} broadcast variables, {} shuffled records",
        snap.stages.len(),
        snap.total_tasks(),
        snap.broadcasts,
        snap.total_shuffle_records()
    );
    let eval = pool.evaluate(&ds.ground_truth);
    println!(
        "quality: blocking recall {:.4}, cluster F1 {:.4}",
        eval.blocking.recall, eval.clustering.f1
    );
}
