//! Quickstart: run the full SparkER pipeline (blocker → entity matcher →
//! entity clusterer) on a generated Abt-Buy-shaped dataset and evaluate
//! every step against the ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sparker::datasets::{generate, DatasetConfig, Domain};
use sparker::{Pipeline, PipelineConfig};

fn main() {
    // 1. A benchmark: two product catalogues describing an overlapping set
    //    of entities, plus the exact ground truth of cross-source matches.
    let ds = generate(&DatasetConfig {
        entities: 1000,
        unmatched_per_source: 250,
        domain: Domain::Products,
        seed: 42,
        ..DatasetConfig::default()
    });
    println!(
        "dataset: {} profiles ({} + {}), {} true matches, {} comparable pairs",
        ds.collection.len(),
        ds.collection.separator(),
        ds.collection.len() - ds.collection.separator() as usize,
        ds.ground_truth.len(),
        ds.collection.comparable_pairs(),
    );

    // 2. The default unsupervised pipeline: schema-agnostic token blocking,
    //    block purging + filtering, CBS/WEP meta-blocking, Jaccard matching,
    //    connected-components clustering.
    let pipeline = Pipeline::new(PipelineConfig::default());
    let result = pipeline.run(&ds.collection);

    println!(
        "\nblocker:   {} blocks -> {} after cleaning; {} candidate pairs",
        result.blocker.initial_blocks,
        result.blocker.cleaned_blocks,
        result.blocker.candidates.len(),
    );
    println!(
        "matcher:   {} matching pairs retained",
        result.similarity.len()
    );
    println!(
        "clusterer: {} clusters ({} non-trivial)",
        result.clusters.num_clusters(),
        result.clusters.non_trivial_clusters().len(),
    );

    // 3. Per-step evaluation, exactly what the paper's GUI displays.
    let eval = result.evaluate(&ds.ground_truth);
    println!(
        "\n{:<12} {:>8} {:>10} {:>10}",
        "step", "recall", "precision", "F1/RR"
    );
    println!(
        "{:<12} {:>8.4} {:>10.4} {:>10.4}",
        "blocking", eval.blocking.recall, eval.blocking.precision, eval.blocking.reduction_ratio
    );
    println!(
        "{:<12} {:>8.4} {:>10.4} {:>10.4}",
        "matching", eval.matching.recall, eval.matching.precision, eval.matching.f1
    );
    println!(
        "{:<12} {:>8.4} {:>10.4} {:>10.4}",
        "clustering", eval.clustering.recall, eval.clustering.precision, eval.clustering.f1
    );

    println!(
        "\ntimings: blocking {:.1?}, candidates {:.1?}, matching {:.1?}, clustering {:.1?}",
        result.timings.blocking,
        result.timings.candidates,
        result.timings.matching,
        result.timings.clustering
    );
}
