#!/usr/bin/env bash
# Regenerate the checked-in bench result sets. Run from the repo root:
# scripts/bench.sh [bench ...]   (default: blocking dataflow metablocking
# pipeline scaling serve)
#
# Scale tiers: SPARKER_SCALE_1M=1 adds the big tier to the gated benches —
# skewed_1m (10^6 profiles) for `scaling`, dirty_100k warm-load for
# `serve`. Unset, both stop at sizes that finish in minutes.
#
# Each bench binary dumps every measurement — including the instrumented
# critical-path and per-worker busy rows the scheduling ablations record,
# and the fused backend's overlap rows (pipeline_10k/fused/<w>/fused-stage/*
# plus the speedup_vs_pool_total_cp value rows) — to BENCH_<name>.json via
# the vendored criterion shim's BENCH_JSON hook. Non-timing measurements
# (peak RSS, spill counts, overlap/speedup ratios) appear as "value" fields.
set -euo pipefail
cd "$(dirname "$0")/.."

benches=("$@")
if [ ${#benches[@]} -eq 0 ]; then
  benches=(blocking dataflow metablocking pipeline scaling serve weights)
fi

# Absolute path: cargo runs bench binaries with the package directory as
# cwd, so a relative BENCH_JSON would land in crates/bench/.
root="$PWD"
for bench in "${benches[@]}"; do
  echo "==> cargo bench -p sparker-bench --bench ${bench}  (-> BENCH_${bench}.json)"
  # The pipeline bench additionally dumps the structured per-stage
  # PipelineReport of one run per execution backend (schema in README.md).
  BENCH_JSON="${root}/BENCH_${bench}.json" \
    PIPELINE_REPORT_JSON="${root}/BENCH_pipeline_reports.json" \
    cargo bench -p sparker-bench --bench "${bench}"
done
