#!/usr/bin/env bash
# Tier-1 CI gate: formatting, release build, full test suite, clippy and
# rustdoc with warnings denied, bench smoke, end-to-end pipeline smoke, a
# CLI backend-matrix smoke, the supervised-scorer train/run/export smoke
# and the online-serve smoke. Run from the repo root: scripts/ci.sh
#
# Scale tiers (environment-gated):
#   BENCH_SMOKE=1       Bench binaries run each body once with no warmup
#                       and no JSON dump — only this tier runs here in CI.
#                       Unset (scripts/bench.sh) they run full Criterion
#                       sampling and write BENCH_<name>.json.
#   SPARKER_SCALE_1M    Gates the big scale tiers: set non-empty to add
#                       skewed_1m (~10^6 profiles; minutes per sample,
#                       RAM-heavy) to the scaling bench and the dirty_100k
#                       warm-load tier to the serve bench. CI never sets
#                       it; scripts/bench.sh inherits it from the caller.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

# Smoke-execute every bench body (1 sample, no warmup, no JSON dump) so
# bench-only code paths can't rot between full scripts/bench.sh runs.
for bench in blocking dataflow metablocking pipeline scaling serve weights; do
  echo "==> BENCH_SMOKE=1 cargo bench -p sparker-bench --bench ${bench}"
  BENCH_SMOKE=1 cargo bench -p sparker-bench --bench "${bench}" > /dev/null
done

# End-to-end pipeline smoke: every execution backend (2 workers) must match
# the sequential pipeline bit for bit (clusters and evaluation).
echo "==> cargo run --release -p sparker-bench --bin smoke_pipeline"
cargo run -q --release -p sparker-bench --bin smoke_pipeline

# CLI backend-matrix smoke: the sparker binary must report identical result
# counts on all four backends.
echo "==> sparker --demo --backend {sequential,dataflow,pool,fused}"
counts=""
for backend in sequential dataflow pool fused; do
  out="$(cargo run -q --release --bin sparker -- --demo --backend "${backend}" --workers 2)"
  line="$(printf '%s\n' "${out}" | grep '^result counts:')"
  echo "    ${backend}: ${line#result counts: }"
  if [ -z "${counts}" ]; then
    counts="${line}"
  elif [ "${counts}" != "${line}" ]; then
    echo "backend ${backend} disagrees: '${line}' != '${counts}'" >&2
    exit 1
  fi
done

# Matcher-equivalence smoke: the filter–verify cascade (default) and the
# naive score-everything matcher (SPARKER_NAIVE_MATCHER=1) must report
# identical result counts through the CLI.
echo "==> sparker --demo: cascade vs SPARKER_NAIVE_MATCHER=1"
cascade_line="$(cargo run -q --release --bin sparker -- --demo --backend pool --workers 2 \
  | grep '^result counts:')"
naive_line="$(SPARKER_NAIVE_MATCHER=1 cargo run -q --release --bin sparker -- --demo --backend pool --workers 2 \
  | grep '^result counts:')"
echo "    cascade: ${cascade_line#result counts: }"
echo "    naive:   ${naive_line#result counts: }"
if [ "${cascade_line}" != "${naive_line}" ]; then
  echo "cascade and naive matcher disagree: '${cascade_line}' != '${naive_line}'" >&2
  exit 1
fi

# Supervised-scorer smoke: train a logistic edge-scoring model on the
# dirty_1k preset through the CLI, run the pipeline with it on two
# backends (result counts must match bit for bit), and diff a
# --weight-filter TSV export against the checked-in golden file.
echo "==> sparker train --preset dirty_1k + supervised run on two backends"
model_json="$(mktemp --suffix .json)"
cargo run -q --release --bin sparker -- train --preset dirty_1k --out "${model_json}" > /dev/null
sup_seq="$(cargo run -q --release --bin sparker -- --demo --backend sequential \
  --edge-scorer "supervised:${model_json}" | grep '^result counts:')"
sup_pool="$(cargo run -q --release --bin sparker -- --demo --backend pool --workers 2 \
  --edge-scorer "supervised:${model_json}" | grep '^result counts:')"
echo "    sequential: ${sup_seq#result counts: }"
echo "    pool:       ${sup_pool#result counts: }"
if [ "${sup_seq}" != "${sup_pool}" ]; then
  echo "supervised backends disagree: '${sup_pool}' != '${sup_seq}'" >&2
  exit 1
fi
rm -f "${model_json}"

echo "==> sparker --export-edges --weight-filter vs tests/golden"
export_tsv="$(mktemp --suffix .tsv)"
cargo run -q --release --bin sparker -- --preset dirty_1k --backend pool --workers 2 \
  --edge-scorer js --export-edges "${export_tsv}" --weight-filter "w >= 0.75" > /dev/null
diff -u tests/golden/dirty_1k_js_edges_w_ge_0.75.tsv "${export_tsv}"
echo "    export matches golden ($(wc -l < "${export_tsv}") lines)"
rm -f "${export_tsv}"

# Fused-execution smoke: on the 10k scaling preset the fused backend
# (prune->score overlapped through the bounded morsel channel) must report
# result counts identical to the staged pool run.
echo "==> sparker --preset dirty_10k: staged pool vs --fused"
staged_counts="$(cargo run -q --release --bin sparker -- --preset dirty_10k --backend pool --workers 4 \
  | grep '^result counts:')"
fused_out="$(cargo run -q --release --bin sparker -- --preset dirty_10k --fused --workers 4)"
fused_counts="$(printf '%s\n' "${fused_out}" | grep '^result counts:')"
echo "    staged: ${staged_counts#result counts: }"
echo "    fused:  ${fused_counts#result counts: }"
printf '%s\n' "${fused_out}" | grep '^fused:' | sed 's/^/    /'
if [ "${staged_counts}" != "${fused_counts}" ]; then
  echo "fused run diverged from staged pool: '${fused_counts}' != '${staged_counts}'" >&2
  exit 1
fi

# Out-of-core smoke: the dirty_100k scaling preset under a hard 8 MiB
# budget must actually spill and still report result counts identical to
# the unbudgeted in-RAM run.
echo "==> sparker --preset dirty_100k: in-RAM vs --mem-budget-mb 8"
inram="$(cargo run -q --release --bin sparker -- --preset dirty_100k --backend pool --workers 2)"
budgeted="$(cargo run -q --release --bin sparker -- --preset dirty_100k --backend pool --workers 2 --mem-budget-mb 8)"
inram_counts="$(printf '%s\n' "${inram}" | grep '^result counts:')"
budget_counts="$(printf '%s\n' "${budgeted}" | grep '^result counts:')"
memory_line="$(printf '%s\n' "${budgeted}" | grep '^memory:')"
echo "    in-RAM:   ${inram_counts#result counts: }"
echo "    budgeted: ${budget_counts#result counts: }"
echo "    ${memory_line}"
if [ "${inram_counts}" != "${budget_counts}" ]; then
  echo "budgeted run diverged from in-RAM: '${budget_counts}' != '${inram_counts}'" >&2
  exit 1
fi
case "${memory_line}" in
  *"spill_batches=0"*)
    echo "budgeted 100k run never spilled: ${memory_line}" >&2
    exit 1
    ;;
esac

# Online-serve smoke: boot the incremental resolver behind its HTTP API,
# insert a 1k slice of dirty_10k over the wire from concurrent clients,
# and diff the service's /stats counts against a cold batch CLI run over
# the same profiles (written to a JSONL file by the smoke binary).
echo "==> smoke_serve: online service vs batch CLI on 1k profiles"
serve_jsonl="$(mktemp --suffix .jsonl)"
trap 'rm -f "${serve_jsonl}"' EXIT
serve_out="$(cargo run -q --release -p sparker-bench --bin smoke_serve -- "${serve_jsonl}" 1000)"
serve_counts="$(printf '%s\n' "${serve_out}" | grep '^result counts:')"
batch_counts="$(cargo run -q --release --bin sparker -- --source-a "${serve_jsonl}" \
  | grep '^result counts:')"
echo "    serve: ${serve_counts#result counts: }"
echo "    batch: ${batch_counts#result counts: }"
if [ "${serve_counts}" != "${batch_counts}" ]; then
  echo "online service diverged from batch CLI: '${serve_counts}' != '${batch_counts}'" >&2
  exit 1
fi

echo "CI OK"
