#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, clippy with warnings
# denied. Run from the repo root: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Smoke-execute every bench body (1 sample, no warmup, no JSON dump) so
# bench-only code paths can't rot between full scripts/bench.sh runs.
for bench in blocking dataflow metablocking pipeline; do
  echo "==> BENCH_SMOKE=1 cargo bench -p sparker-bench --bench ${bench}"
  BENCH_SMOKE=1 cargo bench -p sparker-bench --bench "${bench}" > /dev/null
done

# End-to-end pipeline smoke: pool-parallel run (2 workers) must match the
# sequential pipeline bit for bit (clusters and F1).
echo "==> cargo run --release -p sparker-bench --bin smoke_pipeline"
cargo run -q --release -p sparker-bench --bin smoke_pipeline

echo "CI OK"
