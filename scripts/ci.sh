#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, clippy with warnings
# denied. Run from the repo root: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
