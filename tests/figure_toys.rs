//! Integration tests pinning the paper's toy walk-throughs (Figures 1–2)
//! end to end through the public API.

use sparker::blocking::{token_blocking, Block, BlockCollection};
use sparker::metablocking::{
    meta_blocking_graph, BlockEntropies, BlockGraph, EdgeScorer, MetaBlockingConfig,
    PruningStrategy, WeightScheme,
};
use sparker::profiles::{ErKind, Pair, Profile, ProfileCollection, ProfileId, SourceId};

fn figure1_collection() -> ProfileCollection {
    let p1 = Profile::builder(SourceId(0), "p1")
        .attr("Name", "Blast")
        .attr("Authors", "G. Simonini")
        .attr("Abstract", "how to improve meta-blocking")
        .build();
    let p2 = Profile::builder(SourceId(0), "p2")
        .attr("Name", "SparkER")
        .attr("Authors", "L. Gagliardelli")
        .attr("Abstract", "Simonini et al proposed blocking")
        .build();
    let p3 = Profile::builder(SourceId(1), "p3")
        .attr("title", "Blast: loosely schema blocking")
        .attr("author", "Giovanni Simonini")
        .attr("year", "2016")
        .build();
    let p4 = Profile::builder(SourceId(1), "p4")
        .attr("title", "SparkER: parallel Blast")
        .attr("author", "Luca Gagliardelli")
        .attr("year", "2017")
        .build();
    ProfileCollection::clean_clean(vec![p1, p2], vec![p3, p4])
}

fn pid(i: u32) -> ProfileId {
    ProfileId(i)
}

#[test]
fn figure1b_token_blocking_produces_the_papers_blocks() {
    let blocks = token_blocking(&figure1_collection());
    let members = |key: &str| -> Vec<u32> {
        blocks
            .blocks()
            .iter()
            .find(|b| b.key == key)
            .map(|b| b.all_members().map(|p| p.0).collect())
            .unwrap_or_default()
    };
    assert_eq!(members("blast"), vec![0, 2, 3]);
    assert_eq!(members("simonini"), vec![0, 1, 2]);
    assert_eq!(members("blocking"), vec![0, 1, 2]);
    assert_eq!(members("gagliardelli"), vec![1, 3]);
    assert_eq!(members("sparker"), vec![1, 3]);
}

#[test]
fn figure1c_meta_blocking_weights_and_pruning() {
    let blocks = token_blocking(&figure1_collection());
    let graph = BlockGraph::new(&blocks, None);

    // Edge weights of Figure 1(c): w(p1,p3)=3, w(p1,p4)=1, w(p2,p3)=2,
    // w(p2,p4)=2.
    let weight = |a: u32, b: u32| -> u32 {
        graph
            .neighborhood(pid(a))
            .into_iter()
            .find(|(p, _)| p.0 == b)
            .map(|(_, acc)| acc.shared_blocks)
            .unwrap_or(0)
    };
    assert_eq!(weight(0, 2), 3);
    assert_eq!(weight(0, 3), 1);
    assert_eq!(weight(1, 2), 2);
    assert_eq!(weight(1, 3), 2);

    // Prune below average (avg = 2): (p1,p4) is the dashed edge.
    let retained = meta_blocking_graph(&graph, &MetaBlockingConfig::default());
    let pairs: Vec<Pair> = retained.iter().map(|(p, _)| *p).collect();
    assert_eq!(
        pairs,
        vec![
            Pair::new(pid(0), pid(2)),
            Pair::new(pid(1), pid(2)),
            Pair::new(pid(1), pid(3)),
        ]
    );
}

#[test]
fn figure2c_entropy_weighting_removes_the_red_edges() {
    // Loose-schema blocks of the toy: authors partition (entropy 0.8),
    // name/title/abstract partition (entropy 0.4).
    let blocks = BlockCollection::new(
        ErKind::CleanClean,
        vec![
            Block::clean_clean("blast_1", vec![pid(0)], vec![pid(2), pid(3)]),
            Block::clean_clean("blocking_1", vec![pid(0), pid(1)], vec![pid(2)]),
            Block::clean_clean("simonini_0", vec![pid(0)], vec![pid(2)]),
            Block::clean_clean("gagliardelli_0", vec![pid(1)], vec![pid(3)]),
            Block::clean_clean("sparker_1", vec![pid(1)], vec![pid(3)]),
        ],
    );
    let entropies = BlockEntropies::new(vec![0.4, 0.4, 0.8, 0.8, 0.4]);
    let graph = BlockGraph::new(&blocks, Some(&entropies));
    let retained = meta_blocking_graph(
        &graph,
        &MetaBlockingConfig {
            scorer: EdgeScorer::Classic(WeightScheme::Cbs),
            pruning: PruningStrategy::Wep { factor: 1.0 },
            use_entropy: true,
        },
    );
    // The paper's Figure 2(c): only p1-p3 (1.6) and p2-p4 (1.2) survive;
    // the two red edges of Figure 1(c) — (p1,p2 in the dirty view) p2-p3
    // and p1-p2 equivalents — are gone.
    assert_eq!(retained.len(), 2);
    assert_eq!(retained[0].0, Pair::new(pid(0), pid(2)));
    assert!((retained[0].1 - 1.6).abs() < 1e-12);
    assert_eq!(retained[1].0, Pair::new(pid(1), pid(3)));
    assert!((retained[1].1 - 1.2).abs() < 1e-12);
}

#[test]
fn figure2b_loose_keys_split_simonini() {
    use sparker::looseschema::{loose_schema_keys, AttributePartitioning};
    let coll = figure1_collection();
    let parts = AttributePartitioning::manual(
        &coll,
        vec![
            vec![
                (SourceId(0), "Authors".to_string()),
                (SourceId(1), "author".to_string()),
            ],
            vec![
                (SourceId(0), "Name".to_string()),
                (SourceId(0), "Abstract".to_string()),
                (SourceId(1), "title".to_string()),
            ],
        ],
    );
    let k1 = loose_schema_keys(&coll.profiles()[0], &parts);
    let k2 = loose_schema_keys(&coll.profiles()[1], &parts);
    let k3 = loose_schema_keys(&coll.profiles()[2], &parts);
    // p1 has Simonini as author; p2 cites Simonini in the abstract; p3 has
    // Simonini as author. The keys disambiguate the two roles.
    assert!(k1.contains(&"simonini_0".to_string()));
    assert!(k2.contains(&"simonini_1".to_string()));
    assert!(!k2.contains(&"simonini_0".to_string()));
    assert!(k3.contains(&"simonini_0".to_string()));
}
