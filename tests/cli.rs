//! Integration tests of the `sparker` CLI binary (batch mode).

use std::process::Command;

fn sparker() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sparker"))
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path.to_string_lossy().into_owned()
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sparker-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn clean_clean_csv_run_with_ground_truth_and_output() {
    let dir = tempdir("cc");
    let a = write(
        &dir,
        "a.csv",
        "id,name,price\na1,sony bravia tv kd40,699.99\na2,samsung galaxy phone s9,899.00\n",
    );
    let b = write(
        &dir,
        "b.csv",
        "id,title,cost\nb1,sony KD40 bravia television,689.99\nb2,apple iphone x,999.00\n",
    );
    let gt = write(&dir, "gt.csv", "id_a,id_b\na1,b1\n");
    let out = dir.join("entities.csv");

    let result = sparker()
        .args([
            "--source-a",
            &a,
            "--source-b",
            &b,
            "--ground-truth",
            &gt,
            "--output",
            out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        result.status.success(),
        "{}",
        String::from_utf8_lossy(&result.stderr)
    );
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("loaded 4 profiles"), "{stdout}");
    assert!(stdout.contains("clustering recall 1.0000"), "{stdout}");

    let entities = std::fs::read_to_string(&out).unwrap();
    assert!(entities.starts_with("entity_id,source,original_id"));
    // a1 and b1 share an entity id.
    let rows: Vec<Vec<&str>> = entities
        .lines()
        .skip(1)
        .map(|l| l.split(',').collect())
        .collect();
    let entity_of = |oid: &str| rows.iter().find(|r| r[2] == oid).unwrap()[0];
    assert_eq!(entity_of("a1"), entity_of("b1"));
    assert_ne!(entity_of("a1"), entity_of("a2"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dirty_jsonl_run() {
    let dir = tempdir("dirty");
    let src = write(
        &dir,
        "records.jsonl",
        concat!(
            "{\"id\":\"r1\",\"title\":\"entity resolution at scale\",\"year\":2019}\n",
            "{\"id\":\"r2\",\"title\":\"entity resolution at scale\",\"year\":2019}\n",
            "{\"id\":\"r3\",\"title\":\"unrelated paper topic graphs\",\"year\":2020}\n",
        ),
    );
    let result = sparker().args(["--source-a", &src]).output().unwrap();
    assert!(
        result.status.success(),
        "{}",
        String::from_utf8_lossy(&result.stderr)
    );
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("loaded 3 profiles (Dirty)"), "{stdout}");
    assert!(stdout.contains("1 with >1 profile"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn config_file_is_honoured() {
    let dir = tempdir("config");
    let a = write(&dir, "a.csv", "id,name\na1,alpha beta gamma\n");
    let b = write(&dir, "b.csv", "id,name\nb1,alpha beta gamma\n");
    // A config that disables meta-blocking and uses dice at a low threshold.
    let config = write(
        &dir,
        "pipeline.conf",
        "loose_schema = off\npurge = off\nfilter = off\nmeta_blocking = off\n\
         matcher.measure = dice\nmatcher.threshold = 0.2\nclustering = unique-mapping\n",
    );
    let result = sparker()
        .args(["--source-a", &a, "--source-b", &b, "--config", &config])
        .output()
        .unwrap();
    assert!(
        result.status.success(),
        "{}",
        String::from_utf8_lossy(&result.stderr)
    );
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("1 with >1 profile"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn backends_agree_on_result_counts() {
    let dir = tempdir("workers");
    let a = write(
        &dir,
        "a.csv",
        "id,name
a1,sony bravia tv kd40
a2,samsung galaxy phone
",
    );
    let b = write(
        &dir,
        "b.csv",
        "id,title
b1,sony kd40 bravia television
b2,apple iphone
",
    );
    let run = |backend: &str| {
        let result = sparker()
            .args([
                "--source-a",
                &a,
                "--source-b",
                &b,
                "--backend",
                backend,
                "--workers",
                "4",
            ])
            .output()
            .unwrap();
        assert!(
            result.status.success(),
            "{backend}: {}",
            String::from_utf8_lossy(&result.stderr)
        );
        String::from_utf8_lossy(&result.stdout).into_owned()
    };
    let seq_out = run("sequential");
    let df_out = run("dataflow");
    let pool_out = run("pool");
    assert!(df_out.contains("dataflow engine: 4 workers"), "{df_out}");
    assert!(pool_out.contains("pool engine: 4 workers"), "{pool_out}");
    // Every backend prints the per-stage report table...
    for out in [&seq_out, &df_out, &pool_out] {
        for stage in [
            "build_blocks",
            "filter_blocks",
            "prune_candidates",
            "score_pairs",
            "cluster_edges",
        ] {
            assert!(out.contains(stage), "missing {stage} in {out}");
        }
    }
    // ...and all three agree on the result counts.
    let counts = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("result counts:"))
            .map(|l| l.to_string())
            .expect("result counts line")
    };
    assert_eq!(counts(&seq_out), counts(&df_out));
    assert_eq!(counts(&seq_out), counts(&pool_out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_backend_fails_cleanly() {
    let result = sparker()
        .args(["--demo", "--backend", "spark"])
        .output()
        .unwrap();
    assert!(!result.status.success());
    assert!(String::from_utf8_lossy(&result.stderr).contains("unknown backend"));
}

#[test]
fn bad_flags_fail_cleanly() {
    let result = sparker().args(["--bogus"]).output().unwrap();
    assert!(!result.status.success());
    assert!(String::from_utf8_lossy(&result.stderr).contains("unknown flag"));

    let result = sparker().output().unwrap();
    assert!(!result.status.success());
    assert!(String::from_utf8_lossy(&result.stderr).contains("--source-a is required"));
}

#[test]
fn missing_file_fails_cleanly() {
    let result = sparker()
        .args(["--source-a", "/nonexistent/x.csv"])
        .output()
        .unwrap();
    assert!(!result.status.success());
    assert!(String::from_utf8_lossy(&result.stderr).contains("reading"));
}
