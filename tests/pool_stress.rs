//! Stress test for the persistent worker pool: a pipeline of ten thousand
//! very short stages — the worst case for per-stage overhead and the
//! easiest place for a lost task result or a scheduling-order dependence
//! to surface. The same pipeline must produce byte-identical output under
//! every worker count.

use sparker::dataflow::Context;

const STAGES: usize = 10_000;
const RECORDS: u64 = 512;
const PARTITIONS: usize = 8;

/// 10k short stages: alternating narrow maps and filters with a shuffle
/// sprinkled in every 1000 stages, then a deterministic digest.
fn run_pipeline(workers: usize) -> (Vec<u64>, usize) {
    let ctx = Context::new(workers);
    let mut ds = ctx.parallelize((0..RECORDS).collect::<Vec<_>>(), PARTITIONS);
    for stage in 0..STAGES {
        ds = match stage % 1000 {
            // An occasional full shuffle keeps the wide path honest.
            999 => ds.map(|&x| (x % 64, x)).group_by_key().flat_map(|(k, vs)| {
                let sum = vs.iter().fold(0u64, |a, &b| a.wrapping_add(b));
                vs.iter()
                    .map(move |&v| v ^ (sum % 2) ^ (k & 1))
                    .collect::<Vec<_>>()
            }),
            n if n % 2 == 0 => ds.map(|&x| x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(7)),
            _ => ds.map(|&x| x.rotate_right(7).wrapping_mul(0xF1DE83E19C6A336D)),
        };
    }
    let mut out = ds.collect();
    out.sort_unstable();
    let stages_run = ctx.metrics().stages.len();
    (out, stages_run)
}

#[test]
fn ten_thousand_short_stages_identical_across_worker_counts() {
    let (baseline, stages_run) = run_pipeline(1);
    assert_eq!(baseline.len(), RECORDS as usize, "no records lost");
    assert!(
        stages_run >= STAGES,
        "every stage must be recorded: got {stages_run}"
    );
    for workers in [2usize, 8] {
        let (out, _) = run_pipeline(workers);
        assert_eq!(
            out, baseline,
            "pipeline output must not depend on worker count ({workers} workers)"
        );
    }
}

#[test]
fn pool_survives_panics_interleaved_with_stress() {
    // A panicking stage must not poison the pool for later stages.
    let ctx = Context::new(8);
    let ds = ctx.parallelize((0..100u64).collect::<Vec<_>>(), 8);
    let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ds.map(|&x| {
            assert!(x != 50, "boom at 50");
            x
        })
        .collect()
    }));
    assert!(boom.is_err(), "the panic must propagate to the submitter");

    // Pool still healthy: a real workload afterwards is correct.
    let mut after = ctx
        .parallelize((0..1000u64).collect::<Vec<_>>(), 8)
        .map(|&x| x + 1)
        .collect();
    after.sort_unstable();
    assert_eq!(after, (1..=1000).collect::<Vec<u64>>());
}
