//! End-to-end integration tests spanning every crate through the facade.

use sparker::datasets::{generate, generate_dirty, DatasetConfig, Domain, NoiseConfig};
use sparker::{BlockingConfig, ClusteringAlgorithm, MatcherConfig, Pipeline, PipelineConfig};
use sparker_core::matching::SimilarityMeasure;

fn abt_buy(entities: usize, seed: u64) -> sparker::datasets::GeneratedDataset {
    generate(&DatasetConfig {
        entities,
        unmatched_per_source: entities / 4,
        domain: Domain::Products,
        seed,
        ..DatasetConfig::default()
    })
}

#[test]
fn default_pipeline_quality_holds_across_seeds() {
    for seed in [1u64, 2, 3] {
        let ds = abt_buy(150, seed);
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        let eval = result.evaluate(&ds.ground_truth);
        assert!(
            eval.blocking.recall > 0.9,
            "seed {seed}: blocking recall {}",
            eval.blocking.recall
        );
        assert!(
            eval.clustering.f1 > 0.7,
            "seed {seed}: cluster F1 {}",
            eval.clustering.f1
        );
    }
}

#[test]
fn blast_prunes_more_than_schema_agnostic_at_similar_recall() {
    let ds = abt_buy(300, 9);
    let agnostic = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
    let blast = Pipeline::new(PipelineConfig {
        blocking: BlockingConfig::blast(),
        ..PipelineConfig::default()
    })
    .run(&ds.collection);
    let ea = agnostic.evaluate(&ds.ground_truth);
    let eb = blast.evaluate(&ds.ground_truth);
    assert!(
        eb.blocking.candidates * 3 < ea.blocking.candidates,
        "blast {} vs agnostic {} candidates",
        eb.blocking.candidates,
        ea.blocking.candidates
    );
    assert!(
        eb.blocking.recall > ea.blocking.recall - 0.1,
        "recall sacrificed: {} vs {}",
        eb.blocking.recall,
        ea.blocking.recall
    );
}

#[test]
fn pipeline_works_on_all_domains() {
    for domain in [Domain::Products, Domain::Bibliographic, Domain::Movies] {
        let ds = generate(&DatasetConfig {
            entities: 120,
            unmatched_per_source: 30,
            domain,
            seed: 5,
            ..DatasetConfig::default()
        });
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        let eval = result.evaluate(&ds.ground_truth);
        assert!(
            eval.blocking.recall > 0.85,
            "{}: blocking recall {}",
            domain.name(),
            eval.blocking.recall
        );
    }
}

#[test]
fn dirty_er_full_stack() {
    let ds = generate_dirty(
        &DatasetConfig {
            entities: 150,
            domain: Domain::Bibliographic,
            seed: 21,
            ..DatasetConfig::default()
        },
        3,
    );
    let config = PipelineConfig {
        matching: MatcherConfig {
            measure: SimilarityMeasure::Dice,
            threshold: 0.5,
        },
        ..PipelineConfig::default()
    };
    let result = Pipeline::new(config).run(&ds.collection);
    let eval = result.evaluate(&ds.ground_truth);
    assert!(eval.clustering.f1 > 0.6, "dirty F1 {}", eval.clustering.f1);
}

#[test]
fn noise_level_degrades_recall_monotonically_ish() {
    let recall_at = |noise: NoiseConfig| {
        let ds = generate(&DatasetConfig {
            entities: 200,
            unmatched_per_source: 0,
            noise,
            seed: 33,
            ..DatasetConfig::default()
        });
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        result.evaluate(&ds.ground_truth).blocking.recall
    };
    let clean = recall_at(NoiseConfig::none());
    let default = recall_at(NoiseConfig::default());
    let heavy = recall_at(NoiseConfig::heavy());
    assert_eq!(clean, 1.0);
    assert!(default >= heavy, "default {default} < heavy {heavy}");
    assert!(heavy > 0.5, "even heavy noise keeps token overlap: {heavy}");
}

#[test]
fn config_persistence_reproduces_results() {
    let ds = abt_buy(120, 8);
    let config = PipelineConfig {
        blocking: BlockingConfig::blast(),
        matching: MatcherConfig {
            measure: SimilarityMeasure::CosineTokens,
            threshold: 0.4,
        },
        clustering: ClusteringAlgorithm::UniqueMapping,
    };
    let text = config.to_config_string();
    let restored = PipelineConfig::from_config_string(&text).unwrap();
    let a = Pipeline::new(config).run(&ds.collection);
    let b = Pipeline::new(restored).run(&ds.collection);
    assert_eq!(a.clusters, b.clusters);
    assert_eq!(a.similarity, b.similarity);
}

#[test]
fn matcher_threshold_trades_precision_for_recall() {
    let ds = abt_buy(200, 13);
    let eval_at = |threshold: f64| {
        let config = PipelineConfig {
            matching: MatcherConfig {
                measure: SimilarityMeasure::Jaccard,
                threshold,
            },
            ..PipelineConfig::default()
        };
        Pipeline::new(config)
            .run(&ds.collection)
            .evaluate(&ds.ground_truth)
    };
    let loose = eval_at(0.15);
    let strict = eval_at(0.7);
    assert!(loose.matching.recall >= strict.matching.recall);
    assert!(strict.matching.precision >= loose.matching.precision);
}
