//! Parity tests: every dataflow (parallel) implementation must produce
//! exactly the result of its sequential counterpart, at every worker
//! count — the property that makes the scalability experiment (E8)
//! meaningful.

use sparker::blocking;
use sparker::clustering::{connected_components, connected_components_dataflow};
use sparker::dataflow::Context;
use sparker::datasets::{generate, DatasetConfig};
use sparker::matching::{Matcher, SimilarityMeasure, ThresholdMatcher};
use sparker::metablocking::{
    meta_blocking_graph, parallel, BlockGraph, EdgeScorer, MetaBlockingConfig, PruningStrategy,
    WeightScheme,
};
use sparker::{Pipeline, PipelineConfig};

fn dataset() -> sparker::datasets::GeneratedDataset {
    generate(&DatasetConfig {
        entities: 150,
        unmatched_per_source: 40,
        seed: 99,
        ..DatasetConfig::default()
    })
}

#[test]
fn blocking_parity_across_workers() {
    let ds = dataset();
    let seq = blocking::token_blocking(&ds.collection);
    for workers in [1usize, 3, 8] {
        let ctx = Context::new(workers);
        let par = blocking::dataflow::token_blocking(&ctx, &ds.collection);
        assert_eq!(par.len(), seq.len(), "workers={workers}");
        assert_eq!(par.candidate_pairs(), seq.candidate_pairs());
    }
}

#[test]
fn filtering_parity() {
    let ds = dataset();
    let blocks = blocking::token_blocking(&ds.collection);
    let seq = blocking::block_filtering(blocks.clone(), 0.8);
    let ctx = Context::new(4);
    let par = blocking::dataflow::block_filtering(&ctx, blocks, 0.8);
    assert_eq!(par.candidate_pairs(), seq.candidate_pairs());
}

#[test]
fn meta_blocking_parity_over_configs_and_workers() {
    let ds = dataset();
    let blocks = blocking::block_filtering(
        blocking::purge_oversized(
            blocking::token_blocking(&ds.collection),
            ds.collection.len(),
            0.5,
        ),
        0.8,
    );
    let graph = std::sync::Arc::new(BlockGraph::new(&blocks, None));
    for scheme in [WeightScheme::Cbs, WeightScheme::Js, WeightScheme::ChiSquare] {
        for pruning in [
            PruningStrategy::Wep { factor: 1.0 },
            PruningStrategy::Cnp {
                k: None,
                reciprocal: false,
            },
            PruningStrategy::Blast { ratio: 0.35 },
        ] {
            let config = MetaBlockingConfig {
                scorer: EdgeScorer::Classic(scheme),
                pruning,
                use_entropy: false,
            };
            let seq = meta_blocking_graph(&graph, &config);
            for workers in [1usize, 4] {
                let ctx = Context::new(workers);
                let par = parallel::meta_blocking(&ctx, &graph, &config);
                assert_eq!(
                    seq,
                    par,
                    "{}+{} at {workers} workers",
                    scheme.name(),
                    pruning.name()
                );
            }
        }
    }
}

#[test]
fn matching_parity() {
    let ds = dataset();
    let blocker = Pipeline::new(PipelineConfig::default()).run_blocker(&ds.collection);
    let candidates: Vec<_> = blocker.candidates.iter().copied().collect();
    let matcher = ThresholdMatcher::new(SimilarityMeasure::Jaccard, 0.3);
    let seq = matcher.match_pairs(&ds.collection, candidates.iter().copied());
    for workers in [1usize, 4] {
        let ctx = Context::new(workers);
        let par = matcher.match_pairs_dataflow(&ctx, &ds.collection, candidates.clone());
        assert_eq!(seq, par, "workers={workers}");
    }
}

#[test]
fn clustering_parity() {
    let ds = dataset();
    let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
    let seq = connected_components(result.similarity.edges(), ds.collection.len());
    for workers in [1usize, 4] {
        let ctx = Context::new(workers);
        let par =
            connected_components_dataflow(&ctx, result.similarity.edges(), ds.collection.len());
        assert_eq!(seq, par, "workers={workers}");
    }
}
