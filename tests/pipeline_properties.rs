//! Property-based tests of whole-pipeline invariants through the facade:
//! whatever the configuration and dataset, the pipeline must produce
//! well-formed, internally consistent results.

use proptest::prelude::*;
use sparker::datasets::{generate, DatasetConfig, Domain, NoiseConfig};
use sparker::matching::SimilarityMeasure;
use sparker::metablocking::{EdgeScorer, MetaBlockingConfig, PruningStrategy, WeightScheme};
use sparker::{
    BlockingConfig, ClusteringAlgorithm, MatcherConfig, Pipeline, PipelineConfig, PurgeConfig,
};

fn config_strategy() -> impl Strategy<Value = PipelineConfig> {
    let purge = prop_oneof![
        Just(PurgeConfig::Off),
        (0.3f64..1.0).prop_map(|f| PurgeConfig::Oversized { max_fraction: f }),
        (1.0f64..1.5).prop_map(|s| PurgeConfig::ComparisonLevel { smoothing: s }),
    ];
    let scheme = prop::sample::select(WeightScheme::ALL.to_vec());
    let pruning = prop_oneof![
        (0.5f64..1.5).prop_map(|factor| PruningStrategy::Wep { factor }),
        (0.5f64..1.5, proptest::bool::ANY)
            .prop_map(|(factor, reciprocal)| { PruningStrategy::Wnp { factor, reciprocal } }),
        (0.1f64..0.9).prop_map(|ratio| PruningStrategy::Blast { ratio }),
    ];
    let meta = prop::option::of((scheme, pruning, proptest::bool::ANY).prop_map(
        |(scheme, pruning, use_entropy)| MetaBlockingConfig {
            scorer: EdgeScorer::Classic(scheme),
            pruning,
            use_entropy,
        },
    ));
    let loose = proptest::bool::ANY;
    let measure = prop::sample::select(SimilarityMeasure::ALL.to_vec());
    let clustering = prop::sample::select(vec![
        ClusteringAlgorithm::ConnectedComponents,
        ClusteringAlgorithm::Center,
        ClusteringAlgorithm::MergeCenter,
        ClusteringAlgorithm::Star,
        ClusteringAlgorithm::UniqueMapping,
    ]);
    (purge, meta, loose, measure, (0.1f64..0.8), clustering).prop_map(
        |(purge, meta_blocking, loose, measure, threshold, clustering)| PipelineConfig {
            blocking: BlockingConfig {
                loose_schema: loose.then(Default::default),
                purge,
                filter_ratio: Some(0.8),
                meta_blocking,
            },
            matching: MatcherConfig { measure, threshold },
            clustering,
        },
    )
}

proptest! {
    // Whole-pipeline runs are comparatively slow; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_invariants_hold_for_any_config(
        config in config_strategy(),
        seed in 0u64..1000,
        domain in prop::sample::select(vec![
            Domain::Products,
            Domain::Bibliographic,
            Domain::Citations,
        ]),
    ) {
        let ds = generate(&DatasetConfig {
            entities: 40,
            unmatched_per_source: 10,
            domain,
            noise: NoiseConfig::default(),
            seed,
            skew: None,
        });
        let result = Pipeline::new(config).run(&ds.collection);

        // 1. Candidates are always comparable pairs of the collection.
        for pair in &result.blocker.candidates {
            prop_assert!(ds.collection.is_comparable(pair.first, pair.second));
        }
        // 2. The matcher only keeps candidate pairs, scored within [0, 1].
        for (pair, score) in result.similarity.edges() {
            prop_assert!(result.blocker.candidates.contains(pair));
            prop_assert!((0.0..=1.0 + 1e-12).contains(score));
        }
        // 3. Clusters partition the collection.
        let all: Vec<_> = result
            .clusters
            .clusters()
            .into_iter()
            .flat_map(|(_, m)| m)
            .collect();
        prop_assert_eq!(all.len(), ds.collection.len());
        // 4. (Edge-honouring is clusterer-specific; the dedicated
        //    `connected_components_honours_every_match` test covers the
        //    default clusterer.)
        // 5. Evaluation metrics are well-formed.
        let eval = result.evaluate(&ds.ground_truth);
        for v in [
            eval.blocking.recall,
            eval.blocking.precision,
            eval.matching.recall,
            eval.matching.precision,
            eval.matching.f1,
            eval.clustering.recall,
            eval.clustering.precision,
            eval.clustering.f1,
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "metric {v} out of range");
        }
        prop_assert!(eval.blocking.reduction_ratio <= 1.0);
        // 6. Cleaning never adds comparisons.
        prop_assert!(result.blocker.cleaned_comparisons <= result.blocker.initial_comparisons);
    }

    #[test]
    fn connected_components_honours_every_match(seed in 0u64..500) {
        let ds = generate(&DatasetConfig {
            entities: 40,
            unmatched_per_source: 10,
            seed,
            ..DatasetConfig::default()
        });
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        for (pair, _) in result.similarity.edges() {
            prop_assert!(result.clusters.same_entity(pair.first, pair.second));
        }
    }

    #[test]
    fn config_roundtrip_for_arbitrary_configs(config in config_strategy()) {
        let text = config.to_config_string();
        let parsed = PipelineConfig::from_config_string(&text)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(parsed.to_config_string(), text);
    }

    #[test]
    fn dataflow_runner_matches_sequential_for_arbitrary_configs(
        config in config_strategy(),
        workers in 1usize..5,
    ) {
        let ds = generate(&DatasetConfig {
            entities: 30,
            unmatched_per_source: 8,
            seed: 4242,
            ..DatasetConfig::default()
        });
        let pipeline = Pipeline::new(config);
        let seq = pipeline.run(&ds.collection);
        let ctx = sparker::dataflow::Context::new(workers);
        let par = pipeline.run_dataflow(&ctx, &ds.collection);
        prop_assert_eq!(&seq.blocker.candidates, &par.blocker.candidates);
        prop_assert_eq!(seq.similarity.edges(), par.similarity.edges());
        prop_assert_eq!(&seq.clusters, &par.clusters);
    }
}
