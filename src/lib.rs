//! # sparker
//!
//! Facade crate of the SparkER reproduction: re-exports the full public API
//! of [`sparker_core`] (pipeline, configuration, evaluation, process
//! debugging) together with the synthetic benchmark generators of
//! [`sparker_datasets`].
//!
//! Start with the examples:
//!
//! * `examples/quickstart.rs` — the five-minute tour.
//! * `examples/product_deduplication.rs` — clean–clean ER on an
//!   Abt-Buy-shaped catalogue pair, schema-agnostic vs Blast.
//! * `examples/bibliographic_dirty.rs` — dirty ER with a supervised
//!   matcher.
//! * `examples/debugging.rs` — the paper's Section-3 process-debugging
//!   loop: sampling, threshold sweeps, false-positive drill-down, config
//!   persistence.
//!
//! ```
//! use sparker::{Pipeline, PipelineConfig};
//! use sparker::datasets::{generate, DatasetConfig};
//!
//! let ds = generate(&DatasetConfig { entities: 50, ..Default::default() });
//! let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
//! assert!(result.clusters.num_clusters() > 0);
//! ```

pub use sparker_core::*;

/// Synthetic benchmark generators (Abt-Buy-like shapes with ground truth).
pub mod datasets {
    pub use sparker_datasets::*;
}

/// Online incremental ER service: resident resolver state + HTTP JSON API.
pub mod serve {
    pub use sparker_serve::*;
}
