//! `sparker` — command-line batch runner for the ER pipeline.
//!
//! The paper's workflow ends with "the optimized configuration can be
//! applied to the whole data in a batch mode"; this binary is that batch
//! mode. It loads one (dirty) or two (clean–clean) CSV/JSON-lines sources,
//! optionally a ground truth and a saved configuration, runs the pipeline,
//! prints per-step statistics and writes the resolved entities.
//!
//! ```text
//! sparker --source-a abt.csv --source-b buy.csv \
//!         --ground-truth matches.csv \
//!         --config tuned.conf --output entities.csv
//!
//! sparker --demo            # run on a generated Abt-Buy-shaped dataset
//! ```

use sparker::blocking;
use sparker::datasets::{generate, DatasetConfig, Preset};
use sparker::metablocking::{
    train_supervised, BlockGraph, EdgeScorer, LinearModel, TrainOptions, WeightScheme,
};
use sparker::profiles::{
    parse_csv, profiles_from_csv, profiles_from_json_lines, write_csv, CsvOptions, GroundTruth,
    Profile, ProfileCollection, SourceId,
};
use sparker::serve::ResolverState;
use sparker::{
    export_edges_tsv, ExecutionBackend, LostPairsReport, Pipeline, PipelineConfig, PurgeConfig,
    WeightFilter,
};
use std::process::ExitCode;

#[derive(Default)]
struct Args {
    source_a: Option<String>,
    source_b: Option<String>,
    ground_truth: Option<String>,
    config: Option<String>,
    output: Option<String>,
    id_column: String,
    demo: bool,
    show_lost: bool,
    fused: bool,
    backend: Option<String>,
    workers: Option<usize>,
    preset: Option<String>,
    mem_budget_mb: Option<u64>,
    edge_scorer: Option<String>,
    export_edges: Option<String>,
    weight_filter: Option<String>,
}

const USAGE: &str = "\
sparker — SparkER entity-resolution pipeline (batch mode)

USAGE:
    sparker --source-a <file> [--source-b <file>] [options]
    sparker --demo
    sparker serve [--preset <name>] [--addr <host:port>] [--workers <n>]
                  [--config <file>] [--clean-clean]
    sparker train --out <model.json> [--preset <name>] [--config <file>]

OPTIONS:
    --source-a <file>      First source (.csv or .jsonl). Required unless --demo.
    --source-b <file>      Second source; enables clean-clean ER. Omit for dirty ER.
    --ground-truth <file>  CSV with columns id_a,id_b of true matches (original ids).
    --config <file>        Pipeline configuration saved by the library
                           (PipelineConfig::to_config_string); default config otherwise.
    --output <file>        Write resolved entities as CSV (entity_id,source,original_id).
    --id-column <name>     CSV column holding record ids (default: id).
    --backend <name>       Execution backend: sequential, dataflow, pool, or
                           fused (default: pool). All backends produce
                           identical results.
    --fused                Shorthand for --backend fused: run the pool engine
                           with the prune->score stages fused — meta-blocking
                           streams pruned pairs through a bounded channel into
                           the matcher so both stages overlap and the full
                           candidate list is never materialized.
    --workers <n>          Worker count for the dataflow/pool backends
                           (default: available parallelism).
    --preset <name>        Run on a named generated scaling preset instead of
                           files: dirty_10k, dirty_100k or skewed_1m. The
                           preset's exact ground truth is evaluated. Presets
                           run under the scaling-tier pipeline configuration
                           (PipelineConfig::scaling) unless --config is given.
    --mem-budget-mb <n>    Hard memory budget in MiB for the run; stages that
                           would exceed it spill sorted batches to a run-scoped
                           temp dir. 0 or unset = stay in RAM. Results are
                           byte-identical either way. Equivalent to setting
                           SPARKER_MEM_BUDGET_MB.
    --edge-scorer <name>   Override the meta-blocking edge scorer of the active
                           configuration: cbs, ecbs, js, ejs, arcs, chi2, or
                           supervised:<model.json> (a model written by
                           `sparker train`). Requires a configuration with
                           meta-blocking enabled.
    --export-edges <file>  Write the retained weighted candidate edges as a TSV
                           edge list (a, b, weight; ids resolved to
                           source:original_id). Requires meta-blocking.
    --weight-filter <expr> With --export-edges: keep only edges whose weight
                           satisfies `w <op> <number>`, e.g. \"w >= 0.2\".
                           Operators: >=, >, <=, <, ==, !=.
    --show-lost            With a ground truth: print the blocking false-positive
                           drill-down (lost pairs and their shared keys).
    --demo                 Run on a generated Abt-Buy-shaped dataset instead of files.
    --help                 Show this help.

ENVIRONMENT:
    SPARKER_MEM_BUDGET_MB  Memory budget in MiB (see --mem-budget-mb, which
                           takes precedence).
    SPARKER_NAIVE_MATCHER  Set non-empty to disable the matcher's
                           filter-verify cascade and score every candidate
                           pair naively. Results are identical either way
                           (the cascade is exact); escape hatch for
                           debugging and A/B timing.

SERVE MODE:
    sparker serve boots the online incremental ER service: a resident
    resolver (token dictionary, postings, similarity graph, live
    union-find) behind an HTTP JSON API. Endpoints: POST /profiles,
    GET /clusters/{id} (dirty) or /clusters/{source}/{id} (clean-clean),
    GET /stats, POST /shutdown. Incremental results are equivalent to a
    cold batch run over the same profiles (set SPARKER_SERVE_CHECK=1 to
    assert this per operation).

    --preset <name>        Warm-load a generated scaling preset before
                           accepting requests (dirty_10k, dirty_100k,
                           skewed_1m). Defaults the configuration to
                           PipelineConfig::scaling().
    --addr <host:port>     Listen address (default 127.0.0.1:7878; use
                           port 0 for an ephemeral port).
    --workers <n>          Max concurrent connection handlers (default:
                           available parallelism).
    --config <file>        Pipeline configuration for the resolver
                           (default: scaling() with --preset, default()
                           otherwise).
    --clean-clean          Serve a clean-clean (two-source) task instead
                           of dirty ER. Without --preset only.

TRAIN MODE:
    sparker train fits the supervised edge scorer: a logistic model over
    the 12-feature edge vector (co-occurrence, Jaccard/Dice/cosine,
    block sizes, degrees, entropy), trained with BLOSS-style balanced
    sampling against a generated preset's exact ground truth. The model
    is written as one-line JSON, loadable with
    --edge-scorer supervised:<model.json> or an mb.model config line.

    --out <model.json>     Where to write the trained model (required).
    --preset <name>        Training preset (default dirty_1k). Generation
                           is seeded, so training is deterministic.
    --config <file>        Pipeline configuration whose purge/filter
                           settings shape the training block collection
                           (default: PipelineConfig::scaling()).
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        id_column: "id".to_string(),
        ..Args::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--source-a" => args.source_a = Some(value("--source-a")?),
            "--source-b" => args.source_b = Some(value("--source-b")?),
            "--ground-truth" => args.ground_truth = Some(value("--ground-truth")?),
            "--config" => args.config = Some(value("--config")?),
            "--output" => args.output = Some(value("--output")?),
            "--id-column" => args.id_column = value("--id-column")?,
            "--backend" => args.backend = Some(value("--backend")?),
            "--workers" => {
                let v = value("--workers")?;
                args.workers = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--workers needs an integer, got {v}"))?,
                );
            }
            "--preset" => args.preset = Some(value("--preset")?),
            "--mem-budget-mb" => {
                let v = value("--mem-budget-mb")?;
                args.mem_budget_mb = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--mem-budget-mb needs an integer, got {v}"))?,
                );
            }
            "--edge-scorer" => args.edge_scorer = Some(value("--edge-scorer")?),
            "--export-edges" => args.export_edges = Some(value("--export-edges")?),
            "--weight-filter" => args.weight_filter = Some(value("--weight-filter")?),
            "--show-lost" => args.show_lost = true,
            "--fused" => args.fused = true,
            "--demo" => args.demo = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}; see --help")),
        }
    }
    if !args.demo && args.preset.is_none() && args.source_a.is_none() {
        return Err("--source-a is required (or use --demo / --preset); see --help".to_string());
    }
    if args.weight_filter.is_some() && args.export_edges.is_none() {
        return Err("--weight-filter requires --export-edges; see --help".to_string());
    }
    Ok(args)
}

fn load_source(path: &str, source: SourceId, id_column: &str) -> Result<Vec<Profile>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if path.ends_with(".jsonl") || path.ends_with(".json") {
        profiles_from_json_lines(&text, source, id_column).map_err(|e| format!("{path}: {e}"))
    } else {
        let options = CsvOptions {
            id_column: Some(id_column.to_string()),
            ..CsvOptions::default()
        };
        profiles_from_csv(&text, source, &options).map_err(|e| format!("{path}: {e}"))
    }
}

fn load_ground_truth(path: &str, collection: &ProfileCollection) -> Result<GroundTruth, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let rows = parse_csv(&text, ',').map_err(|e| format!("{path}: {e}"))?;
    let mut pairs = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        if i == 0 && row.iter().any(|c| c.eq_ignore_ascii_case("id_a")) {
            continue; // header
        }
        if row.len() < 2 {
            return Err(format!("{path}: line {} needs two columns", i + 1));
        }
        pairs.push((row[0].as_str(), row[1].as_str()));
    }
    GroundTruth::from_original_ids(collection, pairs).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    // A malformed --weight-filter should fail before any data is loaded.
    let weight_filter = args
        .weight_filter
        .as_deref()
        .map(WeightFilter::parse)
        .transpose()
        .map_err(|e| format!("--weight-filter: {e}"))?;

    // The budget flag is exported as SPARKER_MEM_BUDGET_MB *before* the
    // backend is constructed: engine contexts resolve their budget from the
    // environment at creation, and the sequential backend re-reads it per
    // run, so one code path serves all three.
    if let Some(mb) = args.mem_budget_mb {
        std::env::set_var(sparker::dataflow::MEM_BUDGET_ENV, mb.to_string());
    }

    // Backend selection (validated before any data is loaded).
    let workers = args
        .workers
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
    let backend_name = match (&args.backend, args.fused) {
        (Some(name), true) if name != "fused" => {
            return Err(format!("--fused conflicts with --backend {name}"));
        }
        (_, true) => "fused",
        (Some(name), false) => name.as_str(),
        (None, false) => "pool",
    };
    let backend = ExecutionBackend::parse(backend_name, workers)?;

    // Data.
    let (collection, ground_truth) = if let Some(name) = &args.preset {
        let preset = Preset::by_name(name).ok_or_else(|| {
            format!(
                "unknown preset {name:?}; expected one of {}",
                Preset::NAMES.join(", ")
            )
        })?;
        let ds = preset.generate();
        println!("preset {}: generated scaling-tier dataset", preset.name);
        (ds.collection, Some(ds.ground_truth))
    } else if args.demo {
        let ds = generate(&DatasetConfig {
            entities: 1000,
            unmatched_per_source: 250,
            ..DatasetConfig::default()
        });
        println!("demo mode: generated Abt-Buy-shaped dataset");
        (ds.collection, Some(ds.ground_truth))
    } else {
        let a = load_source(
            args.source_a.as_ref().unwrap(),
            SourceId(0),
            &args.id_column,
        )?;
        let collection = match &args.source_b {
            Some(b) => {
                let b = load_source(b, SourceId(1), &args.id_column)?;
                ProfileCollection::clean_clean(a, b)
            }
            None => ProfileCollection::dirty(a),
        };
        let gt = args
            .ground_truth
            .as_ref()
            .map(|p| load_ground_truth(p, &collection))
            .transpose()?;
        (collection, gt)
    };
    println!(
        "loaded {} profiles ({:?}), {} comparable pairs",
        collection.len(),
        collection.kind(),
        collection.comparable_pairs()
    );

    // Configuration. Preset runs default to the scaling-tier configuration
    // (bounded candidates per profile) instead of the Abt-Buy-scale default;
    // an explicit --config always wins.
    let mut config = match &args.config {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            PipelineConfig::from_config_string(&text).map_err(|e| e.to_string())?
        }
        None if args.preset.is_some() => PipelineConfig::scaling(),
        None => PipelineConfig::default(),
    };
    if let Some(spec) = &args.edge_scorer {
        let mb = config.blocking.meta_blocking.as_mut().ok_or_else(|| {
            "--edge-scorer needs a configuration with meta-blocking enabled".to_string()
        })?;
        mb.scorer = parse_edge_scorer(spec)?;
    }
    if args.export_edges.is_some() && config.blocking.meta_blocking.is_none() {
        return Err(
            "--export-edges needs a configuration with meta-blocking enabled (no weighted edges)"
                .to_string(),
        );
    }

    // Run on the selected backend (default: the pool engine).
    let pipeline = Pipeline::new(config);
    let result = pipeline.run_on(&backend, &collection);

    if let Some(ctx) = backend.context() {
        let snap = ctx.metrics();
        println!(
            "{} engine: {} workers, {} stages, {} tasks, {} shuffled records",
            backend.name(),
            ctx.workers(),
            snap.stages.len(),
            snap.total_tasks(),
            snap.total_shuffle_records(),
        );
    }
    print!("{}", result.report.render_table());
    if let Some(ctx) = backend.context().filter(|_| backend.name() == "fused") {
        let snap = ctx.metrics();
        if let Some(s) = snap
            .stages
            .iter()
            .rev()
            .find(|s| s.name == "fused_prune_score")
        {
            let overlap = s.busy_time.as_secs_f64() / s.wall_time.as_secs_f64().max(1e-9);
            println!(
                "fused: {} morsels, busy {:.1?} over wall {:.1?} (overlap {overlap:.2}x), queue wait {:.1?}",
                s.tasks, s.busy_time, s.wall_time, s.queue_wait,
            );
        }
    }
    println!(
        "blocker: {} blocks -> {} cleaned ({:.1?})",
        result.blocker.initial_blocks, result.blocker.cleaned_blocks, result.timings.blocking,
    );
    println!(
        "candidates: {} pairs ({:.1?})",
        result.blocker.candidates.len(),
        result.timings.candidates,
    );
    println!(
        "matcher: {} matching pairs ({:.1?})",
        result.similarity.len(),
        result.timings.matching,
    );
    println!(
        "clusterer: {} entities, {} with >1 profile ({:.1?})",
        result.clusters.num_clusters(),
        result.clusters.non_trivial_clusters().len(),
        result.timings.clustering,
    );
    println!(
        "result counts: candidates={} matches={} entities={}",
        result.blocker.candidates.len(),
        result.similarity.len(),
        result.clusters.num_clusters(),
    );
    println!(
        "memory: budget_mb={} peak_rss_mb={} spilled_mb={} spill_batches={}",
        result.report.mem_budget_bytes >> 20,
        result.report.peak_rss_bytes >> 20,
        result.report.spilled_bytes >> 20,
        result.report.spill_batches,
    );

    // Similarity-graph export: the retained weighted candidate edges as a
    // TSV edge list, optionally thinned by a weight-filter expression.
    if let Some(path) = &args.export_edges {
        let tsv = export_edges_tsv(
            &collection,
            &result.blocker.weighted_candidates,
            weight_filter.as_ref(),
        );
        std::fs::write(path, &tsv).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "exported {} of {} weighted edges to {path}",
            tsv.lines().count() - 1,
            result.blocker.weighted_candidates.len(),
        );
    }

    // Evaluation.
    if let Some(gt) = &ground_truth {
        let eval = result.evaluate(gt);
        println!("\nevaluation against ground truth ({} matches):", gt.len());
        println!(
            "  blocking   recall {:.4}  precision {:.4}  RR {:.4}",
            eval.blocking.recall, eval.blocking.precision, eval.blocking.reduction_ratio
        );
        println!(
            "  matching   recall {:.4}  precision {:.4}  F1 {:.4}",
            eval.matching.recall, eval.matching.precision, eval.matching.f1
        );
        println!(
            "  clustering recall {:.4}  precision {:.4}  F1 {:.4}",
            eval.clustering.recall, eval.clustering.precision, eval.clustering.f1
        );
        if args.show_lost {
            let report = LostPairsReport::build(&collection, gt, &result.blocker.candidates);
            println!("\nlost ground-truth pairs after blocking: {}", report.len());
            for fp in report.lost.iter().take(10) {
                println!(
                    "  {} <-> {} | shared keys: {}",
                    fp.original_ids.0,
                    fp.original_ids.1,
                    fp.shared_tokens.join(", ")
                );
            }
        }
    }

    // Output.
    if let Some(path) = &args.output {
        let mut rows = vec![vec![
            "entity_id".to_string(),
            "source".to_string(),
            "original_id".to_string(),
        ]];
        for (entity, members) in result.clusters.clusters() {
            for m in members {
                let p = collection.get(m);
                rows.push(vec![
                    entity.to_string(),
                    p.source.0.to_string(),
                    p.original_id.clone(),
                ]);
            }
        }
        std::fs::write(path, write_csv(&rows, ',')).map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nwrote {} entity rows to {path}", rows.len() - 1);
    }
    Ok(())
}

/// Parse an `--edge-scorer` value: a classic scheme name or
/// `supervised:<model.json>`.
fn parse_edge_scorer(spec: &str) -> Result<EdgeScorer, String> {
    if let Some(path) = spec.strip_prefix("supervised:") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let model = LinearModel::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        return Ok(EdgeScorer::Supervised(model));
    }
    let scheme = match spec {
        "cbs" => WeightScheme::Cbs,
        "ecbs" => WeightScheme::Ecbs,
        "js" => WeightScheme::Js,
        "ejs" => WeightScheme::Ejs,
        "arcs" => WeightScheme::Arcs,
        "chi2" => WeightScheme::ChiSquare,
        other => {
            return Err(format!(
                "unknown edge scorer {other:?}; use cbs, ecbs, js, ejs, arcs, chi2 \
                 or supervised:<model.json>"
            ))
        }
    };
    Ok(EdgeScorer::Classic(scheme))
}

/// `sparker train`: fit the supervised edge scorer on a generated preset
/// and write the model as one-line JSON.
fn run_train(argv: &[String]) -> Result<(), String> {
    let mut preset_name = "dirty_1k".to_string();
    let mut out: Option<String> = None;
    let mut config_path: Option<String> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--preset" => preset_name = value("--preset")?,
            "--out" => out = Some(value("--out")?),
            "--config" => config_path = Some(value("--config")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown train flag {other}; see --help")),
        }
    }
    let out = out.ok_or_else(|| "train requires --out <model.json>; see --help".to_string())?;
    let preset = Preset::by_name(&preset_name).ok_or_else(|| {
        format!(
            "unknown preset {preset_name:?}; expected one of {}",
            Preset::NAMES.join(", ")
        )
    })?;
    let config = match &config_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            PipelineConfig::from_config_string(&text).map_err(|e| e.to_string())?
        }
        None => PipelineConfig::scaling(),
    };

    let ds = preset.generate();
    println!(
        "preset {}: {} profiles, {} ground-truth matches",
        preset.name,
        ds.collection.len(),
        ds.ground_truth.len()
    );

    // Build the training block collection the way a preset run would:
    // schema-agnostic token blocking under the configuration's purge and
    // filter settings (loose-schema partitioning, if configured, is not
    // applied — training features are schema-agnostic).
    let bc = &config.blocking;
    let blocks = blocking::token_blocking(&ds.collection);
    let blocks = match bc.purge {
        PurgeConfig::Off => blocks,
        PurgeConfig::Oversized { max_fraction } => {
            blocking::purge_oversized(blocks, ds.collection.len(), max_fraction)
        }
        PurgeConfig::ComparisonLevel { smoothing } => {
            blocking::purge_by_comparison_level(blocks, smoothing)
        }
    };
    let blocks = match bc.filter_ratio {
        Some(ratio) => blocking::block_filtering(blocks, ratio),
        None => blocks,
    };
    let graph = BlockGraph::new(&blocks, None);

    let report = train_supervised(&graph, &ds.ground_truth, &TrainOptions::default());
    println!(
        "trained: {} positive / {} negative edges sampled, final loss {:.4}",
        report.positives, report.negatives, report.final_loss
    );
    let json = report.model.to_json();
    std::fs::write(&out, format!("{json}\n")).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote model to {out}");
    Ok(())
}

fn run_serve(argv: &[String]) -> Result<(), String> {
    let mut preset: Option<String> = None;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut workers: Option<usize> = None;
    let mut config_path: Option<String> = None;
    let mut clean_clean = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--preset" => preset = Some(value("--preset")?),
            "--addr" => addr = value("--addr")?,
            "--workers" => {
                let v = value("--workers")?;
                workers = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--workers needs an integer, got {v}"))?,
                );
            }
            "--config" => config_path = Some(value("--config")?),
            "--clean-clean" => clean_clean = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown serve flag {other}; see --help")),
        }
    }

    let config = match &config_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            PipelineConfig::from_config_string(&text).map_err(|e| e.to_string())?
        }
        None if preset.is_some() => PipelineConfig::scaling(),
        None => PipelineConfig::default(),
    };
    let workers =
        workers.unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));

    let kind = if clean_clean {
        sparker::profiles::ErKind::CleanClean
    } else {
        sparker::profiles::ErKind::Dirty
    };
    let mut resolver = ResolverState::new(config, kind);
    if let Some(name) = &preset {
        if clean_clean {
            return Err("--clean-clean cannot be combined with --preset".to_string());
        }
        let p = Preset::by_name(name).ok_or_else(|| {
            format!(
                "unknown preset {name:?}; expected one of {}",
                Preset::NAMES.join(", ")
            )
        })?;
        let ds = p.generate();
        let n = resolver
            .bulk_load(ds.collection.profiles().to_vec())
            .map_err(|e| format!("warm-loading preset {name}: {e}"))?;
        println!("preset {}: warm-loaded {} profiles", p.name, n);
    }
    println!(
        "resolver: {:?} task, fast_path={}",
        kind,
        resolver.fast_path()
    );

    let mut handle = sparker::serve::serve(resolver, &addr, workers)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    println!("serving on http://{} ({} workers)", handle.addr(), workers);
    handle.join();
    println!("shutdown complete");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().is_some_and(|a| a == "serve") {
        return match run_serve(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().is_some_and(|a| a == "train") {
        return match run_train(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
