//! The headline harness: randomized insert/update sequences against the
//! online resolver must produce exactly the batch pipeline's results over
//! the same final collection — candidate set, match scores (bit-identical)
//! and entity partition — for dirty and clean–clean tasks, skewed and
//! uniform vocabularies, the default / scaling / Blast configurations, and
//! (for the partition) every execution backend at several worker counts.

use proptest::prelude::*;
use sparker_core::{ExecutionBackend, Pipeline, PipelineConfig};
use sparker_profiles::{ErKind, Profile, SourceId};
use sparker_serve::ResolverState;

/// One random operation: upsert profile `id_idx` of `source` with the
/// given vocabulary token indices as its text.
#[derive(Debug, Clone)]
struct Op {
    source: u8,
    id_idx: usize,
    tokens: Vec<usize>,
}

const VOCAB: [&str; 24] = [
    "sony", "bravia", "tv", "led", "inch", "apple", "iphone", "case", "black", "garmin", "gps",
    "watch", "canon", "eos", "camera", "kit", "nikon", "dslr", "lens", "dell", "xps", "laptop",
    "charger", "cable",
];

fn text_of(tokens: &[usize], skewed: bool) -> String {
    tokens
        .iter()
        .map(|&t| {
            // Skew: squash draws toward the low end of the vocabulary so a
            // few tokens become high-frequency hub blocks.
            let idx = if skewed { t * t / VOCAB.len() } else { t };
            VOCAB[idx % VOCAB.len()]
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn ops_strategy(max_source: u8, max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (
            0..=max_source as usize,
            0..10usize,
            prop::collection::vec(0..VOCAB.len(), 0..7),
        )
            .prop_map(|(source, id_idx, tokens)| Op {
                source: source as u8,
                id_idx,
                tokens,
            }),
        1..max_ops,
    )
}

fn profile_of(op: &Op, skewed: bool) -> Profile {
    Profile::builder(SourceId(op.source), format!("p{}", op.id_idx))
        .attr("name", text_of(&op.tokens, skewed))
        .build()
}

/// Replay `ops` through a resolver and assert full equivalence with the
/// sequential batch pipeline (candidates, scores, clusters, live forest).
fn replay_and_verify(config: PipelineConfig, kind: ErKind, ops: &[Op], skewed: bool) {
    let mut resolver = ResolverState::new(config, kind);
    let mid = ops.len() / 2;
    for (i, op) in ops.iter().enumerate() {
        resolver
            .upsert(profile_of(op, skewed))
            .expect("in-range source");
        // Verifying after every op is quadratic; the midpoint catches
        // "wrong intermediate state that self-corrects" bugs, the end
        // state is the contract.
        if i + 1 == mid {
            resolver.verify_against_batch();
        }
    }
    resolver.verify_against_batch();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dirty_uniform_default_config(ops in ops_strategy(0, 30)) {
        replay_and_verify(PipelineConfig::default(), ErKind::Dirty, &ops, false);
    }

    #[test]
    fn dirty_skewed_default_config(ops in ops_strategy(0, 30)) {
        replay_and_verify(PipelineConfig::default(), ErKind::Dirty, &ops, true);
    }

    #[test]
    fn dirty_skewed_scaling_config(ops in ops_strategy(0, 30)) {
        // Scaling tier: comparison-level purge + reciprocal CNP — the
        // pruning family with per-node k-th statistics.
        replay_and_verify(PipelineConfig::scaling(), ErKind::Dirty, &ops, true);
    }

    #[test]
    fn clean_clean_uniform_default_config(ops in ops_strategy(1, 30)) {
        replay_and_verify(PipelineConfig::default(), ErKind::CleanClean, &ops, false);
    }

    #[test]
    fn clean_clean_skewed_scaling_config(ops in ops_strategy(1, 30)) {
        replay_and_verify(PipelineConfig::scaling(), ErKind::CleanClean, &ops, true);
    }

    #[test]
    fn blast_config_uses_fallback_and_matches(ops in ops_strategy(0, 16)) {
        // Blast (loose schema + entropy + local-maxima pruning) is outside
        // the fast-path family; refreshes re-run the batch blocker, and the
        // matcher/clusterer layers must still agree end to end.
        let config = PipelineConfig {
            blocking: sparker_core::BlockingConfig::blast(),
            ..PipelineConfig::default()
        };
        let resolver = ResolverState::new(config.clone(), ErKind::Dirty);
        prop_assert!(!resolver.fast_path());
        replay_and_verify(config, ErKind::Dirty, &ops, false);
    }

    #[test]
    fn meta_blocking_off_uses_fallback_and_matches(ops in ops_strategy(0, 20)) {
        let mut config = PipelineConfig::default();
        config.blocking.meta_blocking = None;
        let resolver = ResolverState::new(config.clone(), ErKind::Dirty);
        prop_assert!(!resolver.fast_path());
        replay_and_verify(config, ErKind::Dirty, &ops, false);
    }

    #[test]
    fn clusters_match_every_backend_at_1_2_8_workers(ops in ops_strategy(1, 30)) {
        // The incremental partition must equal run_on's partition on the
        // parallel backends too (they are byte-identical to sequential by
        // the parity suite; this closes the loop from the resolver's side).
        let mut resolver = ResolverState::new(PipelineConfig::default(), ErKind::CleanClean);
        for op in &ops {
            resolver.upsert(profile_of(op, false)).expect("in-range source");
        }
        let collection = resolver.materialize_collection();
        let pipeline = Pipeline::new(PipelineConfig::default());
        for workers in [1usize, 2, 8] {
            let batch = pipeline.run_on(&ExecutionBackend::pool(workers), &collection);
            prop_assert_eq!(resolver.entity_clusters(), &batch.clusters);
        }
    }
}

/// Long mixed stream at a fixed seedless shape: every id updated several
/// times, interleaved across sources, end-state verified. (Deterministic
/// complement to the randomized cases above.)
#[test]
fn long_update_heavy_stream_matches_batch() {
    let mut resolver = ResolverState::new(PipelineConfig::default(), ErKind::CleanClean);
    for round in 0..6usize {
        for id in 0..8usize {
            let op = Op {
                source: (id % 2) as u8,
                id_idx: id,
                tokens: vec![id % 5, (id + round) % VOCAB.len(), round % VOCAB.len()],
            };
            resolver.upsert(profile_of(&op, false)).unwrap();
        }
        resolver.verify_against_batch();
    }
    let stats = resolver.stats();
    assert_eq!(stats.ops.inserts, 8);
    assert_eq!(stats.ops.updates, 40);
}
