//! Integration tests for the HTTP front-end: ephemeral-port boot,
//! concurrent clients, JSON well-formedness, 400/404 behavior, and
//! graceful shutdown with no dropped in-flight requests.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sparker_core::PipelineConfig;
use sparker_profiles::{parse_json, ErKind, JsonValue};
use sparker_serve::{serve, ResolverState, ServerHandle};

fn boot(workers: usize) -> ServerHandle {
    let resolver = ResolverState::new(PipelineConfig::default(), ErKind::Dirty);
    serve(resolver, "127.0.0.1:0", workers).expect("bind ephemeral port")
}

/// Minimal HTTP/1.1 client: one request, read to EOF (the server closes),
/// return (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, JsonValue) {
    let (status, body) = request(addr, "GET", path, "");
    let json = parse_json(&body).expect("response body is well-formed JSON");
    (status, json)
}

fn field_u64(v: &JsonValue, key: &str) -> u64 {
    let JsonValue::Object(map) = v else {
        panic!("expected object, got {v}")
    };
    match map.get(key) {
        Some(JsonValue::Number(n)) => *n as u64,
        other => panic!("field {key}: expected number, got {other:?}"),
    }
}

#[test]
fn insert_query_stats_roundtrip() {
    let handle = boot(4);
    let addr = handle.addr();

    let (status, body) = request(
        addr,
        "POST",
        "/profiles",
        r#"[{"id":"a","attributes":{"name":"sony bravia tv"}},
            {"id":"b","attributes":{"name":"sony bravia tv 40"}},
            {"id":"c","attributes":{"name":"garmin gps watch"}}]"#,
    );
    assert_eq!(status, 200);
    let reply = parse_json(&body).expect("well-formed JSON");
    assert_eq!(field_u64(&reply, "inserted"), 3);
    assert_eq!(field_u64(&reply, "updated"), 0);

    let (status, cluster) = get_json(addr, "/clusters/a");
    assert_eq!(status, 200);
    let JsonValue::Object(map) = &cluster else {
        panic!("expected object")
    };
    let JsonValue::Array(members) = &map["members"] else {
        panic!("members must be an array")
    };
    let ids: Vec<&str> = members
        .iter()
        .map(|m| {
            let JsonValue::Object(m) = m else {
                panic!("member must be an object")
            };
            m["id"].as_str().expect("member id is a string")
        })
        .collect();
    assert_eq!(ids, ["a", "b"]);

    let (status, stats) = get_json(addr, "/stats");
    assert_eq!(status, 200);
    assert_eq!(field_u64(&stats, "profiles"), 3);
    assert_eq!(field_u64(&stats, "entities"), 2);
    assert_eq!(field_u64(&stats, "inserts"), 3);

    // Updates are recognized by (source, id).
    let (status, body) = request(
        addr,
        "POST",
        "/profiles",
        r#"{"id":"a","attributes":{"name":"something else now"}}"#,
    );
    assert_eq!(status, 200);
    let reply = parse_json(&body).expect("well-formed JSON");
    assert_eq!(field_u64(&reply, "inserted"), 0);
    assert_eq!(field_u64(&reply, "updated"), 1);
}

#[test]
fn malformed_bodies_get_400() {
    let handle = boot(2);
    let addr = handle.addr();
    let cases = [
        "not json at all",
        r#"{"id":"a"}"#,                                    // missing attributes
        r#"{"attributes":{"name":"x"}}"#,                   // missing id
        r#"{"id":"","attributes":{"name":"x"}}"#,           // empty id
        r#"{"id":"a","attributes":"flat"}"#,                // attributes not an object
        r#"{"id":"a","source":7,"attributes":{"n":"x"}}"#,  // source out of range (dirty)
        r#"{"id":"a","source":-1,"attributes":{"n":"x"}}"#, // negative source
        r#"[{"id":"a","attributes":{"n":"x"}}, 42]"#,       // non-object in array
        r#"{"id":"a","attributes":{"n":"x"}} trailing"#,    // trailing garbage
    ];
    for body in cases {
        let (status, reply) = request(addr, "POST", "/profiles", body);
        assert_eq!(status, 400, "body {body:?} must be rejected, got {reply}");
        let json = parse_json(&reply).expect("error body is well-formed JSON");
        let JsonValue::Object(map) = json else {
            panic!("error body must be an object")
        };
        assert!(map.contains_key("error"), "error body names the problem");
    }
    // A rejected batch is atomic: nothing from the mixed array landed.
    let (_, stats) = get_json(addr, "/stats");
    assert_eq!(field_u64(&stats, "profiles"), 0);
}

#[test]
fn unknown_routes_and_ids_get_404() {
    let handle = boot(2);
    let addr = handle.addr();
    let (status, _) = get_json(addr, "/clusters/never-inserted");
    assert_eq!(status, 404);
    let (status, _) = get_json(addr, "/nope");
    assert_eq!(status, 404);
    let (status, body) = request(addr, "DELETE", "/profiles", "");
    assert_eq!(status, 404, "unsupported method on a known path: {body}");
    // Bad source segment is a 400, not a 404 (the route exists).
    let (status, _) = request(addr, "GET", "/clusters/xyz/a", "");
    assert_eq!(status, 400);
}

#[test]
fn concurrent_clients_see_consistent_state() {
    let handle = boot(8);
    let addr = handle.addr();
    let threads = 8usize;
    let per_thread = 12usize;
    let failures = Arc::new(AtomicUsize::new(0));
    let mut joins = Vec::new();
    for t in 0..threads {
        let failures = Arc::clone(&failures);
        joins.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                let body = format!(
                    r#"{{"id":"t{t}-{i}","attributes":{{"name":"item {} common words"}}}}"#,
                    (t * per_thread + i) % 5
                );
                let (status, _) = request(addr, "POST", "/profiles", &body);
                if status != 200 {
                    failures.fetch_add(1, Ordering::SeqCst);
                }
                // Interleave reads: every response must be parseable and
                // internally consistent.
                let (status, stats) = get_json(addr, "/stats");
                if status != 200 || field_u64(&stats, "entities") > field_u64(&stats, "profiles") {
                    failures.fetch_add(1, Ordering::SeqCst);
                }
            }
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }
    assert_eq!(failures.load(Ordering::SeqCst), 0);
    let (_, stats) = get_json(addr, "/stats");
    assert_eq!(field_u64(&stats, "profiles"), (threads * per_thread) as u64);
    assert_eq!(field_u64(&stats, "inserts"), (threads * per_thread) as u64);
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let mut handle = boot(4);
    let addr = handle.addr();
    // Launch a wave of inserts, then shut down while they are in flight.
    // Every request that was accepted must complete with a valid response;
    // requests arriving after shutdown may be refused but must never hang.
    let clients: Vec<_> = (0..16)
        .map(|i| {
            std::thread::spawn(move || {
                let body =
                    format!(r#"{{"id":"g{i}","attributes":{{"name":"shutdown wave {i}"}}}}"#);
                // Late requests race the listener teardown; connection
                // errors are acceptable, half-written responses are not.
                let mut stream = match TcpStream::connect(addr) {
                    Ok(s) => s,
                    Err(_) => return true,
                };
                let req = format!(
                    "POST /profiles HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                if stream.write_all(req.as_bytes()).is_err() {
                    return true;
                }
                let mut response = String::new();
                if stream.read_to_string(&mut response).is_err() {
                    return true;
                }
                // An accepted request must have gotten a complete reply.
                response.is_empty() || response.contains("200 OK")
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(5));
    handle.shutdown();
    for c in clients {
        assert!(
            c.join().expect("client thread"),
            "dropped in-flight request"
        );
    }
    // After shutdown the resolver state is still intact and queryable
    // in-process; whatever number of inserts landed must be clustered.
    handle.with_resolver(|r| {
        let stats = r.stats();
        assert_eq!(
            stats.entities, stats.profiles,
            "distinct texts stay singletons"
        );
    });
}

#[test]
fn http_shutdown_endpoint_stops_the_server() {
    let mut handle = boot(2);
    let addr = handle.addr();
    let (status, body) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("true"));
    // join() returns once the accept loop exits and in-flight work drains.
    handle.join();
    // New connections are now refused or dropped without a response.
    let late = TcpStream::connect(addr);
    if let Ok(mut s) = late {
        let _ = s.write_all(b"GET /stats HTTP/1.1\r\n\r\n");
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.is_empty(), "no handler should answer after shutdown");
    }
}
