//! # sparker-serve
//!
//! Online incremental entity resolution as a service. A
//! [`ResolverState`] keeps the interned token dictionary, the token
//! postings, the retained similarity edges and a live union–find resident
//! in memory; inserts and updates extend these structures incrementally,
//! re-running purge / filter / prune only over the touched token
//! neighborhoods, and queries answer from a lazily refreshed snapshot.
//!
//! The crate's defining property is *batch equivalence*: after any
//! operation sequence the resolver's candidates, match scores and entity
//! clusters are identical to a cold batch pipeline run over the same
//! final collection. See [`ResolverState::verify_against_batch`] and the
//! proptest harness in `tests/equivalence.rs`.
//!
//! [`http`] exposes the resolver over a dependency-free HTTP/1.1 JSON API
//! (`POST /profiles`, `GET /clusters/{id}`, `GET /stats`) on a
//! thread-per-connection `std::net` server; the `sparker serve` CLI
//! subcommand boots it against a preset.

pub mod http;
pub mod resolver;

pub use http::{serve, ServerHandle};
pub use resolver::{build_profile, ClusterView, OpCounters, OpKind, ResolverState, StatsView};
