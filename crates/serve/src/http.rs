//! Dependency-free HTTP/1.1 JSON front-end for [`ResolverState`].
//!
//! A thread-per-connection `std::net` server (the container is offline, so
//! no async runtime or HTTP crate is available — nor needed: the resolver
//! serializes on a mutex anyway, so a bounded thread pool per connection is
//! the right shape). One request per connection, `Connection: close`.
//!
//! # Endpoints
//!
//! * `POST /profiles` — body is one profile object or an array of them:
//!   `{"source": 0, "id": "p1", "attributes": {"name": "sony tv"}}`
//!   (`source` optional, default 0; attribute values are stringified with
//!   the same rules as the batch JSON loader). Responds
//!   `{"inserted": n, "updated": m}`.
//! * `GET /clusters/{id}` (dirty) or `GET /clusters/{source}/{id}` —
//!   the profile's cluster: `{"cluster": label, "members": [{"source": s,
//!   "id": "..."}]}`; 404 for unknown ids.
//! * `GET /stats` — aggregate counts, field-aligned with the batch CLI's
//!   `result counts:` line: `{"profiles": .., "candidates": ..,
//!   "matches": .., "entities": .., ...}`.
//! * `POST /shutdown` — begin graceful shutdown (in-flight requests
//!   drain; the accept loop exits).
//!
//! Malformed requests/bodies get 400, unknown routes/ids 404 — always with
//! a JSON `{"error": "..."}` body.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use sparker_profiles::{parse_json, JsonValue, Profile, SourceId};

use crate::resolver::{OpKind, ResolverState};

struct Shared {
    resolver: Mutex<ResolverState>,
    shutdown: AtomicBool,
    /// Bound address; `/shutdown` self-connects to it to unblock the
    /// accept loop.
    addr: SocketAddr,
    /// (in-flight handler count, available worker slots)
    gauge: Mutex<(usize, usize)>,
    gauge_cv: Condvar,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Handle to a running server: its bound address plus the levers for a
/// graceful stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request graceful shutdown: stop accepting, drain in-flight
    /// requests, join the accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let mut gauge = self.shared.gauge.lock().expect("gauge lock");
        while gauge.0 > 0 {
            gauge = self.shared.gauge_cv.wait(gauge).expect("gauge wait");
        }
    }

    /// Run a closure against the resident resolver (e.g. to warm it or to
    /// verify equivalence from a test).
    pub fn with_resolver<T>(&self, f: impl FnOnce(&mut ResolverState) -> T) -> T {
        f(&mut self.shared.resolver.lock().expect("resolver lock"))
    }

    /// Block until the accept loop exits (i.e. until `/shutdown` or
    /// [`ServerHandle::shutdown`]), then drain in-flight requests.
    pub fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let mut gauge = self.shared.gauge.lock().expect("gauge lock");
        while gauge.0 > 0 {
            gauge = self.shared.gauge_cv.wait(gauge).expect("gauge wait");
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Boot the server on `addr` (use port 0 for an ephemeral port) with at
/// most `workers` concurrent connection handlers.
pub fn serve(
    resolver: ResolverState,
    addr: impl ToSocketAddrs,
    workers: usize,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let workers = workers.max(1);
    let shared = Arc::new(Shared {
        resolver: Mutex::new(resolver),
        shutdown: AtomicBool::new(false),
        addr,
        gauge: Mutex::new((0, workers)),
        gauge_cv: Condvar::new(),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("sparker-serve-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The connection that woke us (or a late client) gets dropped;
            // in-flight handlers keep draining.
            break;
        }
        // Reserve a worker slot (bounds handler concurrency) and count the
        // request as in-flight BEFORE the handler thread detaches, so a
        // shutdown triggered right after accept still waits for it.
        {
            let mut gauge = shared.gauge.lock().expect("gauge lock");
            while gauge.1 == 0 {
                gauge = shared.gauge_cv.wait(gauge).expect("gauge wait");
            }
            gauge.1 -= 1;
            gauge.0 += 1;
        }
        let handler_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("sparker-serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &handler_shared);
                let mut gauge = handler_shared.gauge.lock().expect("gauge lock");
                gauge.1 += 1;
                gauge.0 -= 1;
                drop(gauge);
                handler_shared.gauge_cv.notify_all();
            });
        if spawned.is_err() {
            let mut gauge = shared.gauge.lock().expect("gauge lock");
            gauge.1 += 1;
            gauge.0 -= 1;
            drop(gauge);
            shared.gauge_cv.notify_all();
        }
    }
}

struct Request {
    method: String,
    path: String,
    body: String,
}

enum Reply {
    Ok(JsonValue),
    BadRequest(String),
    NotFound(String),
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let request = match read_request(&mut reader) {
        Ok(r) => r,
        Err(e) => {
            return write_reply(
                &stream,
                400,
                &error_json(&format!("malformed request: {e}")),
            );
        }
    };
    let reply = route(&request, shared);
    match reply {
        Reply::Ok(v) => write_reply(&stream, 200, &v.to_string()),
        Reply::BadRequest(msg) => write_reply(&stream, 400, &error_json(&msg)),
        Reply::NotFound(msg) => write_reply(&stream, 404, &error_json(&msg)),
    }
}

fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Request> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing request path"))?
        .to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?;
    Ok(Request { method, path, body })
}

fn route(request: &Request, shared: &Shared) -> Reply {
    let segments: Vec<&str> = request
        .path
        .split('?')
        .next()
        .unwrap_or("")
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["profiles"]) => post_profiles(&request.body, shared),
        ("GET", ["clusters", id]) => get_cluster(0, id, shared),
        ("GET", ["clusters", source, id]) => match source.parse::<u32>() {
            Ok(s) => get_cluster(s, id, shared),
            Err(_) => Reply::BadRequest(format!("source must be an integer, got {source:?}")),
        },
        ("GET", ["stats"]) => get_stats(shared),
        ("POST", ["shutdown"]) => {
            shared.begin_shutdown();
            let mut body = BTreeMap::new();
            body.insert("shutdown".to_string(), JsonValue::Bool(true));
            Reply::Ok(JsonValue::Object(body))
        }
        (_, _) => Reply::NotFound(format!("no route for {} {}", request.method, request.path)),
    }
}

/// Parse one profile object into a [`Profile`], mirroring the batch JSON
/// loader's stringification rules.
fn profile_from_json(value: &JsonValue) -> Result<Profile, String> {
    let JsonValue::Object(map) = value else {
        return Err("profile must be a JSON object".to_string());
    };
    let source = match map.get("source") {
        None => 0u8,
        Some(JsonValue::Number(n)) if n.fract() == 0.0 && *n >= 0.0 && *n <= u8::MAX as f64 => {
            *n as u8
        }
        Some(other) => {
            return Err(format!(
                "source must be a small non-negative integer, got {other}"
            ))
        }
    };
    let id = match map.get("id") {
        Some(JsonValue::String(s)) if !s.is_empty() => s.clone(),
        Some(other) => return Err(format!("id must be a non-empty string, got {other}")),
        None => return Err("missing required field: id".to_string()),
    };
    let attributes = match map.get("attributes") {
        Some(JsonValue::Object(attrs)) => attrs,
        Some(other) => return Err(format!("attributes must be an object, got {other}")),
        None => return Err("missing required field: attributes".to_string()),
    };
    let mut builder = Profile::builder(SourceId(source), &id);
    for (name, v) in attributes {
        // Same convention as the batch JSON-lines loader: an array value
        // becomes one attribute instance per element.
        match v {
            JsonValue::Array(items) => {
                for item in items {
                    builder = builder.attr(name.clone(), item.to_text());
                }
            }
            other => builder = builder.attr(name.clone(), other.to_text()),
        }
    }
    Ok(builder.build())
}

fn post_profiles(body: &str, shared: &Shared) -> Reply {
    let value = match parse_json(body) {
        Ok(v) => v,
        Err(e) => return Reply::BadRequest(format!("invalid JSON body: {e}")),
    };
    let items: Vec<&JsonValue> = match &value {
        JsonValue::Array(items) => items.iter().collect(),
        obj @ JsonValue::Object(_) => vec![obj],
        other => {
            return Reply::BadRequest(format!(
                "body must be a profile object or an array of them, got {other}"
            ))
        }
    };
    let mut profiles = Vec::with_capacity(items.len());
    for item in items {
        match profile_from_json(item) {
            Ok(p) => profiles.push(p),
            Err(e) => return Reply::BadRequest(e),
        }
    }
    let mut resolver = shared.resolver.lock().expect("resolver lock");
    let mut inserted = 0u64;
    let mut updated = 0u64;
    for p in profiles {
        match resolver.upsert(p) {
            Ok(OpKind::Inserted) => inserted += 1,
            Ok(OpKind::Updated) => updated += 1,
            Err(e) => return Reply::BadRequest(e),
        }
    }
    let mut out = BTreeMap::new();
    out.insert("inserted".to_string(), JsonValue::Number(inserted as f64));
    out.insert("updated".to_string(), JsonValue::Number(updated as f64));
    Reply::Ok(JsonValue::Object(out))
}

fn get_cluster(source: u32, id: &str, shared: &Shared) -> Reply {
    let mut resolver = shared.resolver.lock().expect("resolver lock");
    match resolver.query(source, id) {
        None => Reply::NotFound(format!("unknown profile: source={source} id={id:?}")),
        Some(view) => {
            let members = view
                .members
                .iter()
                .map(|(s, oid)| {
                    let mut m = BTreeMap::new();
                    m.insert("source".to_string(), JsonValue::Number(*s as f64));
                    m.insert("id".to_string(), JsonValue::String(oid.clone()));
                    JsonValue::Object(m)
                })
                .collect();
            let mut out = BTreeMap::new();
            out.insert(
                "cluster".to_string(),
                JsonValue::Number(view.cluster as f64),
            );
            out.insert("members".to_string(), JsonValue::Array(members));
            Reply::Ok(JsonValue::Object(out))
        }
    }
}

fn get_stats(shared: &Shared) -> Reply {
    let mut resolver = shared.resolver.lock().expect("resolver lock");
    let s = resolver.stats();
    let num = |n: u64| JsonValue::Number(n as f64);
    let mut out = BTreeMap::new();
    out.insert("profiles".to_string(), num(s.profiles as u64));
    out.insert(
        "sources".to_string(),
        JsonValue::Array(vec![num(s.sources[0] as u64), num(s.sources[1] as u64)]),
    );
    out.insert("candidates".to_string(), num(s.candidates as u64));
    out.insert("matches".to_string(), num(s.matches as u64));
    out.insert("entities".to_string(), num(s.entities as u64));
    out.insert("fast_path".to_string(), JsonValue::Bool(s.fast_path));
    out.insert("inserts".to_string(), num(s.ops.inserts));
    out.insert("updates".to_string(), num(s.ops.updates));
    out.insert("queries".to_string(), num(s.ops.queries));
    out.insert("refreshes".to_string(), num(s.ops.refreshes));
    Reply::Ok(JsonValue::Object(out))
}

fn error_json(msg: &str) -> String {
    let mut out = BTreeMap::new();
    out.insert("error".to_string(), JsonValue::String(msg.to_string()));
    JsonValue::Object(out).to_string()
}

fn write_reply(mut stream: &TcpStream, status: u16, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}
