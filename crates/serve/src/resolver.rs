//! The resident resolver state behind the online ER service.
//!
//! [`ResolverState`] keeps the interned token dictionary, the token
//! postings (append-friendly block index), the retained similarity edges
//! and a live [`UnionFind`] in memory across requests. `insert` / `update`
//! extend the dictionary and postings incrementally and re-run
//! purge / filter / prune only over the touched token neighborhoods;
//! `query` and `stats` lazily refresh the derived results (retention,
//! matching, clustering) and answer from the refreshed snapshot.
//!
//! # Equivalence contract
//!
//! After any operation sequence, the resolver's candidates, match edges
//! (scores bit-identical) and entity clusters equal a cold batch
//! [`Pipeline::run_on`] over the collection materialized from the same
//! profiles. This is pinned by [`ResolverState::verify_against_batch`],
//! the proptest harness in `tests/equivalence.rs`, and — per operation —
//! by setting `SPARKER_SERVE_CHECK=1`.
//!
//! # Incremental maintenance invariants
//!
//! The fast path mirrors the batch blocker stage by stage over two kinds
//! of structures (see DESIGN.md):
//!
//! * **append-only** — the token→block interner, the per-block member
//!   postings, and the matcher's token dictionary / prepared-profile /
//!   score caches only ever grow or patch in place;
//! * **rebuilt per neighborhood** — purge flags, per-profile filter
//!   selections, and adjacency rows are recomputed wholesale, but only
//!   for the profiles a mutation can actually affect:
//!
//!   1. an operation touches the blocks of the profile's old and new
//!      tokens; purging is re-derived globally (cheap integer pass) and
//!      blocks whose purge state flips join the touched set;
//!   2. the *affected* profiles are the members of touched blocks (their
//!      filter ordering or quota may change) plus the operated profile;
//!      only they re-run block filtering;
//!   3. a CBS edge weight is the count of shared post-filter blocks, so
//!      any weight that changes has **both** endpoints inside some
//!      filter-changed block — replacing the adjacency rows of those
//!      *dirty* nodes wholesale keeps the edge map globally consistent
//!      without symmetric patching.
//!
//! Configurations outside the mirrored family (loose-schema / entropy /
//! CEP / meta-blocking off) fall back to re-running the batch blocker per
//! refresh while still reusing the persistent matcher caches.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use sparker_clustering::{
    cluster_edges, ClusteringAlgorithm, CollectionShape, ComponentsMode, EntityClusters, UnionFind,
};
use sparker_core::{ExecutionBackend, Pipeline, PipelineConfig, PurgeConfig};
use sparker_matching::similarity::MatchScratch;
use sparker_matching::{FilterStats, PreparedProfile, ThresholdMatcher};
use sparker_metablocking::{
    derived_cnp_k, EdgeScorer, NodeStats, PruningStrategy, RetentionRule, WeightScheme,
};
use sparker_profiles::{each_token, DictBuilder, ErKind, Pair, Profile, ProfileId, SourceId};

/// Stable profile key: `(source << 32) | per-source insertion index`.
///
/// Batch-dense profile ids shift as sources grow (a clean–clean source-1
/// profile's dense id is `|source 0| + idx`), so every persistent structure
/// is keyed in this stable space and the dense mapping is materialized only
/// at cluster/compare time.
pub type PKey = u64;

fn pkey(source: u32, idx: u32) -> PKey {
    ((source as u64) << 32) | idx as u64
}

fn key_source(k: PKey) -> u32 {
    (k >> 32) as u32
}

fn key_idx(k: PKey) -> u32 {
    k as u32
}

/// Outcome of an upsert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A new profile was created.
    Inserted,
    /// An existing profile's attributes were replaced.
    Updated,
}

/// One profile's slot in the per-source store.
struct Slot {
    profile: Profile,
    /// Bumped on every content change; versions gate the prepared-profile
    /// and score caches.
    version: u32,
    /// Global insertion-order id (the live union–find's element space).
    global: u32,
}

#[derive(Default)]
struct ScoreEntry {
    va: u32,
    vb: u32,
    score: Option<f64>,
}

/// Counters reported by `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Profiles created.
    pub inserts: u64,
    /// Profiles replaced in place.
    pub updates: u64,
    /// Cluster queries served.
    pub queries: u64,
    /// Lazy refreshes of the derived results.
    pub refreshes: u64,
    /// Refreshes that re-ran the batch blocker (fallback configurations).
    pub fallback_refreshes: u64,
}

/// A queried profile's cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterView {
    /// Canonical cluster label (minimum dense member id).
    pub cluster: u32,
    /// `(source, original_id)` of every member, dense order.
    pub members: Vec<(u32, String)>,
}

/// Snapshot of the resolver counts, aligned with the batch CLI's
/// `result counts: candidates={} matches={} entities={}` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsView {
    /// Total resident profiles.
    pub profiles: usize,
    /// Per-source profile counts.
    pub sources: [usize; 2],
    /// Retained candidate pairs (post meta-blocking).
    pub candidates: usize,
    /// Match edges above the matcher threshold.
    pub matches: usize,
    /// Entity clusters (including singletons).
    pub entities: usize,
    /// `true` when the incremental fast path mirrors the blocker; `false`
    /// when refreshes fall back to the batch blocker.
    pub fast_path: bool,
    /// Operation counters.
    pub ops: OpCounters,
}

/// One token block in the incremental mirror.
struct BlockState {
    token: String,
    /// Full (pre-filter) members per source, sorted by index. Dirty
    /// collections use side 0 only.
    members: [Vec<u32>; 2],
}

impl BlockState {
    fn emitted(&self, kind: ErKind) -> bool {
        match kind {
            ErKind::Dirty => self.members[0].len() >= 2,
            ErKind::CleanClean => !self.members[0].is_empty() && !self.members[1].is_empty(),
        }
    }

    fn size(&self) -> usize {
        self.members[0].len() + self.members[1].len()
    }

    fn comparisons(&self, kind: ErKind) -> u64 {
        match kind {
            ErKind::Dirty => {
                let m = self.members[0].len() as u64;
                m * m.saturating_sub(1) / 2
            }
            ErKind::CleanClean => self.members[0].len() as u64 * self.members[1].len() as u64,
        }
    }
}

/// The incremental blocker mirror (fast path).
#[derive(Default)]
struct FastPath {
    token_ids: HashMap<String, u32>,
    blocks: Vec<BlockState>,
    /// Post-purge state: emitted and retained by the purge rule.
    active: Vec<bool>,
    /// Per profile: block ids of its current token set, sorted.
    memberships: HashMap<PKey, Vec<u32>>,
    /// Per profile: blocks kept by filtering (its post-filter block list),
    /// sorted. Absent/empty = no assignments.
    selection: HashMap<PKey, Vec<u32>>,
    /// Per block: post-filter members per source, sorted by index.
    filtered: Vec<[Vec<u32>; 2]>,
    /// CBS adjacency: per profile, `(neighbor, shared post-filter blocks)`
    /// sorted by neighbor key. Rows are symmetric.
    rows: HashMap<PKey, Vec<(PKey, u32)>>,
    /// Σ post-filter member counts over all post-purge blocks (the block
    /// graph's `total_assignments`).
    total_assignments: u64,
    /// Per source: indices of profiles with ≥ 1 post-filter assignment
    /// (the block graph's `num_profiles` is derived from the maxima).
    assigned: [BTreeSet<u32>; 2],
}

impl FastPath {
    fn intern_block(&mut self, token: &str) -> u32 {
        if let Some(&b) = self.token_ids.get(token) {
            return b;
        }
        let b = self.blocks.len() as u32;
        self.token_ids.insert(token.to_string(), b);
        self.blocks.push(BlockState {
            token: token.to_string(),
            members: [Vec::new(), Vec::new()],
        });
        self.active.push(false);
        self.filtered.push([Vec::new(), Vec::new()]);
        b
    }

    /// Recompute the purge decision for every block (a cheap integer pass —
    /// the purge rules are global functions of the block-size distribution)
    /// and return the blocks whose post-purge state flipped.
    fn recompute_purge(
        &mut self,
        kind: ErKind,
        total_profiles: usize,
        purge: &PurgeConfig,
    ) -> Vec<u32> {
        let desired: Vec<bool> = match purge {
            PurgeConfig::Off => self.blocks.iter().map(|b| b.emitted(kind)).collect(),
            PurgeConfig::Oversized { max_fraction } => {
                let cap = ((total_profiles as f64 * max_fraction).floor() as usize).max(2);
                self.blocks
                    .iter()
                    .map(|b| b.emitted(kind) && b.size() <= cap)
                    .collect()
            }
            PurgeConfig::ComparisonLevel { smoothing } => {
                // Mirror of `purge_by_comparison_level`: cumulative
                // comparisons/assignments per distinct comparison level,
                // walked upward until the marginal comparisons-per-
                // assignment exceeds smoothing × the running ratio.
                let mut emitted: Vec<(u64, u64)> = self
                    .blocks
                    .iter()
                    .filter(|b| b.emitted(kind))
                    .map(|b| (b.comparisons(kind), b.size() as u64))
                    .collect();
                if emitted.is_empty() {
                    vec![false; self.blocks.len()]
                } else {
                    emitted.sort_unstable();
                    let mut cum: Vec<(u64, u64, u64)> = Vec::new(); // (level, comps, assigns)
                    let mut comps = 0u64;
                    let mut assigns = 0u64;
                    for (c, s) in emitted {
                        comps += c;
                        assigns += s;
                        match cum.last_mut() {
                            Some(last) if last.0 == c => {
                                last.1 = comps;
                                last.2 = assigns;
                            }
                            _ => cum.push((c, comps, assigns)),
                        }
                    }
                    let mut cap = cum[0].0;
                    for w in cum.windows(2) {
                        let (_, c_prev, a_prev) = w[0];
                        let (level, c_next, a_next) = w[1];
                        let prev_ratio = c_prev as f64 / a_prev.max(1) as f64;
                        let marginal = (c_next - c_prev) as f64 / (a_next - a_prev).max(1) as f64;
                        if marginal > smoothing * prev_ratio.max(1.0) {
                            break;
                        }
                        cap = level;
                    }
                    self.blocks
                        .iter()
                        .map(|b| b.emitted(kind) && b.comparisons(kind) <= cap)
                        .collect()
                }
            }
        };
        let mut flips = Vec::new();
        for (b, want) in desired.into_iter().enumerate() {
            if self.active[b] != want {
                self.active[b] = want;
                flips.push(b as u32);
            }
        }
        flips
    }

    /// Re-run block filtering for one profile. Mirrors `block_filtering`:
    /// sort the profile's post-purge blocks by `(comparisons, token)` —
    /// post-purge block indices preserve token-lexicographic order, so the
    /// token string reproduces the batch tiebreak — and keep the first
    /// `max(1, ⌈ratio·d⌉)`. Updates the per-block post-filter member lists
    /// and the graph aggregates; returns `true` when the selection changed.
    fn refilter_profile(
        &mut self,
        p: PKey,
        filter_ratio: Option<f64>,
        changed_blocks: &mut BTreeSet<u32>,
    ) -> bool {
        let side = key_source(p) as usize;
        let idx = key_idx(p);
        let cands: Vec<u32> = self
            .memberships
            .get(&p)
            .map(|bids| {
                bids.iter()
                    .copied()
                    .filter(|&b| self.active[b as usize])
                    .collect()
            })
            .unwrap_or_default();
        let mut new_sel = match filter_ratio {
            None => cands,
            Some(ratio) => {
                let quota = ((cands.len() as f64 * ratio).ceil() as usize).max(1);
                let kind = if self.blocks.is_empty() || self.blocks[0].members[1].is_empty() {
                    // kind only matters for comparison counts; infer below.
                    ErKind::Dirty
                } else {
                    ErKind::CleanClean
                };
                let _ = kind; // comparisons are taken per block via the caller-passed kind
                let mut ordered = cands;
                ordered.sort_by(|&x, &y| {
                    let bx = &self.blocks[x as usize];
                    let by = &self.blocks[y as usize];
                    (self.block_comparisons_cached(x), &bx.token)
                        .cmp(&(self.block_comparisons_cached(y), &by.token))
                });
                ordered.truncate(quota);
                ordered
            }
        };
        new_sel.sort_unstable();
        let old_sel = self.selection.get(&p).cloned().unwrap_or_default();
        if old_sel == new_sel {
            return false;
        }
        let old_set: BTreeSet<u32> = old_sel.iter().copied().collect();
        let new_set: BTreeSet<u32> = new_sel.iter().copied().collect();
        for &b in old_set.difference(&new_set) {
            let list = &mut self.filtered[b as usize][side];
            if let Ok(pos) = list.binary_search(&idx) {
                list.remove(pos);
                self.total_assignments -= 1;
            }
            changed_blocks.insert(b);
        }
        for &b in new_set.difference(&old_set) {
            let list = &mut self.filtered[b as usize][side];
            if let Err(pos) = list.binary_search(&idx) {
                list.insert(pos, idx);
                self.total_assignments += 1;
            }
            changed_blocks.insert(b);
        }
        if new_sel.is_empty() {
            self.assigned[side].remove(&idx);
            self.selection.remove(&p);
        } else {
            self.assigned[side].insert(idx);
            self.selection.insert(p, new_sel);
        }
        true
    }

    fn block_comparisons_cached(&self, b: u32) -> u64 {
        let block = &self.blocks[b as usize];
        if block.members[1].is_empty() {
            let m = block.members[0].len() as u64;
            m * m.saturating_sub(1) / 2
        } else {
            block.members[0].len() as u64 * block.members[1].len() as u64
        }
    }

    /// Rebuild one profile's adjacency row wholesale from its post-filter
    /// blocks (the "touched token neighborhood" unit of work).
    fn rebuild_row(&mut self, p: PKey, kind: ErKind) {
        let side = key_source(p) as usize;
        let idx = key_idx(p);
        let mut counts: BTreeMap<PKey, u32> = BTreeMap::new();
        if let Some(sel) = self.selection.get(&p) {
            for &b in sel {
                match kind {
                    ErKind::Dirty => {
                        for &m in &self.filtered[b as usize][0] {
                            if m != idx {
                                *counts.entry(pkey(0, m)).or_insert(0) += 1;
                            }
                        }
                    }
                    ErKind::CleanClean => {
                        let other = 1 - side;
                        for &m in &self.filtered[b as usize][other] {
                            *counts.entry(pkey(other as u32, m)).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        if counts.is_empty() {
            self.rows.remove(&p);
        } else {
            self.rows.insert(p, counts.into_iter().collect());
        }
    }

    /// The block graph's `num_profiles`: one past the maximum dense id
    /// among profiles holding ≥ 1 post-filter assignment.
    fn graph_num_profiles(&self, kind: ErKind, source0_len: usize) -> usize {
        let a0 = self.assigned[0]
            .last()
            .map(|&i| i as usize + 1)
            .unwrap_or(0);
        match kind {
            ErKind::Dirty => a0,
            ErKind::CleanClean => {
                let a1 = self.assigned[1]
                    .last()
                    .map(|&i| source0_len + i as usize + 1)
                    .unwrap_or(0);
                a0.max(a1)
            }
        }
    }
}

/// The resident online resolver. See the module docs for the maintenance
/// invariants and the batch-equivalence contract.
pub struct ResolverState {
    config: PipelineConfig,
    kind: ErKind,
    matcher: ThresholdMatcher,
    slots: [Vec<Slot>; 2],
    id_index: HashMap<(u32, String), u32>,
    global_order: Vec<PKey>,
    dict: DictBuilder,
    tok_scratch: String,
    prepared: HashMap<PKey, (u32, PreparedProfile)>,
    score_cache: HashMap<(PKey, PKey), ScoreEntry>,
    match_scratch: MatchScratch,
    filter_stats: FilterStats,
    fast: Option<FastPath>,
    dirty: bool,
    retained: HashSet<(PKey, PKey)>,
    matches: BTreeMap<(PKey, PKey), f64>,
    clusters: Option<EntityClusters>,
    cluster_members: HashMap<u32, Vec<u32>>,
    live_uf: UnionFind,
    counters: OpCounters,
}

impl ResolverState {
    /// An empty resolver for `kind` collections under `config`.
    pub fn new(config: PipelineConfig, kind: ErKind) -> Self {
        let fast = Self::fast_path_supported(&config).then(FastPath::default);
        let matcher = ThresholdMatcher::new(config.matching.measure, config.matching.threshold);
        ResolverState {
            config,
            kind,
            matcher,
            slots: [Vec::new(), Vec::new()],
            id_index: HashMap::new(),
            global_order: Vec::new(),
            dict: DictBuilder::new(),
            tok_scratch: String::new(),
            prepared: HashMap::new(),
            score_cache: HashMap::new(),
            match_scratch: MatchScratch::default(),
            filter_stats: FilterStats::default(),
            fast,
            dirty: true,
            retained: HashSet::new(),
            matches: BTreeMap::new(),
            clusters: None,
            cluster_members: HashMap::new(),
            live_uf: UnionFind::new(0),
            counters: OpCounters::default(),
        }
    }

    /// `true` when `config` is inside the incrementally mirrored family:
    /// schema-agnostic blocking, CBS weights without entropy, and any
    /// pruning rule whose retention decision is local given per-node stats
    /// plus an exactly maintainable global mean (everything except CEP).
    pub fn fast_path_supported(config: &PipelineConfig) -> bool {
        if config.blocking.loose_schema.is_some() {
            return false;
        }
        match &config.blocking.meta_blocking {
            None => false,
            Some(m) => {
                // Supervised scorers (like LSH/entropy) fall back to batch
                // refresh: their weights are not incrementally maintainable
                // from the CBS adjacency rows alone.
                m.scorer == EdgeScorer::Classic(WeightScheme::Cbs)
                    && !m.use_entropy
                    && !matches!(m.pruning, PruningStrategy::Cep { .. })
            }
        }
    }

    /// `true` when refreshes run the incremental mirror rather than the
    /// batch blocker.
    pub fn fast_path(&self) -> bool {
        self.fast.is_some()
    }

    /// The task kind served.
    pub fn kind(&self) -> ErKind {
        self.kind
    }

    /// Total resident profiles.
    pub fn num_profiles(&self) -> usize {
        self.slots[0].len() + self.slots[1].len()
    }

    fn slot(&self, key: PKey) -> &Slot {
        &self.slots[key_source(key) as usize][key_idx(key) as usize]
    }

    /// Insert a new profile or replace an existing one (matched by
    /// `(source, original_id)`). Dirty resolvers accept source 0 only;
    /// clean–clean resolvers accept sources 0 and 1.
    pub fn upsert(&mut self, profile: Profile) -> Result<OpKind, String> {
        let source = profile.source.0;
        let max_source = match self.kind {
            ErKind::Dirty => 0,
            ErKind::CleanClean => 1,
        };
        if source > max_source {
            return Err(format!(
                "source {source} out of range for a {:?} resolver",
                self.kind
            ));
        }
        let op = self.upsert_slot(profile);
        match op {
            OpKind::Inserted => self.counters.inserts += 1,
            OpKind::Updated => self.counters.updates += 1,
        }
        self.dirty = true;
        if std::env::var("SPARKER_SERVE_CHECK").is_ok_and(|v| !v.is_empty()) {
            self.refresh();
            self.verify_inner();
        }
        Ok(op)
    }

    fn upsert_slot(&mut self, profile: Profile) -> OpKind {
        let source = profile.source.0 as u32;
        let id_key = (source, profile.original_id.clone());
        let (key, op) = match self.id_index.get(&id_key) {
            Some(&idx) => {
                let slot = &mut self.slots[source as usize][idx as usize];
                slot.profile = profile;
                slot.version += 1;
                (pkey(source, idx), OpKind::Updated)
            }
            None => {
                let idx = self.slots[source as usize].len() as u32;
                let global = self.global_order.len() as u32;
                self.global_order.push(pkey(source, idx));
                self.slots[source as usize].push(Slot {
                    profile,
                    version: 0,
                    global,
                });
                self.id_index.insert(id_key, idx);
                (pkey(source, idx), OpKind::Inserted)
            }
        };
        self.fast_apply(key);
        op
    }

    /// Bulk-load a batch of profiles (e.g. a warm preset). Slots are filled
    /// first and the incremental mirror is rebuilt once, which is far
    /// cheaper than replaying per-op neighborhood maintenance.
    pub fn bulk_load(&mut self, profiles: Vec<Profile>) -> Result<usize, String> {
        let n = profiles.len();
        let fast = self.fast.take(); // suspend per-op maintenance
        for p in profiles {
            self.upsert(p)?;
        }
        self.fast = fast;
        if self.fast.is_some() {
            self.rebuild_fast();
        }
        self.dirty = true;
        Ok(n)
    }

    /// Rebuild the incremental mirror from the profile stores.
    fn rebuild_fast(&mut self) {
        let Some(fast) = self.fast.as_mut() else {
            return;
        };
        *fast = FastPath::default();
        let mut scratch = String::new();
        let mut keys: Vec<PKey> = Vec::with_capacity(self.global_order.len());
        for source in 0..2usize {
            for (idx, slot) in self.slots[source].iter().enumerate() {
                let key = pkey(source as u32, idx as u32);
                let mut tokens: BTreeSet<String> = BTreeSet::new();
                for a in &slot.profile.attributes {
                    each_token(&a.value, &mut scratch, |t| {
                        tokens.insert(t.to_string());
                    });
                }
                let mut bids = Vec::with_capacity(tokens.len());
                for t in &tokens {
                    let b = fast.intern_block(t);
                    fast.blocks[b as usize].members[source].push(idx as u32);
                    bids.push(b);
                }
                bids.sort_unstable();
                fast.memberships.insert(key, bids);
                keys.push(key);
            }
        }
        for b in &mut fast.blocks {
            b.members[0].sort_unstable();
            b.members[1].sort_unstable();
        }
        let total = self.slots[0].len() + self.slots[1].len();
        fast.recompute_purge(self.kind, total, &self.config.blocking.purge);
        let mut changed = BTreeSet::new();
        for &k in &keys {
            fast.refilter_profile(k, self.config.blocking.filter_ratio, &mut changed);
        }
        for &k in &keys {
            fast.rebuild_row(k, self.kind);
        }
    }

    /// Per-op incremental maintenance: extend the postings with the
    /// profile's token delta, re-derive purging, re-filter the affected
    /// profiles, and rebuild the adjacency rows of the dirty nodes.
    fn fast_apply(&mut self, key: PKey) {
        let Some(fast) = self.fast.as_mut() else {
            return;
        };
        let side = key_source(key) as usize;
        let idx = key_idx(key);
        let slot = &self.slots[side][idx as usize];
        let mut new_tokens: BTreeSet<String> = BTreeSet::new();
        for a in &slot.profile.attributes {
            each_token(&a.value, &mut self.tok_scratch, |t| {
                new_tokens.insert(t.to_string());
            });
        }

        // 1. Token delta → postings update; op_blocks = old ∪ new blocks.
        let old_bids: Vec<u32> = fast.memberships.get(&key).cloned().unwrap_or_default();
        let mut op_blocks: BTreeSet<u32> = old_bids.iter().copied().collect();
        for &b in &old_bids {
            if !new_tokens.contains(&fast.blocks[b as usize].token) {
                let members = &mut fast.blocks[b as usize].members[side];
                if let Ok(pos) = members.binary_search(&idx) {
                    members.remove(pos);
                }
            }
        }
        let mut new_bids: Vec<u32> = Vec::with_capacity(new_tokens.len());
        for t in &new_tokens {
            let b = fast.intern_block(t);
            let members = &mut fast.blocks[b as usize].members[side];
            if let Err(pos) = members.binary_search(&idx) {
                members.insert(pos, idx);
            }
            new_bids.push(b);
            op_blocks.insert(b);
        }
        new_bids.sort_unstable();
        fast.memberships.insert(key, new_bids);

        // 2. Purge is a global function of the size distribution; re-derive
        //    it and fold state flips into the touched set.
        let total = self.slots[0].len() + self.slots[1].len();
        let flips = fast.recompute_purge(self.kind, total, &self.config.blocking.purge);
        op_blocks.extend(flips);

        // 3. Affected profiles: members of touched blocks + the operated
        //    profile. Only their filter selections can change.
        let mut affected: BTreeSet<PKey> = BTreeSet::new();
        affected.insert(key);
        for &b in &op_blocks {
            for s in 0..2usize {
                for &m in &fast.blocks[b as usize].members[s] {
                    affected.insert(pkey(s as u32, m));
                }
            }
        }

        // 4. Re-filter the affected profiles; collect filter-changed blocks
        //    and selection-changed profiles.
        let mut changed_blocks: BTreeSet<u32> = BTreeSet::new();
        let mut dirty_nodes: BTreeSet<PKey> = BTreeSet::new();
        dirty_nodes.insert(key);
        for &p in &affected {
            if fast.refilter_profile(p, self.config.blocking.filter_ratio, &mut changed_blocks) {
                dirty_nodes.insert(p);
            }
        }

        // 5. Any CBS weight that changed has both endpoints inside a
        //    filter-changed block, so rebuilding the dirty rows wholesale
        //    restores global adjacency consistency.
        for &b in &changed_blocks {
            for s in 0..2usize {
                for &m in &fast.filtered[b as usize][s] {
                    dirty_nodes.insert(pkey(s as u32, m));
                }
            }
        }
        for &p in &dirty_nodes {
            fast.rebuild_row(p, self.kind);
        }
    }

    /// Dense (batch-collection) id of a stable key, under the current
    /// source sizes.
    fn dense_of(&self, key: PKey) -> u32 {
        match self.kind {
            ErKind::Dirty => key_idx(key),
            ErKind::CleanClean => {
                if key_source(key) == 0 {
                    key_idx(key)
                } else {
                    self.slots[0].len() as u32 + key_idx(key)
                }
            }
        }
    }

    fn stable_of_dense(&self, dense: u32) -> PKey {
        match self.kind {
            ErKind::Dirty => pkey(0, dense),
            ErKind::CleanClean => {
                let n0 = self.slots[0].len() as u32;
                if dense < n0 {
                    pkey(0, dense)
                } else {
                    pkey(1, dense - n0)
                }
            }
        }
    }

    /// Clone the stores into the batch collection the resolver must be
    /// equivalent to.
    pub fn materialize_collection(&self) -> sparker_profiles::ProfileCollection {
        let side = |s: usize| -> Vec<Profile> {
            self.slots[s]
                .iter()
                .map(|slot| slot.profile.clone())
                .collect()
        };
        match self.kind {
            ErKind::Dirty => sparker_profiles::ProfileCollection::dirty(side(0)),
            ErKind::CleanClean => {
                sparker_profiles::ProfileCollection::clean_clean(side(0), side(1))
            }
        }
    }

    /// Decide one candidate pair with the persistent matcher state; scores
    /// are cached against the profile versions. Set measures see interned
    /// token-id intersections and string measures the concatenated text,
    /// both invariant under the persistent dictionary, so scores are
    /// bit-identical to a batch run with a fresh dictionary.
    fn score_pair(&mut self, a: PKey, b: PKey) -> Option<f64> {
        let (va, vb) = (self.slot(a).version, self.slot(b).version);
        if let Some(e) = self.score_cache.get(&(a, b)) {
            if e.va == va && e.vb == vb {
                return e.score;
            }
        }
        self.ensure_prepared(a);
        self.ensure_prepared(b);
        let pa = &self.prepared[&a].1;
        let pb = &self.prepared[&b].1;
        let score =
            self.matcher
                .decide_prepared(pa, pb, &mut self.match_scratch, &mut self.filter_stats);
        self.score_cache
            .insert((a, b), ScoreEntry { va, vb, score });
        score
    }

    fn ensure_prepared(&mut self, key: PKey) {
        let version = self.slot(key).version;
        if let Some((v, _)) = self.prepared.get(&key) {
            if *v == version {
                return;
            }
        }
        let slot = &self.slots[key_source(key) as usize][key_idx(key) as usize];
        let prepared =
            PreparedProfile::from_profile(&slot.profile, &mut self.dict, &mut self.tok_scratch);
        self.prepared.insert(key, (version, prepared));
    }

    /// Refresh the derived results (candidates → matches → clusters) if any
    /// operation arrived since the last refresh.
    pub fn refresh(&mut self) {
        if !self.dirty {
            return;
        }
        self.counters.refreshes += 1;
        let retained = if self.fast.is_some() {
            self.fast_retained()
        } else {
            self.counters.fallback_refreshes += 1;
            self.fallback_retained()
        };

        // Matching over the retained candidates, persistent caches hot.
        let mut matches: BTreeMap<(PKey, PKey), f64> = BTreeMap::new();
        for &(a, b) in &retained {
            if let Some(s) = self.score_pair(a, b) {
                matches.insert((a, b), s);
            }
        }

        // Exact clustering over the dense-mapped match edges.
        let n = self.num_profiles();
        let separator = match self.kind {
            ErKind::Dirty => n as u32,
            ErKind::CleanClean => self.slots[0].len() as u32,
        };
        let mut edges: Vec<(Pair, f64)> = matches
            .iter()
            .map(|(&(a, b), &s)| {
                (
                    Pair::new(ProfileId(self.dense_of(a)), ProfileId(self.dense_of(b))),
                    s,
                )
            })
            .collect();
        edges.sort_by_key(|&(p, _)| p);
        let clusters = cluster_edges(
            self.config.clustering,
            ComponentsMode::Sequential,
            &edges,
            CollectionShape {
                num_profiles: n,
                kind: self.kind,
                separator,
            },
        );
        self.cluster_members.clear();
        for (label, members) in clusters.clusters() {
            self.cluster_members
                .insert(label, members.into_iter().map(|p| p.0).collect());
        }
        self.clusters = Some(clusters);

        // Live union–find over global insertion-order ids: additive deltas
        // are absorbed; any lost match edge forces a rebuild (a forest
        // cannot unmerge).
        let lost_edges = self.matches.keys().any(|k| !matches.contains_key(k));
        let global = |this: &Self, k: PKey| this.slot(k).global as usize;
        if lost_edges {
            let mut uf = UnionFind::new(self.global_order.len());
            for &(a, b) in matches.keys() {
                uf.union(global(self, a), global(self, b));
            }
            self.live_uf = uf;
        } else {
            self.live_uf.grow(self.global_order.len());
            let mut delta = UnionFind::new(self.global_order.len());
            for (k, _) in matches.iter() {
                if !self.matches.contains_key(k) {
                    delta.union(global(self, k.0), global(self, k.1));
                }
            }
            self.live_uf.absorb(&delta);
        }

        self.retained = retained;
        self.matches = matches;
        self.dirty = false;
    }

    /// Retention over the incrementally maintained adjacency: mirrors
    /// `meta_blocking_graph` — per-node stats (mean / max / k-th) from the
    /// maintained rows, the WEP global mean from an exact integer sum, and
    /// `RetentionRule::keeps` replayed per edge.
    fn fast_retained(&mut self) -> HashSet<(PKey, PKey)> {
        let fast = self.fast.as_ref().expect("fast path state");
        let meta = self
            .config
            .blocking
            .meta_blocking
            .as_ref()
            .expect("fast path requires meta-blocking");
        let rule = match meta.pruning {
            PruningStrategy::Wep { factor } => {
                // CBS weights are integral, so a u64 sum reproduces the
                // batch f64 fold exactly (well under 2^53).
                let mut sum = 0u64;
                let mut count = 0u64;
                for (&a, row) in &fast.rows {
                    for &(b, w) in row {
                        if a < b {
                            sum += w as u64;
                            count += 1;
                        }
                    }
                }
                let mean = if count == 0 {
                    0.0
                } else {
                    sum as f64 / count as f64
                };
                RetentionRule::GlobalThreshold(factor * mean)
            }
            PruningStrategy::Wnp { factor, reciprocal } => {
                RetentionRule::NodeMean { factor, reciprocal }
            }
            PruningStrategy::Cnp { reciprocal, .. } => RetentionRule::NodeKth { reciprocal },
            PruningStrategy::Blast { ratio } => RetentionRule::BlastMaxima { ratio },
            PruningStrategy::Cep { .. } => unreachable!("CEP is outside the fast-path gate"),
        };
        let needs_stats = !matches!(rule, RetentionRule::GlobalThreshold(_));
        let mut stats: HashMap<PKey, NodeStats> = HashMap::new();
        if needs_stats {
            let cnp_k = match meta.pruning {
                PruningStrategy::Cnp { k, .. } => k.unwrap_or_else(|| {
                    derived_cnp_k(
                        fast.total_assignments,
                        fast.graph_num_profiles(self.kind, self.slots[0].len()),
                    )
                }),
                _ => 1,
            };
            let mut weights: Vec<f64> = Vec::new();
            for (&node, row) in &fast.rows {
                weights.clear();
                let mut sum = 0.0f64;
                let mut max = 0.0f64;
                for &(_, w) in row {
                    let w = w as f64;
                    weights.push(w);
                    sum += w;
                    max = max.max(w);
                }
                let mean = sum / weights.len() as f64;
                let k = (cnp_k.min(weights.len())).saturating_sub(1);
                let (_, kth, _) = weights
                    .select_nth_unstable_by(k, |a, b| b.partial_cmp(a).expect("finite weights"));
                stats.insert(
                    node,
                    NodeStats {
                        mean,
                        max,
                        kth: *kth,
                    },
                );
            }
        }
        let empty = NodeStats {
            kth: f64::INFINITY,
            ..NodeStats::default()
        };
        let mut retained = HashSet::new();
        for (&a, row) in &fast.rows {
            let sa = stats.get(&a).unwrap_or(&empty);
            for &(b, w) in row {
                if a < b {
                    let sb = stats.get(&b).unwrap_or(&empty);
                    if rule.keeps(w as f64, sa, sb) {
                        retained.insert((a, b));
                    }
                }
            }
        }
        retained
    }

    /// Fallback for configurations outside the mirrored family: re-run the
    /// batch blocker on the materialized collection (trivially equivalent)
    /// and translate its dense candidate pairs into the stable key space.
    /// Matching still reuses the persistent caches.
    fn fallback_retained(&mut self) -> HashSet<(PKey, PKey)> {
        let collection = self.materialize_collection();
        let pipeline = Pipeline::new(self.config.clone());
        let out = pipeline.run_blocker(&collection);
        out.candidates
            .iter()
            .map(|p| {
                (
                    self.stable_of_dense(p.first.0),
                    self.stable_of_dense(p.second.0),
                )
            })
            .collect()
    }

    /// The cluster of `(source, original_id)`, or `None` for unknown ids.
    pub fn query(&mut self, source: u32, original_id: &str) -> Option<ClusterView> {
        self.counters.queries += 1;
        let &idx = self.id_index.get(&(source, original_id.to_string()))?;
        self.refresh();
        let dense = self.dense_of(pkey(source, idx));
        let clusters = self.clusters.as_ref().expect("refreshed");
        let label = clusters.cluster_of(ProfileId(dense));
        let members = self
            .cluster_members
            .get(&label)
            .cloned()
            .unwrap_or_default();
        let members = members
            .into_iter()
            .map(|d| {
                let k = self.stable_of_dense(d);
                (key_source(k), self.slot(k).profile.original_id.clone())
            })
            .collect();
        Some(ClusterView {
            cluster: label,
            members,
        })
    }

    /// Refresh and expose the current entity partition (for equivalence
    /// harnesses comparing against batch runs on arbitrary backends).
    pub fn entity_clusters(&mut self) -> &EntityClusters {
        self.refresh();
        self.clusters.as_ref().expect("refreshed")
    }

    /// Refresh and report the aggregate counts.
    pub fn stats(&mut self) -> StatsView {
        self.refresh();
        StatsView {
            profiles: self.num_profiles(),
            sources: [self.slots[0].len(), self.slots[1].len()],
            candidates: self.retained.len(),
            matches: self.matches.len(),
            entities: self
                .clusters
                .as_ref()
                .map(|c| c.num_clusters())
                .unwrap_or(0),
            fast_path: self.fast.is_some(),
            ops: self.counters,
        }
    }

    /// Assert full equivalence with a cold batch run over the materialized
    /// collection: candidate set, match edges with bit-identical scores,
    /// cluster partition, and (for connected components) the live
    /// union–find's partition. Panics on any divergence.
    pub fn verify_against_batch(&mut self) {
        self.refresh();
        self.verify_inner();
    }

    fn verify_inner(&mut self) {
        let collection = self.materialize_collection();
        let pipeline = Pipeline::new(self.config.clone());
        let result = pipeline.run_on(&ExecutionBackend::Sequential, &collection);

        let batch_candidates: BTreeSet<(PKey, PKey)> = result
            .blocker
            .candidates
            .iter()
            .map(|p| {
                (
                    self.stable_of_dense(p.first.0),
                    self.stable_of_dense(p.second.0),
                )
            })
            .collect();
        let mine: BTreeSet<(PKey, PKey)> = self.retained.iter().copied().collect();
        assert_eq!(
            mine, batch_candidates,
            "incremental candidate set diverged from the batch blocker"
        );

        let batch_matches: BTreeMap<(PKey, PKey), f64> = result
            .similarity
            .edges()
            .iter()
            .map(|&(p, s)| {
                let a = self.stable_of_dense(p.first.0);
                let b = self.stable_of_dense(p.second.0);
                ((a.min(b), a.max(b)), s)
            })
            .collect();
        assert_eq!(
            self.matches, batch_matches,
            "incremental match edges diverged from the batch matcher"
        );

        let clusters = self.clusters.as_ref().expect("refreshed");
        assert_eq!(
            clusters, &result.clusters,
            "incremental clusters diverged from the batch clusterer"
        );

        if self.config.clustering == ClusteringAlgorithm::ConnectedComponents {
            // The live forest's partition over global insertion ids must be
            // the cluster partition, relabelled.
            let mut fwd: HashMap<usize, u32> = HashMap::new();
            let mut bwd: HashMap<u32, usize> = HashMap::new();
            let labels = self.live_uf.labels();
            for (g, &key) in self.global_order.iter().enumerate() {
                let cluster = clusters.cluster_of(ProfileId(self.dense_of(key)));
                let uf_label = labels[g];
                assert_eq!(
                    *fwd.entry(uf_label).or_insert(cluster),
                    cluster,
                    "live union-find split a batch cluster"
                );
                assert_eq!(
                    *bwd.entry(cluster).or_insert(uf_label),
                    uf_label,
                    "live union-find merged two batch clusters"
                );
            }
        }
    }
}

/// Convenience: build a profile from `(source, original_id)` and
/// attribute pairs, exactly as the batch loaders do (empty values are
/// dropped by the builder).
pub fn build_profile(source: u32, original_id: &str, attrs: &[(String, String)]) -> Profile {
    let mut b = Profile::builder(
        SourceId(u8::try_from(source).expect("source fits in u8")),
        original_id,
    );
    for (k, v) in attrs {
        b = b.attr(k.clone(), v.clone());
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_core::PipelineConfig;

    fn profile(source: u8, id: &str, text: &str) -> Profile {
        Profile::builder(SourceId(source), id)
            .attr("name", text)
            .build()
    }

    #[test]
    fn empty_resolver_stats() {
        let mut r = ResolverState::new(PipelineConfig::default(), ErKind::Dirty);
        let s = r.stats();
        assert_eq!(s.profiles, 0);
        assert_eq!(s.candidates, 0);
        assert_eq!(s.entities, 0);
        assert!(s.fast_path);
    }

    #[test]
    fn insert_sequence_matches_batch_default_config() {
        let mut r = ResolverState::new(PipelineConfig::default(), ErKind::Dirty);
        let texts = [
            "sony bravia tv 40 inch",
            "sony bravia television 40in",
            "apple iphone 12 case",
            "iphone 12 black case",
            "garmin gps watch",
            "sony bravia tv 40 inch led",
            "garmin forerunner gps watch",
        ];
        for (i, t) in texts.iter().enumerate() {
            r.upsert(profile(0, &format!("p{i}"), t)).unwrap();
            r.verify_against_batch();
        }
    }

    #[test]
    fn insert_sequence_matches_batch_scaling_config() {
        let mut r = ResolverState::new(PipelineConfig::scaling(), ErKind::Dirty);
        let texts = [
            "canon eos camera body",
            "canon eos camera kit",
            "nikon d500 camera",
            "canon eos rebel camera body",
            "nikon d500 dslr camera",
            "gopro hero black",
        ];
        for (i, t) in texts.iter().enumerate() {
            r.upsert(profile(0, &format!("p{i}"), t)).unwrap();
            r.verify_against_batch();
        }
    }

    #[test]
    fn updates_match_batch() {
        let mut r = ResolverState::new(PipelineConfig::default(), ErKind::Dirty);
        for (i, t) in ["alpha beta gamma", "alpha beta gamma", "delta epsilon"]
            .iter()
            .enumerate()
        {
            r.upsert(profile(0, &format!("p{i}"), t)).unwrap();
        }
        r.verify_against_batch();
        // Update p1 away from the cluster, then back.
        assert_eq!(
            r.upsert(profile(0, "p1", "zeta eta theta")).unwrap(),
            OpKind::Updated
        );
        r.verify_against_batch();
        r.upsert(profile(0, "p1", "alpha beta gamma")).unwrap();
        r.verify_against_batch();
    }

    #[test]
    fn clean_clean_inserts_match_batch() {
        let mut r = ResolverState::new(PipelineConfig::default(), ErKind::CleanClean);
        let ops = [
            (0, "a0", "dell xps laptop 13"),
            (1, "b0", "dell xps 13 laptop"),
            (0, "a1", "hp spectre laptop"),
            (1, "b1", "hp spectre x360 laptop"),
            (0, "a2", "lenovo thinkpad x1"),
            (1, "b2", "thinkpad x1 carbon lenovo"),
        ];
        for (s, id, t) in ops {
            r.upsert(profile(s, id, t)).unwrap();
            r.verify_against_batch();
        }
    }

    #[test]
    fn query_returns_cluster_members() {
        let mut r = ResolverState::new(PipelineConfig::default(), ErKind::Dirty);
        r.upsert(profile(0, "a", "red widget deluxe")).unwrap();
        r.upsert(profile(0, "b", "red widget deluxe")).unwrap();
        r.upsert(profile(0, "c", "unrelated thing entirely"))
            .unwrap();
        let view = r.query(0, "a").expect("known id");
        let ids: Vec<&str> = view.members.iter().map(|(_, id)| id.as_str()).collect();
        assert_eq!(ids, vec!["a", "b"]);
        assert!(r.query(0, "missing").is_none());
    }

    #[test]
    fn bulk_load_equals_per_op_inserts() {
        let profiles: Vec<Profile> = (0..30)
            .map(|i| profile(0, &format!("p{i}"), &format!("item {} common word", i / 3)))
            .collect();
        let mut bulk = ResolverState::new(PipelineConfig::default(), ErKind::Dirty);
        bulk.bulk_load(profiles.clone()).unwrap();
        bulk.verify_against_batch();
        let mut ops = ResolverState::new(PipelineConfig::default(), ErKind::Dirty);
        for p in profiles {
            ops.upsert(p).unwrap();
        }
        assert_eq!(bulk.stats(), {
            let mut s = ops.stats();
            // Op counters differ by construction; align them for the
            // derived-result comparison.
            s.ops = bulk.stats().ops;
            s
        });
    }

    #[test]
    fn rejects_out_of_range_source() {
        let mut r = ResolverState::new(PipelineConfig::default(), ErKind::Dirty);
        assert!(r.upsert(profile(1, "x", "text")).is_err());
    }
}
