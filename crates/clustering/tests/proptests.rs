//! Property-based tests: union–find vs a naive model, connected components
//! vs BFS, clustering invariants.

use proptest::prelude::*;
use sparker_clustering::{
    center_clustering, connected_components, connected_components_dataflow,
    connected_components_pool, merge_center_clustering, star_clustering, unique_mapping_clustering,
    UnionFind,
};
use sparker_dataflow::Context;
use sparker_profiles::{Pair, ProfileId};
use std::collections::{HashSet, VecDeque};

fn edges_strategy(n: u32) -> impl Strategy<Value = Vec<(Pair, f64)>> {
    prop::collection::vec(
        (0..n, 0..n, 0.0f64..1.0).prop_filter_map("self loop", move |(a, b, s)| {
            (a != b).then(|| {
                (
                    Pair::new(ProfileId(a), ProfileId(b)),
                    (s * 100.0).round() / 100.0,
                )
            })
        }),
        0..60,
    )
}

/// Reference connected components by BFS.
fn bfs_components(edges: &[(Pair, f64)], n: usize) -> Vec<u32> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (p, _) in edges {
        adj[p.first.index()].push(p.second.index());
        adj[p.second.index()].push(p.first.index());
    }
    let mut label = vec![u32::MAX; n];
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        let mut q = VecDeque::from([start]);
        label[start] = start as u32;
        while let Some(x) = q.pop_front() {
            for &y in &adj[x] {
                if label[y] == u32::MAX {
                    label[y] = start as u32;
                    q.push_back(y);
                }
            }
        }
    }
    label
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_find_matches_bfs(edges in edges_strategy(30)) {
        let n = 30usize;
        let clusters = connected_components(&edges, n);
        let reference = bfs_components(&edges, n);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                prop_assert_eq!(
                    clusters.same_entity(ProfileId(a), ProfileId(b)),
                    reference[a as usize] == reference[b as usize],
                );
            }
        }
    }

    #[test]
    fn dataflow_cc_matches_unionfind(edges in edges_strategy(25)) {
        let ctx = Context::new(3);
        prop_assert_eq!(
            connected_components_dataflow(&ctx, &edges, 25),
            connected_components(&edges, 25)
        );
    }

    #[test]
    fn all_algorithms_refine_connected_components(edges in edges_strategy(25)) {
        // Center / merge-center / unique-mapping clusters are always
        // sub-clusters of the connected components (they only use the
        // same edges, never invent connectivity).
        let n = 25usize;
        let cc = connected_components(&edges, n);
        let algos: Vec<sparker_clustering::EntityClusters> = vec![
            center_clustering(&edges, n),
            merge_center_clustering(&edges, n),
            star_clustering(&edges, n),
        ];
        for clusters in &algos {
            for (_, members) in clusters.non_trivial_clusters() {
                for w in members.windows(2) {
                    prop_assert!(cc.same_entity(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn clusterings_are_partitions(edges in edges_strategy(25)) {
        let n = 25usize;
        for clusters in [
            connected_components(&edges, n),
            center_clustering(&edges, n),
            merge_center_clustering(&edges, n),
            star_clustering(&edges, n),
        ] {
            let all: Vec<ProfileId> = clusters
                .clusters()
                .into_iter()
                .flat_map(|(_, m)| m)
                .collect();
            prop_assert_eq!(all.len(), n, "every profile appears exactly once");
            let set: HashSet<ProfileId> = all.into_iter().collect();
            prop_assert_eq!(set.len(), n);
        }
    }

    #[test]
    fn unique_mapping_is_injective(
        edges in prop::collection::vec(
            (0u32..12, 12u32..24, 0.0f64..1.0).prop_map(|(a, b, s)| {
                (Pair::new(ProfileId(a), ProfileId(b)), s)
            }),
            0..50,
        )
    ) {
        let clusters = unique_mapping_clustering(&edges, 24, 12);
        for (_, members) in clusters.non_trivial_clusters() {
            prop_assert_eq!(members.len(), 2, "clusters are pairs");
            prop_assert!(members[0].0 < 12 && members[1].0 >= 12, "one per source");
        }
    }

    #[test]
    fn pool_cc_matches_unionfind(edges in edges_strategy(25), workers in 1usize..=8) {
        let ctx = Context::new(workers);
        prop_assert_eq!(
            connected_components_pool(&ctx, &edges, 25),
            connected_components(&edges, 25)
        );
    }

    #[test]
    fn shard_merged_unionfind_matches_single_pass(
        edges in edges_strategy(25),
        cuts in prop::collection::vec(0usize..=60, 0..4),
    ) {
        // Partition the edge list at arbitrary cut points, build one forest
        // per shard, absorb them — must equal the single forest built from
        // all edges at once, for *any* partitioning.
        let n = 25usize;
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(edges.len())).collect();
        cuts.push(0);
        cuts.push(edges.len());
        cuts.sort_unstable();

        let mut merged = UnionFind::new(n);
        for w in cuts.windows(2) {
            let mut shard = UnionFind::new(n);
            for (p, _) in &edges[w[0]..w[1]] {
                shard.union(p.first.index(), p.second.index());
            }
            merged.absorb(&shard);
        }
        let mut single = UnionFind::new(n);
        for (p, _) in &edges {
            single.union(p.first.index(), p.second.index());
        }
        prop_assert_eq!(merged.labels(), single.labels());
        prop_assert_eq!(merged.num_components(), single.num_components());
    }

    #[test]
    fn union_find_components_count(ops in prop::collection::vec((0usize..20, 0usize..20), 0..40)) {
        let mut uf = UnionFind::new(20);
        let mut merges = 0usize;
        for (a, b) in ops {
            if uf.union(a, b) {
                merges += 1;
            }
        }
        prop_assert_eq!(uf.num_components(), 20 - merges);
        // Labels are consistent with connectivity.
        let labels = uf.labels();
        for a in 0..20 {
            for b in 0..20 {
                prop_assert_eq!(labels[a] == labels[b], uf.connected(a, b));
            }
        }
    }

    // Online absorb algebra: the batch clusterer absorbs disjoint equal-size
    // shards exactly once, but the serving resolver re-absorbs *overlapping*
    // delta forests of *varying* sizes after every operation. Pin the
    // semilattice laws that make that correct.

    #[test]
    fn absorb_is_idempotent_on_overlapping_forests(
        base in prop::collection::vec((0usize..18, 0usize..18), 0..25),
        delta in prop::collection::vec((0usize..12, 0usize..12), 0..25),
    ) {
        let mut acc = UnionFind::new(18);
        for &(a, b) in &base {
            if a != b {
                acc.union(a, b);
            }
        }
        let mut d = UnionFind::new(12); // smaller, overlapping universe
        for &(a, b) in &delta {
            if a != b {
                d.union(a, b);
            }
        }
        let mut once = acc.clone();
        once.absorb(&d);
        let mut thrice = acc.clone();
        thrice.absorb(&d);
        thrice.absorb(&d);
        thrice.absorb(&d);
        prop_assert_eq!(once.labels(), thrice.labels());
        prop_assert_eq!(once.num_components(), thrice.num_components());
    }

    #[test]
    fn absorb_is_commutative_and_grows(
        xs in prop::collection::vec((0usize..10, 0usize..10), 0..20),
        ys in prop::collection::vec((0usize..16, 0usize..16), 0..20),
    ) {
        let forest = |n: usize, edges: &[(usize, usize)]| {
            let mut f = UnionFind::new(n);
            for &(a, b) in edges {
                if a != b {
                    f.union(a, b);
                }
            }
            f
        };
        let a = forest(10, &xs);
        let b = forest(16, &ys);
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        prop_assert_eq!(ab.len(), 16);
        prop_assert_eq!(ab.labels(), ba.labels());
        // Absorbing into a fresh forest equals replaying all unions.
        let mut replay = UnionFind::new(16);
        for &(x, y) in xs.iter().chain(ys.iter()) {
            if x != y {
                replay.union(x, y);
            }
        }
        prop_assert_eq!(ab.labels(), replay.labels());
    }

    #[test]
    fn online_grow_union_matches_batch(
        ops in prop::collection::vec((0usize..30, 0usize..30), 0..40),
    ) {
        // A live forest that grows element-by-element (as profiles are
        // inserted) and unions edges as they appear must end up identical
        // to a batch forest built at full size.
        let mut live = UnionFind::new(0);
        for &(a, b) in &ops {
            live.grow(a.max(b) + 1);
            if a != b {
                live.union(a, b);
            }
        }
        live.grow(30);
        let mut batch = UnionFind::new(30);
        for &(a, b) in &ops {
            if a != b {
                batch.union(a, b);
            }
        }
        prop_assert_eq!(live.labels(), batch.labels());
        prop_assert_eq!(live.num_components(), batch.num_components());
    }
}
