//! The output of entity clustering: a partition of profiles into entities.

use sparker_profiles::{Pair, ProfileId};
use std::collections::HashMap;

/// A partition of the profile space into entity clusters.
///
/// Every profile (0..num_profiles) belongs to exactly one cluster;
/// unmatched profiles are singletons. Cluster ids are canonical: the
/// minimum profile id of the cluster, so equal clusterings compare equal
/// regardless of the algorithm that produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityClusters {
    /// `label[i]` = cluster id of profile `i`.
    labels: Vec<u32>,
}

impl EntityClusters {
    /// Build from per-profile labels (any labelling; canonicalized here).
    pub fn from_labels(labels: Vec<u32>) -> Self {
        // Canonicalize: map each label to the minimum profile id bearing it.
        let mut min_of: HashMap<u32, u32> = HashMap::new();
        for (i, &l) in labels.iter().enumerate() {
            let e = min_of.entry(l).or_insert(i as u32);
            *e = (*e).min(i as u32);
        }
        EntityClusters {
            labels: labels.iter().map(|l| min_of[l]).collect(),
        }
    }

    /// Number of profiles covered.
    pub fn num_profiles(&self) -> usize {
        self.labels.len()
    }

    /// Cluster id of a profile.
    pub fn cluster_of(&self, id: ProfileId) -> u32 {
        self.labels[id.index()]
    }

    /// `true` when the two profiles are in the same cluster.
    pub fn same_entity(&self, a: ProfileId, b: ProfileId) -> bool {
        self.labels[a.index()] == self.labels[b.index()]
    }

    /// Materialize the clusters: cluster id → sorted member list, sorted by
    /// cluster id. Includes singletons.
    pub fn clusters(&self) -> Vec<(u32, Vec<ProfileId>)> {
        let mut map: HashMap<u32, Vec<ProfileId>> = HashMap::new();
        for (i, &l) in self.labels.iter().enumerate() {
            map.entry(l).or_default().push(ProfileId(i as u32));
        }
        let mut out: Vec<(u32, Vec<ProfileId>)> = map.into_iter().collect();
        out.sort_by_key(|(l, _)| *l);
        out
    }

    /// Clusters with ≥ 2 members (the discovered duplicates).
    pub fn non_trivial_clusters(&self) -> Vec<(u32, Vec<ProfileId>)> {
        self.clusters()
            .into_iter()
            .filter(|(_, m)| m.len() > 1)
            .collect()
    }

    /// Number of clusters (including singletons).
    pub fn num_clusters(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.labels.iter().for_each(|l| {
            seen.insert(*l);
        });
        seen.len()
    }

    /// All intra-cluster pairs — the matches this clustering *asserts*.
    /// Cluster-level evaluation compares these against the ground truth.
    pub fn asserted_pairs(&self) -> Vec<Pair> {
        let mut out = Vec::new();
        for (_, members) in self.non_trivial_clusters() {
            for i in 0..members.len() {
                for j in i + 1..members.len() {
                    out.push(Pair::new(members[i], members[j]));
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_labels() {
        // Labels 7 and 9 map to min-member ids 0 and 2.
        let c = EntityClusters::from_labels(vec![7, 7, 9, 9, 9]);
        assert_eq!(c.cluster_of(ProfileId(0)), 0);
        assert_eq!(c.cluster_of(ProfileId(4)), 2);
        assert!(c.same_entity(ProfileId(2), ProfileId(3)));
        assert!(!c.same_entity(ProfileId(0), ProfileId(2)));
    }

    #[test]
    fn cluster_listing_and_counts() {
        let c = EntityClusters::from_labels(vec![0, 0, 2, 3]);
        assert_eq!(c.num_profiles(), 4);
        assert_eq!(c.num_clusters(), 3);
        let clusters = c.clusters();
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0].1, vec![ProfileId(0), ProfileId(1)]);
        assert_eq!(c.non_trivial_clusters().len(), 1);
    }

    #[test]
    fn asserted_pairs_cover_cluster_cliques() {
        let c = EntityClusters::from_labels(vec![0, 0, 0, 3]);
        assert_eq!(
            c.asserted_pairs(),
            vec![
                Pair::new(ProfileId(0), ProfileId(1)),
                Pair::new(ProfileId(0), ProfileId(2)),
                Pair::new(ProfileId(1), ProfileId(2)),
            ]
        );
    }

    #[test]
    fn equal_partitions_compare_equal() {
        let a = EntityClusters::from_labels(vec![5, 5, 1]);
        let b = EntityClusters::from_labels(vec![9, 9, 4]);
        assert_eq!(a, b);
    }
}
