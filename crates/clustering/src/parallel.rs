//! Connected components on the persistent worker pool: per-worker local
//! forests merged by [`UnionFind::absorb`].
//!
//! The dataflow label-propagation form
//! ([`crate::connected_components_dataflow`]) mirrors GraphX and runs
//! O(diameter) supersteps, re-shuffling every label each round. This module
//! is the single-pass alternative the pipeline uses: each worker unions its
//! edge morsels into a private [`UnionFind`] forest (no shared state, no
//! locks), and the per-slot forests are absorbed sequentially afterwards.
//! Union–find is a semilattice, so the final partition is independent of
//! both the edge partitioning and the absorb order — the result is
//! byte-identical to the sequential [`crate::connected_components`] at any
//! worker count (pinned by proptests).

use crate::algorithms::labels_from_unionfind;
use crate::clusters::EntityClusters;
use crate::unionfind::UnionFind;
use sparker_dataflow::{Context, WorkerLocal};
use sparker_profiles::Pair;
use std::sync::Arc;

/// Pool-parallel connected components over weighted matching pairs.
///
/// Scores are ignored (any retained edge joins its endpoints), matching
/// [`crate::connected_components`]. Edges are split into morsels claimed
/// dynamically by the pool; each worker slot owns a private forest, so the
/// union pass is allocation- and contention-free. The sequential absorb of
/// the per-slot forests is O(workers × profiles) with near-unit union cost.
///
/// ```
/// use sparker_dataflow::Context;
/// use sparker_profiles::{Pair, ProfileId};
/// use sparker_clustering::{connected_components, connected_components_pool};
///
/// let edges = vec![
///     (Pair::new(ProfileId(0), ProfileId(1)), 0.9),
///     (Pair::new(ProfileId(1), ProfileId(2)), 0.8),
/// ];
/// let ctx = Context::new(4);
/// let pool = connected_components_pool(&ctx, &edges, 5);
/// assert_eq!(pool, connected_components(&edges, 5));
/// ```
pub fn connected_components_pool(
    ctx: &Context,
    edges: &[(Pair, f64)],
    num_profiles: usize,
) -> EntityClusters {
    let forests = Arc::new(WorkerLocal::new(ctx.workers(), || {
        UnionFind::new(num_profiles)
    }));
    let pairs: Vec<Pair> = edges.iter().map(|(p, _)| *p).collect();
    let grain = (pairs.len() / (ctx.workers() * 32)).max(1);
    let locals = Arc::clone(&forests);
    ctx.parallelize_default(pairs).map_morsels_named(
        "cluster_components",
        grain,
        move |worker, chunk| {
            locals.with(worker, |uf| {
                for p in chunk {
                    uf.union(p.first.index(), p.second.index());
                }
            });
            Vec::<()>::new()
        },
    );
    let forests = Arc::try_unwrap(forests)
        .expect("stage closures are dropped before the merge")
        .into_inner();
    let mut merged = UnionFind::new(num_profiles);
    for forest in &forests {
        merged.absorb(forest);
    }
    labels_from_unionfind(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::connected_components;
    use sparker_profiles::ProfileId;

    fn edge(a: u32, b: u32) -> (Pair, f64) {
        (Pair::new(ProfileId(a), ProfileId(b)), 1.0)
    }

    #[test]
    fn matches_sequential_at_any_worker_count() {
        let edges: Vec<(Pair, f64)> = (0..40).map(|i| edge(i, (i * 7 + 3) % 50)).collect();
        let seq = connected_components(&edges, 50);
        for workers in [1, 2, 4, 8] {
            let ctx = Context::new(workers);
            assert_eq!(
                connected_components_pool(&ctx, &edges, 50),
                seq,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn empty_inputs() {
        let ctx = Context::new(2);
        assert_eq!(connected_components_pool(&ctx, &[], 4).num_clusters(), 4);
        assert_eq!(connected_components_pool(&ctx, &[], 0).num_profiles(), 0);
    }

    #[test]
    fn records_its_own_stage() {
        let ctx = Context::new(2);
        ctx.reset_metrics();
        connected_components_pool(&ctx, &[edge(0, 1)], 3);
        let snap = ctx.metrics();
        assert!(
            snap.stages.iter().any(|s| s.name == "cluster_components"),
            "expected a cluster_components stage, got {:?}",
            snap.stages
                .iter()
                .map(|s| s.name.clone())
                .collect::<Vec<_>>()
        );
    }
}
