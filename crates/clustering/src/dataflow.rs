//! Connected components as iterative label propagation on the dataflow
//! engine — the shape of Spark GraphX's `connectedComponents`, which the
//! paper's entity clusterer calls (footnote 3).

use crate::clusters::EntityClusters;
use sparker_dataflow::Context;
use sparker_profiles::Pair;

/// Distributed connected components: every node repeatedly adopts the
/// minimum label in its neighborhood until a fixed point — exactly the
/// GraphX Pregel formulation. Result equals
/// [`crate::connected_components`] (asserted by tests).
///
/// Runs in O(graph diameter) supersteps; each superstep is a join plus a
/// `reduce_by_key(min)` on the engine.
pub fn connected_components_dataflow(
    ctx: &Context,
    edges: &[(Pair, f64)],
    num_profiles: usize,
) -> EntityClusters {
    if num_profiles == 0 {
        return EntityClusters::from_labels(Vec::new());
    }

    // Symmetric edge list (node -> neighbor).
    let mut sym: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
    for (p, _) in edges {
        sym.push((p.first.0, p.second.0));
        sym.push((p.second.0, p.first.0));
    }
    let edges_ds = ctx.parallelize_default(sym);

    // Initial labels: every node is its own component.
    let mut labels =
        ctx.parallelize_default((0..num_profiles as u32).map(|i| (i, i)).collect::<Vec<_>>());
    let mut current: Vec<u32> = (0..num_profiles as u32).collect();

    loop {
        // Each node offers its label to its neighbors… (`join` consumes its
        // input, and the edge list is reused every superstep, so clone the
        // handle — partition `Arc` bumps, no data copy.)
        let offers = edges_ds
            .clone()
            .join(&labels)
            .map(|(_, (neighbor, label))| (*neighbor, *label));
        // …and keeps the minimum of its own label and all offers.
        let next = labels.union(&offers).reduce_by_key(|a, b| a.min(*b));

        let mut snapshot = vec![u32::MAX; num_profiles];
        for (node, label) in next.collect() {
            snapshot[node as usize] = label;
        }
        // Nodes can only appear once per superstep; sanity-check coverage.
        debug_assert!(snapshot.iter().all(|&l| l != u32::MAX));

        if snapshot == current {
            break;
        }
        current = snapshot;
        labels = ctx.parallelize_default(
            current
                .iter()
                .enumerate()
                .map(|(i, &l)| (i as u32, l))
                .collect::<Vec<_>>(),
        );
    }

    EntityClusters::from_labels(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::connected_components;
    use sparker_profiles::ProfileId;

    fn edge(a: u32, b: u32) -> (Pair, f64) {
        (Pair::new(ProfileId(a), ProfileId(b)), 1.0)
    }

    #[test]
    fn matches_sequential_on_chain() {
        let edges: Vec<(Pair, f64)> = (0..9).map(|i| edge(i, i + 1)).collect();
        let ctx = Context::new(4);
        let par = connected_components_dataflow(&ctx, &edges, 12);
        let seq = connected_components(&edges, 12);
        assert_eq!(par, seq);
        assert_eq!(par.num_clusters(), 3); // chain 0..=9 plus singletons 10, 11
    }

    #[test]
    fn matches_sequential_on_random_graph() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 200u32;
        let edges: Vec<(Pair, f64)> = (0..300)
            .map(|_| {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                edge(a, b)
            })
            .collect();
        let ctx = Context::new(4);
        assert_eq!(
            connected_components_dataflow(&ctx, &edges, n as usize),
            connected_components(&edges, n as usize)
        );
    }

    #[test]
    fn empty_graph() {
        let ctx = Context::new(2);
        let c = connected_components_dataflow(&ctx, &[], 5);
        assert_eq!(c.num_clusters(), 5);
        let c0 = connected_components_dataflow(&ctx, &[], 0);
        assert_eq!(c0.num_profiles(), 0);
    }

    #[test]
    fn worker_count_invariant() {
        let edges = vec![edge(0, 1), edge(1, 2), edge(5, 6)];
        let base = connected_components_dataflow(&Context::new(1), &edges, 8);
        for w in [2, 4] {
            assert_eq!(
                connected_components_dataflow(&Context::new(w), &edges, 8),
                base
            );
        }
    }
}
