//! Entity clustering algorithms over the similarity graph.
//!
//! All algorithms consume weighted matching pairs (`(Pair, score)`) and the
//! number of profiles, and return an [`EntityClusters`] partition. Edges are
//! processed in descending score order with pair-id tie-breaking, so every
//! algorithm is deterministic.

use crate::clusters::EntityClusters;
use crate::unionfind::UnionFind;
use sparker_profiles::Pair;
#[cfg(test)]
use sparker_profiles::ProfileId;

fn sorted_edges(edges: &[(Pair, f64)]) -> Vec<(Pair, f64)> {
    assert!(
        edges.iter().all(|(_, s)| !s.is_nan()),
        "similarity scores must not be NaN"
    );
    let mut e: Vec<(Pair, f64)> = edges.to_vec();
    e.sort_by(|(pa, sa), (pb, sb)| {
        sb.partial_cmp(sa)
            .expect("NaN checked above")
            .then_with(|| pa.cmp(pb))
    });
    e
}

pub(crate) fn labels_from_unionfind(mut uf: UnionFind) -> EntityClusters {
    EntityClusters::from_labels(uf.labels().into_iter().map(|l| l as u32).collect())
}

/// Connected components — the paper's default entity clusterer ("based on
/// the assumption of transitivity, i.e., if p1 matches with p2, p2 matches
/// with p3, then p1 matches with p3").
///
/// Scores are ignored: any retained matching edge joins its endpoints.
pub fn connected_components(edges: &[(Pair, f64)], num_profiles: usize) -> EntityClusters {
    let mut uf = UnionFind::new(num_profiles);
    for (pair, _) in edges {
        uf.union(pair.first.index(), pair.second.index());
    }
    labels_from_unionfind(uf)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum NodeState {
    Unassigned,
    Center,
    Child(u32), // holds the center's profile id
}

/// Center clustering (Hassanzadeh et al.): scan edges by descending
/// similarity; the first endpoint of an edge between two unassigned nodes
/// becomes a cluster *center*, the other its member; later edges can only
/// attach unassigned nodes to existing centers. Produces star-shaped
/// clusters and avoids the chaining effect of connected components.
pub fn center_clustering(edges: &[(Pair, f64)], num_profiles: usize) -> EntityClusters {
    let mut state = vec![NodeState::Unassigned; num_profiles];
    let mut uf = UnionFind::new(num_profiles);
    for (pair, _) in sorted_edges(edges) {
        let (a, b) = (pair.first.index(), pair.second.index());
        match (state[a], state[b]) {
            (NodeState::Unassigned, NodeState::Unassigned) => {
                state[a] = NodeState::Center;
                state[b] = NodeState::Child(pair.first.0);
                uf.union(a, b);
            }
            (NodeState::Center, NodeState::Unassigned) => {
                state[b] = NodeState::Child(pair.first.0);
                uf.union(a, b);
            }
            (NodeState::Unassigned, NodeState::Center) => {
                state[a] = NodeState::Child(pair.second.0);
                uf.union(a, b);
            }
            _ => {} // center–center, child–anything: ignored
        }
    }
    labels_from_unionfind(uf)
}

/// Merge–center clustering (Hassanzadeh et al.): like center clustering,
/// but when an edge connects a node already in a cluster to a *center* of
/// another cluster, the two clusters are merged. Less fragmenting than
/// center, less chaining than connected components.
pub fn merge_center_clustering(edges: &[(Pair, f64)], num_profiles: usize) -> EntityClusters {
    let mut state = vec![NodeState::Unassigned; num_profiles];
    let mut uf = UnionFind::new(num_profiles);
    for (pair, _) in sorted_edges(edges) {
        let (a, b) = (pair.first.index(), pair.second.index());
        match (state[a], state[b]) {
            (NodeState::Unassigned, NodeState::Unassigned) => {
                state[a] = NodeState::Center;
                state[b] = NodeState::Child(pair.first.0);
                uf.union(a, b);
            }
            (NodeState::Center, NodeState::Unassigned) => {
                state[b] = NodeState::Child(pair.first.0);
                uf.union(a, b);
            }
            (NodeState::Unassigned, NodeState::Center) => {
                state[a] = NodeState::Child(pair.second.0);
                uf.union(a, b);
            }
            // Merge step: a settled node touching a foreign center pulls the
            // clusters together.
            (NodeState::Child(_), NodeState::Center) | (NodeState::Center, NodeState::Child(_)) => {
                uf.union(a, b);
            }
            (NodeState::Center, NodeState::Center) => {
                uf.union(a, b);
            }
            _ => {}
        }
    }
    labels_from_unionfind(uf)
}

/// Star clustering (Hassanzadeh et al.): nodes are visited in descending
/// order of *degree* (tie-broken by id); an unassigned node becomes a star
/// center and absorbs all its still-unassigned neighbors. Produces compact,
/// hub-shaped clusters; unlike [`center_clustering`] the scan is
/// node-driven, so a well-connected node claims its whole neighborhood at
/// once.
pub fn star_clustering(edges: &[(Pair, f64)], num_profiles: usize) -> EntityClusters {
    assert!(
        edges.iter().all(|(_, s)| !s.is_nan()),
        "similarity scores must not be NaN"
    );
    // Weighted adjacency (max weight per neighbor).
    let mut adjacency: Vec<Vec<(u32, f64)>> = vec![Vec::new(); num_profiles];
    for (pair, w) in edges {
        adjacency[pair.first.index()].push((pair.second.0, *w));
        adjacency[pair.second.index()].push((pair.first.0, *w));
    }
    for neighbors in &mut adjacency {
        neighbors.sort_by(|(na, wa), (nb, wb)| {
            na.cmp(nb)
                .then(wb.partial_cmp(wa).expect("NaN checked above"))
        });
        neighbors.dedup_by_key(|(n, _)| *n); // keeps the max weight per neighbor
    }

    // Phase 1: greedy center selection by descending degree. A node becomes
    // a center unless it is already covered by an earlier center.
    let mut order: Vec<usize> = (0..num_profiles).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(adjacency[i].len()), i));
    let mut is_center = vec![false; num_profiles];
    let mut covered = vec![false; num_profiles];
    for v in order {
        if covered[v] || adjacency[v].is_empty() {
            continue;
        }
        is_center[v] = true;
        covered[v] = true;
        for &(n, _) in &adjacency[v] {
            covered[n as usize] = true;
        }
    }

    // Phase 2: every non-center joins its most similar adjacent center
    // (ties: smaller center id) — the framework's satellite assignment.
    let mut uf = UnionFind::new(num_profiles);
    for v in 0..num_profiles {
        if is_center[v] {
            continue;
        }
        let best = adjacency[v]
            .iter()
            .filter(|(n, _)| is_center[*n as usize])
            .max_by(|(na, wa), (nb, wb)| {
                wa.partial_cmp(wb)
                    .expect("NaN checked above")
                    .then(nb.cmp(na))
            });
        if let Some(&(center, _)) = best {
            uf.union(v, center as usize);
        }
    }
    labels_from_unionfind(uf)
}

/// Unique-mapping clustering: greedy maximum-weight one-to-one matching,
/// valid for clean–clean tasks where each source is duplicate-free (every
/// entity has at most one profile per source, so clusters have ≤ 2
/// members).
///
/// Edges must connect profiles of different sources (the blocker guarantees
/// this for clean–clean tasks); with `separator` = first id of source 1,
/// same-source edges are rejected with a panic, as accepting them would
/// silently violate the algorithm's contract.
pub fn unique_mapping_clustering(
    edges: &[(Pair, f64)],
    num_profiles: usize,
    separator: u32,
) -> EntityClusters {
    let mut used = vec![false; num_profiles];
    let mut uf = UnionFind::new(num_profiles);
    for (pair, _) in sorted_edges(edges) {
        assert!(
            (pair.first.0 < separator) != (pair.second.0 < separator),
            "unique-mapping clustering requires cross-source pairs, got {pair}"
        );
        let (a, b) = (pair.first.index(), pair.second.index());
        if !used[a] && !used[b] {
            used[a] = true;
            used[b] = true;
            uf.union(a, b);
        }
    }
    labels_from_unionfind(uf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    fn edge(a: u32, b: u32, s: f64) -> (Pair, f64) {
        (Pair::new(pid(a), pid(b)), s)
    }

    #[test]
    fn connected_components_transitivity() {
        let c = connected_components(&[edge(0, 1, 0.9), edge(1, 2, 0.5)], 4);
        assert!(c.same_entity(pid(0), pid(2)));
        assert!(!c.same_entity(pid(0), pid(3)));
        assert_eq!(c.num_clusters(), 2);
    }

    #[test]
    fn connected_components_no_edges_all_singletons() {
        let c = connected_components(&[], 3);
        assert_eq!(c.num_clusters(), 3);
        assert!(c.asserted_pairs().is_empty());
    }

    #[test]
    fn center_breaks_chains() {
        // Chain 0-1-2 with strong then weak edges: center clustering makes 0
        // the center of {0,1}; edge (1,2) connects a child to an unassigned
        // node, so 2 stays out (later becoming nothing — singleton).
        let c = center_clustering(&[edge(0, 1, 0.9), edge(1, 2, 0.8)], 3);
        assert!(c.same_entity(pid(0), pid(1)));
        assert!(!c.same_entity(pid(1), pid(2)));
    }

    #[test]
    fn center_attaches_to_existing_center() {
        let c = center_clustering(&[edge(0, 1, 0.9), edge(0, 2, 0.8)], 3);
        assert!(c.same_entity(pid(0), pid(1)));
        assert!(c.same_entity(pid(0), pid(2)));
    }

    #[test]
    fn merge_center_merges_via_shared_child() {
        // {0,1} forms with center 0; {2,3} forms with center 2; then an edge
        // from child 1 to center 2 merges the clusters.
        let c = merge_center_clustering(&[edge(0, 1, 0.9), edge(2, 3, 0.85), edge(1, 2, 0.8)], 4);
        assert!(c.same_entity(pid(0), pid(3)));
        assert_eq!(c.num_clusters(), 1);
        // Plain center clustering keeps them apart.
        let c2 = center_clustering(&[edge(0, 1, 0.9), edge(2, 3, 0.85), edge(1, 2, 0.8)], 4);
        assert!(!c2.same_entity(pid(0), pid(3)));
    }

    #[test]
    fn unique_mapping_is_one_to_one() {
        // Source 0 = {0,1}, source 1 = {2,3} (separator 2). Profile 0 is
        // similar to both 2 and 3; it must claim only the best (3).
        let c =
            unique_mapping_clustering(&[edge(0, 3, 0.95), edge(0, 2, 0.9), edge(1, 2, 0.8)], 4, 2);
        assert!(c.same_entity(pid(0), pid(3)));
        assert!(c.same_entity(pid(1), pid(2)));
        assert!(!c.same_entity(pid(0), pid(2)));
    }

    #[test]
    #[should_panic(expected = "cross-source")]
    fn unique_mapping_rejects_same_source_edges() {
        unique_mapping_clustering(&[edge(0, 1, 0.9)], 4, 2);
    }

    #[test]
    fn deterministic_under_tie_scores() {
        let edges = vec![edge(0, 1, 0.5), edge(2, 3, 0.5), edge(1, 2, 0.5)];
        let a = center_clustering(&edges, 4);
        let mut rev = edges.clone();
        rev.reverse();
        let b = center_clustering(&rev, 4);
        assert_eq!(a, b, "input order must not matter");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_rejected() {
        center_clustering(&[edge(0, 1, f64::NAN)], 2);
    }

    #[test]
    fn star_clustering_hub_claims_neighborhood() {
        // Node 0 (degree 3) stars first, covering 1, 2, 3; node 4 is left
        // uncovered and stars too. Satellite 3 then joins its most similar
        // center — 4 (0.95) over 0 (0.7) — and the chain 0…4 that connected
        // components would build is broken into two stars.
        let edges = vec![
            edge(0, 1, 0.9),
            edge(0, 2, 0.8),
            edge(0, 3, 0.7),
            edge(3, 4, 0.95),
        ];
        let c = star_clustering(&edges, 5);
        assert!(c.same_entity(pid(0), pid(1)));
        assert!(c.same_entity(pid(0), pid(2)));
        assert!(c.same_entity(pid(3), pid(4)), "3 joins its closest center");
        assert!(!c.same_entity(pid(0), pid(3)), "chain broken between stars");
        // Connected components would chain all five together.
        assert!(connected_components(&edges, 5).same_entity(pid(0), pid(4)));
    }

    #[test]
    fn star_satellites_join_most_similar_center() {
        // Two centers 0 and 5 (degree 2 each); satellite 2 is adjacent to
        // both and must join the more similar center 5.
        let edges = vec![
            edge(0, 1, 0.9),
            edge(0, 2, 0.3),
            edge(5, 2, 0.8),
            edge(5, 6, 0.9),
        ];
        let c = star_clustering(&edges, 7);
        assert!(c.same_entity(pid(2), pid(5)), "2 joins the closer center");
        assert!(!c.same_entity(pid(2), pid(0)));
    }

    #[test]
    fn star_clustering_isolated_nodes_are_singletons() {
        let c = star_clustering(&[edge(0, 1, 0.5)], 4);
        assert_eq!(c.num_clusters(), 3);
        assert!(c.same_entity(pid(0), pid(1)));
    }

    #[test]
    fn star_clustering_deterministic() {
        let edges = vec![edge(0, 1, 0.5), edge(1, 2, 0.5), edge(2, 3, 0.5)];
        let mut rev = edges.clone();
        rev.reverse();
        assert_eq!(star_clustering(&edges, 4), star_clustering(&rev, 4));
    }

    #[test]
    fn all_algorithms_agree_on_clean_pairs() {
        // Two well-separated duplicates: every algorithm finds the same
        // clustering.
        let edges = vec![edge(0, 2, 0.9), edge(1, 3, 0.8)];
        let cc = connected_components(&edges, 4);
        let ce = center_clustering(&edges, 4);
        let mc = merge_center_clustering(&edges, 4);
        let um = unique_mapping_clustering(&edges, 4, 2);
        let st = star_clustering(&edges, 4);
        assert_eq!(cc, ce);
        assert_eq!(cc, mc);
        assert_eq!(cc, um);
        assert_eq!(cc, st);
    }
}
