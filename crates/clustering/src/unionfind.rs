//! Disjoint-set forest with path halving and union by size.

/// A union–find (disjoint-set) structure over dense `usize` ids.
///
/// Used by connected-components clustering here and by the transitive
/// closure of Blast's attribute partitioning in `sparker-looseschema`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets `{0}, {1}, …, {n-1}`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x;
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of `x`'s set.
    pub fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }

    /// Extend the element universe to `n` elements, the new ones as
    /// singletons. No-op when the forest already covers `n`.
    ///
    /// This is what keeps a *live* forest usable across online inserts:
    /// profile `n` arrives, the forest grows by one singleton, and later
    /// unions or absorbs connect it.
    pub fn grow(&mut self, n: usize) {
        if n <= self.len() {
            return;
        }
        let added = n - self.len();
        self.parent.extend(self.len()..n);
        self.size.resize(n, 1);
        self.components += added;
    }

    /// Merge another forest into this one: every union recorded in `other`
    /// is replayed here, so afterwards two elements are connected iff they
    /// were connected in either forest.
    ///
    /// The two universes need not match: a smaller `other` (a delta forest
    /// built before this one grew) merges over the shared prefix, and a
    /// larger `other` first grows this forest. Because union–find is a
    /// semilattice (union is associative, commutative, idempotent), absorb
    /// is idempotent and order-independent over overlapping forests — the
    /// resulting partition, and hence [`UnionFind::labels`], depends only
    /// on the set of unions ever recorded. The batch clusterer absorbs
    /// disjoint per-worker shards once; the online resolver re-absorbs
    /// overlapping delta forests after every operation, which is why these
    /// algebraic properties are pinned by proptest.
    pub fn absorb(&mut self, other: &UnionFind) {
        self.grow(other.len());
        for (i, &p) in other.parent.iter().enumerate() {
            if p != i {
                self.union(i, p);
            }
        }
    }

    /// Canonical label per element: the *minimum element id* of its set.
    /// Stable across different union orders, so results are reproducible.
    pub fn labels(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut min_of_root = vec![usize::MAX; n];
        for x in 0..n {
            let r = self.find(x);
            min_of_root[r] = min_of_root[r].min(x);
        }
        (0..n).map(|x| min_of_root[self.find(x)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.size_of(2), 1);
        assert_eq!(uf.len(), 4);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.size_of(1), 3);
    }

    #[test]
    fn labels_are_min_element_of_component() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(2, 5);
        uf.union(0, 1);
        assert_eq!(uf.labels(), vec![0, 0, 2, 3, 2, 2]);
    }

    #[test]
    fn labels_independent_of_union_order() {
        let mut a = UnionFind::new(5);
        a.union(0, 4);
        a.union(4, 2);
        let mut b = UnionFind::new(5);
        b.union(2, 4);
        b.union(4, 0);
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
        assert!(uf.labels().is_empty());
    }

    #[test]
    fn absorb_replays_unions() {
        let mut a = UnionFind::new(6);
        a.union(0, 1);
        a.union(4, 5);
        let mut b = UnionFind::new(6);
        b.union(1, 2);
        b.union(3, 4);
        a.absorb(&b);
        let mut single = UnionFind::new(6);
        for (x, y) in [(0, 1), (4, 5), (1, 2), (3, 4)] {
            single.union(x, y);
        }
        assert_eq!(a.labels(), single.labels());
        assert_eq!(a.num_components(), 2);
    }

    #[test]
    fn absorb_is_order_independent() {
        let shards: [&[(usize, usize)]; 3] = [&[(0, 1), (2, 3)], &[(1, 2)], &[(5, 6)]];
        let build = |order: &[usize]| {
            let mut acc = UnionFind::new(8);
            for &i in order {
                let mut f = UnionFind::new(8);
                for &(x, y) in shards[i] {
                    f.union(x, y);
                }
                acc.absorb(&f);
            }
            acc.labels()
        };
        assert_eq!(build(&[0, 1, 2]), build(&[2, 1, 0]));
        assert_eq!(build(&[0, 1, 2]), build(&[1, 0, 2]));
    }

    #[test]
    fn absorb_empty_forest_is_identity() {
        let mut a = UnionFind::new(4);
        a.union(0, 3);
        let before = a.clone().labels();
        a.absorb(&UnionFind::new(4));
        assert_eq!(a.labels(), before);
    }

    #[test]
    fn grow_adds_singletons() {
        let mut uf = UnionFind::new(2);
        uf.union(0, 1);
        uf.grow(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.num_components(), 4);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(1, 2));
        uf.grow(3); // shrinking is a no-op
        assert_eq!(uf.len(), 5);
    }

    #[test]
    fn absorb_smaller_forest_merges_shared_prefix() {
        let mut live = UnionFind::new(6);
        live.union(4, 5);
        let mut delta = UnionFind::new(4); // built before the forest grew
        delta.union(0, 2);
        live.absorb(&delta);
        assert_eq!(live.len(), 6);
        assert!(live.connected(0, 2));
        assert!(live.connected(4, 5));
        assert_eq!(live.num_components(), 4);
    }

    #[test]
    fn absorb_larger_forest_grows_first() {
        let mut a = UnionFind::new(2);
        a.union(0, 1);
        let mut b = UnionFind::new(5);
        b.union(2, 4);
        a.absorb(&b);
        assert_eq!(a.len(), 5);
        assert!(a.connected(2, 4));
        assert!(a.connected(0, 1));
    }

    #[test]
    fn absorb_is_idempotent_on_overlapping_forests() {
        let mut b = UnionFind::new(5);
        b.union(0, 1);
        b.union(1, 3);
        let mut once = UnionFind::new(5);
        once.union(1, 2);
        once.absorb(&b);
        let mut twice = once.clone();
        twice.absorb(&b);
        twice.absorb(&b);
        assert_eq!(once.labels(), twice.labels());
        assert_eq!(once.num_components(), twice.num_components());
    }

    #[test]
    fn long_chain_path_halving() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert_eq!(uf.find(n - 1), uf.find(0));
        assert_eq!(uf.size_of(0), n);
    }
}
