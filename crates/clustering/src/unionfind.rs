//! Disjoint-set forest with path halving and union by size.

/// A union–find (disjoint-set) structure over dense `usize` ids.
///
/// Used by connected-components clustering here and by the transitive
/// closure of Blast's attribute partitioning in `sparker-looseschema`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets `{0}, {1}, …, {n-1}`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x;
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of `x`'s set.
    pub fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }

    /// Merge another forest over the *same* element universe into this one:
    /// every union recorded in `other` is replayed here, so afterwards two
    /// elements are connected iff they were connected in either forest.
    ///
    /// This is the merge step of parallel connected components: workers
    /// build independent forests over disjoint edge shards, then the shards
    /// are absorbed sequentially. Because union–find is a semilattice
    /// (union is associative, commutative, idempotent), the resulting
    /// partition — and hence [`UnionFind::labels`] — is independent of the
    /// edge partitioning and the absorb order.
    pub fn absorb(&mut self, other: &UnionFind) {
        assert_eq!(
            self.len(),
            other.len(),
            "absorb requires forests over the same element universe"
        );
        for (i, &p) in other.parent.iter().enumerate() {
            if p != i {
                self.union(i, p);
            }
        }
    }

    /// Canonical label per element: the *minimum element id* of its set.
    /// Stable across different union orders, so results are reproducible.
    pub fn labels(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut min_of_root = vec![usize::MAX; n];
        for x in 0..n {
            let r = self.find(x);
            min_of_root[r] = min_of_root[r].min(x);
        }
        (0..n).map(|x| min_of_root[self.find(x)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.size_of(2), 1);
        assert_eq!(uf.len(), 4);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.size_of(1), 3);
    }

    #[test]
    fn labels_are_min_element_of_component() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(2, 5);
        uf.union(0, 1);
        assert_eq!(uf.labels(), vec![0, 0, 2, 3, 2, 2]);
    }

    #[test]
    fn labels_independent_of_union_order() {
        let mut a = UnionFind::new(5);
        a.union(0, 4);
        a.union(4, 2);
        let mut b = UnionFind::new(5);
        b.union(2, 4);
        b.union(4, 0);
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
        assert!(uf.labels().is_empty());
    }

    #[test]
    fn absorb_replays_unions() {
        let mut a = UnionFind::new(6);
        a.union(0, 1);
        a.union(4, 5);
        let mut b = UnionFind::new(6);
        b.union(1, 2);
        b.union(3, 4);
        a.absorb(&b);
        let mut single = UnionFind::new(6);
        for (x, y) in [(0, 1), (4, 5), (1, 2), (3, 4)] {
            single.union(x, y);
        }
        assert_eq!(a.labels(), single.labels());
        assert_eq!(a.num_components(), 2);
    }

    #[test]
    fn absorb_is_order_independent() {
        let shards: [&[(usize, usize)]; 3] = [&[(0, 1), (2, 3)], &[(1, 2)], &[(5, 6)]];
        let build = |order: &[usize]| {
            let mut acc = UnionFind::new(8);
            for &i in order {
                let mut f = UnionFind::new(8);
                for &(x, y) in shards[i] {
                    f.union(x, y);
                }
                acc.absorb(&f);
            }
            acc.labels()
        };
        assert_eq!(build(&[0, 1, 2]), build(&[2, 1, 0]));
        assert_eq!(build(&[0, 1, 2]), build(&[1, 0, 2]));
    }

    #[test]
    fn absorb_empty_forest_is_identity() {
        let mut a = UnionFind::new(4);
        a.union(0, 3);
        let before = a.clone().labels();
        a.absorb(&UnionFind::new(4));
        assert_eq!(a.labels(), before);
    }

    #[test]
    #[should_panic(expected = "same element universe")]
    fn absorb_rejects_mismatched_lengths() {
        UnionFind::new(3).absorb(&UnionFind::new(4));
    }

    #[test]
    fn long_chain_path_halving() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert_eq!(uf.find(n - 1), uf.find(0));
        assert_eq!(uf.size_of(0), n);
    }
}
