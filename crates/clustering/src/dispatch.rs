//! Algorithm selection and the single clustering dispatch.
//!
//! [`cluster_edges`] is the one place in the workspace where a
//! [`ClusteringAlgorithm`] is mapped to an implementation. Every pipeline
//! driver — sequential, dataflow, pool — goes through it; the only thing
//! that varies per execution backend is how connected components are
//! computed ([`ComponentsMode`]), because the alternative algorithms are
//! inherently sequential greedy scans and run on the driver, exactly as
//! they would in SparkER.

use crate::algorithms::{
    center_clustering, connected_components, merge_center_clustering, star_clustering,
    unique_mapping_clustering,
};
use crate::clusters::EntityClusters;
use crate::dataflow::connected_components_dataflow;
use crate::parallel::connected_components_pool;
use sparker_dataflow::Context;
use sparker_profiles::{ErKind, Pair};

/// Entity-clusterer algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusteringAlgorithm {
    /// The paper's default (GraphX connected components).
    ConnectedComponents,
    /// Center clustering (Hassanzadeh et al.).
    Center,
    /// Merge–center clustering.
    MergeCenter,
    /// Star clustering (degree-ordered hubs).
    Star,
    /// Unique-mapping (clean–clean only).
    UniqueMapping,
}

impl ClusteringAlgorithm {
    /// Every algorithm, in the stable order used by configuration parsing
    /// and experiment sweeps.
    pub const ALL: [ClusteringAlgorithm; 5] = [
        ClusteringAlgorithm::ConnectedComponents,
        ClusteringAlgorithm::Center,
        ClusteringAlgorithm::MergeCenter,
        ClusteringAlgorithm::Star,
        ClusteringAlgorithm::UniqueMapping,
    ];

    /// Stable name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ClusteringAlgorithm::ConnectedComponents => "connected-components",
            ClusteringAlgorithm::Center => "center",
            ClusteringAlgorithm::MergeCenter => "merge-center",
            ClusteringAlgorithm::Star => "star",
            ClusteringAlgorithm::UniqueMapping => "unique-mapping",
        }
    }
}

/// How connected components are computed — the only clustering stage with
/// per-backend implementations.
#[derive(Debug, Clone, Copy)]
pub enum ComponentsMode<'a> {
    /// Driver-side union–find.
    Sequential,
    /// Label propagation on the dataflow engine (the GraphX path).
    Dataflow(&'a Context),
    /// Per-worker union–find forests on the persistent pool, merged via
    /// the semilattice `absorb`.
    Pool(&'a Context),
}

/// Properties of the profile collection the clusterer needs: its size, its
/// ER kind (unique-mapping is only valid for clean–clean tasks) and the
/// clean–clean source separator.
#[derive(Debug, Clone, Copy)]
pub struct CollectionShape {
    /// Number of profiles (cluster id space).
    pub num_profiles: usize,
    /// Dirty or clean–clean.
    pub kind: ErKind,
    /// First profile id of the second source (clean–clean); equals
    /// `num_profiles` for dirty tasks.
    pub separator: u32,
}

/// Cluster a similarity graph with the selected algorithm.
///
/// This is the *single* algorithm dispatch of the workspace: all three
/// execution backends call it, differing only in the [`ComponentsMode`]
/// they pass for connected components.
///
/// # Panics
///
/// [`ClusteringAlgorithm::UniqueMapping`] panics on a dirty collection —
/// it is only defined for clean–clean tasks.
pub fn cluster_edges(
    algorithm: ClusteringAlgorithm,
    mode: ComponentsMode<'_>,
    edges: &[(Pair, f64)],
    shape: CollectionShape,
) -> EntityClusters {
    let n = shape.num_profiles;
    match algorithm {
        ClusteringAlgorithm::ConnectedComponents => match mode {
            ComponentsMode::Sequential => connected_components(edges, n),
            ComponentsMode::Dataflow(ctx) => connected_components_dataflow(ctx, edges, n),
            ComponentsMode::Pool(ctx) => connected_components_pool(ctx, edges, n),
        },
        ClusteringAlgorithm::Center => center_clustering(edges, n),
        ClusteringAlgorithm::MergeCenter => merge_center_clustering(edges, n),
        ClusteringAlgorithm::Star => star_clustering(edges, n),
        ClusteringAlgorithm::UniqueMapping => {
            assert_eq!(
                shape.kind,
                ErKind::CleanClean,
                "unique-mapping clustering requires a clean-clean task"
            );
            unique_mapping_clustering(edges, n, shape.separator)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::ProfileId;

    fn edges() -> Vec<(Pair, f64)> {
        vec![
            (Pair::new(ProfileId(0), ProfileId(2)), 0.9),
            (Pair::new(ProfileId(1), ProfileId(3)), 0.8),
        ]
    }

    fn shape() -> CollectionShape {
        CollectionShape {
            num_profiles: 4,
            kind: ErKind::CleanClean,
            separator: 2,
        }
    }

    #[test]
    fn every_algorithm_dispatches() {
        for algorithm in ClusteringAlgorithm::ALL {
            let clusters = cluster_edges(algorithm, ComponentsMode::Sequential, &edges(), shape());
            assert_eq!(
                clusters.cluster_of(ProfileId(0)),
                clusters.cluster_of(ProfileId(2)),
                "{}",
                algorithm.name()
            );
        }
    }

    #[test]
    fn components_modes_agree() {
        let ctx = Context::new(2);
        let sequential = cluster_edges(
            ClusteringAlgorithm::ConnectedComponents,
            ComponentsMode::Sequential,
            &edges(),
            shape(),
        );
        for mode in [ComponentsMode::Dataflow(&ctx), ComponentsMode::Pool(&ctx)] {
            assert_eq!(
                sequential,
                cluster_edges(
                    ClusteringAlgorithm::ConnectedComponents,
                    mode,
                    &edges(),
                    shape()
                )
            );
        }
    }

    #[test]
    #[should_panic(expected = "clean-clean")]
    fn unique_mapping_rejects_dirty() {
        let dirty = CollectionShape {
            kind: ErKind::Dirty,
            separator: 4,
            ..shape()
        };
        cluster_edges(
            ClusteringAlgorithm::UniqueMapping,
            ComponentsMode::Sequential,
            &edges(),
            dirty,
        );
    }
}
