//! # sparker-clustering
//!
//! SparkER's entity clusterer: partition the similarity graph produced by
//! the entity matcher into equivalence clusters, one per real-world entity.
//!
//! The paper's tool uses connected components ("based on the assumption of
//! transitivity", implemented on Spark GraphX); this crate provides that
//! algorithm in both a sequential union–find form and a dataflow
//! label-propagation form mirroring GraphX, plus the alternative clustering
//! algorithms from the framework the paper cites (Hassanzadeh et al., VLDB
//! 2009): center clustering, merge–center clustering and unique-mapping
//! clustering (the latter only valid for clean–clean tasks).
//!
//! ```
//! use sparker_profiles::{Pair, ProfileId};
//! use sparker_clustering::connected_components;
//!
//! let edges = vec![
//!     (Pair::new(ProfileId(0), ProfileId(1)), 0.9),
//!     (Pair::new(ProfileId(1), ProfileId(2)), 0.8),
//!     (Pair::new(ProfileId(5), ProfileId(6)), 0.7),
//! ];
//! let clusters = connected_components(&edges, 8);
//! assert_eq!(clusters.cluster_of(ProfileId(0)), clusters.cluster_of(ProfileId(2)));
//! assert_ne!(clusters.cluster_of(ProfileId(0)), clusters.cluster_of(ProfileId(5)));
//! ```

mod algorithms;
mod clusters;
mod dataflow;
mod dispatch;
mod parallel;
mod unionfind;

pub use algorithms::{
    center_clustering, connected_components, merge_center_clustering, star_clustering,
    unique_mapping_clustering,
};
pub use clusters::EntityClusters;
pub use dataflow::connected_components_dataflow;
pub use dispatch::{cluster_edges, ClusteringAlgorithm, CollectionShape, ComponentsMode};
pub use parallel::connected_components_pool;
pub use unionfind::UnionFind;
