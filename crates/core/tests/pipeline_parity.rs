//! Backend-matrix parity suite, driven through the *unified* driver.
//!
//! Every cell of `backend ∈ {Sequential, Dataflow(w), Pool(w),
//! FusedPool(w)} × {CleanClean, Dirty} × {default, blast} × workers ∈
//! {1, 2, 8}` must be *indistinguishable* from the sequential reference
//! run: identical candidate sets, identical similarity graphs, identical
//! entity clusters, identical evaluations. One helper asserts the whole
//! matrix — there is no per-driver test copy anywhere else.

use proptest::prelude::*;
use sparker_core::{
    BlockingConfig, ClusteringAlgorithm, ExecutionBackend, Pipeline, PipelineConfig, PipelineResult,
};
use sparker_datasets::{generate, generate_dirty, DatasetConfig, GeneratedDataset, ZipfSkew};

const WORKERS: [usize; 3] = [1, 2, 8];

fn clean_dataset(entities: usize, seed: u64, skewed: bool) -> GeneratedDataset {
    generate(&DatasetConfig {
        entities,
        unmatched_per_source: entities / 4,
        seed,
        skew: skewed.then(ZipfSkew::default),
        ..DatasetConfig::default()
    })
}

fn dirty_dataset(entities: usize, seed: u64, skewed: bool) -> GeneratedDataset {
    generate_dirty(
        &DatasetConfig {
            entities,
            seed,
            skew: skewed.then(ZipfSkew::default),
            ..DatasetConfig::default()
        },
        2,
    )
}

fn config_with(algorithm: ClusteringAlgorithm) -> PipelineConfig {
    PipelineConfig {
        clustering: algorithm,
        ..PipelineConfig::default()
    }
}

/// The engine-backed backends at one worker count.
fn engine_backends(workers: usize) -> [ExecutionBackend; 3] {
    [
        ExecutionBackend::dataflow(workers),
        ExecutionBackend::pool(workers),
        ExecutionBackend::fused(workers),
    ]
}

/// Every observable output of `run` equals the sequential reference's.
fn assert_equivalent(
    reference: &PipelineResult,
    run: &PipelineResult,
    ds: &GeneratedDataset,
    tag: &str,
) {
    assert_eq!(
        reference.blocker.candidates, run.blocker.candidates,
        "{tag}"
    );
    assert_eq!(reference.similarity, run.similarity, "{tag}");
    assert_eq!(reference.clusters, run.clusters, "{tag}");
    assert_eq!(
        reference.blocker.initial_blocks, run.blocker.initial_blocks,
        "{tag}"
    );
    assert_eq!(
        reference.blocker.cleaned_comparisons, run.blocker.cleaned_comparisons,
        "{tag}"
    );
    assert_eq!(
        reference.evaluate(&ds.ground_truth),
        run.evaluate(&ds.ground_truth),
        "{tag}"
    );
}

/// Run the full backend matrix for one pipeline on one dataset: the
/// sequential backend is the reference; dataflow and pool must match it
/// at 1, 2 and 8 workers.
fn assert_backend_matrix(pipeline: &Pipeline, ds: &GeneratedDataset) {
    let reference = pipeline.run_on(&ExecutionBackend::Sequential, &ds.collection);
    assert_eq!(reference.report.backend, "sequential");
    for workers in WORKERS {
        for backend in engine_backends(workers) {
            let run = pipeline.run_on(&backend, &ds.collection);
            let tag = format!("backend={} workers={workers}", backend.name());
            assert_eq!(run.report.backend, backend.name(), "{tag}");
            assert_eq!(run.report.workers, workers, "{tag}");
            assert_equivalent(&reference, &run, ds, &tag);
        }
    }
}

#[test]
fn backend_matrix_clean_clean_default_and_blast() {
    for skewed in [false, true] {
        let ds = clean_dataset(90, 11, skewed);
        for blocking in [BlockingConfig::default(), BlockingConfig::blast()] {
            let pipeline = Pipeline::new(PipelineConfig {
                blocking,
                ..PipelineConfig::default()
            });
            assert_backend_matrix(&pipeline, &ds);
        }
    }
}

#[test]
fn backend_matrix_dirty_default_and_blast() {
    for skewed in [false, true] {
        let ds = dirty_dataset(60, 23, skewed);
        for blocking in [BlockingConfig::default(), BlockingConfig::blast()] {
            let pipeline = Pipeline::new(PipelineConfig {
                blocking,
                ..PipelineConfig::default()
            });
            assert_backend_matrix(&pipeline, &ds);
        }
    }
}

#[test]
fn backend_matrix_supervised_scorer() {
    // The supervised edge scorer must be backend- and worker-invariant
    // exactly like the classic schemes: same candidates, similarity graph
    // and clusters across Sequential/Dataflow/Pool/FusedPool at 1/2/8.
    use sparker_metablocking::{EdgeScorer, LinearModel, MetaBlockingConfig};
    let mut model = LinearModel::zero();
    model.weights[0] = 0.7; // shared blocks
    model.weights[3] = 2.0; // jaccard
    model.weights[11] = -0.02; // max degree
    model.bias = -1.0;
    let mut config = PipelineConfig::default();
    config.blocking.meta_blocking = Some(MetaBlockingConfig {
        scorer: EdgeScorer::Supervised(model),
        ..MetaBlockingConfig::default()
    });
    let pipeline = Pipeline::new(config);
    for ds in [clean_dataset(90, 11, true), dirty_dataset(60, 23, true)] {
        assert_backend_matrix(&pipeline, &ds);
        let run = pipeline.run_on(&ExecutionBackend::Sequential, &ds.collection);
        assert_eq!(run.report.edge_scorer, "SUPERVISED");
        assert!(run.report.scoring.as_nanos() > 0);
    }
}

#[test]
fn backend_matrix_all_clustering_algorithms() {
    // Clean–clean covers all five algorithms; dirty skips unique-mapping
    // (clean–clean only). One worker count per cell — worker invariance is
    // covered by the matrix tests above.
    let clean = clean_dataset(90, 11, true);
    for algorithm in ClusteringAlgorithm::ALL {
        let pipeline = Pipeline::new(config_with(algorithm));
        let reference = pipeline.run_on(&ExecutionBackend::Sequential, &clean.collection);
        for backend in engine_backends(4) {
            let run = pipeline.run_on(&backend, &clean.collection);
            let tag = format!("{} on {}", algorithm.name(), backend.name());
            assert_equivalent(&reference, &run, &clean, &tag);
        }
    }
    let dirty = dirty_dataset(60, 23, true);
    for algorithm in &ClusteringAlgorithm::ALL[..4] {
        let pipeline = Pipeline::new(config_with(*algorithm));
        let reference = pipeline.run_on(&ExecutionBackend::Sequential, &dirty.collection);
        for backend in engine_backends(4) {
            let run = pipeline.run_on(&backend, &dirty.collection);
            let tag = format!("{} on {}", algorithm.name(), backend.name());
            assert_equivalent(&reference, &run, &dirty, &tag);
        }
    }
}

#[test]
fn cascade_matches_naive_scorer_across_backends() {
    // The filter–verify cascade is the default scoring path on every
    // backend; it must retain exactly the pairs the naive score-everything
    // matcher retains, with bit-identical scores — for every similarity
    // measure, at permissive / default-ish / strict thresholds, through
    // the sequential, dataflow and pool matchers alike.
    use sparker_matching::{Matcher, ScoringMode, SimilarityMeasure, ThresholdMatcher};
    let ds = dirty_dataset(60, 23, true);
    let pipeline = Pipeline::new(PipelineConfig::default());
    let blocked = pipeline.run_on(&ExecutionBackend::Sequential, &ds.collection);
    let candidates = &blocked.blocker.candidates;
    assert!(!candidates.is_empty());
    for measure in SimilarityMeasure::ALL {
        for threshold in [0.3, 0.5, 0.8] {
            let naive = ThresholdMatcher::with_mode(measure, threshold, ScoringMode::Naive)
                .match_pairs(&ds.collection, candidates.iter().copied());
            let cascade = ThresholdMatcher::with_mode(measure, threshold, ScoringMode::Cascade);
            for backend in [
                ExecutionBackend::Sequential,
                ExecutionBackend::dataflow(2),
                ExecutionBackend::pool(2),
                ExecutionBackend::fused(2),
            ] {
                let got =
                    backend.score_pairs(&cascade, &ds.collection, candidates, &backend.budget());
                assert_eq!(
                    got,
                    naive,
                    "cascade diverged from naive: {} @ {threshold} on {}",
                    measure.name(),
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn report_is_stage_complete_on_every_backend() {
    use sparker_core::PipelineStage;
    let ds = clean_dataset(90, 5, true);
    let pipeline = Pipeline::new(PipelineConfig::default());
    let backends = [
        ExecutionBackend::Sequential,
        ExecutionBackend::dataflow(2),
        ExecutionBackend::pool(2),
        ExecutionBackend::fused(2),
    ];
    for backend in backends {
        let result = pipeline.run_on(&backend, &ds.collection);
        let names: Vec<&str> = result
            .report
            .stages
            .iter()
            .map(|s| s.stage.name())
            .collect();
        assert_eq!(
            names,
            PipelineStage::ALL
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>(),
            "backend={}",
            backend.name()
        );
        assert!(
            result.timings.blocking.as_nanos() > 0,
            "backend={}",
            backend.name()
        );
        assert_eq!(
            result.report.edge_scorer,
            "CBS",
            "backend={}",
            backend.name()
        );
        assert_eq!(result.timings.total(), result.report.total_wall());
        // The JSON dump carries every stage row.
        let json = result.report.to_json();
        for stage in PipelineStage::ALL {
            assert!(json.contains(stage.name()), "{json}");
        }
    }
}

#[test]
fn engine_backends_record_matcher_and_clusterer_stages() {
    let ds = clean_dataset(90, 5, true);
    let pool = ExecutionBackend::pool(4);
    Pipeline::new(PipelineConfig::default()).run_on(&pool, &ds.collection);
    let names: Vec<String> = pool
        .context()
        .unwrap()
        .metrics()
        .stages
        .iter()
        .map(|s| s.name.clone())
        .collect();
    assert!(
        names.iter().any(|n| n == "match_candidates"),
        "matcher stage missing from {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "cluster_components"),
        "clusterer stage missing from {names:?}"
    );
    // The stage scopes land in the same metrics stream.
    assert!(
        names.iter().any(|n| n == "pipeline/score_pairs"),
        "scope marker missing from {names:?}"
    );

    // The fused backend replaces the staged matcher with the overlapped
    // prune→score batch — and never builds the staged pass stages.
    let fused = ExecutionBackend::fused(4);
    Pipeline::new(PipelineConfig::default()).run_on(&fused, &ds.collection);
    let names: Vec<String> = fused
        .context()
        .unwrap()
        .metrics()
        .stages
        .iter()
        .map(|s| s.name.clone())
        .collect();
    assert!(
        names.iter().any(|n| n == "fused_prune_score"),
        "fused stage missing from {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "fused_pass_a"),
        "fused pass-A stage missing from {names:?}"
    );
    assert!(
        !names.iter().any(|n| n == "match_candidates"),
        "fused run built the staged matcher: {names:?}"
    );
    let fused_stage = fused
        .context()
        .unwrap()
        .metrics()
        .stages
        .iter()
        .find(|s| s.name == "fused_prune_score")
        .cloned()
        .unwrap();
    assert!(fused_stage.tasks > 0);
    assert!(!fused_stage.per_worker_busy.is_empty());
}

#[test]
fn fused_matches_pool_under_scaling_config() {
    // The scaling-tier configuration (comparison-level purge, 0.5 filter,
    // its own meta-blocking setting) is the other production config; the
    // fused driver must agree with the staged pool on it too, clean and
    // dirty, across worker counts.
    for (tag, ds) in [
        ("clean", clean_dataset(80, 7, true)),
        ("dirty", dirty_dataset(50, 31, true)),
    ] {
        let pipeline = Pipeline::new(PipelineConfig::scaling());
        let reference = pipeline.run_on(&ExecutionBackend::Sequential, &ds.collection);
        for workers in WORKERS {
            let run = pipeline.run_on(&ExecutionBackend::fused(workers), &ds.collection);
            assert_equivalent(
                &reference,
                &run,
                &ds,
                &format!("scaling {tag} fused workers={workers}"),
            );
            assert_eq!(
                reference.blocker.weighted_candidates, run.blocker.weighted_candidates,
                "scaling {tag} fused workers={workers}: weighted candidates diverged"
            );
        }
    }
}

#[test]
fn fused_without_meta_blocking_degrades_to_staged() {
    // No pruning stage → nothing to fuse; the fused backend must still
    // produce the staged results through the staged path.
    let ds = clean_dataset(70, 13, false);
    let mut config = PipelineConfig::default();
    config.blocking.meta_blocking = None;
    let pipeline = Pipeline::new(config);
    let reference = pipeline.run_on(&ExecutionBackend::Sequential, &ds.collection);
    let run = pipeline.run_on(&ExecutionBackend::fused(4), &ds.collection);
    assert_equivalent(&reference, &run, &ds, "fused without meta-blocking");
    assert_eq!(run.report.backend, "fused");
}

proptest! {
    // Dataset generation + three pipeline runs per case: keep the case
    // count modest; the deterministic matrix sweeps above cover the full
    // grid.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn clean_clean_parity_proptest(
        seed in 0u64..1_000,
        entities in 30usize..80,
        workers in prop::sample::select(&WORKERS[..]),
        skewed in any::<bool>(),
        algorithm in prop::sample::select(&ClusteringAlgorithm::ALL[..]),
    ) {
        let ds = clean_dataset(entities, seed, skewed);
        let pipeline = Pipeline::new(config_with(algorithm));
        let reference = pipeline.run_on(&ExecutionBackend::Sequential, &ds.collection);
        for backend in engine_backends(workers) {
            let run = pipeline.run_on(&backend, &ds.collection);
            prop_assert_eq!(&reference.similarity, &run.similarity);
            prop_assert_eq!(&reference.clusters, &run.clusters);
            prop_assert_eq!(
                reference.evaluate(&ds.ground_truth),
                run.evaluate(&ds.ground_truth)
            );
        }
    }

    #[test]
    fn dirty_parity_proptest(
        seed in 0u64..1_000,
        entities in 20usize..60,
        workers in prop::sample::select(&WORKERS[..]),
        skewed in any::<bool>(),
        algorithm in prop::sample::select(&ClusteringAlgorithm::ALL[..4]),
    ) {
        let ds = dirty_dataset(entities, seed, skewed);
        let pipeline = Pipeline::new(config_with(algorithm));
        let reference = pipeline.run_on(&ExecutionBackend::Sequential, &ds.collection);
        for backend in engine_backends(workers) {
            let run = pipeline.run_on(&backend, &ds.collection);
            prop_assert_eq!(&reference.similarity, &run.similarity);
            prop_assert_eq!(&reference.clusters, &run.clusters);
            prop_assert_eq!(
                reference.evaluate(&ds.ground_truth),
                run.evaluate(&ds.ground_truth)
            );
        }
    }

    /// Channel capacity is a *scheduling* knob, never a semantic one: a
    /// capacity of 1 (fully serialized hand-off), 2, or effectively
    /// unbounded must leave every fused result byte-identical to the
    /// sequential reference.
    #[test]
    fn fused_channel_capacity_never_changes_results(
        seed in 0u64..1_000,
        entities in 30usize..70,
        workers in prop::sample::select(&WORKERS[..]),
        capacity in prop::sample::select(&[1usize, 2, 1 << 20][..]),
        dirty in any::<bool>(),
    ) {
        let ds = if dirty {
            dirty_dataset(entities.min(50), seed, true)
        } else {
            clean_dataset(entities, seed, true)
        };
        let pipeline = Pipeline::new(PipelineConfig::default());
        let reference = pipeline.run_on(&ExecutionBackend::Sequential, &ds.collection);
        std::env::set_var(sparker_core::FUSED_CHANNEL_CAP_ENV, capacity.to_string());
        let run = pipeline.run_on(&ExecutionBackend::fused(workers), &ds.collection);
        std::env::remove_var(sparker_core::FUSED_CHANNEL_CAP_ENV);
        prop_assert_eq!(&reference.similarity, &run.similarity);
        prop_assert_eq!(&reference.clusters, &run.clusters);
        prop_assert_eq!(
            &reference.blocker.weighted_candidates,
            &run.blocker.weighted_candidates
        );
    }
}

#[test]
fn budgeted_pipeline_is_bit_identical_to_in_ram() {
    // The out-of-core path must be an *implementation detail*: a hard
    // memory budget small enough to force spilling in every spill-capable
    // stage changes nothing observable. Reference = unbudgeted sequential;
    // matrix = budgeted engine backends across worker counts, on a shrunk
    // dirty_10k preset (same generator and seed, fewer entities).
    use sparker_dataflow::{Context, MemBudget};
    let mut preset = sparker_datasets::Preset::by_name("dirty_10k").unwrap();
    preset.config.entities = 400;
    let ds = preset.generate();
    let pipeline = Pipeline::new(PipelineConfig::default());
    let reference = pipeline.run_on(&ExecutionBackend::Sequential, &ds.collection);
    assert_eq!(reference.report.mem_budget_bytes, 0, "reference is in-RAM");
    assert_eq!(reference.report.spill_batches, 0, "reference never spills");
    for workers in [1, 2, 4] {
        for make in [
            ExecutionBackend::Dataflow,
            ExecutionBackend::Pool,
            ExecutionBackend::FusedPool,
        ] {
            let budget = MemBudget::limited(16 * 1024);
            let backend = make(Context::new(workers).with_budget(budget.clone()));
            let run = pipeline.run_on(&backend, &ds.collection);
            let tag = format!("budgeted backend={} workers={workers}", backend.name());
            assert_equivalent(&reference, &run, &ds, &tag);
            assert_eq!(run.report.mem_budget_bytes, 16 * 1024, "{tag}");
            assert!(run.report.spill_batches > 0, "{tag}: expected spilling");
            assert_eq!(run.report.spilled_bytes, budget.spilled_bytes(), "{tag}");
        }
    }
}

#[test]
fn budgeted_pipeline_full_10k_preset_on_pool() {
    // One full-scale cell of the scaling tier in the test suite: the real
    // dirty_10k preset under the scaling-tier configuration (the same pair
    // the CLI's --preset runs), pool backend, 1 MiB budget — byte-identical
    // to the unbudgeted sequential run, with spilling actually exercised.
    use sparker_dataflow::{Context, MemBudget};
    let ds = sparker_datasets::Preset::by_name("dirty_10k")
        .unwrap()
        .generate();
    let pipeline = Pipeline::new(PipelineConfig::scaling());
    let reference = pipeline.run_on(&ExecutionBackend::Sequential, &ds.collection);
    let backend = ExecutionBackend::Pool(Context::new(4).with_budget(MemBudget::limited(1 << 20)));
    let run = pipeline.run_on(&backend, &ds.collection);
    assert_equivalent(&reference, &run, &ds, "budgeted 10k pool");
    assert!(run.report.spill_batches > 0, "expected spilling at 1 MiB");
    assert!(run.report.peak_rss_bytes > 0, "VmHWM should be readable");
}
