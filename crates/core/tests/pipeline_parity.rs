//! Cross-stage equivalence suite: the pool-parallel pipeline
//! (`run_pipeline_parallel`) must be *indistinguishable* from the sequential
//! pipeline — identical similarity graphs, identical entity clusters,
//! identical evaluations — for every clustering algorithm, for clean–clean
//! and dirty tasks, on skewed and uniform datasets, at any worker count.

use proptest::prelude::*;
use sparker_core::{ClusteringAlgorithm, Pipeline, PipelineConfig};
use sparker_dataflow::Context;
use sparker_datasets::{generate, generate_dirty, DatasetConfig, GeneratedDataset, ZipfSkew};

const WORKERS: [usize; 3] = [1, 2, 8];

const ALL_ALGORITHMS: [ClusteringAlgorithm; 5] = [
    ClusteringAlgorithm::ConnectedComponents,
    ClusteringAlgorithm::Center,
    ClusteringAlgorithm::MergeCenter,
    ClusteringAlgorithm::Star,
    ClusteringAlgorithm::UniqueMapping,
];

fn clean_dataset(entities: usize, seed: u64, skewed: bool) -> GeneratedDataset {
    generate(&DatasetConfig {
        entities,
        unmatched_per_source: entities / 4,
        seed,
        skew: skewed.then(ZipfSkew::default),
        ..DatasetConfig::default()
    })
}

fn dirty_dataset(entities: usize, seed: u64, skewed: bool) -> GeneratedDataset {
    generate_dirty(
        &DatasetConfig {
            entities,
            seed,
            skew: skewed.then(ZipfSkew::default),
            ..DatasetConfig::default()
        },
        2,
    )
}

fn config_with(algorithm: ClusteringAlgorithm) -> PipelineConfig {
    PipelineConfig {
        clustering: algorithm,
        ..PipelineConfig::default()
    }
}

/// The full equivalence check at one worker count: every observable output
/// of the parallel run equals the sequential run's.
fn assert_parity(pipeline: &Pipeline, ds: &GeneratedDataset, workers: usize) {
    let seq = pipeline.run(&ds.collection);
    let ctx = Context::new(workers);
    let par = pipeline.run_pipeline_parallel(&ctx, &ds.collection);
    assert_eq!(seq.blocker.candidates, par.blocker.candidates, "workers={workers}");
    assert_eq!(seq.similarity, par.similarity, "workers={workers}");
    assert_eq!(seq.clusters, par.clusters, "workers={workers}");
    assert_eq!(
        seq.evaluate(&ds.ground_truth),
        par.evaluate(&ds.ground_truth),
        "workers={workers}"
    );
}

#[test]
fn clean_clean_parity_all_algorithms_all_worker_counts() {
    for skewed in [false, true] {
        let ds = clean_dataset(90, 11, skewed);
        for algorithm in ALL_ALGORITHMS {
            let pipeline = Pipeline::new(config_with(algorithm));
            for workers in WORKERS {
                assert_parity(&pipeline, &ds, workers);
            }
        }
    }
}

#[test]
fn dirty_parity_all_algorithms_all_worker_counts() {
    // Unique-mapping requires clean–clean and is covered above.
    for skewed in [false, true] {
        let ds = dirty_dataset(60, 23, skewed);
        for algorithm in &ALL_ALGORITHMS[..4] {
            let pipeline = Pipeline::new(config_with(*algorithm));
            for workers in WORKERS {
                assert_parity(&pipeline, &ds, workers);
            }
        }
    }
}

#[test]
fn parallel_timings_cover_all_four_steps() {
    let ds = clean_dataset(90, 5, true);
    let ctx = Context::new(2);
    let result = Pipeline::new(PipelineConfig::default()).run_pipeline_parallel(&ctx, &ds.collection);
    assert!(result.timings.blocking.as_nanos() > 0);
    assert!(result.timings.candidates.as_nanos() > 0);
    assert!(result.timings.matching.as_nanos() > 0);
    assert!(result.timings.total() >= result.timings.matching);
}

#[test]
fn parallel_pipeline_records_matcher_and_clusterer_stages() {
    let ds = clean_dataset(90, 5, true);
    let ctx = Context::new(4);
    ctx.reset_metrics();
    Pipeline::new(PipelineConfig::default()).run_pipeline_parallel(&ctx, &ds.collection);
    let names: Vec<String> = ctx.metrics().stages.iter().map(|s| s.name.clone()).collect();
    assert!(
        names.iter().any(|n| n == "match_candidates"),
        "matcher stage missing from {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "cluster_components"),
        "clusterer stage missing from {names:?}"
    );
}

proptest! {
    // Dataset generation + three pipeline runs per case: keep the case
    // count modest; the deterministic sweeps above cover the full matrix.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn clean_clean_parity_proptest(
        seed in 0u64..1_000,
        entities in 30usize..80,
        workers in prop::sample::select(&WORKERS[..]),
        skewed in any::<bool>(),
        algorithm in prop::sample::select(&ALL_ALGORITHMS[..]),
    ) {
        let ds = clean_dataset(entities, seed, skewed);
        let pipeline = Pipeline::new(config_with(algorithm));
        let seq = pipeline.run(&ds.collection);
        let ctx = Context::new(workers);
        let par = pipeline.run_pipeline_parallel(&ctx, &ds.collection);
        prop_assert_eq!(&seq.similarity, &par.similarity);
        prop_assert_eq!(&seq.clusters, &par.clusters);
        prop_assert_eq!(seq.evaluate(&ds.ground_truth), par.evaluate(&ds.ground_truth));
    }

    #[test]
    fn dirty_parity_proptest(
        seed in 0u64..1_000,
        entities in 20usize..60,
        workers in prop::sample::select(&WORKERS[..]),
        skewed in any::<bool>(),
        algorithm in prop::sample::select(&ALL_ALGORITHMS[..4]),
    ) {
        let ds = dirty_dataset(entities, seed, skewed);
        let pipeline = Pipeline::new(config_with(algorithm));
        let seq = pipeline.run(&ds.collection);
        let ctx = Context::new(workers);
        let par = pipeline.run_pipeline_parallel(&ctx, &ds.collection);
        prop_assert_eq!(&seq.similarity, &par.similarity);
        prop_assert_eq!(&seq.clusters, &par.clusters);
        prop_assert_eq!(seq.evaluate(&ds.ground_truth), par.evaluate(&ds.ground_truth));
    }
}
