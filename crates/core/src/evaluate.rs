//! Per-step evaluation against the ground truth.
//!
//! "Each step can be assessed using precision and recall, if a ground-truth
//! is available." The blocking literature's names are used alongside:
//! recall = pair completeness (PC), precision = pair quality (PQ), plus the
//! reduction ratio (RR) against the naive all-pairs baseline.

use sparker_clustering::EntityClusters;
use sparker_profiles::{GroundTruth, Pair, ProfileCollection};
use std::collections::HashSet;

/// Quality of a candidate-pair set (after blocking or meta-blocking).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingQuality {
    /// Pair completeness: fraction of true matches among the candidates.
    pub recall: f64,
    /// Pair quality: fraction of candidates that are true matches.
    pub precision: f64,
    /// Reduction ratio: 1 − candidates / all comparable pairs.
    pub reduction_ratio: f64,
    /// Number of candidate pairs.
    pub candidates: u64,
    /// True matches lost (the debug view's "false positives").
    pub lost_matches: u64,
}

impl BlockingQuality {
    /// Measure a candidate set against the ground truth.
    pub fn measure(
        candidates: &HashSet<Pair>,
        ground_truth: &GroundTruth,
        collection: &ProfileCollection,
    ) -> Self {
        Self::measure_with_total(candidates, ground_truth, collection.comparable_pairs())
    }

    /// [`BlockingQuality::measure`] with an explicit comparable-pair total
    /// (the reduction-ratio baseline). The ground truth is scanned once:
    /// the found-match count drives both `recall` and `lost_matches`.
    pub fn measure_with_total(
        candidates: &HashSet<Pair>,
        ground_truth: &GroundTruth,
        total: u64,
    ) -> Self {
        let found = ground_truth
            .iter()
            .filter(|p| candidates.contains(p))
            .count() as u64;
        let recall = if ground_truth.is_empty() {
            1.0
        } else {
            found as f64 / ground_truth.len() as f64
        };
        let precision = ground_truth.precision_of(candidates.iter());
        let reduction_ratio = if total == 0 {
            0.0
        } else {
            1.0 - candidates.len() as f64 / total as f64
        };
        BlockingQuality {
            recall,
            precision,
            reduction_ratio,
            candidates: candidates.len() as u64,
            lost_matches: ground_truth.len() as u64 - found,
        }
    }
}

/// Pairwise precision/recall/F1 of a set of asserted matching pairs
/// (matcher output or cluster-implied pairs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairQuality {
    /// Fraction of asserted pairs that are true matches.
    pub precision: f64,
    /// Fraction of true matches asserted.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl PairQuality {
    /// Measure asserted pairs against the ground truth.
    pub fn measure<'a>(
        asserted: impl IntoIterator<Item = &'a Pair>,
        ground_truth: &GroundTruth,
    ) -> Self {
        let mut total = 0u64;
        let mut correct = 0u64;
        for p in asserted {
            total += 1;
            if ground_truth.contains(p) {
                correct += 1;
            }
        }
        let precision = if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        };
        let recall = if ground_truth.is_empty() {
            1.0
        } else {
            correct as f64 / ground_truth.len() as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PairQuality {
            precision,
            recall,
            f1,
        }
    }

    /// Measure a clustering by its implied intra-cluster pairs.
    pub fn of_clusters(clusters: &EntityClusters, ground_truth: &GroundTruth) -> Self {
        let pairs = clusters.asserted_pairs();
        PairQuality::measure(pairs.iter(), ground_truth)
    }
}

/// Evaluation of a full pipeline run: one row per step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineEvaluation {
    /// Candidate quality after the blocker.
    pub blocking: BlockingQuality,
    /// Matching-pair quality after the entity matcher.
    pub matching: PairQuality,
    /// Cluster-implied pair quality after the entity clusterer.
    pub clustering: PairQuality,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::{Profile, ProfileId, SourceId};

    fn pair(a: u32, b: u32) -> Pair {
        Pair::new(ProfileId(a), ProfileId(b))
    }

    fn collection(n: usize) -> ProfileCollection {
        ProfileCollection::dirty(
            (0..n)
                .map(|i| {
                    Profile::builder(SourceId(0), i.to_string())
                        .attr("x", "v")
                        .build()
                })
                .collect(),
        )
    }

    #[test]
    fn blocking_quality_metrics() {
        // 5 profiles → 10 comparable pairs. GT = {(0,1),(2,3)}.
        let coll = collection(5);
        let gt = GroundTruth::from_pairs(vec![pair(0, 1), pair(2, 3)]);
        let candidates: HashSet<Pair> = [pair(0, 1), pair(0, 2), pair(1, 4)].into();
        let q = BlockingQuality::measure(&candidates, &gt, &coll);
        assert!((q.recall - 0.5).abs() < 1e-12);
        assert!((q.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((q.reduction_ratio - 0.7).abs() < 1e-12);
        assert_eq!(q.candidates, 3);
        assert_eq!(q.lost_matches, 1);
    }

    #[test]
    fn empty_candidates() {
        let coll = collection(4);
        let gt = GroundTruth::from_pairs(vec![pair(0, 1)]);
        let q = BlockingQuality::measure(&HashSet::new(), &gt, &coll);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.reduction_ratio, 1.0);
        assert_eq!(q.lost_matches, 1);
    }

    #[test]
    fn pair_quality_and_f1() {
        let gt = GroundTruth::from_pairs(vec![pair(0, 1), pair(2, 3), pair(4, 5)]);
        let asserted = [pair(0, 1), pair(2, 3), pair(0, 5)];
        let q = PairQuality::measure(asserted.iter(), &gt);
        assert!((q.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_pair_quality() {
        let gt = GroundTruth::default();
        let q = PairQuality::measure(std::iter::empty(), &gt);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1, 0.0);
    }

    #[test]
    fn cluster_quality_uses_implied_pairs() {
        use sparker_clustering::connected_components;
        let gt = GroundTruth::from_pairs(vec![pair(0, 1), pair(1, 2)]);
        // One cluster {0,1,2} implies 3 pairs; 2 are in GT, plus (0,2) is not.
        let clusters = connected_components(&[(pair(0, 1), 1.0), (pair(1, 2), 1.0)], 4);
        let q = PairQuality::of_clusters(&clusters, &gt);
        assert!((q.precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(q.recall, 1.0);
    }
}
