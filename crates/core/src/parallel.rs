//! Engine-backed entry points, kept for API compatibility.
//!
//! SparkER's defining property is that the *whole* ER stack runs on Spark —
//! "composed by different modules designed to be parallelizable on Apache
//! Spark". Since the unification behind [`ExecutionBackend`], these methods
//! are one-line wrappers selecting the matching backend for
//! [`Pipeline::run_on`]: [`Pipeline::run_dataflow`] is the shuffle-based
//! dataflow substrate (the GraphX path), [`Pipeline::run_pipeline_parallel`]
//! the morsel-driven persistent pool. Results are identical to
//! [`Pipeline::run`] at every worker count (asserted by the backend-matrix
//! parity suite in `tests/pipeline_parity.rs`).

use crate::backend::ExecutionBackend;
use crate::pipeline::{BlockerOutput, Pipeline, PipelineResult};
use sparker_dataflow::Context;
use sparker_profiles::ProfileCollection;

impl Pipeline {
    /// Run the blocker with every data-parallel stage on the dataflow
    /// engine. Equivalent to [`Pipeline::run_blocker`].
    pub fn run_blocker_dataflow(
        &self,
        ctx: &Context,
        collection: &ProfileCollection,
    ) -> BlockerOutput {
        let backend = ExecutionBackend::Dataflow(ctx.clone());
        let budget = backend.budget();
        self.run_blocker_on(&backend, collection, &budget).0
    }

    /// Run the full pipeline on the dataflow engine
    /// ([`ExecutionBackend::Dataflow`]); equivalent to [`Pipeline::run`].
    pub fn run_dataflow(&self, ctx: &Context, collection: &ProfileCollection) -> PipelineResult {
        self.run_on(&ExecutionBackend::Dataflow(ctx.clone()), collection)
    }

    /// Run the full pipeline on the persistent worker pool
    /// ([`ExecutionBackend::Pool`]) — the morsel-driven counterpart of
    /// [`Pipeline::run_dataflow`]; equivalent to [`Pipeline::run`].
    ///
    /// The blocker stages are shared with the dataflow backend; matching
    /// streams candidates out of a CSR `CandidateGraph` with degree-cost
    /// morsels, and connected components run as per-worker union–find
    /// forests merged via the semilattice `absorb`.
    ///
    /// ```
    /// use sparker_core::{Pipeline, PipelineConfig};
    /// use sparker_dataflow::Context;
    /// use sparker_datasets::{generate, DatasetConfig};
    ///
    /// let ds = generate(&DatasetConfig { entities: 60, ..DatasetConfig::default() });
    /// let pipeline = Pipeline::new(PipelineConfig::default());
    ///
    /// let parallel = pipeline.run_pipeline_parallel(&Context::new(4), &ds.collection);
    /// let sequential = pipeline.run(&ds.collection);
    /// assert_eq!(parallel.clusters, sequential.clusters);
    /// ```
    pub fn run_pipeline_parallel(
        &self,
        ctx: &Context,
        collection: &ProfileCollection,
    ) -> PipelineResult {
        self.run_on(&ExecutionBackend::Pool(ctx.clone()), collection)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::PipelineConfig;
    use crate::pipeline::Pipeline;
    use sparker_dataflow::Context;
    use sparker_datasets::{generate, DatasetConfig};

    fn dataset() -> sparker_datasets::GeneratedDataset {
        generate(&DatasetConfig {
            entities: 120,
            unmatched_per_source: 30,
            seed: 77,
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn engine_metrics_cover_all_stages() {
        let ds = dataset();
        let ctx = Context::new(2);
        Pipeline::new(PipelineConfig::default()).run_dataflow(&ctx, &ds.collection);
        let snap = ctx.metrics();
        assert!(
            snap.stages.iter().any(|s| s.name == "group_by_key"),
            "blocking shuffles"
        );
        assert!(snap.broadcasts >= 2, "meta-blocking + matching broadcasts");
        assert!(snap.total_shuffle_records() > 0);
        // The persistent pool's accounting flows through to the pipeline:
        // operator stages carry wall + busy time, and the context reports
        // cumulative per-worker busy time for its pool. (Driver-recorded
        // `pipeline/…` scope markers aggregate many operators, so they are
        // excluded from the per-operator invariant.)
        assert!(snap
            .stages
            .iter()
            .filter(|s| !s.name.starts_with("pipeline/"))
            .all(|s| s.wall_time >= s.busy_time || s.tasks > 1));
        assert!(snap.total_busy_time() > std::time::Duration::ZERO);
        assert_eq!(snap.worker_busy.len(), ctx.workers());
        assert!(snap.worker_busy.iter().sum::<std::time::Duration>() > std::time::Duration::ZERO);
    }

    #[test]
    fn stage_scope_markers_cover_every_pipeline_stage() {
        let ds = dataset();
        let ctx = Context::new(2);
        Pipeline::new(PipelineConfig::default()).run_dataflow(&ctx, &ds.collection);
        let snap = ctx.metrics();
        for stage in crate::report::PipelineStage::ALL {
            assert!(
                snap.stages
                    .iter()
                    .any(|s| s.name == format!("pipeline/{}", stage.name())),
                "missing scope marker for {}",
                stage.name()
            );
        }
    }
}
