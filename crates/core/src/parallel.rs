//! The fully distributed pipeline: every stage on the dataflow engine.
//!
//! SparkER's defining property is that the *whole* ER stack runs on Spark —
//! "composed by different modules designed to be parallelizable on Apache
//! Spark". [`run_dataflow`] is that mode on the `sparker-dataflow`
//! substrate: dataflow (keyed) token blocking, dataflow block filtering,
//! broadcast-join meta-blocking, broadcast matching and label-propagation
//! connected components. Results are identical to [`crate::Pipeline::run`]
//! (asserted by tests), at every worker count.

use crate::config::{ClusteringAlgorithm, PurgeConfig};
#[cfg(test)]
use crate::config::PipelineConfig;
use crate::pipeline::{BlockerOutput, Pipeline, PipelineResult, StepTimings};
use sparker_blocking::{purge_by_comparison_level, purge_oversized, BlockCollection};
use sparker_clustering::{
    center_clustering, connected_components_dataflow, connected_components_pool,
    merge_center_clustering, star_clustering, unique_mapping_clustering,
};
use sparker_dataflow::Context;
use sparker_looseschema::{loose_schema_keys, partition_attributes, AttributePartitioning};
use sparker_matching::{CandidateGraph, Matcher, ThresholdMatcher};
use sparker_metablocking::{block_entropies, parallel, BlockGraph};
use sparker_profiles::{ErKind, Pair, ProfileCollection};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

impl Pipeline {
    /// Run the blocker with every data-parallel stage on the engine.
    ///
    /// Loose-schema generation stays on the driver (it reduces over a
    /// handful of attributes — SparkER does the same); blocking, filtering
    /// and meta-blocking are engine stages.
    pub fn run_blocker_dataflow(
        &self,
        ctx: &Context,
        collection: &ProfileCollection,
    ) -> BlockerOutput {
        self.run_blocker_dataflow_timed(ctx, collection).0
    }

    /// [`Pipeline::run_blocker_dataflow`] with the wall-clock split the
    /// pipeline timings report: (output, block-construction time,
    /// candidate-generation time). The boundary is the meta-blocking step.
    pub(crate) fn run_blocker_dataflow_timed(
        &self,
        ctx: &Context,
        collection: &ProfileCollection,
    ) -> (BlockerOutput, Duration, Duration) {
        let bc = &self.config().blocking;
        let t_blocking = Instant::now();

        let partitioning = bc
            .loose_schema
            .as_ref()
            .map(|lsh| partition_attributes(collection, lsh));

        // Dataflow (keyed) token blocking.
        let blocks: BlockCollection = match &partitioning {
            Some(parts) => sparker_blocking::dataflow::keyed_blocking(ctx, collection, |p| {
                loose_schema_keys(p, parts)
            }),
            None => sparker_blocking::dataflow::token_blocking(ctx, collection),
        };
        let initial_blocks = blocks.len();
        let initial_comparisons = blocks.total_comparisons();

        // Purging is a metadata-level filter over block statistics — cheap
        // on the driver (SparkER's purging likewise reduces tiny per-block
        // stats); filtering is an engine stage.
        let blocks = match bc.purge {
            PurgeConfig::Off => blocks,
            PurgeConfig::Oversized { max_fraction } => {
                purge_oversized(blocks, collection.len(), max_fraction)
            }
            PurgeConfig::ComparisonLevel { smoothing } => {
                purge_by_comparison_level(blocks, smoothing)
            }
        };
        let blocks = match bc.filter_ratio {
            Some(ratio) => sparker_blocking::dataflow::block_filtering(ctx, blocks, ratio),
            None => blocks,
        };
        let cleaned_blocks = blocks.len();
        let cleaned_comparisons = blocks.total_comparisons();
        let blocking_time = t_blocking.elapsed();

        // Broadcast-join meta-blocking.
        let t_candidates = Instant::now();
        let (candidates, weighted_candidates) = match &bc.meta_blocking {
            None => (blocks.candidate_pairs(), Vec::new()),
            Some(mb) => {
                let entropies = if mb.use_entropy {
                    let parts = partitioning
                        .clone()
                        .unwrap_or_else(|| AttributePartitioning::manual(collection, vec![]));
                    Some(block_entropies(&blocks, &parts))
                } else {
                    None
                };
                let graph = std::sync::Arc::new(BlockGraph::new(&blocks, entropies.as_ref()));
                let retained = parallel::meta_blocking(ctx, &graph, mb);
                let set: HashSet<Pair> = retained.iter().map(|(p, _)| *p).collect();
                (set, retained)
            }
        };

        let candidates_time = t_candidates.elapsed();

        let output = BlockerOutput {
            partitioning,
            initial_blocks,
            initial_comparisons,
            cleaned_blocks,
            cleaned_comparisons,
            candidates,
            weighted_candidates,
        };
        (output, blocking_time, candidates_time)
    }

    /// Run the full pipeline on the dataflow engine; equivalent to
    /// [`Pipeline::run`].
    pub fn run_dataflow(&self, ctx: &Context, collection: &ProfileCollection) -> PipelineResult {
        let (blocker, blocking_time, candidates_time) =
            self.run_blocker_dataflow_timed(ctx, collection);

        // Matching: candidate pairs distributed, profiles broadcast.
        let t1 = Instant::now();
        let matcher = ThresholdMatcher::new(
            self.config().matching.measure,
            self.config().matching.threshold,
        );
        let mut candidates: Vec<Pair> = blocker.candidates.iter().copied().collect();
        candidates.sort_unstable();
        let similarity = matcher.match_pairs_dataflow(ctx, collection, candidates);
        let matching_time = t1.elapsed();

        // Clustering: label propagation for connected components (the
        // GraphX path); the alternative algorithms are inherently
        // sequential greedy scans and run on the driver, as they would in
        // SparkER.
        let t2 = Instant::now();
        let clusters = match self.config().clustering {
            ClusteringAlgorithm::ConnectedComponents => {
                connected_components_dataflow(ctx, similarity.edges(), collection.len())
            }
            ClusteringAlgorithm::Center => center_clustering(similarity.edges(), collection.len()),
            ClusteringAlgorithm::MergeCenter => {
                merge_center_clustering(similarity.edges(), collection.len())
            }
            ClusteringAlgorithm::Star => star_clustering(similarity.edges(), collection.len()),
            ClusteringAlgorithm::UniqueMapping => {
                assert_eq!(
                    collection.kind(),
                    ErKind::CleanClean,
                    "unique-mapping clustering requires a clean-clean task"
                );
                unique_mapping_clustering(
                    similarity.edges(),
                    collection.len(),
                    collection.separator(),
                )
            }
        };
        let clustering_time = t2.elapsed();

        PipelineResult::assemble(
            blocker,
            similarity,
            clusters,
            StepTimings {
                blocking: blocking_time,
                candidates: candidates_time,
                matching: matching_time,
                clustering: clustering_time,
            },
            collection.comparable_pairs(),
        )
    }

    /// Run the full pipeline on the persistent worker pool — the
    /// morsel-driven counterpart of [`Pipeline::run_dataflow`].
    ///
    /// The blocker stages are shared with `run_dataflow`; matching and
    /// clustering differ:
    ///
    /// * **Matching** streams candidate pairs out of a [`CandidateGraph`]'s
    ///   per-profile neighbor lists (no global pair vector is materialized
    ///   or sorted), with profile ids cost-partitioned by candidate degree
    ///   into dynamically claimed morsels and the prepared profile views
    ///   broadcast once. Each morsel emits a sorted similarity-graph shard;
    ///   contiguous id cuts + slot-indexed merge keep the result
    ///   byte-identical to the sequential matcher.
    /// * **Clustering** (connected components) unions edge morsels into
    ///   per-worker union–find forests merged sequentially — a single pass
    ///   instead of label propagation's O(diameter) supersteps. The other
    ///   algorithms are inherently sequential greedy scans and run on the
    ///   driver, exactly as in `run_dataflow`.
    ///
    /// The result equals [`Pipeline::run`] at any worker count (pinned by
    /// the cross-stage equivalence suite in `tests/pipeline_parity.rs`):
    ///
    /// ```
    /// use sparker_core::{Pipeline, PipelineConfig};
    /// use sparker_dataflow::Context;
    /// use sparker_datasets::{generate, DatasetConfig};
    ///
    /// let ds = generate(&DatasetConfig { entities: 60, ..DatasetConfig::default() });
    /// let pipeline = Pipeline::new(PipelineConfig::default());
    ///
    /// let parallel = pipeline.run_pipeline_parallel(&Context::new(4), &ds.collection);
    /// let sequential = pipeline.run(&ds.collection);
    /// assert_eq!(parallel.clusters, sequential.clusters);
    /// ```
    pub fn run_pipeline_parallel(
        &self,
        ctx: &Context,
        collection: &ProfileCollection,
    ) -> PipelineResult {
        let (blocker, blocking_time, candidates_time) =
            self.run_blocker_dataflow_timed(ctx, collection);

        // Matching: candidates stream out of the CSR candidate graph.
        let t1 = Instant::now();
        let matcher = ThresholdMatcher::new(
            self.config().matching.measure,
            self.config().matching.threshold,
        );
        let graph = Arc::new(CandidateGraph::from_pairs(
            collection.len(),
            blocker.candidates.iter().copied(),
        ));
        let similarity = matcher.match_candidates_pool(ctx, collection, &graph);
        let matching_time = t1.elapsed();

        // Clustering: per-worker union–find forests for connected
        // components; driver-side greedy scans otherwise.
        let t2 = Instant::now();
        let clusters = match self.config().clustering {
            ClusteringAlgorithm::ConnectedComponents => {
                connected_components_pool(ctx, similarity.edges(), collection.len())
            }
            ClusteringAlgorithm::Center => center_clustering(similarity.edges(), collection.len()),
            ClusteringAlgorithm::MergeCenter => {
                merge_center_clustering(similarity.edges(), collection.len())
            }
            ClusteringAlgorithm::Star => star_clustering(similarity.edges(), collection.len()),
            ClusteringAlgorithm::UniqueMapping => {
                assert_eq!(
                    collection.kind(),
                    ErKind::CleanClean,
                    "unique-mapping clustering requires a clean-clean task"
                );
                unique_mapping_clustering(
                    similarity.edges(),
                    collection.len(),
                    collection.separator(),
                )
            }
        };
        let clustering_time = t2.elapsed();

        PipelineResult::assemble(
            blocker,
            similarity,
            clusters,
            StepTimings {
                blocking: blocking_time,
                candidates: candidates_time,
                matching: matching_time,
                clustering: clustering_time,
            },
            collection.comparable_pairs(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BlockingConfig;
    use sparker_datasets::{generate, DatasetConfig};

    fn dataset() -> sparker_datasets::GeneratedDataset {
        generate(&DatasetConfig {
            entities: 120,
            unmatched_per_source: 30,
            seed: 77,
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn dataflow_pipeline_equals_sequential_default() {
        let ds = dataset();
        let pipeline = Pipeline::new(PipelineConfig::default());
        let seq = pipeline.run(&ds.collection);
        let ctx = Context::new(4);
        let par = pipeline.run_dataflow(&ctx, &ds.collection);
        assert_eq!(seq.blocker.candidates, par.blocker.candidates);
        assert_eq!(seq.similarity, par.similarity);
        assert_eq!(seq.clusters, par.clusters);
        assert_eq!(seq.blocker.initial_blocks, par.blocker.initial_blocks);
        assert_eq!(
            seq.blocker.cleaned_comparisons,
            par.blocker.cleaned_comparisons
        );
    }

    #[test]
    fn dataflow_pipeline_equals_sequential_blast() {
        let ds = dataset();
        let pipeline = Pipeline::new(PipelineConfig {
            blocking: BlockingConfig::blast(),
            ..PipelineConfig::default()
        });
        let seq = pipeline.run(&ds.collection);
        let ctx = Context::new(3);
        let par = pipeline.run_dataflow(&ctx, &ds.collection);
        assert_eq!(seq.blocker.candidates, par.blocker.candidates);
        assert_eq!(seq.clusters, par.clusters);
        assert_eq!(seq.blocker.weighted_candidates, par.blocker.weighted_candidates);
    }

    #[test]
    fn worker_count_invariance() {
        let ds = dataset();
        let pipeline = Pipeline::new(PipelineConfig::default());
        let base = pipeline.run_dataflow(&Context::new(1), &ds.collection);
        for w in [2, 8] {
            let other = pipeline.run_dataflow(&Context::new(w), &ds.collection);
            assert_eq!(base.clusters, other.clusters, "workers={w}");
        }
    }

    #[test]
    fn engine_metrics_cover_all_stages() {
        let ds = dataset();
        let ctx = Context::new(2);
        Pipeline::new(PipelineConfig::default()).run_dataflow(&ctx, &ds.collection);
        let snap = ctx.metrics();
        assert!(snap.stages.iter().any(|s| s.name == "group_by_key"), "blocking shuffles");
        assert!(snap.broadcasts >= 2, "meta-blocking + matching broadcasts");
        assert!(snap.total_shuffle_records() > 0);
        // The persistent pool's accounting flows through to the pipeline:
        // stages carry wall + busy time, and the context reports cumulative
        // per-worker busy time for its pool.
        assert!(snap.stages.iter().all(|s| s.wall_time >= s.busy_time || s.tasks > 1));
        assert!(snap.total_busy_time() > std::time::Duration::ZERO);
        assert_eq!(snap.worker_busy.len(), ctx.workers());
        assert!(snap.worker_busy.iter().sum::<std::time::Duration>() > std::time::Duration::ZERO);
    }
}
