//! Pipeline configuration: every tunable of the paper's debugging section.
//!
//! "In the blocker each operation (blocking, purging, filtering, and
//! meta-blocking) can be fine tuned … in the entity matching phase, it is
//! possible to try different similarity techniques with different
//! thresholds." Configurations can be serialized to a small text format and
//! reloaded — the paper's "store the obtained configuration … applied to
//! the whole data in a batch mode".

use sparker_looseschema::LshConfig;
use sparker_matching::SimilarityMeasure;
use sparker_metablocking::{
    EdgeScorer, LinearModel, MetaBlockingConfig, PruningStrategy, WeightScheme,
};
use std::fmt;

/// How oversized blocks are purged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PurgeConfig {
    /// No purging.
    Off,
    /// Drop blocks holding more than `max_fraction` of all profiles (the
    /// paper's definition; its setting is 0.5).
    Oversized {
        /// Retained block size as a fraction of the collection.
        max_fraction: f64,
    },
    /// Automatic comparison-level purging with the given smoothing factor.
    ComparisonLevel {
        /// Marginal comparisons-per-assignment tolerance (≥ 1).
        smoothing: f64,
    },
}

/// Blocker configuration (Figure 4's sub-modules).
#[derive(Debug, Clone)]
pub struct BlockingConfig {
    /// `Some` enables the loose-schema generator (attribute partitioning +
    /// entropy); `None` is plain schema-agnostic token blocking.
    pub loose_schema: Option<LshConfig>,
    /// Block purging.
    pub purge: PurgeConfig,
    /// Block filtering retained ratio (`None` disables; the paper keeps
    /// the smallest 80 %).
    pub filter_ratio: Option<f64>,
    /// Meta-blocking (`None` takes all block pairs as candidates).
    pub meta_blocking: Option<MetaBlockingConfig>,
}

impl Default for BlockingConfig {
    /// The paper's default unsupervised pipeline: schema-agnostic token
    /// blocking, purging at half the collection, filtering at 0.8,
    /// CBS/WEP meta-blocking.
    fn default() -> Self {
        BlockingConfig {
            loose_schema: None,
            purge: PurgeConfig::Oversized { max_fraction: 0.5 },
            filter_ratio: Some(0.8),
            meta_blocking: Some(MetaBlockingConfig::default()),
        }
    }
}

impl BlockingConfig {
    /// The Blast configuration: loose schema on, entropy-weighted χ²
    /// meta-blocking with local-maxima pruning.
    pub fn blast() -> Self {
        BlockingConfig {
            loose_schema: Some(LshConfig::default()),
            purge: PurgeConfig::Oversized { max_fraction: 0.5 },
            filter_ratio: Some(0.8),
            meta_blocking: Some(MetaBlockingConfig::blast()),
        }
    }
}

/// Entity-matcher configuration (unsupervised mode).
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// Similarity measure applied to candidate pairs.
    pub measure: SimilarityMeasure,
    /// Minimum score for a match.
    pub threshold: f64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            measure: SimilarityMeasure::Jaccard,
            threshold: 0.35,
        }
    }
}

// The algorithm enum lives next to the single `cluster_edges` dispatch in
// `sparker-clustering`; re-exported here so `sparker_core::ClusteringAlgorithm`
// keeps working.
pub use sparker_clustering::ClusteringAlgorithm;

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Blocker settings.
    pub blocking: BlockingConfig,
    /// Matcher settings.
    pub matching: MatcherConfig,
    /// Clusterer selection.
    pub clustering: ClusteringAlgorithm,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            blocking: BlockingConfig::default(),
            matching: MatcherConfig::default(),
            clustering: ClusteringAlgorithm::ConnectedComponents,
        }
    }
}

impl PipelineConfig {
    /// The scaling-tier configuration the named dataset presets run under
    /// (CLI `--preset`, the scaling bench, CI's out-of-core smoke).
    ///
    /// The default configuration's oversized-block purge keeps enough hub
    /// blocks that meta-blocking's input grows roughly quadratically with
    /// the collection — fine at Abt-Buy scale, hopeless at 10⁵–10⁶
    /// profiles. This variant bounds the work per profile instead:
    /// comparison-level purging (adaptive, drops the hub blocks), block
    /// filtering at 0.5, and reciprocal CNP meta-blocking (top-k neighbours
    /// per node, k chosen from the block statistics), so candidates stay
    /// `O(profiles × k)` and the pipeline scales linearly in time and
    /// memory.
    pub fn scaling() -> Self {
        PipelineConfig {
            blocking: BlockingConfig {
                loose_schema: None,
                purge: PurgeConfig::ComparisonLevel { smoothing: 1.0 },
                filter_ratio: Some(0.5),
                meta_blocking: Some(MetaBlockingConfig {
                    pruning: PruningStrategy::Cnp {
                        k: None,
                        reciprocal: true,
                    },
                    ..MetaBlockingConfig::default()
                }),
            },
            matching: MatcherConfig::default(),
            clustering: ClusteringAlgorithm::ConnectedComponents,
        }
    }

    /// Serialize to the persistence format (one `key = value` per line).
    pub fn to_config_string(&self) -> String {
        let mut out = String::new();
        match &self.blocking.loose_schema {
            None => out.push_str("loose_schema = off\n"),
            Some(l) => {
                out.push_str(&format!(
                    "loose_schema = on\nlsh.num_hashes = {}\nlsh.bands = {}\nlsh.threshold = {}\nlsh.seed = {}\n",
                    l.num_hashes, l.bands, l.threshold, l.seed
                ));
            }
        }
        match self.blocking.purge {
            PurgeConfig::Off => out.push_str("purge = off\n"),
            PurgeConfig::Oversized { max_fraction } => {
                out.push_str(&format!("purge = oversized {max_fraction}\n"))
            }
            PurgeConfig::ComparisonLevel { smoothing } => {
                out.push_str(&format!("purge = comparison {smoothing}\n"))
            }
        }
        match self.blocking.filter_ratio {
            None => out.push_str("filter = off\n"),
            Some(r) => out.push_str(&format!("filter = {r}\n")),
        }
        match &self.blocking.meta_blocking {
            None => out.push_str("meta_blocking = off\n"),
            Some(mb) => {
                out.push_str(&format!(
                    "meta_blocking = on\nmb.scheme = {}\nmb.entropy = {}\n",
                    mb.scorer.name(),
                    mb.use_entropy
                ));
                if let EdgeScorer::Supervised(model) = mb.scorer {
                    out.push_str(&format!("mb.model = {}\n", model.to_json()));
                }
                let p = match mb.pruning {
                    PruningStrategy::Wep { factor } => format!("WEP {factor}"),
                    PruningStrategy::Cep { retain } => {
                        format!(
                            "CEP {}",
                            retain.map_or("auto".to_string(), |r| r.to_string())
                        )
                    }
                    PruningStrategy::Wnp { factor, reciprocal } => {
                        format!(
                            "WNP {factor}{}",
                            if reciprocal { " reciprocal" } else { "" }
                        )
                    }
                    PruningStrategy::Cnp { k, reciprocal } => {
                        format!(
                            "CNP {}{}",
                            k.map_or("auto".to_string(), |k| k.to_string()),
                            if reciprocal { " reciprocal" } else { "" }
                        )
                    }
                    PruningStrategy::Blast { ratio } => format!("BLAST {ratio}"),
                };
                out.push_str(&format!("mb.pruning = {p}\n"));
            }
        }
        out.push_str(&format!(
            "matcher.measure = {}\nmatcher.threshold = {}\nclustering = {}\n",
            self.matching.measure.name(),
            self.matching.threshold,
            self.clustering.name()
        ));
        out
    }

    /// Parse a configuration saved with
    /// [`PipelineConfig::to_config_string`]. Unknown keys are rejected.
    pub fn from_config_string(text: &str) -> Result<PipelineConfig, ConfigParseError> {
        let mut config = PipelineConfig::default();
        let mut lsh = LshConfig::default();
        let mut lsh_on = false;
        let mut mb = MetaBlockingConfig::default();
        let mut mb_on = true;
        // `mb.scheme = SUPERVISED` is resolved after the scan, once the
        // `mb.model` line (order-independent) has been seen.
        let mut mb_model: Option<LinearModel> = None;
        let mut supervised_at: Option<usize> = None;

        let err = |line: usize, msg: &str| ConfigParseError {
            line,
            message: msg.to_string(),
        };
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(i + 1, "expected key = value"))?;
            let (key, value) = (key.trim(), value.trim());
            let parse_f64 = |v: &str| v.parse::<f64>().map_err(|_| err(i + 1, "invalid number"));
            match key {
                "loose_schema" => lsh_on = value == "on",
                "lsh.num_hashes" => {
                    lsh.num_hashes = value.parse().map_err(|_| err(i + 1, "invalid integer"))?
                }
                "lsh.bands" => {
                    lsh.bands = value.parse().map_err(|_| err(i + 1, "invalid integer"))?
                }
                "lsh.threshold" => lsh.threshold = parse_f64(value)?,
                "lsh.seed" => {
                    lsh.seed = value.parse().map_err(|_| err(i + 1, "invalid integer"))?
                }
                "purge" => {
                    config.blocking.purge = if value == "off" {
                        PurgeConfig::Off
                    } else if let Some(rest) = value.strip_prefix("oversized ") {
                        PurgeConfig::Oversized {
                            max_fraction: parse_f64(rest.trim())?,
                        }
                    } else if let Some(rest) = value.strip_prefix("comparison ") {
                        PurgeConfig::ComparisonLevel {
                            smoothing: parse_f64(rest.trim())?,
                        }
                    } else {
                        return Err(err(i + 1, "invalid purge setting"));
                    }
                }
                "filter" => {
                    config.blocking.filter_ratio = if value == "off" {
                        None
                    } else {
                        Some(parse_f64(value)?)
                    }
                }
                "meta_blocking" => mb_on = value == "on",
                "mb.scheme" => {
                    if value == "SUPERVISED" {
                        supervised_at = Some(i + 1);
                    } else {
                        mb.scorer = EdgeScorer::Classic(
                            WeightScheme::ALL
                                .into_iter()
                                .find(|s| s.name() == value)
                                .ok_or_else(|| err(i + 1, "unknown weighting scheme"))?,
                        );
                    }
                }
                "mb.model" => {
                    mb_model =
                        Some(LinearModel::from_json(value).map_err(|e| ConfigParseError {
                            line: i + 1,
                            message: e,
                        })?)
                }
                "mb.entropy" => mb.use_entropy = value == "true",
                "mb.pruning" => {
                    let (name, arg) = value.split_once(' ').unwrap_or((value, ""));
                    // Node-centric strategies accept a trailing "reciprocal".
                    let (arg, reciprocal) = match arg.trim().strip_suffix("reciprocal") {
                        Some(rest) => (rest.trim(), true),
                        None => (arg.trim(), false),
                    };
                    let auto = arg == "auto";
                    mb.pruning = match name {
                        "WEP" => PruningStrategy::Wep {
                            factor: parse_f64(arg)?,
                        },
                        "CEP" => PruningStrategy::Cep {
                            retain: if auto {
                                None
                            } else {
                                Some(arg.parse().map_err(|_| err(i + 1, "invalid integer"))?)
                            },
                        },
                        "WNP" => PruningStrategy::Wnp {
                            factor: parse_f64(arg)?,
                            reciprocal,
                        },
                        "CNP" => PruningStrategy::Cnp {
                            k: if auto {
                                None
                            } else {
                                Some(arg.parse().map_err(|_| err(i + 1, "invalid integer"))?)
                            },
                            reciprocal,
                        },
                        "BLAST" => PruningStrategy::Blast {
                            ratio: parse_f64(arg)?,
                        },
                        _ => return Err(err(i + 1, "unknown pruning strategy")),
                    };
                }
                "matcher.measure" => {
                    config.matching.measure = SimilarityMeasure::ALL
                        .into_iter()
                        .find(|m| m.name() == value)
                        .ok_or_else(|| err(i + 1, "unknown similarity measure"))?
                }
                "matcher.threshold" => config.matching.threshold = parse_f64(value)?,
                "clustering" => {
                    config.clustering = ClusteringAlgorithm::ALL
                        .into_iter()
                        .find(|c| c.name() == value)
                        .ok_or_else(|| err(i + 1, "unknown clustering algorithm"))?
                }
                _ => return Err(err(i + 1, "unknown key")),
            }
        }
        if let Some(line) = supervised_at {
            let model = mb_model
                .ok_or_else(|| err(line, "mb.scheme = SUPERVISED requires an mb.model line"))?;
            mb.scorer = EdgeScorer::Supervised(model);
        }
        config.blocking.loose_schema = lsh_on.then_some(lsh);
        config.blocking.meta_blocking = mb_on.then_some(mb);
        Ok(config)
    }
}

/// Error parsing a persisted configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigParseError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ConfigParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_roundtrips() {
        let c = PipelineConfig::default();
        let text = c.to_config_string();
        let parsed = PipelineConfig::from_config_string(&text).unwrap();
        assert_eq!(parsed.to_config_string(), text);
    }

    #[test]
    fn blast_roundtrips() {
        let c = PipelineConfig {
            blocking: BlockingConfig::blast(),
            matching: MatcherConfig {
                measure: SimilarityMeasure::MongeElkan,
                threshold: 0.7,
            },
            clustering: ClusteringAlgorithm::UniqueMapping,
        };
        let text = c.to_config_string();
        let parsed = PipelineConfig::from_config_string(&text).unwrap();
        assert_eq!(parsed.to_config_string(), text);
        assert!(parsed.blocking.loose_schema.is_some());
        assert_eq!(parsed.clustering, ClusteringAlgorithm::UniqueMapping);
    }

    #[test]
    fn all_pruning_variants_roundtrip() {
        for pruning in [
            PruningStrategy::Wep { factor: 1.5 },
            PruningStrategy::Cep { retain: Some(100) },
            PruningStrategy::Cep { retain: None },
            PruningStrategy::Wnp {
                factor: 0.8,
                reciprocal: false,
            },
            PruningStrategy::Wnp {
                factor: 1.2,
                reciprocal: true,
            },
            PruningStrategy::Cnp {
                k: Some(3),
                reciprocal: false,
            },
            PruningStrategy::Cnp {
                k: None,
                reciprocal: true,
            },
            PruningStrategy::Cnp {
                k: None,
                reciprocal: false,
            },
            PruningStrategy::Blast { ratio: 0.35 },
        ] {
            let mut c = PipelineConfig::default();
            c.blocking.meta_blocking = Some(MetaBlockingConfig {
                pruning,
                ..MetaBlockingConfig::default()
            });
            let text = c.to_config_string();
            let parsed = PipelineConfig::from_config_string(&text).unwrap();
            assert_eq!(parsed.to_config_string(), text, "{}", pruning.name());
        }
    }

    #[test]
    fn supervised_scorer_roundtrips() {
        let mut model = LinearModel::zero();
        model.weights[0] = 1.5;
        model.weights[3] = -0.25;
        model.bias = -2.0;
        let mut c = PipelineConfig::default();
        c.blocking.meta_blocking = Some(MetaBlockingConfig {
            scorer: EdgeScorer::Supervised(model),
            ..MetaBlockingConfig::default()
        });
        let text = c.to_config_string();
        assert!(text.contains("mb.scheme = SUPERVISED"));
        assert!(text.contains("mb.model = {"));
        let parsed = PipelineConfig::from_config_string(&text).unwrap();
        assert_eq!(parsed.to_config_string(), text);
        match parsed.blocking.meta_blocking.unwrap().scorer {
            EdgeScorer::Supervised(m) => assert_eq!(m, model),
            other => panic!("expected supervised scorer, got {other:?}"),
        }
    }

    #[test]
    fn supervised_without_model_is_rejected() {
        let mut c = PipelineConfig::default();
        c.blocking.meta_blocking = Some(MetaBlockingConfig {
            scorer: EdgeScorer::Supervised(LinearModel::zero()),
            ..MetaBlockingConfig::default()
        });
        let without: String = c
            .to_config_string()
            .lines()
            .filter(|l| !l.starts_with("mb.model"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = PipelineConfig::from_config_string(&without).unwrap_err();
        assert!(err.message.contains("mb.model"), "{err}");
        // A malformed model payload carries its own line number.
        let broken = "mb.scheme = SUPERVISED\nmb.model = {\"bias\":0}\n";
        let err = PipelineConfig::from_config_string(broken).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("weights"), "{err}");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# comment\n\nfilter = 0.6\n";
        let c = PipelineConfig::from_config_string(text).unwrap();
        assert_eq!(c.blocking.filter_ratio, Some(0.6));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = PipelineConfig::from_config_string("filter = 0.8\nbogus_key = 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unknown key"));
        let err = PipelineConfig::from_config_string("filter 0.8\n").unwrap_err();
        assert!(err.message.contains("key = value"));
        let err = PipelineConfig::from_config_string("matcher.measure = nope\n").unwrap_err();
        assert!(err.message.contains("similarity"));
    }

    #[test]
    fn off_switches() {
        let text = "loose_schema = off\npurge = off\nfilter = off\nmeta_blocking = off\n";
        let c = PipelineConfig::from_config_string(text).unwrap();
        assert!(c.blocking.loose_schema.is_none());
        assert_eq!(c.blocking.purge, PurgeConfig::Off);
        assert!(c.blocking.filter_ratio.is_none());
        assert!(c.blocking.meta_blocking.is_none());
    }
}
