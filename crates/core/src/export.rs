//! Similarity-graph export: weighted candidate edges as a TSV edge list,
//! optionally filtered by a small comparison expression à la `prune_graph`
//! (`"w >= 0.2"`). Profile ids are resolved to display keys
//! (`<source>:<original_id>`), so exported graphs join against the input
//! data without knowing internal id assignment.

use sparker_profiles::{Pair, ProfileCollection, ProfileId};
use std::fmt::Write as _;

/// Comparison operator of a [`WeightFilter`] expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Ge,
    Gt,
    Le,
    Lt,
    Eq,
    Ne,
}

impl CmpOp {
    fn parse(text: &str) -> Option<CmpOp> {
        match text {
            ">=" => Some(CmpOp::Ge),
            ">" => Some(CmpOp::Gt),
            "<=" => Some(CmpOp::Le),
            "<" => Some(CmpOp::Lt),
            "==" => Some(CmpOp::Eq),
            "!=" => Some(CmpOp::Ne),
            _ => None,
        }
    }
}

/// A parsed weight-filter expression: `w <op> <number>` where `<op>` is
/// one of `>=`, `>`, `<=`, `<`, `==`, `!=`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightFilter {
    op: CmpOp,
    threshold: f64,
}

impl WeightFilter {
    /// Parse an expression like `"w >= 0.2"`. Whitespace around the three
    /// tokens is flexible; anything else is an error.
    pub fn parse(text: &str) -> Result<WeightFilter, String> {
        let mut parts = text.split_whitespace();
        let (var, op, num) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(v), Some(o), Some(n), None) => (v, o, n),
            _ => {
                return Err(format!(
                    "expected `w <op> <number>` (e.g. \"w >= 0.2\"), got {text:?}"
                ))
            }
        };
        if var != "w" {
            return Err(format!("unknown variable {var:?}; only `w` is supported"));
        }
        let op = CmpOp::parse(op)
            .ok_or_else(|| format!("unknown operator {op:?}; use >=, >, <=, <, == or !="))?;
        let threshold = num
            .parse::<f64>()
            .map_err(|_| format!("invalid number {num:?}"))?;
        if !threshold.is_finite() {
            return Err(format!("threshold must be finite, got {num:?}"));
        }
        Ok(WeightFilter { op, threshold })
    }

    /// Does an edge of weight `w` pass the filter?
    pub fn keeps(&self, w: f64) -> bool {
        match self.op {
            CmpOp::Ge => w >= self.threshold,
            CmpOp::Gt => w > self.threshold,
            CmpOp::Le => w <= self.threshold,
            CmpOp::Lt => w < self.threshold,
            CmpOp::Eq => w == self.threshold,
            CmpOp::Ne => w != self.threshold,
        }
    }
}

/// Render the weighted candidate edges as a TSV edge list
/// (`source_a:id_a  source_b:id_b  weight`, one header line), keeping only
/// the edges `filter` accepts (all of them when `None`). Weights use
/// shortest round-trip float formatting, so re-parsing restores the exact
/// bits.
pub fn export_edges_tsv(
    collection: &ProfileCollection,
    edges: &[(Pair, f64)],
    filter: Option<&WeightFilter>,
) -> String {
    let key = |id: ProfileId| {
        let p = collection.get(id);
        format!("{}:{}", p.source.0, p.original_id)
    };
    let mut out = String::from("a\tb\tweight\n");
    for (pair, w) in edges {
        if filter.is_none_or(|f| f.keeps(*w)) {
            let _ = writeln!(out, "{}\t{}\t{:?}", key(pair.first), key(pair.second), w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_profiles::{Profile, SourceId};

    fn collection() -> ProfileCollection {
        ProfileCollection::dirty(
            (0..4)
                .map(|i| {
                    Profile::builder(SourceId(0), format!("rec{i}"))
                        .attr("name", "x")
                        .build()
                })
                .collect(),
        )
    }

    fn pair(a: u32, b: u32) -> Pair {
        Pair::new(ProfileId(a), ProfileId(b))
    }

    #[test]
    fn filter_expressions_evaluate() {
        for (text, w, expect) in [
            ("w >= 0.2", 0.2, true),
            ("w >= 0.2", 0.19, false),
            ("w > 0.2", 0.2, false),
            ("w <= 0.5", 0.5, true),
            ("w < 0.5", 0.5, false),
            ("w == 1.5", 1.5, true),
            ("w != 1.5", 1.5, false),
            ("  w   >=   0.25  ", 0.3, true),
        ] {
            let f = WeightFilter::parse(text).unwrap();
            assert_eq!(f.keeps(w), expect, "{text} on {w}");
        }
    }

    #[test]
    fn malformed_filters_are_rejected() {
        for (text, needle) in [
            ("", "expected `w <op> <number>`"),
            ("w >=", "expected `w <op> <number>`"),
            ("w >= 0.2 extra", "expected `w <op> <number>`"),
            ("weight >= 0.2", "unknown variable"),
            ("w => 0.2", "unknown operator"),
            ("w >= zero", "invalid number"),
            ("w >= nan", "must be finite"),
            ("w >= inf", "must be finite"),
        ] {
            let err = WeightFilter::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn tsv_resolves_display_keys_and_applies_filter() {
        let coll = collection();
        let edges = vec![(pair(0, 1), 0.75), (pair(1, 2), 0.1), (pair(2, 3), 0.5)];
        let all = export_edges_tsv(&coll, &edges, None);
        assert_eq!(all.lines().count(), 4, "{all}");
        assert!(all.starts_with("a\tb\tweight\n"));
        assert!(all.contains("0:rec0\t0:rec1\t0.75"));

        let filter = WeightFilter::parse("w >= 0.5").unwrap();
        let kept = export_edges_tsv(&coll, &edges, Some(&filter));
        assert_eq!(kept.lines().count(), 3, "{kept}");
        assert!(!kept.contains("0:rec1\t0:rec2"));
        assert!(kept.contains("0:rec2\t0:rec3\t0.5"));
    }
}
