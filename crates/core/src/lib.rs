//! # sparker-core
//!
//! The public face of the SparkER reproduction: the three-module pipeline of
//! the paper's Figure 3 (blocker → entity matcher → entity clusterer), a
//! configuration system covering every tunable the paper's process-debugging
//! section exposes, per-step evaluation against a ground truth, and the
//! representative-sampling / false-positive-drill-down tooling of Section 3.
//!
//! ```
//! use sparker_core::{Pipeline, PipelineConfig};
//! use sparker_datasets::{generate, DatasetConfig};
//!
//! let ds = generate(&DatasetConfig { entities: 80, unmatched_per_source: 20, ..Default::default() });
//! let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
//! let eval = result.evaluate(&ds.ground_truth);
//! assert!(eval.blocking.recall > 0.8);
//! ```

mod config;
mod debug;
mod evaluate;
mod parallel;
mod pipeline;

pub use config::{
    BlockingConfig, ClusteringAlgorithm, MatcherConfig, PipelineConfig, PurgeConfig,
};
pub use debug::{
    representative_sample, threshold_sweep, FalsePositive, LostPairsReport, SampleConfig,
    ThresholdSweepRow,
};
pub use evaluate::{BlockingQuality, PairQuality, PipelineEvaluation};
pub use pipeline::{BlockerOutput, Pipeline, PipelineResult, StepTimings};

// Re-export the building blocks so downstream users need only this crate.
pub use sparker_blocking as blocking;
pub use sparker_clustering as clustering;
pub use sparker_dataflow as dataflow;
pub use sparker_looseschema as looseschema;
pub use sparker_matching as matching;
pub use sparker_metablocking as metablocking;
pub use sparker_profiles as profiles;
