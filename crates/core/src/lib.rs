//! # sparker-core
//!
//! The public face of the SparkER reproduction: the three-module pipeline
//! of the paper's Figure 3 (blocker → entity matcher → entity clusterer),
//! a configuration system covering every tunable the paper's
//! process-debugging section exposes, per-step evaluation against a ground
//! truth, and the representative-sampling / false-positive-drill-down
//! tooling of Section 3.
//!
//! ## The `ExecutionBackend` seam
//!
//! SparkER's defining claim is that *one* ER pipeline runs unchanged on a
//! parallel substrate. This crate mirrors that with a single generic
//! driver, [`Pipeline::run_on`], over a pluggable [`ExecutionBackend`]:
//!
//! ```text
//!                        │ Sequential │ Dataflow          │ Pool
//!  ──────────────────────┼────────────┼───────────────────┼──────────────────
//!  build_blocks          │ driver loop│ shuffle op        │ shuffle op
//!  filter_blocks         │ driver loop│ shuffle op        │ shuffle op
//!  prune_candidates      │ node scan  │ broadcast join    │ cost morsels
//!  score_pairs           │ pair loop  │ broadcast map     │ CSR streaming
//!  cluster_edges (CC)    │ union–find │ label propagation │ forest merge
//! ```
//!
//! `run_on` owns stage ordering, timing and result assembly; each backend
//! is a thin strategy over the five stage entry points, and every stage —
//! on every backend — runs inside a [`StageScope`] that records wall/busy
//! time and input/output cardinalities into the run's [`PipelineReport`].
//! The historical drivers ([`Pipeline::run`], [`Pipeline::run_dataflow`],
//! [`Pipeline::run_pipeline_parallel`]) are one-line wrappers selecting a
//! backend, and all backends produce byte-identical results at any worker
//! count.
//!
//! ```
//! use sparker_core::{ExecutionBackend, Pipeline, PipelineConfig};
//! use sparker_datasets::{generate, DatasetConfig};
//!
//! let ds = generate(&DatasetConfig { entities: 80, unmatched_per_source: 20, ..Default::default() });
//! let result = Pipeline::new(PipelineConfig::default())
//!     .run_on(&ExecutionBackend::pool(4), &ds.collection);
//! let eval = result.evaluate(&ds.ground_truth);
//! assert!(eval.blocking.recall > 0.8);
//! println!("{}", result.report.render_table());
//! ```

mod backend;
mod config;
mod debug;
mod evaluate;
mod export;
mod parallel;
mod pipeline;
mod report;

pub use backend::ExecutionBackend;
pub use config::{BlockingConfig, ClusteringAlgorithm, MatcherConfig, PipelineConfig, PurgeConfig};
pub use debug::{
    representative_sample, threshold_sweep, FalsePositive, LostPairsReport, SampleConfig,
    ThresholdSweepRow,
};
pub use evaluate::{BlockingQuality, PairQuality, PipelineEvaluation};
pub use export::{export_edges_tsv, WeightFilter};
pub use pipeline::{BlockerOutput, Pipeline, PipelineResult, StepTimings, FUSED_CHANNEL_CAP_ENV};
pub use report::{PipelineReport, PipelineStage, StageReport, StageScope};

// Re-export the building blocks so downstream users need only this crate.
pub use sparker_blocking as blocking;
pub use sparker_clustering as clustering;
pub use sparker_dataflow as dataflow;
pub use sparker_looseschema as looseschema;
pub use sparker_matching as matching;
pub use sparker_metablocking as metablocking;
pub use sparker_profiles as profiles;
