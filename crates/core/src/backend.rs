//! Pluggable execution substrates for the unified pipeline driver.
//!
//! SparkER's defining claim is that *one* ER pipeline runs unchanged on a
//! parallel substrate. [`ExecutionBackend`] is that seam in this
//! reproduction: the single driver ([`crate::Pipeline::run_on`]) owns stage
//! ordering, timing and result assembly, and delegates each stage —
//! [`build_blocks`](ExecutionBackend::build_blocks),
//! [`filter_blocks`](ExecutionBackend::filter_blocks),
//! [`prune_candidates`](ExecutionBackend::prune_candidates),
//! [`score_pairs`](ExecutionBackend::score_pairs),
//! [`cluster_edges`](ExecutionBackend::cluster_edges) — to the selected
//! backend. Adding a new substrate means implementing these five entry
//! points, not writing a fourth driver.

use sparker_blocking::{
    block_filtering, keyed_blocking, token_blocking_with_dict_budgeted, BlockCollection,
};
use sparker_clustering::{
    cluster_edges, ClusteringAlgorithm, CollectionShape, ComponentsMode, EntityClusters,
};
use sparker_dataflow::{Context, MemBudget};
use sparker_looseschema::{loose_schema_keys, AttributePartitioning};
use sparker_matching::{CandidateGraph, Matcher, SimilarityGraph, ThresholdMatcher};
use sparker_metablocking::{
    meta_blocking_graph, parallel, BlockEntropies, BlockGraph, MetaBlockingConfig,
};
use sparker_profiles::{Pair, ProfileCollection};
use std::collections::HashSet;
use std::sync::Arc;

/// An execution substrate for the ER pipeline.
///
/// Each variant is a thin strategy over a pre-existing implementation; the
/// three correspond to the historical drivers `Pipeline::run`,
/// `Pipeline::run_dataflow` and `Pipeline::run_pipeline_parallel`, which
/// are now one-line wrappers over [`crate::Pipeline::run_on`] with the
/// matching backend. All backends produce byte-identical results at any
/// worker count (pinned by the backend-matrix parity suite).
#[derive(Debug, Clone)]
pub enum ExecutionBackend {
    /// Single-threaded driver loops.
    Sequential,
    /// Every data-parallel stage as dataflow operators: shuffle-based
    /// blocking and filtering, broadcast-join meta-blocking, broadcast
    /// matching, label-propagation connected components (the GraphX path).
    Dataflow(Context),
    /// Morsel-driven persistent worker pool: dataflow blocker stages, CSR
    /// candidate streaming with degree-cost morsels in the matcher,
    /// per-worker union–find forests in the clusterer.
    Pool(Context),
    /// The pool backend with the prune→score stages fused: meta-blocking
    /// emits pruned pairs through a bounded morsel channel and the matcher
    /// scores them concurrently on the same pool, so the candidates and
    /// matching critical paths overlap and no `CandidateGraph` is ever
    /// materialized. Byte-identical to [`ExecutionBackend::Pool`] (pinned
    /// by the parity matrix); stage entry points called individually
    /// behave exactly as the pool backend — the fusion lives in
    /// [`crate::Pipeline::run_on`]'s driver.
    FusedPool(Context),
}

impl ExecutionBackend {
    /// The dataflow backend on a fresh engine context with `workers`
    /// workers.
    pub fn dataflow(workers: usize) -> Self {
        ExecutionBackend::Dataflow(Context::new(workers))
    }

    /// The pool backend on a fresh engine context with `workers` workers.
    pub fn pool(workers: usize) -> Self {
        ExecutionBackend::Pool(Context::new(workers))
    }

    /// The fused pool backend on a fresh engine context with `workers`
    /// workers.
    pub fn fused(workers: usize) -> Self {
        ExecutionBackend::FusedPool(Context::new(workers))
    }

    /// Parse a backend name (`"sequential"`, `"dataflow"`, `"pool"`,
    /// `"fused"`), attaching a `workers`-sized engine context where one is
    /// needed.
    pub fn parse(name: &str, workers: usize) -> Result<Self, String> {
        match name {
            "sequential" => Ok(ExecutionBackend::Sequential),
            "dataflow" => Ok(ExecutionBackend::dataflow(workers)),
            "pool" => Ok(ExecutionBackend::pool(workers)),
            "fused" => Ok(ExecutionBackend::fused(workers)),
            other => Err(format!(
                "unknown backend {other:?}; expected sequential, dataflow, pool or fused"
            )),
        }
    }

    /// Stable backend name.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutionBackend::Sequential => "sequential",
            ExecutionBackend::Dataflow(_) => "dataflow",
            ExecutionBackend::Pool(_) => "pool",
            ExecutionBackend::FusedPool(_) => "fused",
        }
    }

    /// The engine context of an engine-backed variant (`None` for
    /// [`ExecutionBackend::Sequential`]).
    pub fn context(&self) -> Option<&Context> {
        match self {
            ExecutionBackend::Sequential => None,
            ExecutionBackend::Dataflow(ctx)
            | ExecutionBackend::Pool(ctx)
            | ExecutionBackend::FusedPool(ctx) => Some(ctx),
        }
    }

    /// Worker count (1 for the sequential backend).
    pub fn workers(&self) -> usize {
        self.context().map_or(1, Context::workers)
    }

    /// The memory budget the backend runs under: the engine context's
    /// budget on engine backends (set via [`Context::with_budget`] or the
    /// `SPARKER_MEM_BUDGET_MB` environment variable), a fresh
    /// [`MemBudget::from_env`] on the sequential backend. Clones share
    /// counters with the source, so spill statistics accumulated during a
    /// run are visible through any clone.
    pub fn budget(&self) -> MemBudget {
        match self {
            ExecutionBackend::Sequential => MemBudget::from_env(),
            ExecutionBackend::Dataflow(ctx)
            | ExecutionBackend::Pool(ctx)
            | ExecutionBackend::FusedPool(ctx) => ctx.budget().clone(),
        }
    }

    /// Stage 1 — (token / loose-schema-keyed) blocking.
    ///
    /// Loose-schema generation itself stays on the driver (it reduces over
    /// a handful of attributes — SparkER does the same); this entry point
    /// turns the collection into blocks on the backend's substrate.
    pub fn build_blocks(
        &self,
        collection: &ProfileCollection,
        partitioning: Option<&AttributePartitioning>,
        budget: &MemBudget,
    ) -> BlockCollection {
        match (self, partitioning) {
            (ExecutionBackend::Sequential, Some(parts)) => {
                keyed_blocking(collection, |p| loose_schema_keys(p, parts))
            }
            (ExecutionBackend::Sequential, None) => {
                let (dict, compact) = token_blocking_with_dict_budgeted(collection, budget);
                compact.materialize(&dict)
            }
            (
                ExecutionBackend::Dataflow(ctx)
                | ExecutionBackend::Pool(ctx)
                | ExecutionBackend::FusedPool(ctx),
                Some(parts),
            ) => sparker_blocking::dataflow::keyed_blocking(ctx, collection, |p| {
                loose_schema_keys(p, parts)
            }),
            (
                ExecutionBackend::Dataflow(ctx)
                | ExecutionBackend::Pool(ctx)
                | ExecutionBackend::FusedPool(ctx),
                None,
            ) => sparker_blocking::dataflow::token_blocking(ctx, collection),
        }
    }

    /// Stage 2 (second half) — block filtering at `ratio`.
    ///
    /// Block *purging* is a metadata-level filter over block statistics —
    /// cheap on the driver on every backend (SparkER's purging likewise
    /// reduces tiny per-block stats) — so the driver applies it directly;
    /// only filtering is a backend entry point.
    pub fn filter_blocks(&self, blocks: BlockCollection, ratio: f64) -> BlockCollection {
        match self {
            ExecutionBackend::Sequential => block_filtering(blocks, ratio),
            ExecutionBackend::Dataflow(ctx)
            | ExecutionBackend::Pool(ctx)
            | ExecutionBackend::FusedPool(ctx) => {
                sparker_blocking::dataflow::block_filtering(ctx, blocks, ratio)
            }
        }
    }

    /// Stage 3 — meta-blocking: build the block graph and prune it to the
    /// retained weighted candidate edges.
    pub fn prune_candidates(
        &self,
        blocks: &BlockCollection,
        entropies: Option<&BlockEntropies>,
        config: &MetaBlockingConfig,
        budget: &MemBudget,
    ) -> Vec<(Pair, f64)> {
        match self {
            ExecutionBackend::Sequential => {
                let graph = BlockGraph::new_budgeted(blocks, entropies, budget);
                meta_blocking_graph(&graph, config)
            }
            ExecutionBackend::Dataflow(ctx)
            | ExecutionBackend::Pool(ctx)
            | ExecutionBackend::FusedPool(ctx) => {
                let graph = Arc::new(BlockGraph::new_budgeted(blocks, entropies, budget));
                parallel::meta_blocking(ctx, &graph, config)
            }
        }
    }

    /// Stage 4 — entity matching: score every candidate pair, keep those
    /// at or above the matcher's threshold.
    pub fn score_pairs(
        &self,
        matcher: &ThresholdMatcher,
        collection: &ProfileCollection,
        candidates: &HashSet<Pair>,
        budget: &MemBudget,
    ) -> SimilarityGraph {
        match self {
            ExecutionBackend::Sequential => {
                matcher.match_pairs(collection, candidates.iter().copied())
            }
            ExecutionBackend::Dataflow(ctx) => {
                let mut pairs: Vec<Pair> = candidates.iter().copied().collect();
                pairs.sort_unstable();
                matcher.match_pairs_dataflow(ctx, collection, pairs)
            }
            ExecutionBackend::Pool(ctx) | ExecutionBackend::FusedPool(ctx) => {
                let graph = Arc::new(CandidateGraph::from_pairs_budgeted(
                    collection.len(),
                    candidates.iter().copied(),
                    budget,
                ));
                matcher.match_candidates_pool(ctx, collection, &graph)
            }
        }
    }

    /// Stage 5 — entity clustering of the similarity graph.
    ///
    /// Delegates to the workspace's single [`cluster_edges`] dispatch; the
    /// backend only selects the [`ComponentsMode`] for connected
    /// components.
    pub fn cluster_edges(
        &self,
        algorithm: ClusteringAlgorithm,
        edges: &[(Pair, f64)],
        collection: &ProfileCollection,
    ) -> EntityClusters {
        let mode = match self {
            ExecutionBackend::Sequential => ComponentsMode::Sequential,
            ExecutionBackend::Dataflow(ctx) => ComponentsMode::Dataflow(ctx),
            ExecutionBackend::Pool(ctx) | ExecutionBackend::FusedPool(ctx) => {
                ComponentsMode::Pool(ctx)
            }
        };
        cluster_edges(
            algorithm,
            mode,
            edges,
            CollectionShape {
                num_profiles: collection.len(),
                kind: collection.kind(),
                separator: collection.separator(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_backend() {
        for name in ["sequential", "dataflow", "pool", "fused"] {
            let backend = ExecutionBackend::parse(name, 3).unwrap();
            assert_eq!(backend.name(), name);
            if name == "sequential" {
                assert!(backend.context().is_none());
                assert_eq!(backend.workers(), 1);
            } else {
                assert_eq!(backend.workers(), 3);
            }
        }
        assert!(ExecutionBackend::parse("spark", 2).is_err());
    }
}
