//! The three-module pipeline of the paper's Figure 3, as one unified
//! driver over a pluggable [`ExecutionBackend`].
//!
//! [`Pipeline::run_on`] is the single source of truth for stage ordering,
//! timing and result assembly; the historical entry points
//! ([`Pipeline::run`], `run_dataflow`, `run_pipeline_parallel`) are
//! one-line wrappers selecting a backend.

use crate::backend::ExecutionBackend;
use crate::config::{PipelineConfig, PurgeConfig};
use crate::evaluate::{BlockingQuality, PairQuality, PipelineEvaluation};
use crate::report::{PipelineReport, PipelineStage, StageReport, StageScope};
use sparker_blocking::{purge_by_comparison_level, purge_oversized, BlockCollection};
use sparker_clustering::EntityClusters;
use sparker_dataflow::{fused_channel_capacity, Context, MemBudget, WorkerLocal};
use sparker_looseschema::{partition_attributes, AttributePartitioning};
use sparker_matching::{SimilarityGraph, ThresholdMatcher};
use sparker_metablocking::{
    block_entropies, BlockEntropies, BlockGraph, MetaBlockingConfig, StreamingMetaBlocking,
};
use sparker_profiles::{GroundTruth, Pair, ProfileCollection};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment override for the fused prune→score channel capacity
/// (in queued morsel payloads). Any value must leave results unchanged —
/// capacity is a schedule-only knob, pinned by the parity proptests.
pub const FUSED_CHANNEL_CAP_ENV: &str = "SPARKER_FUSED_CHANNEL_CAP";

/// Wall-clock time of each pipeline step — the legacy four-way split,
/// derived from the per-stage [`PipelineReport`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimings {
    /// Block construction: loose schema + blocking + purging + filtering
    /// (the report's `build_blocks` + `filter_blocks` stages).
    pub blocking: Duration,
    /// Candidate generation: meta-blocking when enabled, plain pair
    /// enumeration of the cleaned blocks otherwise (the report's
    /// `prune_candidates` stage).
    pub candidates: Duration,
    /// Entity matcher (the report's `score_pairs` stage).
    pub matching: Duration,
    /// Entity clusterer (the report's `cluster_edges` stage).
    pub clustering: Duration,
}

impl StepTimings {
    /// Sum over all steps.
    pub fn total(&self) -> Duration {
        self.blocking + self.candidates + self.matching + self.clustering
    }
}

/// Everything the blocker produced, kept for debugging and evaluation.
#[derive(Debug, Clone)]
pub struct BlockerOutput {
    /// Loose-schema partitioning, when enabled.
    pub partitioning: Option<AttributePartitioning>,
    /// Block count straight out of (token/keyed) blocking.
    pub initial_blocks: usize,
    /// Comparison count straight out of blocking.
    pub initial_comparisons: u64,
    /// Block count after purging + filtering.
    pub cleaned_blocks: usize,
    /// Comparison count after purging + filtering.
    pub cleaned_comparisons: u64,
    /// The final candidate pairs (post meta-blocking when enabled).
    pub candidates: HashSet<Pair>,
    /// Retained edges with meta-blocking weights (empty when meta-blocking
    /// is disabled).
    pub weighted_candidates: Vec<(Pair, f64)>,
}

/// Result of a full pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Blocker outputs (candidates and statistics).
    pub blocker: BlockerOutput,
    /// The similarity graph retained by the matcher.
    pub similarity: SimilarityGraph,
    /// The final entity clusters.
    pub clusters: EntityClusters,
    /// Per-step wall-clock times (derived from [`PipelineResult::report`]).
    pub timings: StepTimings,
    /// Structured per-stage report: backend, workers, and wall/busy time
    /// plus input/output cardinalities for every stage.
    pub report: PipelineReport,
    /// Comparable pairs of the input collection (reduction-ratio baseline).
    comparable_pairs: u64,
}

impl PipelineResult {
    /// Evaluate every step against a ground truth.
    pub fn evaluate(&self, ground_truth: &GroundTruth) -> PipelineEvaluation {
        let blocking = BlockingQuality::measure_with_total(
            &self.blocker.candidates,
            ground_truth,
            self.comparable_pairs,
        );
        let matching =
            PairQuality::measure(self.similarity.edges().iter().map(|(p, _)| p), ground_truth);
        let clustering = PairQuality::of_clusters(&self.clusters, ground_truth);
        PipelineEvaluation {
            blocking,
            matching,
            clustering,
        }
    }
}

/// The SparkER pipeline: blocker → entity matcher → entity clusterer.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Run only the blocker module (Figure 4) on the sequential backend.
    pub fn run_blocker(&self, collection: &ProfileCollection) -> BlockerOutput {
        let backend = ExecutionBackend::Sequential;
        let budget = backend.budget();
        self.run_blocker_on(&backend, collection, &budget).0
    }

    /// The blocker half of the unified driver: `build_blocks`,
    /// `filter_blocks` and `prune_candidates` on the given backend, each
    /// inside a [`StageScope`]. `budget` is the run's memory budget,
    /// resolved once by the caller so sequential-backend spill statistics
    /// accumulate across stages. Returns the blocker output plus the three
    /// stage-report rows.
    pub(crate) fn run_blocker_on(
        &self,
        backend: &ExecutionBackend,
        collection: &ProfileCollection,
        budget: &MemBudget,
    ) -> (BlockerOutput, Vec<StageReport>, ScoringStats) {
        let bc = &self.config.blocking;
        let ctx = backend.context();
        let BlockStages {
            partitioning,
            blocks,
            initial_blocks,
            initial_comparisons,
            mut stages,
        } = self.run_block_stages(backend, collection, budget);
        let cleaned_blocks = blocks.len();
        let cleaned_comparisons = blocks.total_comparisons();

        // Stage 3: meta-blocking when enabled, plain pair enumeration of
        // the cleaned blocks otherwise.
        let scope = StageScope::begin(PipelineStage::PruneCandidates, ctx, budget);
        let mut scoring = ScoringStats::off();
        let (candidates, weighted_candidates) = match &bc.meta_blocking {
            None => (blocks.candidate_pairs(), Vec::new()),
            Some(mb) => {
                let entropies = entropies_for(mb, partitioning.as_ref(), &blocks, collection);
                let started = Instant::now();
                let retained = backend.prune_candidates(&blocks, entropies.as_ref(), mb, budget);
                scoring = ScoringStats {
                    edge_scorer: mb.scorer.name(),
                    time: started.elapsed(),
                };
                let set: HashSet<Pair> = retained.iter().map(|(p, _)| *p).collect();
                (set, retained)
            }
        };
        stages.push(scope.finish(cleaned_comparisons, candidates.len() as u64));

        let output = BlockerOutput {
            partitioning,
            initial_blocks,
            initial_comparisons,
            cleaned_blocks,
            cleaned_comparisons,
            candidates,
            weighted_candidates,
        };
        (output, stages, scoring)
    }

    /// Stages 1–2 — blocking and purging/filtering — shared by the staged
    /// and fused drivers. Returns the cleaned blocks plus the two stage
    /// rows.
    fn run_block_stages(
        &self,
        backend: &ExecutionBackend,
        collection: &ProfileCollection,
        budget: &MemBudget,
    ) -> BlockStages {
        let bc = &self.config.blocking;
        let ctx = backend.context();
        let mut stages = Vec::with_capacity(PipelineStage::ALL.len());

        // Stage 1: loose schema (driver) + (token/keyed) blocking.
        let scope = StageScope::begin(PipelineStage::BuildBlocks, ctx, budget);
        let partitioning = bc
            .loose_schema
            .as_ref()
            .map(|lsh| partition_attributes(collection, lsh));
        let blocks = backend.build_blocks(collection, partitioning.as_ref(), budget);
        let initial_blocks = blocks.len();
        let initial_comparisons = blocks.total_comparisons();
        stages.push(scope.finish(collection.len() as u64, initial_blocks as u64));

        // Stage 2: block purging (a driver-side metadata filter on every
        // backend) + block filtering (a backend stage).
        let scope = StageScope::begin(PipelineStage::FilterBlocks, ctx, budget);
        let blocks = match bc.purge {
            PurgeConfig::Off => blocks,
            PurgeConfig::Oversized { max_fraction } => {
                purge_oversized(blocks, collection.len(), max_fraction)
            }
            PurgeConfig::ComparisonLevel { smoothing } => {
                purge_by_comparison_level(blocks, smoothing)
            }
        };
        let blocks = match bc.filter_ratio {
            Some(ratio) => backend.filter_blocks(blocks, ratio),
            None => blocks,
        };
        stages.push(scope.finish(initial_blocks as u64, blocks.len() as u64));

        BlockStages {
            partitioning,
            blocks,
            initial_blocks,
            initial_comparisons,
            stages,
        }
    }

    /// Run the full pipeline on the given backend — the single
    /// stage-ordering/timing/assembly code path of the workspace.
    ///
    /// All backends produce byte-identical results at any worker count
    /// (pinned by the backend-matrix parity suite in
    /// `tests/pipeline_parity.rs`):
    ///
    /// ```
    /// use sparker_core::{ExecutionBackend, Pipeline, PipelineConfig};
    /// use sparker_datasets::{generate, DatasetConfig};
    ///
    /// let ds = generate(&DatasetConfig { entities: 60, ..DatasetConfig::default() });
    /// let pipeline = Pipeline::new(PipelineConfig::default());
    ///
    /// let sequential = pipeline.run_on(&ExecutionBackend::Sequential, &ds.collection);
    /// let pool = pipeline.run_on(&ExecutionBackend::pool(4), &ds.collection);
    /// assert_eq!(sequential.clusters, pool.clusters);
    /// ```
    pub fn run_on(
        &self,
        backend: &ExecutionBackend,
        collection: &ProfileCollection,
    ) -> PipelineResult {
        let budget = backend.budget();

        // The fused backend overlaps prune and score whenever meta-blocking
        // is on; without meta-blocking there is no pruning stage to fuse,
        // so it degrades to the staged pool path below.
        if let ExecutionBackend::FusedPool(ctx) = backend {
            if let Some(mb) = self.config.blocking.meta_blocking {
                return self.run_fused(backend, ctx, &mb, collection, &budget);
            }
        }

        let (blocker, mut stages, scoring) = self.run_blocker_on(backend, collection, &budget);
        let ctx = backend.context();

        // Stage 4: entity matching.
        let scope = StageScope::begin(PipelineStage::ScorePairs, ctx, &budget);
        let matcher =
            ThresholdMatcher::new(self.config.matching.measure, self.config.matching.threshold);
        let similarity = backend.score_pairs(&matcher, collection, &blocker.candidates, &budget);
        stages.push(scope.finish(blocker.candidates.len() as u64, similarity.len() as u64));

        // Stage 5: entity clustering.
        let scope = StageScope::begin(PipelineStage::ClusterEdges, ctx, &budget);
        let clusters =
            backend.cluster_edges(self.config.clustering, similarity.edges(), collection);
        stages.push(scope.finish(similarity.len() as u64, clusters.num_clusters() as u64));

        assemble_result(
            backend, &budget, stages, scoring, blocker, similarity, clusters, collection,
        )
    }

    /// The fused driver: stages 1–2 as usual, then prune→score as one
    /// overlapped pool batch — meta-blocking's pass B emits pruned pairs
    /// range by range through a bounded channel
    /// ([`StreamingMetaBlocking::prune_range`]) and the matcher's cascade
    /// scores them concurrently ([`ThresholdMatcher::score_stream`]). No
    /// `CandidateGraph` is built and the full pair list first exists
    /// *after* scoring finished. Byte-identical to the staged path at any
    /// worker count and channel capacity (pinned by the parity matrix).
    ///
    /// Report shape is unchanged (all five stage rows): `prune_candidates`
    /// covers the graph build + pass A, `score_pairs` covers the fused
    /// batch — its busy time counts both pruning and scoring work, so
    /// overlap shows up as busy ≫ wall at multiple workers.
    fn run_fused(
        &self,
        backend: &ExecutionBackend,
        ctx: &Context,
        mb: &MetaBlockingConfig,
        collection: &ProfileCollection,
        budget: &MemBudget,
    ) -> PipelineResult {
        let BlockStages {
            partitioning,
            blocks,
            initial_blocks,
            initial_comparisons,
            mut stages,
        } = self.run_block_stages(backend, collection, budget);
        let cleaned_blocks = blocks.len();
        let cleaned_comparisons = blocks.total_comparisons();

        // Stage 3: block graph + pass A (per-node statistics, rule
        // resolution). The pruned-pair count isn't known until the fused
        // batch drains, so the row's output is patched below.
        let scope = StageScope::begin(PipelineStage::PruneCandidates, Some(ctx), budget);
        let entropies = entropies_for(mb, partitioning.as_ref(), &blocks, collection);
        let graph = Arc::new(BlockGraph::new_budgeted(
            &blocks,
            entropies.as_ref(),
            budget,
        ));
        let scoring_started = Instant::now();
        let stream = StreamingMetaBlocking::prepare(ctx, &graph, mb);
        let scoring = ScoringStats {
            edge_scorer: mb.scorer.name(),
            time: scoring_started.elapsed(),
        };
        let prune_row = stages.len();
        stages.push(scope.finish(cleaned_comparisons, 0));

        // Stage 4: the fused prune→score batch.
        let scope = StageScope::begin(PipelineStage::ScorePairs, Some(ctx), budget);
        let matcher =
            ThresholdMatcher::new(self.config.matching.measure, self.config.matching.threshold);
        let morsels = stream.cost_morsels(ctx.workers() * 32);
        let payload_bytes = (stream.total_edges() * 16 / morsels.len().max(1) as u64).max(1);
        let capacity = std::env::var(FUSED_CHANNEL_CAP_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| fused_channel_capacity(budget, ctx.workers(), payload_bytes));
        let prune_locals = Arc::new(WorkerLocal::new(ctx.workers(), || stream.make_scratch()));
        let outcome = matcher.score_stream(ctx, collection, &morsels, capacity, {
            let stream = &stream;
            let prune_locals = Arc::clone(&prune_locals);
            move |worker, range: &std::ops::Range<u32>| {
                prune_locals.with(worker, |scratch| stream.prune_range(range.clone(), scratch))
            }
        });
        let candidates: HashSet<Pair> = outcome.retained.iter().map(|(p, _)| *p).collect();
        let similarity = outcome.similarity;
        stages[prune_row].output = candidates.len() as u64;
        stages.push(scope.finish(candidates.len() as u64, similarity.len() as u64));

        // Stage 5: entity clustering.
        let scope = StageScope::begin(PipelineStage::ClusterEdges, Some(ctx), budget);
        let clusters =
            backend.cluster_edges(self.config.clustering, similarity.edges(), collection);
        stages.push(scope.finish(similarity.len() as u64, clusters.num_clusters() as u64));

        let blocker = BlockerOutput {
            partitioning,
            initial_blocks,
            initial_comparisons,
            cleaned_blocks,
            cleaned_comparisons,
            candidates,
            weighted_candidates: outcome.retained,
        };
        assemble_result(
            backend, budget, stages, scoring, blocker, similarity, clusters, collection,
        )
    }

    /// Run the full pipeline on the sequential backend.
    pub fn run(&self, collection: &ProfileCollection) -> PipelineResult {
        self.run_on(&ExecutionBackend::Sequential, collection)
    }
}

/// Edge-scorer observability of one blocker run: which scorer weighted the
/// edges and how long the scoring work took (see
/// [`PipelineReport::edge_scorer`] / [`PipelineReport::scoring`]).
pub(crate) struct ScoringStats {
    edge_scorer: &'static str,
    time: Duration,
}

impl ScoringStats {
    fn off() -> ScoringStats {
        ScoringStats {
            edge_scorer: "off",
            time: Duration::ZERO,
        }
    }
}

/// Output of [`Pipeline::run_block_stages`]: the cleaned block collection
/// plus everything the later stages and the blocker output need.
struct BlockStages {
    partitioning: Option<AttributePartitioning>,
    blocks: BlockCollection,
    initial_blocks: usize,
    initial_comparisons: u64,
    stages: Vec<StageReport>,
}

/// Per-block entropies for entropy re-weighting, when enabled. Without a
/// loose-schema partitioning every key falls in a blob partition whose
/// entropy is constant, so entropy weighting degenerates gracefully to the
/// unweighted scheme.
fn entropies_for(
    mb: &MetaBlockingConfig,
    partitioning: Option<&AttributePartitioning>,
    blocks: &BlockCollection,
    collection: &ProfileCollection,
) -> Option<BlockEntropies> {
    if !mb.use_entropy {
        return None;
    }
    match partitioning {
        Some(parts) => Some(block_entropies(blocks, parts)),
        None => {
            let fallback = AttributePartitioning::manual(collection, vec![]);
            Some(block_entropies(blocks, &fallback))
        }
    }
}

/// Assemble the report and final result — shared tail of the staged and
/// fused drivers.
#[allow(clippy::too_many_arguments)]
fn assemble_result(
    backend: &ExecutionBackend,
    budget: &MemBudget,
    stages: Vec<StageReport>,
    scoring: ScoringStats,
    blocker: BlockerOutput,
    similarity: SimilarityGraph,
    clusters: EntityClusters,
    collection: &ProfileCollection,
) -> PipelineResult {
    let report = PipelineReport {
        backend: backend.name(),
        workers: backend.workers(),
        edge_scorer: scoring.edge_scorer,
        scoring: scoring.time,
        stages,
        mem_budget_bytes: budget.limit_bytes(),
        peak_rss_bytes: MemBudget::peak_rss_bytes(),
        spill_batches: budget.spill_batches(),
        spilled_bytes: budget.spilled_bytes(),
    };
    let timings = report.step_timings();
    PipelineResult {
        blocker,
        similarity,
        clusters,
        timings,
        report,
        comparable_pairs: collection.comparable_pairs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BlockingConfig, ClusteringAlgorithm};
    use sparker_datasets::{generate, DatasetConfig, NoiseConfig};

    fn dataset(entities: usize) -> sparker_datasets::GeneratedDataset {
        generate(&DatasetConfig {
            entities,
            unmatched_per_source: entities / 4,
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn default_pipeline_end_to_end() {
        let ds = dataset(100);
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        let eval = result.evaluate(&ds.ground_truth);
        assert!(
            eval.blocking.recall > 0.85,
            "blocking recall {}",
            eval.blocking.recall
        );
        assert!(
            eval.blocking.reduction_ratio > 0.5,
            "reduction {}",
            eval.blocking.reduction_ratio
        );
        assert!(
            eval.clustering.f1 > 0.6,
            "cluster F1 {}",
            eval.clustering.f1
        );
        assert!(result.blocker.initial_blocks > 0);
        assert!(result.blocker.cleaned_comparisons <= result.blocker.initial_comparisons);
    }

    #[test]
    fn blast_pipeline_end_to_end() {
        let ds = dataset(100);
        let config = PipelineConfig {
            blocking: BlockingConfig::blast(),
            ..PipelineConfig::default()
        };
        let result = Pipeline::new(config).run(&ds.collection);
        assert!(result.blocker.partitioning.is_some());
        let eval = result.evaluate(&ds.ground_truth);
        assert!(
            eval.blocking.recall > 0.7,
            "blast recall {}",
            eval.blocking.recall
        );
        assert!(!result.blocker.weighted_candidates.is_empty());
    }

    #[test]
    fn meta_blocking_reduces_candidates() {
        let ds = dataset(120);
        let mut no_mb = PipelineConfig::default();
        no_mb.blocking.meta_blocking = None;
        let with_mb = PipelineConfig::default();
        let base = Pipeline::new(no_mb).run_blocker(&ds.collection);
        let pruned = Pipeline::new(with_mb).run_blocker(&ds.collection);
        assert!(
            pruned.candidates.len() < base.candidates.len(),
            "{} !< {}",
            pruned.candidates.len(),
            base.candidates.len()
        );
    }

    #[test]
    fn all_clustering_algorithms_run() {
        let ds = dataset(60);
        for algo in [
            ClusteringAlgorithm::ConnectedComponents,
            ClusteringAlgorithm::Center,
            ClusteringAlgorithm::MergeCenter,
            ClusteringAlgorithm::UniqueMapping,
        ] {
            let config = PipelineConfig {
                clustering: algo,
                ..PipelineConfig::default()
            };
            let result = Pipeline::new(config).run(&ds.collection);
            let eval = result.evaluate(&ds.ground_truth);
            assert!(
                eval.clustering.f1 > 0.4,
                "{}: F1 {}",
                algo.name(),
                eval.clustering.f1
            );
        }
    }

    #[test]
    #[should_panic(expected = "clean-clean")]
    fn unique_mapping_on_dirty_panics() {
        let ds = sparker_datasets::generate_dirty(
            &DatasetConfig {
                entities: 20,
                ..DatasetConfig::default()
            },
            2,
        );
        let config = PipelineConfig {
            clustering: ClusteringAlgorithm::UniqueMapping,
            ..PipelineConfig::default()
        };
        Pipeline::new(config).run(&ds.collection);
    }

    #[test]
    fn dirty_pipeline_works() {
        let ds = sparker_datasets::generate_dirty(
            &DatasetConfig {
                entities: 60,
                noise: NoiseConfig::default(),
                ..DatasetConfig::default()
            },
            3,
        );
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        let eval = result.evaluate(&ds.ground_truth);
        assert!(
            eval.blocking.recall > 0.8,
            "dirty recall {}",
            eval.blocking.recall
        );
    }

    #[test]
    fn zero_noise_perfect_blocking_recall() {
        let ds = generate(&DatasetConfig {
            entities: 50,
            unmatched_per_source: 10,
            noise: NoiseConfig::none(),
            ..DatasetConfig::default()
        });
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        let eval = result.evaluate(&ds.ground_truth);
        assert_eq!(eval.blocking.lost_matches, 0);
        assert_eq!(eval.blocking.recall, 1.0);
    }

    #[test]
    fn timings_are_recorded() {
        let ds = dataset(40);
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        // Durations are non-negative by type; just check the steps ran.
        assert!(result.timings.blocking.as_nanos() > 0);
        assert!(result.timings.total() >= result.timings.blocking);
    }

    #[test]
    fn candidate_timing_split_from_blocking() {
        // The default config runs meta-blocking, so both halves of the old
        // combined "blocking" step must be separately visible and non-zero:
        // block construction in `blocking`, graph pruning in `candidates`.
        let ds = dataset(120);
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        assert!(
            result.timings.blocking.as_nanos() > 0,
            "block construction timed"
        );
        assert!(
            result.timings.candidates.as_nanos() > 0,
            "meta-blocking timed"
        );
        assert_eq!(
            result.timings.total(),
            result.timings.blocking
                + result.timings.candidates
                + result.timings.matching
                + result.timings.clustering
        );
    }

    #[test]
    fn report_covers_all_stages_and_matches_outputs() {
        use crate::report::PipelineStage;
        let ds = dataset(100);
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        let report = &result.report;
        assert_eq!(report.backend, "sequential");
        assert_eq!(report.workers, 1);
        let names: Vec<&str> = report.stages.iter().map(|s| s.stage.name()).collect();
        assert_eq!(
            names,
            PipelineStage::ALL
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
        );
        // Cardinalities line up with the assembled outputs.
        let stage = |s| report.stage(s).unwrap();
        assert_eq!(
            stage(PipelineStage::BuildBlocks).input,
            ds.collection.len() as u64
        );
        assert_eq!(
            stage(PipelineStage::BuildBlocks).output,
            result.blocker.initial_blocks as u64
        );
        assert_eq!(
            stage(PipelineStage::FilterBlocks).output,
            result.blocker.cleaned_blocks as u64
        );
        assert_eq!(
            stage(PipelineStage::PruneCandidates).output,
            result.blocker.candidates.len() as u64
        );
        assert_eq!(
            stage(PipelineStage::ScorePairs).output,
            result.similarity.len() as u64
        );
        assert_eq!(
            stage(PipelineStage::ClusterEdges).output,
            result.clusters.num_clusters() as u64
        );
        // The derived legacy split sums to the report's total.
        assert_eq!(result.timings.total(), report.total_wall());
    }
}
