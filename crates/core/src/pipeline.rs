//! The three-module pipeline of the paper's Figure 3.

use crate::config::{ClusteringAlgorithm, PipelineConfig, PurgeConfig};
use crate::evaluate::{BlockingQuality, PairQuality, PipelineEvaluation};
use sparker_blocking::{
    block_filtering, keyed_blocking, purge_by_comparison_level, purge_oversized, token_blocking,
    BlockCollection,
};
use sparker_clustering::{
    center_clustering, connected_components, merge_center_clustering, star_clustering,
    unique_mapping_clustering, EntityClusters,
};
use sparker_looseschema::{loose_schema_keys, partition_attributes, AttributePartitioning};
use sparker_matching::{Matcher, SimilarityGraph, ThresholdMatcher};
use sparker_metablocking::{block_entropies, meta_blocking_graph, BlockGraph};
use sparker_profiles::{ErKind, GroundTruth, Pair, ProfileCollection};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Wall-clock time of each pipeline step.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimings {
    /// Block construction: loose schema + blocking + purging + filtering.
    pub blocking: Duration,
    /// Candidate generation: meta-blocking when enabled, plain pair
    /// enumeration of the cleaned blocks otherwise. Split out of
    /// [`StepTimings::blocking`] so block construction and graph pruning
    /// can be compared independently.
    pub candidates: Duration,
    /// Entity matcher.
    pub matching: Duration,
    /// Entity clusterer.
    pub clustering: Duration,
}

impl StepTimings {
    /// Sum over all steps.
    pub fn total(&self) -> Duration {
        self.blocking + self.candidates + self.matching + self.clustering
    }
}

/// Everything the blocker produced, kept for debugging and evaluation.
#[derive(Debug, Clone)]
pub struct BlockerOutput {
    /// Loose-schema partitioning, when enabled.
    pub partitioning: Option<AttributePartitioning>,
    /// Block count straight out of (token/keyed) blocking.
    pub initial_blocks: usize,
    /// Comparison count straight out of blocking.
    pub initial_comparisons: u64,
    /// Block count after purging + filtering.
    pub cleaned_blocks: usize,
    /// Comparison count after purging + filtering.
    pub cleaned_comparisons: u64,
    /// The final candidate pairs (post meta-blocking when enabled).
    pub candidates: HashSet<Pair>,
    /// Retained edges with meta-blocking weights (empty when meta-blocking
    /// is disabled).
    pub weighted_candidates: Vec<(Pair, f64)>,
}

/// Result of a full pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Blocker outputs (candidates and statistics).
    pub blocker: BlockerOutput,
    /// The similarity graph retained by the matcher.
    pub similarity: SimilarityGraph,
    /// The final entity clusters.
    pub clusters: EntityClusters,
    /// Per-step wall-clock times.
    pub timings: StepTimings,
    /// Comparable pairs of the input collection (reduction-ratio baseline).
    comparable_pairs: u64,
}

impl PipelineResult {
    /// Assemble a result from its parts (shared by the sequential and
    /// dataflow runners).
    pub(crate) fn assemble(
        blocker: BlockerOutput,
        similarity: SimilarityGraph,
        clusters: EntityClusters,
        timings: StepTimings,
        comparable_pairs: u64,
    ) -> Self {
        PipelineResult {
            blocker,
            similarity,
            clusters,
            timings,
            comparable_pairs,
        }
    }

    /// Evaluate every step against a ground truth.
    pub fn evaluate(&self, ground_truth: &GroundTruth) -> PipelineEvaluation {
        let total = self.comparable_pairs;
        let blocking = {
            let recall = ground_truth.recall_of(self.blocker.candidates.iter());
            let precision = ground_truth.precision_of(self.blocker.candidates.iter());
            let reduction_ratio = if total == 0 {
                0.0
            } else {
                1.0 - self.blocker.candidates.len() as f64 / total as f64
            };
            let found = ground_truth
                .iter()
                .filter(|p| self.blocker.candidates.contains(p))
                .count() as u64;
            BlockingQuality {
                recall,
                precision,
                reduction_ratio,
                candidates: self.blocker.candidates.len() as u64,
                lost_matches: ground_truth.len() as u64 - found,
            }
        };
        let matching =
            PairQuality::measure(self.similarity.edges().iter().map(|(p, _)| p), ground_truth);
        let clustering = PairQuality::of_clusters(&self.clusters, ground_truth);
        PipelineEvaluation {
            blocking,
            matching,
            clustering,
        }
    }
}

/// The SparkER pipeline: blocker → entity matcher → entity clusterer.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Run only the blocker module (Figure 4).
    pub fn run_blocker(&self, collection: &ProfileCollection) -> BlockerOutput {
        self.run_blocker_timed(collection).0
    }

    /// [`Pipeline::run_blocker`] with the wall-clock split the pipeline
    /// timings report: (output, block-construction time, candidate-generation
    /// time). The boundary is the meta-blocking step.
    pub(crate) fn run_blocker_timed(
        &self,
        collection: &ProfileCollection,
    ) -> (BlockerOutput, Duration, Duration) {
        let bc = &self.config.blocking;
        let t_blocking = Instant::now();

        // Loose schema generation (optional).
        let partitioning = bc
            .loose_schema
            .as_ref()
            .map(|lsh| partition_attributes(collection, lsh));

        // (Token / loose-schema-keyed) blocking.
        let blocks: BlockCollection = match &partitioning {
            Some(parts) => keyed_blocking(collection, |p| loose_schema_keys(p, parts)),
            None => token_blocking(collection),
        };
        let initial_blocks = blocks.len();
        let initial_comparisons = blocks.total_comparisons();

        // Block purging.
        let blocks = match bc.purge {
            PurgeConfig::Off => blocks,
            PurgeConfig::Oversized { max_fraction } => {
                purge_oversized(blocks, collection.len(), max_fraction)
            }
            PurgeConfig::ComparisonLevel { smoothing } => {
                purge_by_comparison_level(blocks, smoothing)
            }
        };
        // Block filtering.
        let blocks = match bc.filter_ratio {
            Some(ratio) => block_filtering(blocks, ratio),
            None => blocks,
        };
        let cleaned_blocks = blocks.len();
        let cleaned_comparisons = blocks.total_comparisons();
        let blocking_time = t_blocking.elapsed();

        // Meta-blocking.
        let t_candidates = Instant::now();
        let (candidates, weighted_candidates) = match &bc.meta_blocking {
            None => (blocks.candidate_pairs(), Vec::new()),
            Some(mb) => {
                // Entropy re-weighting needs per-block entropies; without a
                // loose-schema partitioning every key falls in a blob
                // partition whose entropy is constant, so entropy weighting
                // degenerates gracefully to the unweighted scheme.
                let entropies = if mb.use_entropy {
                    let parts = partitioning.clone().unwrap_or_else(|| {
                        AttributePartitioning::manual(collection, vec![])
                    });
                    Some(block_entropies(&blocks, &parts))
                } else {
                    None
                };
                let graph = BlockGraph::new(&blocks, entropies.as_ref());
                let retained = meta_blocking_graph(&graph, mb);
                let set: HashSet<Pair> = retained.iter().map(|(p, _)| *p).collect();
                (set, retained)
            }
        };
        let candidates_time = t_candidates.elapsed();

        let output = BlockerOutput {
            partitioning,
            initial_blocks,
            initial_comparisons,
            cleaned_blocks,
            cleaned_comparisons,
            candidates,
            weighted_candidates,
        };
        (output, blocking_time, candidates_time)
    }

    /// Run the full pipeline.
    pub fn run(&self, collection: &ProfileCollection) -> PipelineResult {
        let (blocker, blocking_time, candidates_time) = self.run_blocker_timed(collection);

        let t1 = Instant::now();
        let matcher = ThresholdMatcher::new(self.config.matching.measure, self.config.matching.threshold);
        let similarity = matcher.match_pairs(collection, blocker.candidates.iter().copied());
        let matching_time = t1.elapsed();

        let t2 = Instant::now();
        let clusters = match self.config.clustering {
            ClusteringAlgorithm::ConnectedComponents => {
                connected_components(similarity.edges(), collection.len())
            }
            ClusteringAlgorithm::Center => center_clustering(similarity.edges(), collection.len()),
            ClusteringAlgorithm::MergeCenter => {
                merge_center_clustering(similarity.edges(), collection.len())
            }
            ClusteringAlgorithm::Star => star_clustering(similarity.edges(), collection.len()),
            ClusteringAlgorithm::UniqueMapping => {
                assert_eq!(
                    collection.kind(),
                    ErKind::CleanClean,
                    "unique-mapping clustering requires a clean-clean task"
                );
                unique_mapping_clustering(
                    similarity.edges(),
                    collection.len(),
                    collection.separator(),
                )
            }
        };
        let clustering_time = t2.elapsed();

        PipelineResult {
            blocker,
            similarity,
            clusters,
            timings: StepTimings {
                blocking: blocking_time,
                candidates: candidates_time,
                matching: matching_time,
                clustering: clustering_time,
            },
            comparable_pairs: collection.comparable_pairs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BlockingConfig;
    use sparker_datasets::{generate, DatasetConfig, NoiseConfig};

    fn dataset(entities: usize) -> sparker_datasets::GeneratedDataset {
        generate(&DatasetConfig {
            entities,
            unmatched_per_source: entities / 4,
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn default_pipeline_end_to_end() {
        let ds = dataset(100);
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        let eval = result.evaluate(&ds.ground_truth);
        assert!(eval.blocking.recall > 0.85, "blocking recall {}", eval.blocking.recall);
        assert!(
            eval.blocking.reduction_ratio > 0.5,
            "reduction {}",
            eval.blocking.reduction_ratio
        );
        assert!(eval.clustering.f1 > 0.6, "cluster F1 {}", eval.clustering.f1);
        assert!(result.blocker.initial_blocks > 0);
        assert!(result.blocker.cleaned_comparisons <= result.blocker.initial_comparisons);
    }

    #[test]
    fn blast_pipeline_end_to_end() {
        let ds = dataset(100);
        let config = PipelineConfig {
            blocking: BlockingConfig::blast(),
            ..PipelineConfig::default()
        };
        let result = Pipeline::new(config).run(&ds.collection);
        assert!(result.blocker.partitioning.is_some());
        let eval = result.evaluate(&ds.ground_truth);
        assert!(eval.blocking.recall > 0.7, "blast recall {}", eval.blocking.recall);
        assert!(!result.blocker.weighted_candidates.is_empty());
    }

    #[test]
    fn meta_blocking_reduces_candidates() {
        let ds = dataset(120);
        let mut no_mb = PipelineConfig::default();
        no_mb.blocking.meta_blocking = None;
        let with_mb = PipelineConfig::default();
        let base = Pipeline::new(no_mb).run_blocker(&ds.collection);
        let pruned = Pipeline::new(with_mb).run_blocker(&ds.collection);
        assert!(
            pruned.candidates.len() < base.candidates.len(),
            "{} !< {}",
            pruned.candidates.len(),
            base.candidates.len()
        );
    }

    #[test]
    fn all_clustering_algorithms_run() {
        let ds = dataset(60);
        for algo in [
            ClusteringAlgorithm::ConnectedComponents,
            ClusteringAlgorithm::Center,
            ClusteringAlgorithm::MergeCenter,
            ClusteringAlgorithm::UniqueMapping,
        ] {
            let config = PipelineConfig {
                clustering: algo,
                ..PipelineConfig::default()
            };
            let result = Pipeline::new(config).run(&ds.collection);
            let eval = result.evaluate(&ds.ground_truth);
            assert!(eval.clustering.f1 > 0.4, "{}: F1 {}", algo.name(), eval.clustering.f1);
        }
    }

    #[test]
    #[should_panic(expected = "clean-clean")]
    fn unique_mapping_on_dirty_panics() {
        let ds = sparker_datasets::generate_dirty(
            &DatasetConfig {
                entities: 20,
                ..DatasetConfig::default()
            },
            2,
        );
        let config = PipelineConfig {
            clustering: ClusteringAlgorithm::UniqueMapping,
            ..PipelineConfig::default()
        };
        Pipeline::new(config).run(&ds.collection);
    }

    #[test]
    fn dirty_pipeline_works() {
        let ds = sparker_datasets::generate_dirty(
            &DatasetConfig {
                entities: 60,
                noise: NoiseConfig::default(),
                ..DatasetConfig::default()
            },
            3,
        );
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        let eval = result.evaluate(&ds.ground_truth);
        assert!(eval.blocking.recall > 0.8, "dirty recall {}", eval.blocking.recall);
    }

    #[test]
    fn zero_noise_perfect_blocking_recall() {
        let ds = generate(&DatasetConfig {
            entities: 50,
            unmatched_per_source: 10,
            noise: NoiseConfig::none(),
            ..DatasetConfig::default()
        });
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        let eval = result.evaluate(&ds.ground_truth);
        assert_eq!(eval.blocking.lost_matches, 0);
        assert_eq!(eval.blocking.recall, 1.0);
    }

    #[test]
    fn timings_are_recorded() {
        let ds = dataset(40);
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        // Durations are non-negative by type; just check the steps ran.
        assert!(result.timings.blocking.as_nanos() > 0);
        assert!(result.timings.total() >= result.timings.blocking);
    }

    #[test]
    fn candidate_timing_split_from_blocking() {
        // The default config runs meta-blocking, so both halves of the old
        // combined "blocking" step must be separately visible and non-zero:
        // block construction in `blocking`, graph pruning in `candidates`.
        let ds = dataset(120);
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        assert!(result.timings.blocking.as_nanos() > 0, "block construction timed");
        assert!(result.timings.candidates.as_nanos() > 0, "meta-blocking timed");
        assert_eq!(
            result.timings.total(),
            result.timings.blocking
                + result.timings.candidates
                + result.timings.matching
                + result.timings.clustering
        );
    }
}
