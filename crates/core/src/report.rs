//! Stage-scoped observability: one structured report per pipeline run.
//!
//! Every stage of the unified driver — on every [`crate::ExecutionBackend`]
//! — runs inside a [`StageScope`] that records wall-clock time, engine busy
//! time and input/output cardinalities into a [`PipelineReport`]. The
//! report subsumes the old ad-hoc `StepTimings` stopwatch (still derivable
//! via [`PipelineReport::step_timings`]) and the counters that used to be
//! scattered over `BlockerOutput`; the `sparker` CLI renders it as a table
//! and the bench harness dumps it as JSON (see
//! [`PipelineReport::to_json`]).

use crate::pipeline::StepTimings;
use sparker_dataflow::{Context, MemBudget, StageMetrics};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The five stages of the unified pipeline driver, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineStage {
    /// Loose-schema generation + (token/keyed) blocking.
    BuildBlocks,
    /// Block purging + block filtering.
    FilterBlocks,
    /// Candidate generation: meta-blocking when enabled, plain pair
    /// enumeration otherwise.
    PruneCandidates,
    /// Entity matching: similarity scoring of the candidate pairs.
    ScorePairs,
    /// Entity clustering of the similarity graph.
    ClusterEdges,
}

impl PipelineStage {
    /// All stages, in execution order.
    pub const ALL: [PipelineStage; 5] = [
        PipelineStage::BuildBlocks,
        PipelineStage::FilterBlocks,
        PipelineStage::PruneCandidates,
        PipelineStage::ScorePairs,
        PipelineStage::ClusterEdges,
    ];

    /// Stable stage name (used in the JSON schema and the CLI table).
    pub fn name(&self) -> &'static str {
        match self {
            PipelineStage::BuildBlocks => "build_blocks",
            PipelineStage::FilterBlocks => "filter_blocks",
            PipelineStage::PruneCandidates => "prune_candidates",
            PipelineStage::ScorePairs => "score_pairs",
            PipelineStage::ClusterEdges => "cluster_edges",
        }
    }

    /// What the stage consumes (unit of [`StageReport::input`]).
    pub fn input_unit(&self) -> &'static str {
        match self {
            PipelineStage::BuildBlocks => "profiles",
            PipelineStage::FilterBlocks => "blocks",
            PipelineStage::PruneCandidates => "comparisons",
            PipelineStage::ScorePairs => "candidates",
            PipelineStage::ClusterEdges => "edges",
        }
    }

    /// What the stage produces (unit of [`StageReport::output`]).
    pub fn output_unit(&self) -> &'static str {
        match self {
            PipelineStage::BuildBlocks => "blocks",
            PipelineStage::FilterBlocks => "blocks",
            PipelineStage::PruneCandidates => "candidates",
            PipelineStage::ScorePairs => "edges",
            PipelineStage::ClusterEdges => "clusters",
        }
    }
}

/// Measurements of one executed pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageReport {
    /// Which stage this row describes.
    pub stage: PipelineStage,
    /// Wall-clock time of the stage on the driver.
    pub wall: Duration,
    /// Worker busy time attributed to the stage: the summed task CPU time
    /// of every engine operator the stage submitted. Equals `wall` on the
    /// sequential backend (one fully busy driver thread); may exceed
    /// `wall` on the engine backends when workers run concurrently.
    pub busy: Duration,
    /// Time tasks of the stage's engine operators spent waiting to be
    /// picked up by a worker (plus, on the fused backend, time fused
    /// workers stalled with nothing to produce or consume). Always zero on
    /// the sequential backend; a persistently high value on an engine
    /// backend points at dispatch overhead or a starved pipeline, not at
    /// slow kernels.
    pub queue_wait: Duration,
    /// Input cardinality, in [`PipelineStage::input_unit`] units.
    pub input: u64,
    /// Output cardinality, in [`PipelineStage::output_unit`] units.
    pub output: u64,
    /// High-water mark of budget-tracked bytes buffered in RAM during the
    /// stage (shuffle partitions, spill buffers); 0 when the stage ran no
    /// budget-accounted operator.
    pub buffered_bytes: u64,
}

/// Structured per-stage report of one pipeline run: which backend ran it,
/// with how many workers, and what every stage saw and cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Backend name (`"sequential"`, `"dataflow"` or `"pool"`).
    pub backend: &'static str,
    /// Worker count (1 for the sequential backend).
    pub workers: usize,
    /// Edge-scorer name of the meta-blocking stage (`"CBS"`, …,
    /// `"SUPERVISED"`), or `"off"` when meta-blocking is disabled.
    pub edge_scorer: &'static str,
    /// Wall-clock time of edge scoring: the weight/feature-extraction work
    /// of the `prune_candidates` stage (the full pruning call on the staged
    /// drivers; pass A preparation on the fused driver, whose pass B is
    /// overlapped with matching). Zero when meta-blocking is disabled.
    pub scoring: Duration,
    /// One row per executed stage, in execution order.
    pub stages: Vec<StageReport>,
    /// Memory budget the run was held to, in bytes (0 = unlimited).
    pub mem_budget_bytes: u64,
    /// Process peak RSS sampled at the end of the run (`VmHWM`; 0 where
    /// the platform doesn't expose it). Process-monotonic: on a process
    /// that runs several pipelines, later reports inherit earlier peaks.
    pub peak_rss_bytes: u64,
    /// Record batches the run spilled to disk (0 = everything stayed in
    /// RAM).
    pub spill_batches: u64,
    /// Bytes the run spilled to disk.
    pub spilled_bytes: u64,
}

impl PipelineReport {
    /// Total wall-clock time across all stages.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|s| s.wall).sum()
    }

    /// Total attributed busy time across all stages.
    pub fn total_busy(&self) -> Duration {
        self.stages.iter().map(|s| s.busy).sum()
    }

    /// Total attributed queue wait across all stages.
    pub fn total_queue_wait(&self) -> Duration {
        self.stages.iter().map(|s| s.queue_wait).sum()
    }

    /// The report row for `stage`, if that stage executed.
    pub fn stage(&self, stage: PipelineStage) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// The legacy four-step wall-clock split ([`StepTimings`]): block
    /// construction (`build_blocks` + `filter_blocks`), candidate
    /// generation, matching, clustering.
    pub fn step_timings(&self) -> StepTimings {
        let wall = |stage| self.stage(stage).map_or(Duration::ZERO, |s| s.wall);
        StepTimings {
            blocking: wall(PipelineStage::BuildBlocks) + wall(PipelineStage::FilterBlocks),
            candidates: wall(PipelineStage::PruneCandidates),
            matching: wall(PipelineStage::ScorePairs),
            clustering: wall(PipelineStage::ClusterEdges),
        }
    }

    /// Render the report as the aligned table the `sparker` CLI prints.
    /// The `buffered` column is each stage's high-water mark of
    /// budget-tracked RAM; the total row carries the budget, peak RSS and
    /// spill statistics.
    pub fn render_table(&self) -> String {
        fn mib(bytes: u64) -> String {
            format!("{:.1}MiB", bytes as f64 / (1024.0 * 1024.0))
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>12} {:>11} {:>11} {:>11} {:>10}  units",
            "stage", "input", "output", "wall", "busy", "queue-wait", "buffered"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<16} {:>12} {:>12} {:>11} {:>11} {:>11} {:>10}  {} -> {}",
                s.stage.name(),
                s.input,
                s.output,
                format!("{:.1?}", s.wall),
                format!("{:.1?}", s.busy),
                format!("{:.1?}", s.queue_wait),
                mib(s.buffered_bytes),
                s.stage.input_unit(),
                s.stage.output_unit(),
            );
        }
        let budget = if self.mem_budget_bytes == 0 {
            "unlimited".to_string()
        } else {
            mib(self.mem_budget_bytes)
        };
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>12} {:>11} {:>11} {:>11} {:>10}  backend={} workers={} scorer={} scoring={:.1?} budget={} peak_rss={} spilled={} ({} batches)",
            "total",
            "",
            "",
            format!("{:.1?}", self.total_wall()),
            format!("{:.1?}", self.total_busy()),
            format!("{:.1?}", self.total_queue_wait()),
            "",
            self.backend,
            self.workers,
            self.edge_scorer,
            self.scoring,
            budget,
            mib(self.peak_rss_bytes),
            mib(self.spilled_bytes),
            self.spill_batches,
        );
        out
    }

    /// Serialize the report to JSON (the schema documented in the README
    /// and consumed by `scripts/bench.sh` dumps). Durations are fractional
    /// seconds:
    ///
    /// ```json
    /// {
    ///   "backend": "pool",
    ///   "workers": 4,
    ///   "edge_scorer": "CBS",
    ///   "scoring_s": 0.0112,
    ///   "stages": [
    ///     {"stage": "build_blocks", "input": 1000, "output": 1523,
    ///      "input_unit": "profiles", "output_unit": "blocks",
    ///      "wall_s": 0.0123, "busy_s": 0.0311, "queue_wait_s": 0.0007,
    ///      "buffered_bytes": 81920},
    ///     ...
    ///   ],
    ///   "total_wall_s": 0.2031,
    ///   "total_busy_s": 0.5120,
    ///   "mem_budget_bytes": 0,
    ///   "peak_rss_bytes": 73400320,
    ///   "spill_batches": 0,
    ///   "spilled_bytes": 0
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"backend\":\"{}\",\"workers\":{},\"edge_scorer\":\"{}\",\"scoring_s\":{:.9},\"stages\":[",
            self.backend,
            self.workers,
            self.edge_scorer,
            self.scoring.as_secs_f64()
        );
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"input\":{},\"output\":{},\
                 \"input_unit\":\"{}\",\"output_unit\":\"{}\",\
                 \"wall_s\":{:.9},\"busy_s\":{:.9},\"queue_wait_s\":{:.9},\
                 \"buffered_bytes\":{}}}",
                s.stage.name(),
                s.input,
                s.output,
                s.stage.input_unit(),
                s.stage.output_unit(),
                s.wall.as_secs_f64(),
                s.busy.as_secs_f64(),
                s.queue_wait.as_secs_f64(),
                s.buffered_bytes,
            );
        }
        let _ = write!(
            out,
            "],\"total_wall_s\":{:.9},\"total_busy_s\":{:.9},\
             \"mem_budget_bytes\":{},\"peak_rss_bytes\":{},\
             \"spill_batches\":{},\"spilled_bytes\":{}}}",
            self.total_wall().as_secs_f64(),
            self.total_busy().as_secs_f64(),
            self.mem_budget_bytes,
            self.peak_rss_bytes,
            self.spill_batches,
            self.spilled_bytes,
        );
        out
    }
}

/// An open stage measurement: created when a stage starts, closed with the
/// stage's input/output cardinalities.
///
/// On an engine backend the scope snapshots the engine's stage-metrics
/// count at entry, so at [`StageScope::finish`] it can attribute exactly
/// the operator stages submitted in between (their summed task CPU time
/// becomes [`StageReport::busy`]) and append a `pipeline/<stage>` marker to
/// the engine's metrics stream. On the sequential backend busy time equals
/// wall time.
pub struct StageScope<'a> {
    stage: PipelineStage,
    ctx: Option<&'a Context>,
    budget: MemBudget,
    engine_stages_before: usize,
    start: Instant,
}

impl<'a> StageScope<'a> {
    /// Open a scope for `stage`; `ctx` is the engine context of the active
    /// backend, or `None` on the sequential driver. `budget` is the run's
    /// memory budget — its per-stage high-water mark is reset here and read
    /// back into [`StageReport::buffered_bytes`] at
    /// [`StageScope::finish`].
    pub fn begin(stage: PipelineStage, ctx: Option<&'a Context>, budget: &MemBudget) -> Self {
        budget.begin_stage();
        StageScope {
            stage,
            ctx,
            budget: budget.clone(),
            engine_stages_before: ctx.map_or(0, |c| c.metrics().stages.len()),
            start: Instant::now(),
        }
    }

    /// Close the scope, recording cardinalities, times and the stage's
    /// buffered-bytes high-water mark.
    pub fn finish(self, input: u64, output: u64) -> StageReport {
        let wall = self.start.elapsed();
        let buffered_bytes = self.budget.stage_high_water();
        let (busy, queue_wait) = match self.ctx {
            None => (wall, Duration::ZERO),
            Some(ctx) => {
                let snap = ctx.metrics();
                let (busy, queue_wait) = snap
                    .stages
                    .iter()
                    .skip(self.engine_stages_before)
                    .fold((Duration::ZERO, Duration::ZERO), |(b, q), s| {
                        (b + s.busy_time, q + s.queue_wait)
                    });
                // Feed a named scope marker back into the engine metrics so
                // snapshots can attribute operator stages to pipeline stages.
                let mut marker = StageMetrics::named(&format!("pipeline/{}", self.stage.name()));
                marker.input_records = input;
                marker.output_records = output;
                marker.wall_time = wall;
                marker.busy_time = busy;
                marker.queue_wait = queue_wait;
                marker.buffered_bytes = buffered_bytes;
                ctx.record_stage(marker);
                (busy, queue_wait)
            }
        };
        StageReport {
            stage: self.stage,
            wall,
            busy,
            queue_wait,
            input,
            output,
            buffered_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PipelineReport {
        PipelineReport {
            backend: "sequential",
            workers: 1,
            edge_scorer: "CBS",
            scoring: Duration::from_millis(2),
            stages: PipelineStage::ALL
                .iter()
                .enumerate()
                .map(|(i, &stage)| StageReport {
                    stage,
                    wall: Duration::from_millis(i as u64 + 1),
                    busy: Duration::from_millis(i as u64 + 1),
                    queue_wait: Duration::from_micros(i as u64),
                    input: 10 * (i as u64 + 1),
                    output: 10 * (i as u64 + 2),
                    buffered_bytes: 1024 * (i as u64 + 1),
                })
                .collect(),
            mem_budget_bytes: 0,
            peak_rss_bytes: 70 * 1024 * 1024,
            spill_batches: 0,
            spilled_bytes: 0,
        }
    }

    #[test]
    fn step_timings_fold_the_block_stages() {
        let r = report();
        let t = r.step_timings();
        assert_eq!(t.blocking, Duration::from_millis(3)); // 1ms + 2ms
        assert_eq!(t.candidates, Duration::from_millis(3));
        assert_eq!(t.matching, Duration::from_millis(4));
        assert_eq!(t.clustering, Duration::from_millis(5));
        assert_eq!(t.total(), r.total_wall());
    }

    #[test]
    fn json_has_every_stage_and_scalar() {
        let json = report().to_json();
        for stage in PipelineStage::ALL {
            assert!(
                json.contains(&format!("\"stage\":\"{}\"", stage.name())),
                "{json}"
            );
        }
        assert!(json.contains("\"backend\":\"sequential\""));
        assert!(json.contains("\"workers\":1"));
        assert!(json.contains("\"edge_scorer\":\"CBS\""));
        assert!(json.contains("\"scoring_s\":0.002"));
        assert!(json.contains("\"total_wall_s\":"));
        assert!(json.contains("\"queue_wait_s\":"));
        assert!(json.contains("\"buffered_bytes\":1024"));
        assert!(json.contains("\"mem_budget_bytes\":0"));
        assert!(json.contains("\"peak_rss_bytes\":73400320"));
        assert!(json.contains("\"spill_batches\":0"));
        assert!(json.contains("\"spilled_bytes\":0"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn table_renders_all_rows() {
        let table = report().render_table();
        assert_eq!(table.lines().count(), 1 + PipelineStage::ALL.len() + 1);
        assert!(table.contains("score_pairs"));
        assert!(table.contains("backend=sequential workers=1 scorer=CBS scoring=2.0ms"));
        assert!(table.contains("queue-wait"));
        assert!(table.contains("buffered"));
        assert!(table.contains("budget=unlimited"));
        assert!(table.contains("peak_rss=70.0MiB"));
        assert!(table.contains("spilled=0.0MiB (0 batches)"));
    }

    #[test]
    fn sequential_scope_busy_equals_wall() {
        let scope = StageScope::begin(PipelineStage::ScorePairs, None, &MemBudget::unlimited());
        std::thread::sleep(Duration::from_millis(2));
        let row = scope.finish(7, 3);
        assert_eq!(row.wall, row.busy);
        assert_eq!(row.queue_wait, Duration::ZERO);
        assert!(row.wall >= Duration::from_millis(2));
        assert_eq!((row.input, row.output), (7, 3));
    }

    #[test]
    fn engine_scope_records_marker_stage() {
        let ctx = Context::new(2);
        let scope = StageScope::begin(PipelineStage::BuildBlocks, Some(&ctx), ctx.budget());
        // Run an engine stage inside the scope.
        let ds = ctx.parallelize((0..100).collect::<Vec<i32>>(), 4);
        let total: i32 = ds.map(|x| x * 2).collect().into_iter().sum();
        assert_eq!(total, 9900);
        let row = scope.finish(100, 1);
        let snap = ctx.metrics();
        let marker = snap
            .stages
            .iter()
            .find(|s| s.name == "pipeline/build_blocks")
            .expect("scope marker recorded");
        assert_eq!(marker.input_records, 100);
        assert_eq!(marker.wall_time, row.wall);
        assert_eq!(marker.busy_time, row.busy);
        assert_eq!(marker.buffered_bytes, row.buffered_bytes);
    }

    #[test]
    fn scope_reads_stage_high_water_into_buffered_bytes() {
        let budget = MemBudget::unlimited();
        let scope = StageScope::begin(PipelineStage::BuildBlocks, None, &budget);
        assert!(budget.try_reserve(4096));
        budget.release(4096);
        let row = scope.finish(1, 1);
        assert_eq!(row.buffered_bytes, 4096);
        // The next scope resets the stage-level mark.
        let scope = StageScope::begin(PipelineStage::FilterBlocks, None, &budget);
        let row = scope.finish(1, 1);
        assert_eq!(row.buffered_bytes, 0);
    }
}
