//! Process debugging (Section 3 of the paper): representative sampling,
//! false-positive drill-down, and threshold sweeps.

use crate::config::PipelineConfig;
use crate::evaluate::BlockingQuality;
use crate::pipeline::Pipeline;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sparker_profiles::{GroundTruth, Pair, ProfileCollection, ProfileId, Token};
use std::collections::{HashMap, HashSet};

/// Parameters of the representative sampler.
///
/// The paper (following Magellan): "pick up some random K profiles PK, then
/// for each profile pi ∈ PK pick up k/2 profiles that could be a match
/// (i.e. shares a high number of token with pi) and k/2 profiles randomly.
/// K and k are two parameters that can be set by the user based on the time
/// that she wants to spend."
#[derive(Debug, Clone)]
pub struct SampleConfig {
    /// Number of seed profiles (the paper's `K`).
    pub seeds: usize,
    /// Companions per seed (the paper's `k`); half token-similar, half
    /// random.
    pub companions_per_seed: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            seeds: 50,
            companions_per_seed: 10,
            seed: 42,
        }
    }
}

/// Draw a representative sample of profile ids: `K` random seeds, each with
/// `k/2` token-sharing likely matches and `k/2` random companions. The
/// returned ids are sorted and deduplicated, ready to slice a collection
/// for fast configuration iteration.
pub fn representative_sample(
    collection: &ProfileCollection,
    config: &SampleConfig,
) -> Vec<ProfileId> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let n = collection.len();
    if n == 0 {
        return Vec::new();
    }

    // Inverted token index for the "shares a high number of tokens" pick.
    let mut token_index: HashMap<Token, Vec<ProfileId>> = HashMap::new();
    for p in collection.profiles() {
        for t in p.token_set() {
            token_index.entry(t).or_default().push(p.id);
        }
    }

    let mut all_ids: Vec<ProfileId> = collection.profiles().iter().map(|p| p.id).collect();
    all_ids.shuffle(&mut rng);
    let seeds: Vec<ProfileId> = all_ids.iter().take(config.seeds.min(n)).copied().collect();

    let mut picked: HashSet<ProfileId> = seeds.iter().copied().collect();
    let half = config.companions_per_seed / 2;
    for &seed_profile in &seeds {
        // Likely matches: comparable profiles ranked by shared-token count.
        let mut counts: HashMap<ProfileId, u32> = HashMap::new();
        for t in collection.get(seed_profile).token_set() {
            if let Some(ids) = token_index.get(&t) {
                for &other in ids {
                    if collection.is_comparable(seed_profile, other) {
                        *counts.entry(other).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut ranked: Vec<(ProfileId, u32)> = counts.into_iter().collect();
        ranked.sort_by_key(|&(p, c)| (std::cmp::Reverse(c), p));
        picked.extend(ranked.iter().take(half).map(|(p, _)| *p));
        // Random companions.
        for _ in 0..half {
            let r = all_ids[rand::Rng::gen_range(&mut rng, 0..n)];
            picked.insert(r);
        }
    }

    let mut out: Vec<ProfileId> = picked.into_iter().collect();
    out.sort_unstable();
    out
}

/// One ground-truth pair lost by the blocker, with the evidence the paper's
/// Figure 6(d) debug view shows: the profiles' original ids and the
/// blocking keys the two profiles *would* share (the keys whose blocks were
/// purged/filtered/pruned away, or `[]` when the profiles share no token at
/// all).
#[derive(Debug, Clone)]
pub struct FalsePositive {
    /// The lost ground-truth pair.
    pub pair: Pair,
    /// Original (source) id of the first profile.
    pub original_ids: (String, String),
    /// Tokens the two profiles share — the blocking keys on which the pair
    /// could have been caught.
    pub shared_tokens: Vec<Token>,
}

/// The Figure 6(d) drill-down: every ground-truth pair missing from the
/// blocker's candidates, with its shared blocking keys.
#[derive(Debug, Clone)]
pub struct LostPairsReport {
    /// Lost pairs, sorted.
    pub lost: Vec<FalsePositive>,
}

impl LostPairsReport {
    /// Build the report for a candidate set.
    pub fn build(
        collection: &ProfileCollection,
        ground_truth: &GroundTruth,
        candidates: &HashSet<Pair>,
    ) -> Self {
        let lost = ground_truth
            .lost_pairs(candidates)
            .into_iter()
            .map(|pair| {
                let a = collection.get(pair.first);
                let b = collection.get(pair.second);
                let shared: Vec<Token> = a
                    .token_set()
                    .intersection(&b.token_set())
                    .cloned()
                    .collect();
                FalsePositive {
                    pair,
                    original_ids: (a.original_id.clone(), b.original_id.clone()),
                    shared_tokens: shared,
                }
            })
            .collect();
        LostPairsReport { lost }
    }

    /// Number of lost pairs.
    pub fn len(&self) -> usize {
        self.lost.len()
    }

    /// `true` when nothing was lost.
    pub fn is_empty(&self) -> bool {
        self.lost.is_empty()
    }

    /// Tokens most often shared by lost pairs — pointing at the
    /// attribute partitions / filters responsible (the insight the demo
    /// walks the audience through).
    pub fn most_common_shared_tokens(&self, top: usize) -> Vec<(Token, usize)> {
        let mut counts: HashMap<&Token, usize> = HashMap::new();
        for fp in &self.lost {
            for t in &fp.shared_tokens {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(Token, usize)> =
            counts.into_iter().map(|(t, c)| (t.clone(), c)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(top);
        ranked
    }
}

/// One row of a clustering-threshold sweep (the Figure 6(a)→(b) debugging
/// flow: the user moves the loose-schema threshold and watches the blocking
/// statistics).
#[derive(Debug, Clone)]
pub struct ThresholdSweepRow {
    /// The loose-schema clustering threshold used.
    pub threshold: f64,
    /// Number of attribute partitions (including the blob).
    pub attribute_partitions: usize,
    /// Blocks produced.
    pub blocks: usize,
    /// Candidate quality at this threshold.
    pub quality: BlockingQuality,
}

/// Run the blocker at each loose-schema threshold and report the statistics
/// the demo GUI displays (blocks, candidate pairs, recall, precision, lost
/// pairs).
pub fn threshold_sweep(
    collection: &ProfileCollection,
    ground_truth: &GroundTruth,
    base: &PipelineConfig,
    thresholds: &[f64],
) -> Vec<ThresholdSweepRow> {
    thresholds
        .iter()
        .map(|&threshold| {
            let mut config = base.clone();
            let mut lsh = config.blocking.loose_schema.clone().unwrap_or_default();
            lsh.threshold = threshold;
            config.blocking.loose_schema = Some(lsh);
            let out = Pipeline::new(config).run_blocker(collection);
            let quality = BlockingQuality::measure(&out.candidates, ground_truth, collection);
            ThresholdSweepRow {
                threshold,
                attribute_partitions: out.partitioning.as_ref().map_or(1, |p| p.len()),
                blocks: out.cleaned_blocks,
                quality,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_datasets::{generate, DatasetConfig};
    use sparker_profiles::{Profile, SourceId};

    fn dataset() -> sparker_datasets::GeneratedDataset {
        generate(&DatasetConfig {
            entities: 80,
            unmatched_per_source: 20,
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn sample_is_deterministic_and_bounded() {
        let ds = dataset();
        let config = SampleConfig {
            seeds: 10,
            companions_per_seed: 6,
            seed: 1,
        };
        let a = representative_sample(&ds.collection, &config);
        let b = representative_sample(&ds.collection, &config);
        assert_eq!(a, b);
        assert!(a.len() >= 10);
        assert!(a.len() <= 10 + 10 * 6);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
    }

    #[test]
    fn sample_contains_likely_matches() {
        // With clean duplicates, a seed's counterpart shares nearly all
        // tokens, so it should be picked as a likely match.
        let ds = generate(&DatasetConfig {
            entities: 40,
            unmatched_per_source: 0,
            noise: sparker_datasets::NoiseConfig::none(),
            ..DatasetConfig::default()
        });
        let sample = representative_sample(
            &ds.collection,
            &SampleConfig {
                seeds: 80, // every profile seeds, so every counterpart gets picked
                companions_per_seed: 2,
                seed: 3,
            },
        );
        let set: HashSet<ProfileId> = sample.into_iter().collect();
        // Count how many ground-truth pairs are fully inside the sample.
        let covered = ds
            .ground_truth
            .iter()
            .filter(|p| set.contains(&p.first) && set.contains(&p.second))
            .count();
        assert!(covered >= 38, "only {covered}/40 matched pairs covered");
    }

    #[test]
    fn empty_collection_sample() {
        let coll = ProfileCollection::dirty(vec![]);
        assert!(representative_sample(&coll, &SampleConfig::default()).is_empty());
    }

    #[test]
    fn lost_pairs_report_shows_shared_tokens() {
        let coll = ProfileCollection::clean_clean(
            vec![Profile::builder(SourceId(0), "abt-1")
                .attr("name", "sony bravia")
                .build()],
            vec![Profile::builder(SourceId(1), "buy-1")
                .attr("title", "sony bravia tv")
                .build()],
        );
        let gt = GroundTruth::from_original_ids(&coll, vec![("abt-1", "buy-1")]).unwrap();
        let report = LostPairsReport::build(&coll, &gt, &HashSet::new());
        assert_eq!(report.len(), 1);
        assert_eq!(report.lost[0].original_ids.0, "abt-1");
        assert_eq!(
            report.lost[0].shared_tokens,
            vec!["bravia".to_string(), "sony".to_string()]
        );
        let common = report.most_common_shared_tokens(1);
        assert_eq!(common[0].1, 1);
    }

    #[test]
    fn nothing_lost_when_candidates_cover_ground_truth() {
        let ds = dataset();
        let candidates: HashSet<Pair> = ds.ground_truth.iter().copied().collect();
        let report = LostPairsReport::build(&ds.collection, &ds.ground_truth, &candidates);
        assert!(report.is_empty());
        assert!(report.most_common_shared_tokens(5).is_empty());
    }

    #[test]
    fn threshold_sweep_reports_rows() {
        let ds = dataset();
        let mut base = PipelineConfig::default();
        base.blocking.loose_schema = Some(Default::default());
        let rows = threshold_sweep(&ds.collection, &ds.ground_truth, &base, &[1.01, 0.3]);
        assert_eq!(rows.len(), 2);
        // Threshold above 1: blob only (schema-agnostic).
        assert_eq!(rows[0].attribute_partitions, 1);
        // At 0.3 the aligned attributes cluster, so more partitions exist.
        assert!(rows[1].attribute_partitions > 1);
        for r in &rows {
            assert!(r.blocks > 0);
            assert!(r.quality.recall > 0.5);
        }
    }
}
