//! Property-based tests of meta-blocking: pruning soundness (retained ⊆
//! implicit edges), parallel/sequential parity, weight invariants.

use proptest::prelude::*;
use sparker_blocking::token_blocking;
use sparker_dataflow::Context;
use sparker_metablocking::{
    meta_blocking_graph, parallel, BlockEntropies, BlockGraph, EdgeScorer, LinearModel,
    MetaBlockingConfig, PruningStrategy, Scheduling, ScoringContext, WeightScheme, NUM_FEATURES,
};
use sparker_profiles::{Pair, Profile, ProfileCollection, SourceId};
use std::collections::HashSet;
use std::sync::Arc;

fn collection_strategy() -> impl Strategy<Value = ProfileCollection> {
    let profile = prop::collection::vec(0usize..10, 1..5).prop_map(|words| {
        words
            .into_iter()
            .map(|w| format!("tok{w}"))
            .collect::<Vec<_>>()
            .join(" ")
    });
    prop::collection::vec(profile, 2..20).prop_map(|values| {
        ProfileCollection::dirty(
            values
                .into_iter()
                .enumerate()
                .map(|(i, v)| {
                    Profile::builder(SourceId(0), i.to_string())
                        .attr("text", v)
                        .build()
                })
                .collect(),
        )
    })
}

/// Collections with a contiguous Zipfian hub prefix: the first profiles
/// all share `hub0` (plus a rank-biased second hub token), so low ids form
/// a dense hub region — the skew shape the cost-morsel scheduler targets.
fn skewed_collection_strategy() -> impl Strategy<Value = ProfileCollection> {
    let hub = (0usize..4, 0usize..10).prop_map(|(r, w)| format!("hub0 hub{r} tok{w}"));
    let cold = prop::collection::vec(0usize..10, 1..4).prop_map(|ws| {
        ws.into_iter()
            .map(|w| format!("tok{w}"))
            .collect::<Vec<_>>()
            .join(" ")
    });
    (
        prop::collection::vec(hub, 2..12),
        prop::collection::vec(cold, 4..30),
    )
        .prop_map(|(hubs, colds)| {
            ProfileCollection::dirty(
                hubs.into_iter()
                    .chain(colds)
                    .enumerate()
                    .map(|(i, v)| {
                        Profile::builder(SourceId(0), i.to_string())
                            .attr("text", v)
                            .build()
                    })
                    .collect(),
            )
        })
}

fn config_strategy() -> impl Strategy<Value = MetaBlockingConfig> {
    let scheme = prop::sample::select(WeightScheme::ALL.to_vec());
    let pruning = prop_oneof![
        (0.3f64..1.6).prop_map(|factor| PruningStrategy::Wep { factor }),
        prop::option::of(1u64..40).prop_map(|retain| PruningStrategy::Cep { retain }),
        (0.3f64..1.6, proptest::bool::ANY)
            .prop_map(|(factor, reciprocal)| PruningStrategy::Wnp { factor, reciprocal }),
        (prop::option::of(1usize..5), proptest::bool::ANY)
            .prop_map(|(k, reciprocal)| PruningStrategy::Cnp { k, reciprocal }),
        (0.05f64..1.0).prop_map(|ratio| PruningStrategy::Blast { ratio }),
    ];
    (scheme, pruning).prop_map(|(scheme, pruning)| MetaBlockingConfig {
        scorer: EdgeScorer::Classic(scheme),
        pruning,
        use_entropy: false,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn retained_edges_are_a_subset_of_block_pairs(
        coll in collection_strategy(),
        config in config_strategy(),
    ) {
        let blocks = token_blocking(&coll);
        let all_pairs: HashSet<Pair> = blocks.candidate_pairs();
        let graph = BlockGraph::new(&blocks, None);
        let retained = meta_blocking_graph(&graph, &config);
        for (pair, weight) in &retained {
            prop_assert!(all_pairs.contains(pair), "invented edge {pair}");
            prop_assert!(weight.is_finite() && *weight >= 0.0);
        }
        // Output sorted and duplicate-free.
        for w in retained.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn parallel_equals_sequential(
        coll in collection_strategy(),
        config in config_strategy(),
        workers in 1usize..5,
    ) {
        let blocks = token_blocking(&coll);
        let graph = std::sync::Arc::new(BlockGraph::new(&blocks, None));
        let seq = meta_blocking_graph(&graph, &config);
        let ctx = Context::new(workers);
        let par = parallel::meta_blocking(&ctx, &graph, &config);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn scheduled_parallel_equals_sequential(
        coll in prop_oneof![collection_strategy(), skewed_collection_strategy()],
        config in config_strategy(),
        workers in prop::sample::select(vec![1usize, 2, 8]),
    ) {
        // Both scheduling policies — including the skew-aware cost-morsel
        // default — must reproduce the sequential driver byte for byte, on
        // hub-heavy graphs as well as uniform ones.
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let seq = meta_blocking_graph(&graph, &config);
        let ctx = Context::new(workers);
        for sched in [Scheduling::EqualCount, Scheduling::CostMorsel] {
            let par = parallel::meta_blocking_scheduled(&ctx, &graph, &config, sched);
            prop_assert_eq!(&seq, &par, "{} diverged at {} workers", sched.name(), workers);
        }
    }

    #[test]
    fn wep_threshold_monotone(coll in collection_strategy()) {
        let blocks = token_blocking(&coll);
        let graph = BlockGraph::new(&blocks, None);
        let count = |factor: f64| {
            meta_blocking_graph(&graph, &MetaBlockingConfig {
                pruning: PruningStrategy::Wep { factor },
                ..MetaBlockingConfig::default()
            }).len()
        };
        prop_assert!(count(0.5) >= count(1.0));
        prop_assert!(count(1.0) >= count(1.5));
    }

    #[test]
    fn uniform_entropies_do_not_change_cbs_ordering(coll in collection_strategy()) {
        // With identical per-block entropies e, CBS-with-entropy weights are
        // exactly e × CBS weights, so WEP-at-mean retains identical pairs.
        // Use a power of two so the scaling is exact in floating point
        // (ties at the mean must not flip).
        let blocks = token_blocking(&coll);
        let graph_plain = BlockGraph::new(&blocks, None);
        let entropies = BlockEntropies::new(vec![0.5; blocks.len()]);
        let graph_e = BlockGraph::new(&blocks, Some(&entropies));
        let base = MetaBlockingConfig::default();
        let with_e = MetaBlockingConfig { use_entropy: true, ..base };
        let plain: Vec<Pair> = meta_blocking_graph(&graph_plain, &base).into_iter().map(|(p, _)| p).collect();
        let weighted: Vec<Pair> = meta_blocking_graph(&graph_e, &with_e).into_iter().map(|(p, _)| p).collect();
        prop_assert_eq!(plain, weighted);
    }

    #[test]
    fn neighborhoods_symmetric_and_positive(coll in collection_strategy()) {
        let blocks = token_blocking(&coll);
        let graph = BlockGraph::new(&blocks, None);
        for i in 0..graph.num_profiles() as u32 {
            let node = sparker_profiles::ProfileId(i);
            for (j, acc) in graph.neighborhood(node) {
                prop_assert!(acc.shared_blocks >= 1);
                prop_assert!(acc.arcs > 0.0);
                let back = graph.neighborhood(j);
                let reverse = back.iter().find(|(p, _)| *p == node);
                prop_assert!(reverse.is_some(), "asymmetric edge {node}-{j}");
                prop_assert_eq!(reverse.unwrap().1, acc);
            }
        }
    }

    #[test]
    fn edge_features_finite_and_in_range(coll in collection_strategy()) {
        let blocks = token_blocking(&coll);
        let graph = BlockGraph::new(&blocks, None);
        // A supervised scorer requests degrees, exercising every feature.
        let scoring =
            ScoringContext::new(&graph, EdgeScorer::Supervised(LinearModel::zero()), false);
        let mut scratch = graph.scratch();
        for i in 0..graph.num_profiles() as u32 {
            let node = sparker_profiles::ProfileId(i);
            let blocks_node = graph.blocks_of(node).len();
            for (j, acc) in graph.neighborhood_with(node, &mut scratch) {
                if node >= j {
                    continue;
                }
                let f = scoring.features(node, j, &acc, blocks_node, graph.blocks_of(j).len());
                let vals = f.as_array();
                prop_assert_eq!(vals.len(), NUM_FEATURES);
                for (k, v) in vals.iter().enumerate() {
                    prop_assert!(v.is_finite() && *v >= 0.0, "feature {} = {}", k, v);
                }
                // The ratio features (jaccard/dice/cosine, normalized block
                // counts) are bounded by 1; the min/max pairs are ordered.
                for k in [3usize, 4, 5, 8, 9] {
                    prop_assert!(vals[k] <= 1.0 + 1e-12, "ratio feature {} = {}", k, vals[k]);
                }
                prop_assert!(vals[6] <= vals[7], "block-count min > max");
                prop_assert!(vals[10] <= vals[11], "degree min > max");
            }
        }
    }

    #[test]
    fn one_hot_cbs_model_ranks_edges_like_cbs(coll in collection_strategy()) {
        let blocks = token_blocking(&coll);
        let graph = BlockGraph::new(&blocks, None);
        let cbs = ScoringContext::new(&graph, EdgeScorer::Classic(WeightScheme::Cbs), false);
        let one_hot =
            ScoringContext::new(&graph, EdgeScorer::Supervised(LinearModel::one_hot(0)), false);
        let mut scratch = graph.scratch();
        let mut scores = Vec::new();
        for i in 0..graph.num_profiles() as u32 {
            let node = sparker_profiles::ProfileId(i);
            let bn = graph.blocks_of(node).len();
            for (j, acc) in graph.neighborhood_with(node, &mut scratch) {
                if node >= j {
                    continue;
                }
                let bj = graph.blocks_of(j).len();
                scores.push((
                    cbs.weigh(node, j, &acc, bn, bj),
                    one_hot.weigh(node, j, &acc, bn, bj),
                ));
            }
        }
        // The sigmoid is strictly monotone, so the pairwise ordering of the
        // one-hot CBS model must agree with raw CBS everywhere.
        for a in &scores {
            for b in &scores {
                prop_assert_eq!(
                    a.0.partial_cmp(&b.0),
                    a.1.partial_cmp(&b.1),
                    "order flip: CBS ({}, {}) vs model ({}, {})",
                    a.0, b.0, a.1, b.1
                );
            }
        }
    }

    #[test]
    fn cep_budget_respected_up_to_ties(coll in collection_strategy(), budget in 1u64..30) {
        let blocks = token_blocking(&coll);
        let graph = BlockGraph::new(&blocks, None);
        let retained = meta_blocking_graph(&graph, &MetaBlockingConfig {
            pruning: PruningStrategy::Cep { retain: Some(budget) },
            ..MetaBlockingConfig::default()
        });
        // Ties at the threshold may exceed the budget, but the (budget+1)-th
        // distinct weight must not appear.
        if retained.len() as u64 > budget {
            let min = retained.iter().map(|(_, w)| *w).fold(f64::INFINITY, f64::min);
            let at_min = retained.iter().filter(|(_, w)| *w == min).count() as u64;
            prop_assert!(retained.len() as u64 - at_min < budget, "non-tie overflow");
        }
    }
}

/// Deterministic exhaustive companion to `scheduled_parallel_equals_sequential`:
/// every `WeightScheme × PruningStrategy` at 1/2/8 workers, on one fixed
/// hub-skewed and one fixed uniform collection.
#[test]
fn full_matrix_scheduling_parity_at_1_2_8_workers() {
    let make = |skewed: bool| -> Arc<BlockGraph> {
        let profiles = (0..60)
            .map(|i| {
                let mut text = format!("tok{} tok{}", i % 9, (i * 7 + 3) % 9);
                if skewed && i < 8 {
                    text.push_str(" hub0 hub1");
                }
                Profile::builder(SourceId(0), i.to_string())
                    .attr("text", text)
                    .build()
            })
            .collect();
        let coll = ProfileCollection::dirty(profiles);
        Arc::new(BlockGraph::new(&token_blocking(&coll), None))
    };
    let prunings = [
        PruningStrategy::Wep { factor: 1.0 },
        PruningStrategy::Cep { retain: Some(25) },
        PruningStrategy::Wnp {
            factor: 1.0,
            reciprocal: true,
        },
        PruningStrategy::Cnp {
            k: Some(3),
            reciprocal: false,
        },
        PruningStrategy::Blast { ratio: 0.35 },
    ];
    for graph in [make(true), make(false)] {
        for scheme in WeightScheme::ALL {
            for pruning in prunings {
                let config = MetaBlockingConfig {
                    scorer: EdgeScorer::Classic(scheme),
                    pruning,
                    use_entropy: false,
                };
                let seq = meta_blocking_graph(&graph, &config);
                for workers in [1usize, 2, 8] {
                    let ctx = Context::new(workers);
                    for sched in [Scheduling::EqualCount, Scheduling::CostMorsel] {
                        assert_eq!(
                            seq,
                            parallel::meta_blocking_scheduled(&ctx, &graph, &config, sched),
                            "{}/{} diverged under {} at {} workers",
                            scheme.name(),
                            pruning.name(),
                            sched.name(),
                            workers
                        );
                    }
                }
            }
        }
    }
}
