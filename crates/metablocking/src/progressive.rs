//! Progressive meta-blocking: candidate pairs in best-first order.
//!
//! The paper's group extended meta-blocking to *progressive* ER
//! (Simonini, Papadakis, Palpanas, Bergamaschi, ICDE 2018 — reference \[6\]
//! of the demo paper): instead of pruning the blocking graph and handing
//! all surviving pairs to the matcher at once, candidate pairs are emitted
//! in decreasing-weight order so that, under a limited comparison budget,
//! the matcher resolves the most promising pairs first. This module
//! implements the two schedules that paper evaluates:
//!
//! * [`progressive_global`] — *global* schedule: all edges sorted by
//!   weight (best-first across the whole graph).
//! * [`progressive_node_first`] — *profile scheduling*: nodes are ordered
//!   by their strongest edge and emission proceeds in rounds (every node's
//!   r-th best edge per round). Cheaper to produce incrementally and close
//!   to the global order in practice.

use crate::graph::BlockGraph;
use crate::scorer::{EdgeScorer, ScoringContext};
use sparker_profiles::{Pair, ProfileId};

/// All implicit edges of the blocking graph, weighted and sorted
/// best-first (weight descending, pair ascending on ties).
///
/// The prefix of this list is what a budget-bound matcher should consume:
/// recall grows much faster along this order than along block order (see
/// the `exp_progressive` experiment).
pub fn progressive_global(
    graph: &BlockGraph,
    scorer: EdgeScorer,
    use_entropy: bool,
) -> Vec<(Pair, f64)> {
    let scoring = ScoringContext::new(graph, scorer, use_entropy);
    let mut edges = Vec::new();
    let mut scratch = graph.scratch();
    for i in 0..graph.num_profiles() {
        let node = ProfileId(i as u32);
        for (j, acc) in graph.neighborhood_with(node, &mut scratch) {
            if node >= j {
                continue;
            }
            let w = scoring.weigh(
                node,
                j,
                &acc,
                graph.blocks_of(node).len(),
                graph.blocks_of(j).len(),
            );
            edges.push((Pair::new(node, j), w));
        }
    }
    sort_best_first(&mut edges);
    edges
}

/// Progressive profile scheduling: nodes are ordered by their strongest
/// edge, then edges are emitted in *rounds* — round r yields every node's
/// r-th best edge (skipping duplicates) — so the first |P| emissions are
/// each profile's best match candidate. This is the round-robin
/// interleaving of the progressive-ER literature, producing near-global
/// quality without a global sort.
pub fn progressive_node_first(
    graph: &BlockGraph,
    scorer: EdgeScorer,
    use_entropy: bool,
) -> Vec<(Pair, f64)> {
    let scoring = ScoringContext::new(graph, scorer, use_entropy);
    let n = graph.num_profiles();
    let mut scratch = graph.scratch();

    // Per node: its weighted neighborhood, best-first.
    let mut neighborhoods: Vec<Vec<(ProfileId, f64)>> = Vec::with_capacity(n);
    for i in 0..n {
        let node = ProfileId(i as u32);
        let mut edges: Vec<(ProfileId, f64)> = graph
            .neighborhood_with(node, &mut scratch)
            .into_iter()
            .map(|(j, acc)| {
                let w = scoring.weigh(
                    node,
                    j,
                    &acc,
                    graph.blocks_of(node).len(),
                    graph.blocks_of(j).len(),
                );
                (j, w)
            })
            .collect();
        edges.sort_by(|(pa, wa), (pb, wb)| {
            wb.partial_cmp(wa)
                .expect("weights are finite")
                .then(pa.cmp(pb))
        });
        neighborhoods.push(edges);
    }

    // Visit nodes by their strongest edge.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let wa = neighborhoods[a]
            .first()
            .map_or(f64::NEG_INFINITY, |(_, w)| *w);
        let wb = neighborhoods[b]
            .first()
            .map_or(f64::NEG_INFINITY, |(_, w)| *w);
        wb.partial_cmp(&wa)
            .expect("weights are finite")
            .then(a.cmp(&b))
    });

    let mut emitted = std::collections::HashSet::new();
    let mut out = Vec::new();
    let max_degree = neighborhoods.iter().map(Vec::len).max().unwrap_or(0);
    for round in 0..max_degree {
        for &i in &order {
            if let Some(&(j, w)) = neighborhoods[i].get(round) {
                let pair = Pair::new(ProfileId(i as u32), j);
                if emitted.insert(pair) {
                    out.push((pair, w));
                }
            }
        }
    }
    out
}

fn sort_best_first(edges: &mut [(Pair, f64)]) {
    edges.sort_by(|(pa, wa), (pb, wb)| {
        wb.partial_cmp(wa)
            .expect("weights are finite")
            .then(pa.cmp(pb))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightScheme;
    use sparker_blocking::token_blocking;
    use sparker_profiles::{Profile, ProfileCollection, SourceId};

    fn collection() -> ProfileCollection {
        // Three duplicates sharing many tokens, plus loosely-related noise.
        let rows = [
            "sony bravia kdl forty tv led",
            "sony bravia kdl forty television led",
            "sony bravia kdl forty tv hd",
            "samsung galaxy phone forty",
            "led lamp hd",
        ];
        ProfileCollection::dirty(
            rows.iter()
                .enumerate()
                .map(|(i, r)| {
                    Profile::builder(SourceId(0), i.to_string())
                        .attr("name", *r)
                        .build()
                })
                .collect(),
        )
    }

    #[test]
    fn global_order_is_monotone_and_complete() {
        let blocks = token_blocking(&collection());
        let graph = BlockGraph::new(&blocks, None);
        let edges = progressive_global(&graph, EdgeScorer::Classic(WeightScheme::Cbs), false);
        // Weights non-increasing.
        for w in edges.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Exactly the distinct block pairs.
        let all = blocks.candidate_pairs();
        assert_eq!(edges.len(), all.len());
        for (p, _) in &edges {
            assert!(all.contains(p));
        }
    }

    #[test]
    fn strongest_duplicates_come_first() {
        let blocks = token_blocking(&collection());
        let graph = BlockGraph::new(&blocks, None);
        let edges = progressive_global(&graph, EdgeScorer::Classic(WeightScheme::Cbs), false);
        // The three bravia records share 5+ tokens pairwise; those pairs
        // must occupy the first three slots.
        let firsts: Vec<(u32, u32)> = edges
            .iter()
            .take(3)
            .map(|(p, _)| (p.first.0, p.second.0))
            .collect();
        for (a, b) in firsts {
            assert!(
                a < 3 && b < 3,
                "non-duplicate pair ({a},{b}) ranked too high"
            );
        }
    }

    #[test]
    fn node_first_emits_every_pair_once() {
        let blocks = token_blocking(&collection());
        let graph = BlockGraph::new(&blocks, None);
        let edges = progressive_node_first(&graph, EdgeScorer::Classic(WeightScheme::Cbs), false);
        let mut seen = std::collections::HashSet::new();
        for (p, _) in &edges {
            assert!(seen.insert(*p), "pair {p} emitted twice");
        }
        assert_eq!(seen, blocks.candidate_pairs());
    }

    #[test]
    fn node_first_front_loads_strong_pairs() {
        let blocks = token_blocking(&collection());
        let graph = BlockGraph::new(&blocks, None);
        let edges = progressive_node_first(&graph, EdgeScorer::Classic(WeightScheme::Cbs), false);
        let (p, _) = edges[0];
        assert!(
            p.first.0 < 3 && p.second.0 < 3,
            "first emit {p} is not a duplicate"
        );
    }

    #[test]
    fn schedules_deterministic() {
        let blocks = token_blocking(&collection());
        let graph = BlockGraph::new(&blocks, None);
        assert_eq!(
            progressive_global(&graph, EdgeScorer::Classic(WeightScheme::Js), false),
            progressive_global(&graph, EdgeScorer::Classic(WeightScheme::Js), false)
        );
        assert_eq!(
            progressive_node_first(&graph, EdgeScorer::Classic(WeightScheme::Js), false),
            progressive_node_first(&graph, EdgeScorer::Classic(WeightScheme::Js), false)
        );
    }

    #[test]
    fn empty_graph() {
        let blocks =
            sparker_blocking::BlockCollection::new(sparker_profiles::ErKind::Dirty, vec![]);
        let graph = BlockGraph::new(&blocks, None);
        assert!(
            progressive_global(&graph, EdgeScorer::Classic(WeightScheme::Cbs), false).is_empty()
        );
        assert!(
            progressive_node_first(&graph, EdgeScorer::Classic(WeightScheme::Cbs), false)
                .is_empty()
        );
    }
}
