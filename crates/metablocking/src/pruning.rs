//! Pruning strategies and the sequential meta-blocking driver.

use crate::entropy::BlockEntropies;
use crate::graph::{BlockGraph, NeighborhoodScratch};
use crate::scorer::{EdgeScorer, ScoringContext};
use sparker_blocking::BlockCollection;
use sparker_profiles::{Pair, ProfileId};

/// How low-weight edges are removed from the blocking graph.
///
/// Node-centric strategies (WNP, CNP, Blast) use *union* semantics: an edge
/// survives if **either** endpoint retains it — the "redefined" variants
/// shown to dominate in the meta-blocking literature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruningStrategy {
    /// Weighted Edge Pruning: keep edges with weight ≥ `factor` × the
    /// global mean edge weight. `factor = 1.0` is the paper's Figure 1(c)
    /// rule ("retained if its weight is above the average").
    Wep {
        /// Multiplier on the global mean weight.
        factor: f64,
    },
    /// Cardinality Edge Pruning: keep the globally top-`retain` edges;
    /// `None` derives the budget as `total block assignments / 2` (the
    /// literature's default).
    Cep {
        /// Explicit edge budget.
        retain: Option<u64>,
    },
    /// Weighted Node Pruning: an endpoint retains an edge when its weight
    /// is ≥ `factor` × the mean weight of that node's neighborhood.
    Wnp {
        /// Multiplier on each node's mean weight.
        factor: f64,
        /// `false` (default, "redefined") keeps an edge retained by either
        /// endpoint; `true` ("reciprocal") requires both — higher precision,
        /// lower recall, per the meta-blocking literature.
        reciprocal: bool,
    },
    /// Cardinality Node Pruning: each node retains its top-`k` edges;
    /// `None` derives `k = max(1, round(assignments / profiles))`.
    Cnp {
        /// Explicit per-node budget.
        k: Option<usize>,
        /// Union (`false`) vs intersection (`true`) of the endpoints'
        /// retention decisions, as for [`PruningStrategy::Wnp`].
        reciprocal: bool,
    },
    /// Blast's pruning: the threshold of edge (i, j) is
    /// `ratio × (maxᵢ + maxⱼ) / 2`, where `maxᵢ` is the largest weight in
    /// i's neighborhood. Blast's default ratio is 0.35.
    Blast {
        /// Fraction of the endpoints' mean-of-maxima.
        ratio: f64,
    },
}

impl PruningStrategy {
    /// Stable name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            PruningStrategy::Wep { .. } => "WEP",
            PruningStrategy::Cep { .. } => "CEP",
            PruningStrategy::Wnp { .. } => "WNP",
            PruningStrategy::Cnp { .. } => "CNP",
            PruningStrategy::Blast { .. } => "BLAST",
        }
    }
}

/// Full meta-blocking configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaBlockingConfig {
    /// Edge scorer: a classic weighting scheme or a supervised model.
    pub scorer: EdgeScorer,
    /// Pruning strategy.
    pub pruning: PruningStrategy,
    /// Enable Blast's entropy re-weighting (requires a graph built with
    /// [`BlockEntropies`]).
    pub use_entropy: bool,
}

impl Default for MetaBlockingConfig {
    /// The paper's toy setting: CBS weights, weight-edge pruning at the
    /// mean, no entropy.
    fn default() -> Self {
        MetaBlockingConfig {
            scorer: EdgeScorer::default(),
            pruning: PruningStrategy::Wep { factor: 1.0 },
            use_entropy: false,
        }
    }
}

impl MetaBlockingConfig {
    /// Blast's configuration: χ² weighting, local-maxima pruning at ratio
    /// 0.35, entropy re-weighting on.
    pub fn blast() -> Self {
        MetaBlockingConfig {
            scorer: EdgeScorer::Classic(crate::WeightScheme::ChiSquare),
            pruning: PruningStrategy::Blast { ratio: 0.35 },
            use_entropy: true,
        }
    }

    /// Build this configuration's [`ScoringContext`] for `graph` — the
    /// one checked constructor every driver funnels through (it owns the
    /// `use_entropy` precondition).
    pub fn scoring_context(&self, graph: &BlockGraph) -> ScoringContext {
        ScoringContext::new(graph, self.scorer, self.use_entropy)
    }
}

/// Per-node retention statistics gathered in the first pass.
///
/// Public because the online resolver (`sparker-serve`) maintains these
/// incrementally per dirty node and replays [`RetentionRule::keeps`] over
/// the touched neighborhoods only.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// Mean edge weight of the node's neighborhood (WNP).
    pub mean: f64,
    /// Maximum edge weight (Blast).
    pub max: f64,
    /// k-th largest weight (CNP); `f64::INFINITY` when the node has no
    /// edges.
    pub kth: f64,
}

/// Per-node half of the first pass: materialize one node's neighborhood,
/// weight its edges, and summarize. This is the unit of work SparkER
/// distributes, so it is the hot loop of meta-blocking — after warm-up it
/// performs **zero heap allocation per node**: the neighborhood lives in
/// `scratch`, the edge weights in the caller's reusable `weights` buffer,
/// and (when `collect_weights`) the node's `node < j` edge weights are
/// appended to `all_weights` so each edge is counted once globally. The
/// CNP k-th weight uses an O(n) order-statistic selection instead of a
/// full sort, and mean/max are folded in the same pass that computes the
/// weights.
#[allow(clippy::too_many_arguments)]
pub(crate) fn node_pass_single(
    graph: &BlockGraph,
    node: ProfileId,
    scoring: &ScoringContext,
    cnp_k: usize,
    collect_weights: bool,
    all_weights: &mut Vec<f64>,
    scratch: &mut NeighborhoodScratch,
    weights: &mut Vec<f64>,
) -> NodeStats {
    let neighborhood = graph.neighborhood_buffered(node, scratch);
    if neighborhood.is_empty() {
        return NodeStats {
            kth: f64::INFINITY,
            ..NodeStats::default()
        };
    }
    weights.clear();
    let blocks_node = graph.blocks_of(node).len();
    let mut sum = 0.0f64;
    let mut max = 0.0f64;
    for &(j, ref acc) in neighborhood {
        let w = scoring.weigh(node, j, acc, blocks_node, graph.blocks_of(j).len());
        weights.push(w);
        sum += w;
        max = max.max(w);
        if collect_weights && node < j {
            all_weights.push(w);
        }
    }
    let mean = sum / weights.len() as f64;
    // k-th largest = element at rank k-1 of the descending order; selection
    // yields exactly the value a full descending sort would put there.
    let k = (cnp_k.min(weights.len())).saturating_sub(1);
    let (_, kth, _) =
        weights.select_nth_unstable_by(k, |a, b| b.partial_cmp(a).expect("weights are finite"));
    NodeStats {
        mean,
        max,
        kth: *kth,
    }
}

/// First pass: per-node statistics (and the global weight list when CEP
/// needs it). `collect_weights` gathers each edge's weight once (i < j).
pub(crate) fn node_stats_pass(
    graph: &BlockGraph,
    scoring: &ScoringContext,
    cnp_k: usize,
    collect_weights: bool,
) -> (Vec<NodeStats>, Vec<f64>) {
    let n = graph.num_profiles();
    let mut node_stats = vec![NodeStats::default(); n];
    let mut all_weights = Vec::new();
    let mut scratch = graph.scratch();
    let mut weights = Vec::new();
    for (i, slot) in node_stats.iter_mut().enumerate() {
        *slot = node_pass_single(
            graph,
            ProfileId(i as u32),
            scoring,
            cnp_k,
            collect_weights,
            &mut all_weights,
            &mut scratch,
            &mut weights,
        );
    }
    (node_stats, all_weights)
}

/// Fold pass-A output into one scalar so benchmarks can consume (and
/// cross-check) both pass variants without materializing results.
fn pass_checksum(node_stats: &[NodeStats], all_weights: &[f64]) -> f64 {
    let s: f64 = node_stats
        .iter()
        .map(|s| s.mean + s.max + if s.kth.is_finite() { s.kth } else { 0.0 })
        .sum();
    s + all_weights.iter().sum::<f64>()
}

/// Unstable hook for the in-repo node-pass micro-benchmark: run the full
/// first (statistics) pass with the allocation-free per-node loop and
/// return a checksum over its output. Not part of the public API.
#[doc(hidden)]
pub fn node_stats_pass_checksum(graph: &BlockGraph, config: &MetaBlockingConfig) -> f64 {
    let scoring = config.scoring_context(graph);
    let cnp_k = cnp_budget(config.pruning, graph);
    let (ns, aw) = node_stats_pass(graph, &scoring, cnp_k, true);
    pass_checksum(&ns, &aw)
}

/// Unstable hook for the in-repo node-pass micro-benchmark: the pre-morsel
/// per-node loop — a fresh weights `Vec` per node, an owned neighborhood
/// `Vec`, and a full `clone` + descending `sort` for the CNP k-th weight.
/// Produces the same checksum as [`node_stats_pass_checksum`] (asserted in
/// tests) so the benchmark compares equal work. Not part of the public API.
#[doc(hidden)]
pub fn node_stats_pass_baseline_checksum(graph: &BlockGraph, config: &MetaBlockingConfig) -> f64 {
    let scoring = config.scoring_context(graph);
    let cnp_k = cnp_budget(config.pruning, graph);
    let n = graph.num_profiles();
    let mut scratch = graph.scratch();
    let mut node_stats = Vec::with_capacity(n);
    let mut all_weights = Vec::new();
    for i in 0..n {
        let node = ProfileId(i as u32);
        let neighborhood = graph.neighborhood_with(node, &mut scratch);
        if neighborhood.is_empty() {
            node_stats.push(NodeStats {
                kth: f64::INFINITY,
                ..NodeStats::default()
            });
            continue;
        }
        let mut weights: Vec<f64> = Vec::with_capacity(neighborhood.len());
        for (j, acc) in &neighborhood {
            let w = scoring.weigh(
                node,
                *j,
                acc,
                graph.blocks_of(node).len(),
                graph.blocks_of(*j).len(),
            );
            weights.push(w);
            if node < *j {
                all_weights.push(w);
            }
        }
        let sum: f64 = weights.iter().sum();
        let max = weights.iter().fold(0.0f64, |a, &b| a.max(b));
        let mut sorted = weights.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
        let kth = sorted[(cnp_k.min(sorted.len())).saturating_sub(1)];
        node_stats.push(NodeStats {
            mean: sum / weights.len() as f64,
            max,
            kth,
        });
    }
    pass_checksum(&node_stats, &all_weights)
}

/// Resolved retention rule, shared by the sequential and parallel drivers
/// (and replayed edge-by-edge by the incremental resolver, which is why it
/// is public: the decision for one edge depends only on its weight and the
/// two endpoints' [`NodeStats`]).
#[derive(Debug, Clone)]
pub enum RetentionRule {
    /// Keep edges with weight ≥ the threshold (WEP / CEP).
    GlobalThreshold(f64),
    /// Keep edges above `factor` × an endpoint's neighborhood mean (WNP).
    NodeMean {
        /// Multiplier on the node mean.
        factor: f64,
        /// Require both endpoints (`true`) or either (`false`).
        reciprocal: bool,
    },
    /// Keep edges at or above an endpoint's k-th largest weight (CNP).
    NodeKth {
        /// Require both endpoints (`true`) or either (`false`).
        reciprocal: bool,
    },
    /// Blast: keep edges ≥ `ratio` × mean of the endpoints' maxima.
    BlastMaxima {
        /// Fraction of the endpoints' mean-of-maxima.
        ratio: f64,
    },
}

impl RetentionRule {
    /// Does an edge of weight `w` between endpoints with stats `a` and `b`
    /// survive pruning?
    pub fn keeps(&self, w: f64, a: &NodeStats, b: &NodeStats) -> bool {
        match self {
            RetentionRule::GlobalThreshold(t) => w >= *t,
            RetentionRule::NodeMean { factor, reciprocal } => {
                let (ka, kb) = (w >= factor * a.mean, w >= factor * b.mean);
                if *reciprocal {
                    ka && kb
                } else {
                    ka || kb
                }
            }
            RetentionRule::NodeKth { reciprocal } => {
                let (ka, kb) = (w >= a.kth, w >= b.kth);
                if *reciprocal {
                    ka && kb
                } else {
                    ka || kb
                }
            }
            RetentionRule::BlastMaxima { ratio } => w >= ratio * (a.max + b.max) / 2.0,
        }
    }
}

/// Resolve a pruning strategy into a concrete rule given the pass-A output.
pub(crate) fn resolve_rule(
    pruning: PruningStrategy,
    graph: &BlockGraph,
    all_weights: &mut [f64],
) -> RetentionRule {
    match pruning {
        PruningStrategy::Wep { factor } => {
            assert!(factor > 0.0, "WEP factor must be positive");
            let mean = if all_weights.is_empty() {
                0.0
            } else {
                all_weights.iter().sum::<f64>() / all_weights.len() as f64
            };
            RetentionRule::GlobalThreshold(factor * mean)
        }
        PruningStrategy::Cep { retain } => {
            let budget = retain.unwrap_or(graph.total_assignments() / 2).max(1) as usize;
            if all_weights.is_empty() {
                return RetentionRule::GlobalThreshold(0.0);
            }
            all_weights.sort_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
            let threshold = all_weights[(budget.min(all_weights.len())).saturating_sub(1)];
            RetentionRule::GlobalThreshold(threshold)
        }
        PruningStrategy::Wnp { factor, reciprocal } => {
            assert!(factor > 0.0, "WNP factor must be positive");
            RetentionRule::NodeMean { factor, reciprocal }
        }
        PruningStrategy::Cnp { reciprocal, .. } => RetentionRule::NodeKth { reciprocal },
        PruningStrategy::Blast { ratio } => {
            assert!(
                ratio > 0.0 && ratio <= 1.0,
                "Blast ratio must be in (0, 1], got {ratio}"
            );
            RetentionRule::BlastMaxima { ratio }
        }
    }
}

/// CNP's derived per-node budget: `k = max(1, round(BC / |P|))` where `BC`
/// is the total number of block assignments and `|P|` the number of
/// profiles spanned by the graph. Exposed so incremental callers can
/// recompute `k` from maintained aggregates without building a
/// [`BlockGraph`].
pub fn derived_cnp_k(total_assignments: u64, num_profiles: usize) -> usize {
    ((total_assignments as f64 / num_profiles.max(1) as f64).round() as usize).max(1)
}

/// The CNP per-node budget for a graph (`k = max(1, round(BC / |P|))`).
pub(crate) fn cnp_budget(pruning: PruningStrategy, graph: &BlockGraph) -> usize {
    match pruning {
        PruningStrategy::Cnp { k, .. } => {
            k.unwrap_or_else(|| derived_cnp_k(graph.total_assignments(), graph.num_profiles()))
        }
        _ => 1,
    }
}

/// Sequential meta-blocking over a prebuilt [`BlockGraph`]: weight every
/// implicit edge, derive thresholds, and return the retained candidate
/// pairs with their weights, sorted by pair.
pub fn meta_blocking_graph(graph: &BlockGraph, config: &MetaBlockingConfig) -> Vec<(Pair, f64)> {
    let scoring = config.scoring_context(graph);
    let cnp_k = cnp_budget(config.pruning, graph);
    let needs_global = matches!(
        config.pruning,
        PruningStrategy::Wep { .. } | PruningStrategy::Cep { .. }
    );
    let (node_stats, mut all_weights) = node_stats_pass(graph, &scoring, cnp_k, needs_global);
    let rule = resolve_rule(config.pruning, graph, &mut all_weights);

    let mut retained = Vec::new();
    let mut scratch = graph.scratch();
    for i in 0..graph.num_profiles() {
        let node = ProfileId(i as u32);
        let blocks_node = graph.blocks_of(node).len();
        for &(j, ref acc) in graph.neighborhood_buffered(node, &mut scratch) {
            if node >= j {
                continue; // count each edge once
            }
            let w = scoring.weigh(node, j, acc, blocks_node, graph.blocks_of(j).len());
            if rule.keeps(w, &node_stats[i], &node_stats[j.index()]) {
                retained.push((Pair::new(node, j), w));
            }
        }
    }
    retained.sort_by_key(|(a, _)| *a);
    retained
}

/// Convenience driver: build the graph from a block collection (without
/// entropies) and run [`meta_blocking_graph`].
pub fn meta_blocking(blocks: &BlockCollection, config: &MetaBlockingConfig) -> Vec<(Pair, f64)> {
    let entropies: Option<&BlockEntropies> = None;
    let graph = BlockGraph::new(blocks, entropies);
    meta_blocking_graph(&graph, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightScheme;
    use sparker_blocking::{token_blocking, Block};
    use sparker_profiles::{ErKind, Profile, ProfileCollection, SourceId};

    fn pid(i: u32) -> ProfileId {
        ProfileId(i)
    }

    fn pair(a: u32, b: u32) -> Pair {
        Pair::new(pid(a), pid(b))
    }

    fn figure1_blocks() -> BlockCollection {
        let p1 = Profile::builder(SourceId(0), "p1")
            .attr("Name", "Blast")
            .attr("Authors", "G. Simonini")
            .attr("Abstract", "how to improve meta-blocking")
            .build();
        let p2 = Profile::builder(SourceId(0), "p2")
            .attr("Name", "SparkER")
            .attr("Authors", "L. Gagliardelli")
            .attr("Abstract", "Simonini et al proposed blocking")
            .build();
        let p3 = Profile::builder(SourceId(1), "p3")
            .attr("title", "Blast: loosely schema blocking")
            .attr("author", "Giovanni Simonini")
            .attr("year", "2016")
            .build();
        let p4 = Profile::builder(SourceId(1), "p4")
            .attr("title", "SparkER: parallel Blast")
            .attr("author", "Luca Gagliardelli")
            .attr("year", "2017")
            .build();
        let coll = ProfileCollection::clean_clean(vec![p1, p2], vec![p3, p4]);
        token_blocking(&coll)
    }

    #[test]
    fn figure1_wep_cbs_retains_heavy_edges() {
        // Weights: (p1,p3)=3, (p1,p4)=1, (p2,p3)=2, (p2,p4)=2; mean = 2.
        // WEP keeps w ≥ 2 → (p1,p3), (p2,p3), (p2,p4); prunes (p1,p4) —
        // matching the dashed edges of Figure 1(c).
        let pruned = meta_blocking(&figure1_blocks(), &MetaBlockingConfig::default());
        let pairs: Vec<Pair> = pruned.iter().map(|(p, _)| *p).collect();
        assert_eq!(pairs, vec![pair(0, 2), pair(1, 2), pair(1, 3)]);
        assert_eq!(pruned[0].1, 3.0);
    }

    #[test]
    fn figure2_entropy_weighting_removes_spurious_edges() {
        // The paper's Figure 2(c): with loose-schema keys and entropy
        // weights (authors partition: 0.8; name/title/abstract: 0.4), only
        // (p1,p3) and (p2,p4) survive — "the two retained red edges of
        // Figure 1(c) are now removed".
        // Reconstruct the loose-schema blocks of the toy directly.
        let blocks = BlockCollection::new(
            ErKind::CleanClean,
            vec![
                // blast under name/title partition (entropy 0.4):
                Block::clean_clean("blast_1", vec![pid(0)], vec![pid(2), pid(3)]),
                // blocking under name/title/abstract partition (0.4):
                Block::clean_clean("blocking_1", vec![pid(0), pid(1)], vec![pid(2)]),
                // simonini as author (0.8): p1 and p3 only.
                Block::clean_clean("simonini_0", vec![pid(0)], vec![pid(2)]),
                // gagliardelli as author (0.8): p2, p4.
                Block::clean_clean("gagliardelli_0", vec![pid(1)], vec![pid(3)]),
                // sparker under name/title (0.4): p2, p4.
                Block::clean_clean("sparker_1", vec![pid(1)], vec![pid(3)]),
            ],
        );
        let entropies = BlockEntropies::new(vec![0.4, 0.4, 0.8, 0.8, 0.4]);
        let graph = BlockGraph::new(&blocks, Some(&entropies));
        let config = MetaBlockingConfig {
            scorer: EdgeScorer::Classic(WeightScheme::Cbs),
            pruning: PruningStrategy::Wep { factor: 1.0 },
            use_entropy: true,
        };
        let pruned = meta_blocking_graph(&graph, &config);
        let pairs: Vec<Pair> = pruned.iter().map(|(p, _)| *p).collect();
        assert_eq!(pairs, vec![pair(0, 2), pair(1, 3)]);
        // Figure 2(c) weights: w(p1,p3) = 0.4+0.4+0.8 = 1.6; w(p2,p4) =
        // 0.8+0.4 = 1.2.
        assert!((pruned[0].1 - 1.6).abs() < 1e-12);
        assert!((pruned[1].1 - 1.2).abs() < 1e-12);
    }

    #[test]
    fn wep_factor_scales_aggressiveness() {
        let blocks = figure1_blocks();
        let loose = meta_blocking(
            &blocks,
            &MetaBlockingConfig {
                pruning: PruningStrategy::Wep { factor: 0.1 },
                ..MetaBlockingConfig::default()
            },
        );
        let tight = meta_blocking(
            &blocks,
            &MetaBlockingConfig {
                pruning: PruningStrategy::Wep { factor: 1.4 },
                ..MetaBlockingConfig::default()
            },
        );
        assert_eq!(loose.len(), 4, "low factor keeps all edges");
        assert_eq!(tight.len(), 1, "high factor keeps only (p1,p3)");
    }

    #[test]
    fn cep_respects_budget() {
        let blocks = figure1_blocks();
        let top2 = meta_blocking(
            &blocks,
            &MetaBlockingConfig {
                pruning: PruningStrategy::Cep { retain: Some(1) },
                ..MetaBlockingConfig::default()
            },
        );
        assert_eq!(top2.len(), 1);
        assert_eq!(top2[0].0, pair(0, 2));
        // Budget larger than the edge count keeps everything.
        let all = meta_blocking(
            &blocks,
            &MetaBlockingConfig {
                pruning: PruningStrategy::Cep { retain: Some(100) },
                ..MetaBlockingConfig::default()
            },
        );
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn wnp_keeps_edges_strong_for_either_endpoint() {
        let blocks = figure1_blocks();
        let pruned = meta_blocking(
            &blocks,
            &MetaBlockingConfig {
                pruning: PruningStrategy::Wnp {
                    factor: 1.0,
                    reciprocal: false,
                },
                ..MetaBlockingConfig::default()
            },
        );
        let pairs: Vec<Pair> = pruned.iter().map(|(p, _)| *p).collect();
        // Node means: p1: (3+1)/2 = 2; p2: 2; p3: (3+2)/2 = 2.5; p4: 1.5.
        // (p1,p3): 3 ≥ 2 ✓. (p1,p4): 1 < 2 and 1 < 1.5 ✗. (p2,p3): 2 ≥ 2 ✓.
        // (p2,p4): 2 ≥ 2 ✓.
        assert_eq!(pairs, vec![pair(0, 2), pair(1, 2), pair(1, 3)]);
    }

    #[test]
    fn reciprocal_wnp_is_stricter_than_redefined() {
        let blocks = figure1_blocks();
        let run = |reciprocal: bool| {
            meta_blocking(
                &blocks,
                &MetaBlockingConfig {
                    pruning: PruningStrategy::Wnp {
                        factor: 1.0,
                        reciprocal,
                    },
                    ..MetaBlockingConfig::default()
                },
            )
        };
        let union = run(false);
        let inter = run(true);
        // Reciprocal retains a subset of the redefined (union) variant.
        let union_pairs: std::collections::HashSet<Pair> = union.iter().map(|(p, _)| *p).collect();
        for (p, _) in &inter {
            assert!(union_pairs.contains(p));
        }
        // On Figure 1: node means p1:2, p2:2, p3:2.5, p4:1.5.
        // (p2,p3): 2 ≥ 2 for p2 but 2 < 2.5 for p3 → dropped reciprocally.
        let pairs: Vec<Pair> = inter.iter().map(|(p, _)| *p).collect();
        assert_eq!(pairs, vec![pair(0, 2), pair(1, 3)]);
    }

    #[test]
    fn cnp_top1_keeps_best_edge_per_node() {
        let blocks = figure1_blocks();
        let pruned = meta_blocking(
            &blocks,
            &MetaBlockingConfig {
                pruning: PruningStrategy::Cnp {
                    k: Some(1),
                    reciprocal: false,
                },
                ..MetaBlockingConfig::default()
            },
        );
        let pairs: Vec<Pair> = pruned.iter().map(|(p, _)| *p).collect();
        // Top-1 per node: p1→(p1,p3); p2→ties at 2 keep both; p3→(p1,p3);
        // p4→ties at... p4's edges: (p1,p4)=1, (p2,p4)=2 → keeps (p2,p4).
        assert!(pairs.contains(&pair(0, 2)));
        assert!(pairs.contains(&pair(1, 3)));
        assert!(!pairs.contains(&pair(0, 3)), "weakest edge pruned");
    }

    #[test]
    fn blast_pruning_uses_local_maxima() {
        let blocks = figure1_blocks();
        let pruned = meta_blocking(
            &blocks,
            &MetaBlockingConfig {
                scorer: EdgeScorer::Classic(WeightScheme::Cbs),
                pruning: PruningStrategy::Blast { ratio: 0.9 },
                use_entropy: false,
            },
        );
        // Maxima: p1: 3, p2: 2, p3: 3, p4: 2.
        // (p1,p3): t = 0.9·3 = 2.7 → 3 kept. (p1,p4): t = 0.9·2.5 = 2.25 →
        // 1 pruned. (p2,p3): t = 2.25 → 2 pruned. (p2,p4): t = 1.8 → 2 kept.
        let pairs: Vec<Pair> = pruned.iter().map(|(p, _)| *p).collect();
        assert_eq!(pairs, vec![pair(0, 2), pair(1, 3)]);
    }

    #[test]
    fn empty_blocks_give_empty_output() {
        let blocks = BlockCollection::new(ErKind::Dirty, vec![]);
        for pruning in [
            PruningStrategy::Wep { factor: 1.0 },
            PruningStrategy::Cep { retain: None },
            PruningStrategy::Wnp {
                factor: 1.0,
                reciprocal: false,
            },
            PruningStrategy::Cnp {
                k: None,
                reciprocal: false,
            },
            PruningStrategy::Blast { ratio: 0.35 },
        ] {
            let out = meta_blocking(
                &blocks,
                &MetaBlockingConfig {
                    pruning,
                    ..MetaBlockingConfig::default()
                },
            );
            assert!(out.is_empty(), "{}", pruning.name());
        }
    }

    #[test]
    fn every_scheme_and_strategy_runs_and_reduces() {
        // A modestly noisy dirty collection: pruning should drop some but
        // not all edges for every configuration.
        let profiles: Vec<Profile> = (0..30)
            .map(|i| {
                Profile::builder(SourceId(0), i.to_string())
                    .attr(
                        "name",
                        format!("item group{} shared common token{}", i % 5, i % 3),
                    )
                    .build()
            })
            .collect();
        let coll = ProfileCollection::dirty(profiles);
        let blocks = token_blocking(&coll);
        let graph = BlockGraph::new(&blocks, None);
        let total_edges = {
            let (_, e) = graph.degrees();
            e
        };
        for scheme in WeightScheme::ALL {
            for pruning in [
                PruningStrategy::Wep { factor: 1.0 },
                PruningStrategy::Cep { retain: None },
                PruningStrategy::Wnp {
                    factor: 1.0,
                    reciprocal: false,
                },
                PruningStrategy::Cnp {
                    k: None,
                    reciprocal: false,
                },
                PruningStrategy::Blast { ratio: 0.35 },
            ] {
                let out = meta_blocking_graph(
                    &graph,
                    &MetaBlockingConfig {
                        scorer: EdgeScorer::Classic(scheme),
                        pruning,
                        use_entropy: false,
                    },
                );
                assert!(
                    !out.is_empty() && (out.len() as u64) <= total_edges,
                    "{}+{}: kept {}/{total_edges}",
                    scheme.name(),
                    pruning.name(),
                    out.len(),
                );
                // Threshold-at-mean and budgeted strategies must strictly
                // reduce this graph (its weight distribution is non-uniform);
                // Blast's local-maxima rule may legitimately keep everything
                // on near-uniform neighborhoods.
                if matches!(
                    pruning,
                    PruningStrategy::Wep { .. } | PruningStrategy::Cep { .. }
                ) {
                    assert!(
                        (out.len() as u64) < total_edges,
                        "{}+{}: no reduction",
                        scheme.name(),
                        pruning.name(),
                    );
                }
            }
        }
    }

    #[test]
    fn allocation_free_pass_matches_sort_clone_baseline() {
        // The micro-benchmark hooks must agree bit-for-bit: the O(n)
        // selection and single-pass folds change no output.
        let profiles: Vec<Profile> = (0..50)
            .map(|i| {
                Profile::builder(SourceId(0), i.to_string())
                    .attr("name", format!("a{} b{} c{}", i % 6, i % 4, (i + 1) % 6))
                    .build()
            })
            .collect();
        let coll = ProfileCollection::dirty(profiles);
        let graph = BlockGraph::new(&token_blocking(&coll), None);
        for scheme in WeightScheme::ALL {
            for pruning in [
                PruningStrategy::Cnp {
                    k: None,
                    reciprocal: false,
                },
                PruningStrategy::Wep { factor: 1.0 },
            ] {
                let config = MetaBlockingConfig {
                    scorer: EdgeScorer::Classic(scheme),
                    pruning,
                    use_entropy: false,
                };
                let fast = node_stats_pass_checksum(&graph, &config);
                let slow = node_stats_pass_baseline_checksum(&graph, &config);
                assert_eq!(
                    fast.to_bits(),
                    slow.to_bits(),
                    "{}+{} checksum diverged",
                    scheme.name(),
                    pruning.name(),
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "use_entropy requires")]
    fn entropy_without_entropies_rejected() {
        let graph = BlockGraph::new(&figure1_blocks(), None);
        meta_blocking_graph(
            &graph,
            &MetaBlockingConfig {
                use_entropy: true,
                ..MetaBlockingConfig::default()
            },
        );
    }

    #[test]
    fn blast_preset_config() {
        let c = MetaBlockingConfig::blast();
        assert_eq!(c.scorer, EdgeScorer::Classic(WeightScheme::ChiSquare));
        assert!(c.use_entropy);
        assert!(
            matches!(c.pruning, PruningStrategy::Blast { ratio } if (ratio - 0.35).abs() < 1e-12)
        );
    }
}
