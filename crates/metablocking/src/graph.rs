//! The blocking graph: implicit edges materialized one neighborhood at a
//! time.
//!
//! Meta-blocking never stores the full edge set — for big collections it
//! would dwarf the input. Instead, a node's neighborhood is materialized on
//! demand from the inverted block index, the pruning rule is applied, and
//! the edges are discarded; this is exactly the structure SparkER
//! parallelizes with its broadcast join.

use crate::entropy::BlockEntropies;
use sparker_blocking::{BlockCollection, CompactBlocks};
use sparker_profiles::{ErKind, ProfileId};

/// Per-edge co-occurrence statistics accumulated while scanning shared
/// blocks; the input of every [`crate::WeightScheme`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EdgeAccumulator {
    /// Number of shared blocks (CBS).
    pub shared_blocks: u32,
    /// Σ over shared blocks of `1 / comparisons(block)` (ARCS).
    pub arcs: f64,
    /// Σ over shared blocks of the block's entropy (entropy re-weighting).
    pub entropy_sum: f64,
}

/// Reusable accumulation buffer for [`BlockGraph::neighborhood_with`]:
/// a dense per-profile accumulator plus the list of touched slots, reset
/// after every call. Avoids per-node hashing and allocation in
/// meta-blocking's hot loop.
#[derive(Debug, Clone)]
pub struct NeighborhoodScratch {
    acc: Vec<EdgeAccumulator>,
    touched: Vec<u32>,
    /// Output buffer of [`BlockGraph::neighborhood_buffered`], reused
    /// across nodes so a warm scratch makes the whole pass allocation-free.
    out: Vec<(ProfileId, EdgeAccumulator)>,
}

impl NeighborhoodScratch {
    /// Size of the most recent [`BlockGraph::neighborhood_buffered`] output
    /// — the materialized node's degree — without re-walking its blocks.
    pub(crate) fn last_neighborhood_len(&self) -> usize {
        self.out.len()
    }
}

/// A compact, immutable view of the block collection, indexed both ways,
/// from which node neighborhoods are materialized.
///
/// This is precisely the structure SparkER broadcasts to every partition in
/// its parallel meta-blocking. Both indexes are CSR-packed (one flat array
/// plus offsets), so the whole graph is six contiguous allocations — cheap
/// to build, clone and broadcast, friendly to the cache in the
/// neighborhood-materialization hot loop.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockGraph {
    kind: ErKind,
    /// Members of every block, back to back; block `b` occupies
    /// `block_offsets[b]..block_offsets[b + 1]`, source-0 prefix first,
    /// each side sorted.
    block_members: Vec<ProfileId>,
    block_offsets: Vec<u32>,
    /// Length of the source-0 prefix of block `b`'s members.
    block_split: Vec<u32>,
    /// Comparisons per block.
    block_comparisons: Vec<u64>,
    /// Block ids per profile, back to back; profile `p` occupies
    /// `profile_offsets[p]..profile_offsets[p + 1]`, ascending.
    profile_blocks: Vec<u32>,
    profile_offsets: Vec<u32>,
    /// Optional per-block entropies.
    entropies: Option<Vec<f64>>,
    /// Total profile→block assignments (Σ block sizes).
    total_assignments: u64,
    num_profiles: usize,
}

impl BlockGraph {
    /// Build the graph view. `entropies`, when given, must align with the
    /// block collection.
    pub fn new(blocks: &BlockCollection, entropies: Option<&BlockEntropies>) -> Self {
        if let Some(e) = entropies {
            assert_eq!(e.len(), blocks.len(), "entropies misaligned with blocks");
        }
        let kind = blocks.kind();
        let mut block_members = Vec::new();
        let mut block_offsets = Vec::with_capacity(blocks.len() + 1);
        block_offsets.push(0u32);
        let mut block_split = Vec::with_capacity(blocks.len());
        let mut block_comparisons = Vec::with_capacity(blocks.len());
        let mut max_profile = 0usize;
        for b in blocks.blocks() {
            block_members.extend(b.all_members());
            block_offsets.push(block_members.len() as u32);
            if let Some(m) = b.all_members().map(|p| p.index()).max() {
                max_profile = max_profile.max(m + 1);
            }
            block_split.push(b.members[0].len() as u32);
            block_comparisons.push(b.comparisons(kind));
        }
        Self::assemble(
            kind,
            block_members,
            block_offsets,
            block_split,
            block_comparisons,
            entropies.map(|e| e.as_slice().to_vec()),
            max_profile,
        )
    }

    /// Build the graph view straight from a CSR [`CompactBlocks`]: the flat
    /// member and offset arrays are adopted wholesale (one memcpy each, no
    /// per-block vectors are ever created). `entropies`, when given, must
    /// align with the compact blocks.
    pub fn from_compact(blocks: &CompactBlocks, entropies: Option<&BlockEntropies>) -> Self {
        if let Some(e) = entropies {
            assert_eq!(e.len(), blocks.len(), "entropies misaligned with blocks");
        }
        let (offsets, splits, members) = blocks.raw_parts();
        let block_comparisons = (0..blocks.len()).map(|b| blocks.comparisons(b)).collect();
        Self::assemble(
            blocks.kind(),
            members.to_vec(),
            offsets.to_vec(),
            splits.to_vec(),
            block_comparisons,
            entropies.map(|e| e.as_slice().to_vec()),
            blocks.num_profiles(),
        )
    }

    /// [`BlockGraph::new`] with the profile→blocks index built over
    /// bounded profile ranges when `budget` is limited; bit-identical to
    /// the monolithic assemble either way (pinned by proptest).
    pub fn new_budgeted(
        blocks: &BlockCollection,
        entropies: Option<&BlockEntropies>,
        budget: &sparker_dataflow::MemBudget,
    ) -> Self {
        let g = Self::new(blocks, entropies);
        // `new` gathers the flat arrays anyway; re-run only the index
        // build chunked when a budget applies.
        if budget.is_limited() {
            let chunk = budget.chunk_len(g.num_profiles, 8);
            return Self::assemble_chunked(
                g.kind,
                g.block_members,
                g.block_offsets,
                g.block_split,
                g.block_comparisons,
                g.entropies,
                g.num_profiles,
                chunk,
            );
        }
        g
    }

    /// [`BlockGraph::from_compact`] under a memory budget: the
    /// profile→blocks counting sort runs over fixed-size profile ranges,
    /// so its scatter cursor is bounded by the range instead of the whole
    /// profile space. Bit-identical to [`BlockGraph::from_compact`].
    pub fn from_compact_budgeted(
        blocks: &CompactBlocks,
        entropies: Option<&BlockEntropies>,
        budget: &sparker_dataflow::MemBudget,
    ) -> Self {
        if !budget.is_limited() {
            return Self::from_compact(blocks, entropies);
        }
        if let Some(e) = entropies {
            assert_eq!(e.len(), blocks.len(), "entropies misaligned with blocks");
        }
        let (offsets, splits, members) = blocks.raw_parts();
        let block_comparisons = (0..blocks.len()).map(|b| blocks.comparisons(b)).collect();
        let chunk = budget.chunk_len(blocks.num_profiles(), 8);
        Self::assemble_chunked(
            blocks.kind(),
            members.to_vec(),
            offsets.to_vec(),
            splits.to_vec(),
            block_comparisons,
            entropies.map(|e| e.as_slice().to_vec()),
            blocks.num_profiles(),
            chunk,
        )
    }

    /// Shared tail of the constructors: build the profile→blocks CSR index
    /// by counting sort over the flat member array.
    fn assemble(
        kind: ErKind,
        block_members: Vec<ProfileId>,
        block_offsets: Vec<u32>,
        block_split: Vec<u32>,
        block_comparisons: Vec<u64>,
        entropies: Option<Vec<f64>>,
        num_profiles: usize,
    ) -> Self {
        let total_assignments = block_members.len() as u64;
        let mut profile_offsets = vec![0u32; num_profiles + 1];
        for p in &block_members {
            profile_offsets[p.index() + 1] += 1;
        }
        for i in 1..profile_offsets.len() {
            profile_offsets[i] += profile_offsets[i - 1];
        }
        let mut profile_blocks = vec![0u32; block_members.len()];
        let mut cursor = profile_offsets.clone();
        let num_blocks = block_offsets.len() - 1;
        // Ascending block id keeps each profile's block list sorted.
        for b in 0..num_blocks {
            for p in &block_members[block_offsets[b] as usize..block_offsets[b + 1] as usize] {
                profile_blocks[cursor[p.index()] as usize] = b as u32;
                cursor[p.index()] += 1;
            }
        }
        BlockGraph {
            kind,
            block_members,
            block_offsets,
            block_split,
            block_comparisons,
            profile_blocks,
            profile_offsets,
            entropies,
            total_assignments,
            num_profiles,
        }
    }

    /// [`BlockGraph::assemble`] with the fill pass chunked over profile
    /// ranges of `chunk_profiles`: the scatter cursor is allocated per
    /// range instead of once for the whole profile space, bounding the
    /// build's extra working memory. Each profile's writes still happen in
    /// ascending block-id order, so the output is bit-identical to the
    /// monolithic pass.
    #[allow(clippy::too_many_arguments)]
    fn assemble_chunked(
        kind: ErKind,
        block_members: Vec<ProfileId>,
        block_offsets: Vec<u32>,
        block_split: Vec<u32>,
        block_comparisons: Vec<u64>,
        entropies: Option<Vec<f64>>,
        num_profiles: usize,
        chunk_profiles: usize,
    ) -> Self {
        let chunk_profiles = chunk_profiles.max(1);
        let total_assignments = block_members.len() as u64;
        let mut profile_offsets = vec![0u32; num_profiles + 1];
        for p in &block_members {
            profile_offsets[p.index() + 1] += 1;
        }
        for i in 1..profile_offsets.len() {
            profile_offsets[i] += profile_offsets[i - 1];
        }
        let mut profile_blocks = vec![0u32; block_members.len()];
        let num_blocks = block_offsets.len() - 1;
        let mut p0 = 0usize;
        while p0 < num_profiles {
            let p1 = (p0 + chunk_profiles).min(num_profiles);
            let mut cursor: Vec<u32> = profile_offsets[p0..p1].to_vec();
            for b in 0..num_blocks {
                for p in &block_members[block_offsets[b] as usize..block_offsets[b + 1] as usize] {
                    let i = p.index();
                    if (p0..p1).contains(&i) {
                        profile_blocks[cursor[i - p0] as usize] = b as u32;
                        cursor[i - p0] += 1;
                    }
                }
            }
            p0 = p1;
        }
        BlockGraph {
            kind,
            block_members,
            block_offsets,
            block_split,
            block_comparisons,
            profile_blocks,
            profile_offsets,
            entropies,
            total_assignments,
            num_profiles,
        }
    }

    /// Number of profile slots (max id + 1).
    pub fn num_profiles(&self) -> usize {
        self.num_profiles
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_offsets.len() - 1
    }

    /// Members of block `b`: source-0 prefix then source-1, each sorted.
    fn members_of(&self, b: usize) -> &[ProfileId] {
        &self.block_members[self.block_offsets[b] as usize..self.block_offsets[b + 1] as usize]
    }

    /// Task kind of the underlying blocks.
    pub fn kind(&self) -> ErKind {
        self.kind
    }

    /// Total profile→block assignments (Σ block sizes) — the *block
    /// cardinality* used to derive cardinality-pruning defaults.
    pub fn total_assignments(&self) -> u64 {
        self.total_assignments
    }

    /// `true` when per-block entropies are attached.
    pub fn has_entropies(&self) -> bool {
        self.entropies.is_some()
    }

    /// Blocks containing profile `i`, ascending.
    pub fn blocks_of(&self, i: ProfileId) -> &[u32] {
        if i.index() >= self.num_profiles {
            return &[];
        }
        &self.profile_blocks
            [self.profile_offsets[i.index()] as usize..self.profile_offsets[i.index() + 1] as usize]
    }

    /// Allocate a reusable scratch buffer for
    /// [`BlockGraph::neighborhood_with`]. One allocation serves any number
    /// of neighborhood materializations — the hot loop of meta-blocking.
    pub fn scratch(&self) -> NeighborhoodScratch {
        NeighborhoodScratch {
            acc: vec![EdgeAccumulator::default(); self.num_profiles],
            touched: Vec::new(),
            out: Vec::new(),
        }
    }

    /// The comparable co-members of `node` within block `b` (for
    /// clean–clean, the other source's side; the node's side is located
    /// from the block's own sorted membership).
    fn candidates_of(&self, node: ProfileId, b: usize) -> &[ProfileId] {
        let members = self.members_of(b);
        match self.kind {
            ErKind::Dirty => members,
            ErKind::CleanClean => {
                let split = self.block_split[b] as usize;
                if members[..split].binary_search(&node).is_ok() {
                    &members[split..]
                } else {
                    &members[..split]
                }
            }
        }
    }

    /// Materialize the neighborhood of `node`: every comparable profile
    /// sharing ≥ 1 block, with accumulated co-occurrence statistics.
    /// Neighbors are returned sorted by id (deterministic).
    ///
    /// Convenience wrapper over [`BlockGraph::neighborhood_with`] that
    /// allocates a fresh scratch; loops over many nodes should hold one
    /// scratch and call `neighborhood_with` instead (dense-array
    /// accumulation, no hashing, no per-node allocation).
    pub fn neighborhood(&self, node: ProfileId) -> Vec<(ProfileId, EdgeAccumulator)> {
        let mut scratch = self.scratch();
        self.neighborhood_with(node, &mut scratch)
    }

    /// [`BlockGraph::neighborhood`] into a reusable [`NeighborhoodScratch`].
    ///
    /// For clean–clean tasks, only the other source's side of each block is
    /// scanned (same-source profiles are not comparable); the node's side
    /// within a block is determined from the block's own membership, so no
    /// external separator is needed.
    pub fn neighborhood_with(
        &self,
        node: ProfileId,
        scratch: &mut NeighborhoodScratch,
    ) -> Vec<(ProfileId, EdgeAccumulator)> {
        self.neighborhood_buffered(node, scratch).to_vec()
    }

    /// [`BlockGraph::neighborhood_with`] without the output allocation: the
    /// neighborhood is materialized into the scratch's reusable output
    /// buffer and returned as a borrow. After the first few nodes warm the
    /// buffers, a full pass over the graph performs **zero** heap
    /// allocations — the variant the meta-blocking hot loops use.
    pub fn neighborhood_buffered<'s>(
        &self,
        node: ProfileId,
        scratch: &'s mut NeighborhoodScratch,
    ) -> &'s [(ProfileId, EdgeAccumulator)] {
        debug_assert_eq!(scratch.acc.len(), self.num_profiles, "foreign scratch");
        for &b in self.blocks_of(node) {
            let bi = b as usize;
            let comparisons = self.block_comparisons[bi].max(1) as f64;
            let entropy = self.entropies.as_ref().map_or(1.0, |e| e[bi]);
            for &other in self.candidates_of(node, bi) {
                if other == node {
                    continue;
                }
                let slot = &mut scratch.acc[other.index()];
                if slot.shared_blocks == 0 {
                    scratch.touched.push(other.0);
                }
                slot.shared_blocks += 1;
                slot.arcs += 1.0 / comparisons;
                slot.entropy_sum += entropy;
            }
        }
        scratch.touched.sort_unstable();
        scratch.out.clear();
        for &t in &scratch.touched {
            scratch.out.push((ProfileId(t), scratch.acc[t as usize]));
            scratch.acc[t as usize] = EdgeAccumulator::default();
        }
        scratch.touched.clear();
        &scratch.out
    }

    /// Node degrees (distinct comparable neighbors per profile) and the
    /// total number of distinct edges — the global statistics EJS needs and
    /// the cost hints skew-aware partitioning feeds on.
    ///
    /// Counting-only: neighbors are deduplicated with an epoch-marked seen
    /// array instead of materializing accumulator-laden, sorted
    /// neighborhoods — no [`EdgeAccumulator`] writes, no sort, two
    /// allocations total.
    pub fn degrees(&self) -> (Vec<u32>, u64) {
        let mut degrees = vec![0u32; self.num_profiles];
        let mut seen = vec![u32::MAX; self.num_profiles];
        let mut edges = 0u64;
        for (i, slot) in degrees.iter_mut().enumerate() {
            let count = self.degree_of(ProfileId(i as u32), &mut seen);
            *slot = count;
            edges += u64::from(count);
        }
        (degrees, edges / 2)
    }

    /// Distinct comparable neighbors of one `node`, counted with the
    /// caller's epoch-marked `seen` array (length [`num_profiles`], entries
    /// initialized to `u32::MAX` — never a node id, since ids are
    /// `< num_profiles ≤ u32::MAX`). The node's own id is the epoch, so a
    /// single array serves any set of distinct nodes without resets —
    /// the unit of work node-parallel degree counting distributes
    /// ([`crate::parallel::degrees_parallel`]).
    ///
    /// [`num_profiles`]: BlockGraph::num_profiles
    pub fn degree_of(&self, node: ProfileId, seen: &mut [u32]) -> u32 {
        debug_assert_eq!(seen.len(), self.num_profiles, "foreign seen array");
        let mut count = 0u32;
        for &b in self.blocks_of(node) {
            for &other in self.candidates_of(node, b as usize) {
                if other != node && seen[other.index()] != node.0 {
                    seen[other.index()] = node.0;
                    count += 1;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_blocking::token_blocking;
    use sparker_profiles::{Profile, ProfileCollection, SourceId};
    use std::collections::HashMap;

    pub(crate) fn figure1() -> (ProfileCollection, BlockCollection) {
        let p1 = Profile::builder(SourceId(0), "p1")
            .attr("Name", "Blast")
            .attr("Authors", "G. Simonini")
            .attr("Abstract", "how to improve meta-blocking")
            .build();
        let p2 = Profile::builder(SourceId(0), "p2")
            .attr("Name", "SparkER")
            .attr("Authors", "L. Gagliardelli")
            .attr("Abstract", "Simonini et al proposed blocking")
            .build();
        let p3 = Profile::builder(SourceId(1), "p3")
            .attr("title", "Blast: loosely schema blocking")
            .attr("author", "Giovanni Simonini")
            .attr("year", "2016")
            .build();
        let p4 = Profile::builder(SourceId(1), "p4")
            .attr("title", "SparkER: parallel Blast")
            .attr("author", "Luca Gagliardelli")
            .attr("year", "2017")
            .build();
        let coll = ProfileCollection::clean_clean(vec![p1, p2], vec![p3, p4]);
        let blocks = token_blocking(&coll);
        (coll, blocks)
    }

    #[test]
    fn figure1_neighborhood_weights() {
        // Figure 1(c): w(p1,p3)=3 (blast, simonini, blocking), w(p1,p4)=1
        // (blast), w(p2,p3)=2, w(p2,p4)=2.
        let (_, blocks) = figure1();
        let g = BlockGraph::new(&blocks, None);
        let n1 = g.neighborhood(ProfileId(0));
        let weights: HashMap<u32, u32> = n1.iter().map(|(p, a)| (p.0, a.shared_blocks)).collect();
        assert_eq!(weights[&2], 3);
        assert_eq!(weights[&3], 1);
        let n2 = g.neighborhood(ProfileId(1));
        let weights: HashMap<u32, u32> = n2.iter().map(|(p, a)| (p.0, a.shared_blocks)).collect();
        assert_eq!(weights[&2], 2);
        assert_eq!(weights[&3], 2);
    }

    #[test]
    fn clean_clean_excludes_same_source_neighbors() {
        let (_, blocks) = figure1();
        let g = BlockGraph::new(&blocks, None);
        for i in 0..4u32 {
            for (n, _) in g.neighborhood(ProfileId(i)) {
                assert_ne!(
                    i < 2,
                    n.0 < 2,
                    "p{i} must not neighbor same-source p{}",
                    n.0
                );
            }
        }
    }

    #[test]
    fn neighborhoods_are_symmetric() {
        let (_, blocks) = figure1();
        let g = BlockGraph::new(&blocks, None);
        for i in 0..4u32 {
            for (j, acc) in g.neighborhood(ProfileId(i)) {
                let back = g.neighborhood(j);
                let found = back.iter().find(|(p, _)| *p == ProfileId(i)).unwrap();
                assert_eq!(found.1, acc);
            }
        }
    }

    #[test]
    fn degrees_and_edge_count() {
        let (_, blocks) = figure1();
        let g = BlockGraph::new(&blocks, None);
        let (degrees, edges) = g.degrees();
        assert_eq!(degrees, vec![2, 2, 2, 2]);
        assert_eq!(edges, 4);
    }

    #[test]
    fn counting_degrees_match_materialized_neighborhoods() {
        // The counting-only path must agree with full materialization on a
        // graph with repeated co-occurrence (shared blocks > 1 per pair).
        let coll = ProfileCollection::dirty(
            (0..40)
                .map(|i| {
                    Profile::builder(SourceId(0), i.to_string())
                        .attr("t", format!("tok{} tok{} hub", i % 6, (i + 2) % 6))
                        .build()
                })
                .collect(),
        );
        let g = BlockGraph::new(&token_blocking(&coll), None);
        let (degrees, edges) = g.degrees();
        let mut expect_edges = 0u64;
        for (i, d) in degrees.iter().enumerate() {
            let n = g.neighborhood(ProfileId(i as u32));
            assert_eq!(*d as usize, n.len(), "node {i}");
            expect_edges += n.len() as u64;
        }
        assert_eq!(edges, expect_edges / 2);
    }

    #[test]
    fn buffered_neighborhood_equals_allocating_variant() {
        let (_, blocks) = figure1();
        let g = BlockGraph::new(&blocks, None);
        let mut scratch = g.scratch();
        for i in 0..4u32 {
            let node = ProfileId(i);
            let owned = g.neighborhood(node);
            let borrowed = g.neighborhood_buffered(node, &mut scratch).to_vec();
            assert_eq!(owned, borrowed, "node {i}");
        }
    }

    #[test]
    fn arcs_accumulates_reciprocal_comparisons() {
        let (_, blocks) = figure1();
        let g = BlockGraph::new(&blocks, None);
        // blast: p1|p3,p4 → 2 comparisons; simonini, blocking: p1,p2|p3 →
        // 2 comparisons each.
        let n1 = g.neighborhood(ProfileId(0));
        let (_, acc) = n1.iter().find(|(p, _)| p.0 == 2).unwrap();
        assert!((acc.arcs - (0.5 + 0.5 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn dirty_graph_neighbors_everyone_comparable() {
        let coll = ProfileCollection::dirty(vec![
            Profile::builder(SourceId(0), "a").attr("n", "x y").build(),
            Profile::builder(SourceId(0), "b").attr("n", "x z").build(),
            Profile::builder(SourceId(0), "c").attr("n", "y z").build(),
        ]);
        let blocks = token_blocking(&coll);
        let g = BlockGraph::new(&blocks, None);
        assert_eq!(g.neighborhood(ProfileId(0)).len(), 2);
        let (degrees, edges) = g.degrees();
        assert_eq!(degrees, vec![2, 2, 2]);
        assert_eq!(edges, 3);
        assert_eq!(g.total_assignments(), 6);
        assert_eq!(g.kind(), ErKind::Dirty);
    }

    #[test]
    fn entropy_sum_uses_block_entropies() {
        let (_, blocks) = figure1();
        let entropies = BlockEntropies::new(vec![0.5; blocks.len()]);
        let g = BlockGraph::new(&blocks, Some(&entropies));
        assert!(g.has_entropies());
        let n1 = g.neighborhood(ProfileId(0));
        let (_, acc) = n1.iter().find(|(p, _)| p.0 == 2).unwrap();
        assert!(
            (acc.entropy_sum - 1.5).abs() < 1e-12,
            "3 shared blocks × 0.5"
        );
    }

    #[test]
    fn unknown_profile_has_empty_blocklist() {
        let (_, blocks) = figure1();
        let g = BlockGraph::new(&blocks, None);
        assert!(g.blocks_of(ProfileId(999)).is_empty());
        assert!(g.neighborhood(ProfileId(999)).is_empty());
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_entropies_rejected() {
        let (_, blocks) = figure1();
        let entropies = BlockEntropies::new(vec![0.5]);
        BlockGraph::new(&blocks, Some(&entropies));
    }

    #[test]
    fn from_compact_equals_from_collection() {
        use sparker_blocking::token_blocking_interned;
        use sparker_profiles::TokenDict;
        let (coll, blocks) = figure1();
        let dict = TokenDict::build(&coll);
        let compact = token_blocking_interned(&coll, &dict);
        let a = BlockGraph::new(&blocks, None);
        let b = BlockGraph::from_compact(&compact, None);
        assert_eq!(a.num_blocks(), b.num_blocks());
        assert_eq!(a.num_profiles(), b.num_profiles());
        assert_eq!(a.total_assignments(), b.total_assignments());
        for i in 0..4u32 {
            let node = ProfileId(i);
            assert_eq!(a.blocks_of(node), b.blocks_of(node));
            assert_eq!(a.neighborhood(node), b.neighborhood(node));
        }
    }

    #[test]
    fn budgeted_graph_is_bit_identical_to_monolithic() {
        use sparker_blocking::token_blocking_interned;
        use sparker_dataflow::MemBudget;
        use sparker_profiles::TokenDict;
        let (coll, blocks) = figure1();
        let entropies = BlockEntropies::new(vec![0.5; blocks.len()]);

        let mono = BlockGraph::new(&blocks, Some(&entropies));
        // A 1-byte budget drives the chunk size to its floor, exercising
        // many tiny profile ranges; unlimited must take the plain path.
        let tight = MemBudget::limited(1);
        assert_eq!(
            BlockGraph::new_budgeted(&blocks, Some(&entropies), &tight),
            mono
        );
        assert_eq!(
            BlockGraph::new_budgeted(&blocks, Some(&entropies), &MemBudget::unlimited()),
            mono
        );

        let dict = TokenDict::build(&coll);
        let compact = token_blocking_interned(&coll, &dict);
        let mono_c = BlockGraph::from_compact(&compact, None);
        assert_eq!(
            BlockGraph::from_compact_budgeted(&compact, None, &tight),
            mono_c
        );
        assert_eq!(
            BlockGraph::from_compact_budgeted(&compact, None, &MemBudget::unlimited()),
            mono_c
        );
    }

    #[test]
    fn chunked_assemble_matches_monolithic_across_chunk_sizes() {
        // Random-ish multi-membership layout with gaps in the profile id
        // space; every chunk size must reproduce the monolithic arrays.
        let coll = ProfileCollection::dirty(
            (0..23)
                .map(|i| {
                    Profile::builder(SourceId(0), i.to_string())
                        .attr("t", format!("tok{} tok{} hub", i % 7, (i * 3) % 5))
                        .build()
                })
                .collect(),
        );
        let blocks = token_blocking(&coll);
        let mono = BlockGraph::new(&blocks, None);
        for chunk in [1usize, 2, 3, 5, 8, 22, 23, 1000] {
            let chunked = BlockGraph::assemble_chunked(
                mono.kind,
                mono.block_members.clone(),
                mono.block_offsets.clone(),
                mono.block_split.clone(),
                mono.block_comparisons.clone(),
                mono.entropies.clone(),
                mono.num_profiles,
                chunk,
            );
            assert_eq!(chunked, mono, "chunk={chunk}");
        }
    }
}
