//! Parallel meta-blocking: the paper's broadcast-join formulation.
//!
//! "The parallel meta-blocking, implemented on Apache Spark, is inspired by
//! the broadcast join: it partitions the nodes of the blocking graph and
//! sends in broadcast (i.e., to each partition) all the information needed
//! to materialize the neighborhood of each node one at a time. Once the
//! neighborhood of a node is materialized, the pruning function is
//! applied."
//!
//! Concretely: the compact [`BlockGraph`] is broadcast, node ids are
//! partitioned, and two node-parallel stages run — pass A computes per-node
//! statistics (means / maxima / k-th weights, plus the global weight pool
//! for the edge-centric strategies), pass B re-materializes each
//! neighborhood and applies the retention rule. Results are identical to
//! the sequential driver (asserted by tests).

use crate::graph::BlockGraph;
use crate::pruning::{
    cnp_budget, node_pass_single, resolve_rule, MetaBlockingConfig, PruningStrategy,
};
use crate::weights::GlobalStats;
use sparker_dataflow::{Broadcast, Context};
use sparker_profiles::{Pair, ProfileId};
use std::sync::Arc;

/// Parallel meta-blocking over a prebuilt [`BlockGraph`]; equivalent to
/// [`crate::meta_blocking_graph`].
///
/// The graph is taken as an `Arc` so the broadcast adopts the driver's
/// shared handle instead of deep-cloning the whole structure — exactly the
/// "ship one copy per executor" semantics of Spark's broadcast join.
pub fn meta_blocking(
    ctx: &Context,
    graph: &Arc<BlockGraph>,
    config: &MetaBlockingConfig,
) -> Vec<(Pair, f64)> {
    if config.use_entropy {
        assert!(
            graph.has_entropies(),
            "use_entropy requires a BlockGraph built with BlockEntropies"
        );
    }
    let scheme = config.scheme;
    let stats = GlobalStats::for_scheme(graph, scheme);
    let cnp_k = cnp_budget(config.pruning, graph);
    let needs_global = matches!(
        config.pruning,
        PruningStrategy::Wep { .. } | PruningStrategy::Cep { .. }
    );
    let use_entropy = config.use_entropy;

    // Broadcast the graph (no payload clone: the Arc is adopted) and the
    // global stats to every task.
    let b_graph: Broadcast<BlockGraph> = ctx.broadcast(Arc::clone(graph));
    let b_stats = ctx.broadcast(stats);

    let nodes: Vec<u32> = (0..graph.num_profiles() as u32).collect();
    let node_ds = ctx.parallelize_default(nodes);

    // Pass A: per-node statistics (+ forward edge weights for WEP/CEP).
    // One scratch buffer per task keeps neighborhood materialization
    // allocation-free across the nodes of a partition.
    let pass_a = {
        let b_graph = b_graph.clone();
        let b_stats = b_stats.clone();
        node_ds.map_partitions(move |_, nodes| {
            let mut scratch = b_graph.scratch();
            nodes
                .iter()
                .map(|&i| {
                    node_pass_single(
                        &b_graph,
                        ProfileId(i),
                        scheme,
                        &b_stats,
                        use_entropy,
                        cnp_k,
                        needs_global,
                        &mut scratch,
                    )
                })
                .collect()
        })
    };
    let collected = pass_a.collect();
    let mut node_stats = Vec::with_capacity(collected.len());
    let mut all_weights = Vec::new();
    for (s, fw) in collected {
        node_stats.push(s);
        all_weights.extend(fw);
    }
    let rule = resolve_rule(config.pruning, graph, &mut all_weights);

    // Pass B: re-materialize neighborhoods and retain edges.
    let b_node_stats = ctx.broadcast(node_stats);
    let b_rule = ctx.broadcast(rule);
    let retained_ds = {
        let b_graph = b_graph.clone();
        let b_stats = b_stats.clone();
        ctx.parallelize_default((0..graph.num_profiles() as u32).collect::<Vec<_>>())
            .map_partitions(move |_, nodes| {
                let mut scratch = b_graph.scratch();
                let mut out = Vec::new();
                for &i in nodes {
                    let node = ProfileId(i);
                    for (j, acc) in b_graph.neighborhood_with(node, &mut scratch) {
                        if node >= j {
                            continue;
                        }
                        let w = scheme.weight(
                            node,
                            j,
                            &acc,
                            b_graph.blocks_of(node).len(),
                            b_graph.blocks_of(j).len(),
                            &b_stats,
                            use_entropy,
                        );
                        if b_rule.keeps(w, &b_node_stats[i as usize], &b_node_stats[j.index()]) {
                            out.push((Pair::new(node, j), w));
                        }
                    }
                }
                out
            })
    };
    // Nodes are range-partitioned in id order and each node emits only its
    // `node < j` edges sorted by j, so the concatenation is already sorted
    // by pair; the sort below is a cheap (pre-sorted) determinism guard.
    let mut retained = retained_ds.collect();
    retained.sort_by_key(|(a, _)| *a);
    retained
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::meta_blocking_graph;
    use crate::weights::WeightScheme;
    use sparker_blocking::token_blocking;
    use sparker_profiles::{Profile, ProfileCollection, SourceId};

    fn noisy_collection(n: usize) -> ProfileCollection {
        ProfileCollection::dirty(
            (0..n)
                .map(|i| {
                    Profile::builder(SourceId(0), i.to_string())
                        .attr(
                            "name",
                            format!(
                                "prod{} brand{} shared tok{} tok{}",
                                i % 10,
                                i % 4,
                                i % 7,
                                (i + 3) % 7,
                            ),
                        )
                        .build()
                })
                .collect(),
        )
    }

    #[test]
    fn parallel_matches_sequential_for_all_configs() {
        let coll = noisy_collection(60);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let ctx = Context::new(4);
        for scheme in WeightScheme::ALL {
            for pruning in [
                PruningStrategy::Wep { factor: 1.0 },
                PruningStrategy::Cep { retain: None },
                PruningStrategy::Wnp { factor: 1.0, reciprocal: false },
                PruningStrategy::Cnp { k: None, reciprocal: false },
                PruningStrategy::Blast { ratio: 0.35 },
            ] {
                let config = MetaBlockingConfig {
                    scheme,
                    pruning,
                    use_entropy: false,
                };
                let seq = meta_blocking_graph(&graph, &config);
                let par = meta_blocking(&ctx, &graph, &config);
                assert_eq!(
                    seq,
                    par,
                    "{}+{} diverged",
                    scheme.name(),
                    pruning.name()
                );
            }
        }
    }

    #[test]
    fn worker_count_invariant() {
        let coll = noisy_collection(40);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let config = MetaBlockingConfig::default();
        let base = meta_blocking(&Context::new(1), &graph, &config);
        for w in [2, 4, 8] {
            assert_eq!(meta_blocking(&Context::new(w), &graph, &config), base);
        }
    }

    #[test]
    fn broadcasts_are_recorded() {
        let coll = noisy_collection(20);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let ctx = Context::new(2);
        meta_blocking(&ctx, &graph, &MetaBlockingConfig::default());
        let snap = ctx.metrics();
        assert!(snap.broadcasts >= 2, "graph + stats broadcast");
        // Both node-parallel passes run as pool stages with time accounting.
        let passes: Vec<_> = snap.stages.iter().filter(|s| s.name == "map_partitions").collect();
        assert!(passes.len() >= 2, "pass A + pass B are engine stages");
        assert!(passes.iter().all(|s| s.tasks > 0));
        assert!(snap.total_busy_time() > std::time::Duration::ZERO);
    }

    #[test]
    fn empty_graph_parallel() {
        let blocks = sparker_blocking::BlockCollection::new(sparker_profiles::ErKind::Dirty, vec![]);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let ctx = Context::new(2);
        assert!(meta_blocking(&ctx, &graph, &MetaBlockingConfig::default()).is_empty());
    }
}
