//! Parallel meta-blocking: the paper's broadcast-join formulation.
//!
//! "The parallel meta-blocking, implemented on Apache Spark, is inspired by
//! the broadcast join: it partitions the nodes of the blocking graph and
//! sends in broadcast (i.e., to each partition) all the information needed
//! to materialize the neighborhood of each node one at a time. Once the
//! neighborhood of a node is materialized, the pruning function is
//! applied."
//!
//! Concretely: the compact [`BlockGraph`] is broadcast, node ids are
//! partitioned, and two node-parallel stages run — pass A computes per-node
//! statistics (means / maxima / k-th weights, plus the global weight pool
//! for the edge-centric strategies), pass B re-materializes each
//! neighborhood and applies the retention rule. Results are identical to
//! the sequential driver (asserted by tests and proptests).
//!
//! ## Skew-aware scheduling
//!
//! Real blocking graphs are power-law skewed: a few hub nodes own most of
//! the edges, so equal-*count* node partitions stall each stage on the
//! hub-heavy slice. The default [`Scheduling::CostMorsel`] counters this
//! twice over:
//!
//! 1. **Cost-hinted partitioning** — node degrees (computed by a cheap
//!    counting-only pass, no edge materialization) are fed to
//!    `Context::parallelize_by_cost`, cutting contiguous node ranges whose
//!    total *degree* — i.e. work — is balanced.
//! 2. **Morsel execution** — each partition is further split into many
//!    small contiguous morsels claimed dynamically off the pool's atomic
//!    task counter, with one reusable `(NeighborhoodScratch, weights)`
//!    buffer per worker slot ([`WorkerLocal`]), so the per-node hot loop
//!    stays allocation-free across morsel boundaries.
//!
//! Both mechanisms are schedule-only: node order, weight-accumulation
//! order and output order are unchanged, so [`Scheduling::EqualCount`] and
//! [`Scheduling::CostMorsel`] produce byte-identical results.

use crate::graph::BlockGraph;
use crate::pruning::{
    cnp_budget, node_pass_single, resolve_rule, MetaBlockingConfig, NodeStats, PruningStrategy,
};
use crate::scorer::ScoringContext;
use sparker_dataflow::{Broadcast, Context, WorkerLocal};
use sparker_profiles::{Pair, ProfileId};
use std::sync::Arc;

/// How node work is mapped onto pool tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Equal-count contiguous node partitions, one task per partition —
    /// Spark's default `parallelize` behaviour. Stalls on hub-heavy slices
    /// of skewed graphs; kept as the measurable baseline.
    EqualCount,
    /// Degree-cost-balanced partitions executed as dynamically claimed
    /// morsels with per-worker scratch reuse (see the module docs).
    #[default]
    CostMorsel,
}

impl Scheduling {
    /// Stable name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Scheduling::EqualCount => "equal-count",
            Scheduling::CostMorsel => "cost-morsel",
        }
    }
}

/// Morsel grain: split each partition into roughly `32 × workers` claimable
/// tasks overall so dynamic claiming can rebalance what the cost hints
/// missed, without drowning in task bookkeeping.
fn morsel_grain(num_nodes: usize, ctx: &Context) -> usize {
    (num_nodes / (ctx.workers() * 32)).max(1)
}

/// Node-parallel [`BlockGraph::degrees`]: each worker counts the distinct
/// neighbors of its claimed nodes with a per-slot epoch-marked seen array
/// ([`BlockGraph::degree_of`]).
///
/// This pass used to run serially on the driver before the cost-balanced
/// node partitioning could start, which capped the scaling of the whole
/// candidates stage — the counting walk touches every block of every node,
/// the same traversal shape as a full materialization pass. Counts are
/// emitted in node order (morsel outputs concatenate in input order), and
/// each count is a pure function of its node, so the result is
/// byte-identical to the serial pass at any worker count.
pub fn degrees_parallel(ctx: &Context, graph: &Arc<BlockGraph>) -> (Vec<u32>, u64) {
    let num_nodes = graph.num_profiles();
    if num_nodes == 0 {
        return (Vec::new(), 0);
    }
    let b_graph: Broadcast<BlockGraph> = ctx.broadcast(Arc::clone(graph));
    let seen = Arc::new(WorkerLocal::new(ctx.workers(), || {
        vec![u32::MAX; num_nodes]
    }));
    let grain = morsel_grain(num_nodes, ctx);
    let ids: Vec<u32> = (0..num_nodes as u32).collect();
    let degrees: Vec<u32> = ctx
        .parallelize_default(ids)
        .map_morsels_named("degree_count", grain, move |worker, nodes| {
            seen.with(worker, |seen| {
                nodes
                    .iter()
                    .map(|&i| b_graph.degree_of(ProfileId(i), seen))
                    .collect()
            })
        })
        .collect();
    let edges: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
    (degrees, edges / 2)
}

/// Parallel meta-blocking over a prebuilt [`BlockGraph`]; equivalent to
/// [`crate::meta_blocking_graph`]. Uses the default skew-aware
/// [`Scheduling::CostMorsel`]; see [`meta_blocking_scheduled`] to pick.
///
/// The graph is taken as an `Arc` so the broadcast adopts the driver's
/// shared handle instead of deep-cloning the whole structure — exactly the
/// "ship one copy per executor" semantics of Spark's broadcast join.
pub fn meta_blocking(
    ctx: &Context,
    graph: &Arc<BlockGraph>,
    config: &MetaBlockingConfig,
) -> Vec<(Pair, f64)> {
    meta_blocking_scheduled(ctx, graph, config, Scheduling::default())
}

/// [`meta_blocking`] with an explicit [`Scheduling`] policy. Both policies
/// return byte-identical results; they differ only in how node work lands
/// on workers (and therefore in stage critical path under skew).
pub fn meta_blocking_scheduled(
    ctx: &Context,
    graph: &Arc<BlockGraph>,
    config: &MetaBlockingConfig,
    scheduling: Scheduling,
) -> Vec<(Pair, f64)> {
    // A single-worker pool gains nothing from cost hints: the extra degree
    // pass only delays the one worker that must do all the work anyway
    // (measured ~9% on the 10k preset). Collapse to the equal-count
    // schedule — byte-identical by `scheduling_policies_are_byte_identical`.
    let scheduling = if ctx.workers() <= 1 {
        Scheduling::EqualCount
    } else {
        scheduling
    };
    let num_nodes = graph.num_profiles();

    // Cost hints: node degree + 1 (the +1 keeps isolated nodes advancing
    // the prefix). The counting-only degree pass is cheap relative to one
    // weighted materialization pass, and when the scorer reads degrees
    // (EJS, supervised) the same pass doubles as its global statistics —
    // computed once, used twice.
    let (scoring, costs) = match scheduling {
        Scheduling::CostMorsel => {
            let (degrees, num_edges) = degrees_parallel(ctx, graph);
            let costs: Vec<u64> = degrees.iter().map(|&d| u64::from(d) + 1).collect();
            (
                ScoringContext::with_degrees(
                    graph,
                    config.scorer,
                    config.use_entropy,
                    degrees,
                    num_edges,
                ),
                Some(costs),
            )
        }
        Scheduling::EqualCount => (config.scoring_context(graph), None),
    };
    let cnp_k = cnp_budget(config.pruning, graph);
    let needs_global = matches!(
        config.pruning,
        PruningStrategy::Wep { .. } | PruningStrategy::Cep { .. }
    );

    // Broadcast the graph (no payload clone: the Arc is adopted) and the
    // scoring context to every task.
    let b_graph: Broadcast<BlockGraph> = ctx.broadcast(Arc::clone(graph));
    let b_scoring = ctx.broadcast(scoring);

    // Node datasets for the two passes: contiguous id ranges either way,
    // so concatenation order is node order under both policies.
    let make_nodes = || {
        let ids: Vec<u32> = (0..num_nodes as u32).collect();
        match &costs {
            Some(c) => ctx.parallelize_by_cost_default(ids, c),
            None => ctx.parallelize_default(ids),
        }
    };
    let grain = morsel_grain(num_nodes, ctx);

    // One reusable (neighborhood scratch, weights buffer) per worker slot,
    // shared by both passes: after warm-up the per-node loop allocates
    // nothing.
    let scratches = Arc::new(WorkerLocal::new(ctx.workers(), || {
        (graph.scratch(), Vec::<f64>::new())
    }));

    // Pass A: per-node statistics (+ forward edge weights for WEP/CEP).
    // Each task emits (stats, forward-weights) for its contiguous node run;
    // the driver concatenates in task order = node order, so the global
    // weight pool is ordered exactly as the sequential driver builds it.
    type PassA = (Vec<NodeStats>, Vec<f64>);
    let run_pass_a = |nodes: &[u32],
                      scratch: &mut crate::graph::NeighborhoodScratch,
                      weights: &mut Vec<f64>,
                      b_graph: &BlockGraph,
                      b_scoring: &ScoringContext|
     -> PassA {
        let mut stats_out = Vec::with_capacity(nodes.len());
        let mut forward = Vec::new();
        for &i in nodes {
            stats_out.push(node_pass_single(
                b_graph,
                ProfileId(i),
                b_scoring,
                cnp_k,
                needs_global,
                &mut forward,
                scratch,
                weights,
            ));
        }
        (stats_out, forward)
    };
    let pass_a: Vec<PassA> = {
        let b_graph = b_graph.clone();
        let b_scoring = b_scoring.clone();
        let ds = make_nodes();
        match scheduling {
            Scheduling::CostMorsel => {
                let scratches = Arc::clone(&scratches);
                ds.map_morsels(grain, move |worker, nodes| {
                    scratches.with(worker, |(scratch, weights)| {
                        vec![run_pass_a(nodes, scratch, weights, &b_graph, &b_scoring)]
                    })
                })
            }
            Scheduling::EqualCount => ds.map_partitions(move |_, nodes| {
                let mut scratch = b_graph.scratch();
                let mut weights = Vec::new();
                vec![run_pass_a(
                    nodes,
                    &mut scratch,
                    &mut weights,
                    &b_graph,
                    &b_scoring,
                )]
            }),
        }
        .collect()
    };
    let mut node_stats = Vec::with_capacity(num_nodes);
    let mut all_weights = Vec::new();
    for (s, fw) in pass_a {
        node_stats.extend(s);
        all_weights.extend(fw);
    }
    let rule = resolve_rule(config.pruning, graph, &mut all_weights);

    // Pass B: re-materialize neighborhoods and retain edges.
    let b_node_stats = ctx.broadcast(node_stats);
    let b_rule = ctx.broadcast(rule);
    let retained_ds = {
        let b_graph_scratch = b_graph.clone();
        let b_graph = b_graph.clone();
        let b_scoring = b_scoring.clone();
        let b_node_stats = b_node_stats.clone();
        let b_rule = b_rule.clone();
        let run_pass_b = move |nodes: &[u32],
                               scratch: &mut crate::graph::NeighborhoodScratch|
              -> Vec<(Pair, f64)> {
            let mut out = Vec::new();
            for &i in nodes {
                let node = ProfileId(i);
                let blocks_node = b_graph.blocks_of(node).len();
                for &(j, ref acc) in b_graph.neighborhood_buffered(node, scratch) {
                    if node >= j {
                        continue;
                    }
                    let w = b_scoring.weigh(node, j, acc, blocks_node, b_graph.blocks_of(j).len());
                    if b_rule.keeps(w, &b_node_stats[i as usize], &b_node_stats[j.index()]) {
                        out.push((Pair::new(node, j), w));
                    }
                }
            }
            out
        };
        let ds = make_nodes();
        match scheduling {
            Scheduling::CostMorsel => {
                let scratches = Arc::clone(&scratches);
                ds.map_morsels(grain, move |worker, nodes| {
                    scratches.with(worker, |(scratch, _)| run_pass_b(nodes, scratch))
                })
            }
            Scheduling::EqualCount => ds.map_partitions(move |_, nodes| {
                let mut scratch = b_graph_scratch.scratch();
                run_pass_b(nodes, &mut scratch)
            }),
        }
    };
    // Nodes are range-partitioned in id order and each node emits only its
    // `node < j` edges sorted by j, so the concatenation is already sorted
    // by pair; the sort below is a cheap (pre-sorted) determinism guard.
    let mut retained = retained_ds.collect();
    retained.sort_by_key(|(a, _)| *a);
    retained
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::meta_blocking_graph;
    use crate::scorer::EdgeScorer;
    use crate::weights::WeightScheme;
    use sparker_blocking::token_blocking;
    use sparker_profiles::{Profile, ProfileCollection, SourceId};

    fn noisy_collection(n: usize) -> ProfileCollection {
        ProfileCollection::dirty(
            (0..n)
                .map(|i| {
                    Profile::builder(SourceId(0), i.to_string())
                        .attr(
                            "name",
                            format!(
                                "prod{} brand{} shared tok{} tok{}",
                                i % 10,
                                i % 4,
                                i % 7,
                                (i + 3) % 7,
                            ),
                        )
                        .build()
                })
                .collect(),
        )
    }

    /// A dirty collection with a contiguous hub region: the first tenth of
    /// the profiles share a dedicated hot token, so low ids are far more
    /// connected than the tail — the shape cost hints exist for.
    fn skewed_collection(n: usize) -> ProfileCollection {
        ProfileCollection::dirty(
            (0..n)
                .map(|i| {
                    let mut b = Profile::builder(SourceId(0), i.to_string());
                    if i < n / 10 {
                        b = b.attr("hot", "hub0 hub1 hub2");
                    }
                    b.attr("name", format!("tok{} tok{}", i % 9, (i + 4) % 9))
                        .build()
                })
                .collect(),
        )
    }

    const ALL_PRUNINGS: [PruningStrategy; 5] = [
        PruningStrategy::Wep { factor: 1.0 },
        PruningStrategy::Cep { retain: None },
        PruningStrategy::Wnp {
            factor: 1.0,
            reciprocal: false,
        },
        PruningStrategy::Cnp {
            k: None,
            reciprocal: false,
        },
        PruningStrategy::Blast { ratio: 0.35 },
    ];

    #[test]
    fn parallel_matches_sequential_for_all_configs() {
        let coll = noisy_collection(60);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let ctx = Context::new(4);
        for scheme in WeightScheme::ALL {
            for pruning in ALL_PRUNINGS {
                let config = MetaBlockingConfig {
                    scorer: EdgeScorer::Classic(scheme),
                    pruning,
                    use_entropy: false,
                };
                let seq = meta_blocking_graph(&graph, &config);
                let par = meta_blocking(&ctx, &graph, &config);
                assert_eq!(seq, par, "{}+{} diverged", scheme.name(), pruning.name());
            }
        }
    }

    #[test]
    fn scheduling_policies_are_byte_identical() {
        // Cost-morsel scheduling must be a pure schedule change — on a
        // hub-skewed graph (where the partitionings genuinely differ) every
        // scheme × pruning gives the same bits under both policies.
        let coll = skewed_collection(80);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let ctx = Context::new(4);
        for scheme in WeightScheme::ALL {
            for pruning in ALL_PRUNINGS {
                let config = MetaBlockingConfig {
                    scorer: EdgeScorer::Classic(scheme),
                    pruning,
                    use_entropy: false,
                };
                let eq = meta_blocking_scheduled(&ctx, &graph, &config, Scheduling::EqualCount);
                let cm = meta_blocking_scheduled(&ctx, &graph, &config, Scheduling::CostMorsel);
                assert_eq!(eq, cm, "{}+{} diverged", scheme.name(), pruning.name());
                assert_eq!(cm, meta_blocking_graph(&graph, &config));
            }
        }
    }

    #[test]
    fn worker_count_invariant() {
        let coll = noisy_collection(40);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let config = MetaBlockingConfig::default();
        for scheduling in [Scheduling::EqualCount, Scheduling::CostMorsel] {
            let base = meta_blocking_scheduled(&Context::new(1), &graph, &config, scheduling);
            for w in [2, 4, 8] {
                assert_eq!(
                    meta_blocking_scheduled(&Context::new(w), &graph, &config, scheduling),
                    base,
                    "{} diverged at {w} workers",
                    scheduling.name(),
                );
            }
        }
    }

    #[test]
    fn supervised_scorer_parallel_matches_sequential() {
        // A supervised model (which pulls degrees into the feature vector)
        // must agree with the sequential driver under every pruning,
        // scheduling and worker count, like the classic schemes do.
        let coll = skewed_collection(80);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let mut model = crate::LinearModel::zero();
        model.weights[0] = 0.4; // shared blocks
        model.weights[3] = 2.5; // jaccard
        model.weights[11] = -0.01; // max degree
        model.bias = -1.0;
        for pruning in ALL_PRUNINGS {
            let config = MetaBlockingConfig {
                scorer: EdgeScorer::Supervised(model),
                pruning,
                use_entropy: false,
            };
            let seq = meta_blocking_graph(&graph, &config);
            assert!(!seq.is_empty(), "{}: nothing retained", pruning.name());
            for scheduling in [Scheduling::EqualCount, Scheduling::CostMorsel] {
                for w in [1, 2, 4] {
                    let par =
                        meta_blocking_scheduled(&Context::new(w), &graph, &config, scheduling);
                    assert_eq!(
                        par,
                        seq,
                        "supervised {}+{} diverged at {w} workers",
                        pruning.name(),
                        scheduling.name(),
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_degrees_match_serial() {
        // The parallel degree pass is the serial one distributed: same
        // counts in the same node order, same edge total, at any worker
        // count — on both a uniform and a hub-skewed graph.
        for coll in [noisy_collection(120), skewed_collection(120)] {
            let blocks = token_blocking(&coll);
            let graph = Arc::new(BlockGraph::new(&blocks, None));
            let (serial, serial_edges) = graph.degrees();
            for w in [1, 2, 4, 8] {
                let (par, par_edges) = degrees_parallel(&Context::new(w), &graph);
                assert_eq!(par, serial, "degrees diverged at {w} workers");
                assert_eq!(
                    par_edges, serial_edges,
                    "edge count diverged at {w} workers"
                );
            }
        }
    }

    #[test]
    fn parallel_degrees_empty_graph() {
        let blocks =
            sparker_blocking::BlockCollection::new(sparker_profiles::ErKind::Dirty, Vec::new());
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let (degrees, edges) = degrees_parallel(&Context::new(2), &graph);
        assert!(degrees.is_empty());
        assert_eq!(edges, 0);
    }

    #[test]
    fn broadcasts_are_recorded() {
        let coll = noisy_collection(20);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let ctx = Context::new(2);
        meta_blocking(&ctx, &graph, &MetaBlockingConfig::default());
        let snap = ctx.metrics();
        assert!(snap.broadcasts >= 2, "graph + stats broadcast");
        // Both node-parallel passes run as morsel stages with per-worker
        // time accounting under the default scheduling.
        let passes: Vec<_> = snap
            .stages
            .iter()
            .filter(|s| s.name == "map_morsels")
            .collect();
        assert!(passes.len() >= 2, "pass A + pass B are engine stages");
        assert!(passes.iter().all(|s| s.tasks > 0));
        assert!(passes.iter().all(|s| !s.per_worker_busy.is_empty()));
        assert!(snap.total_busy_time() > std::time::Duration::ZERO);
    }

    #[test]
    fn cost_morsel_runs_more_tasks_than_partitions() {
        // Morsel execution splits each cost-balanced partition into many
        // claimable tasks: on a graph larger than workers × 32 the pass
        // stages must record strictly more tasks than the partition count.
        let coll = noisy_collection(200);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let ctx = Context::new(2);
        meta_blocking(&ctx, &graph, &MetaBlockingConfig::default());
        let snap = ctx.metrics();
        let morsel_tasks: usize = snap
            .stages
            .iter()
            .filter(|s| s.name == "map_morsels")
            .map(|s| s.tasks)
            .max()
            .unwrap_or(0);
        assert!(
            morsel_tasks > ctx.default_partitions(),
            "expected > {} tasks, got {morsel_tasks}",
            ctx.default_partitions(),
        );
    }

    #[test]
    fn empty_graph_parallel() {
        let blocks =
            sparker_blocking::BlockCollection::new(sparker_profiles::ErKind::Dirty, vec![]);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let ctx = Context::new(2);
        for scheduling in [Scheduling::EqualCount, Scheduling::CostMorsel] {
            assert!(meta_blocking_scheduled(
                &ctx,
                &graph,
                &MetaBlockingConfig::default(),
                scheduling
            )
            .is_empty());
        }
    }
}
