//! Streaming pair emission for fused prune→score execution.
//!
//! The staged drivers ([`crate::meta_blocking_graph`],
//! [`crate::parallel::meta_blocking`]) run pruning to completion and hand
//! the matcher one fully materialized pair list. The fused pipeline
//! instead wants pruned pairs *as they are produced*, one contiguous node
//! range at a time, so the matcher can score range `k` while range `k+1`
//! is still pruning. [`StreamingMetaBlocking`] is that seam: `prepare`
//! runs everything global (pass A statistics, rule resolution) on the
//! worker pool, and [`StreamingMetaBlocking::prune_range`] then emits the
//! retained pairs of any node range independently — a pure function of
//! the range, safe to call concurrently from fused producer workers in
//! any order.
//!
//! ## Parity with the staged drivers
//!
//! `prepare` reuses the exact staged building blocks — `node_pass_single`
//! for the node-centric rules, the same forward-only weight collection
//! (same order, same f64 summation sequence) for the global rules, the
//! same `resolve_rule` — so concatenating `prune_range` over a disjoint
//! ascending cover of `0..num_profiles` is byte-identical to the staged
//! output (pinned by tests here and in the core parity matrix). Each
//! range's emissions are already sorted by pair: nodes ascend, and
//! [`BlockGraph::neighborhood_buffered`] returns neighbors in ascending
//! id order, so the forward (`node < j`) emissions of consecutive nodes
//! concatenate sorted — which is what lets the fused matcher feed its
//! shards straight into `SimilarityGraph::from_sorted_shards` without a
//! global re-sort.

use crate::graph::{BlockGraph, NeighborhoodScratch};
use crate::parallel::degrees_parallel;
use crate::pruning::{
    cnp_budget, node_pass_single, resolve_rule, MetaBlockingConfig, NodeStats, PruningStrategy,
    RetentionRule,
};
use crate::scorer::ScoringContext;
use sparker_dataflow::{Broadcast, Context, WorkerLocal};
use sparker_profiles::{Pair, ProfileId};
use std::ops::Range;
use std::sync::Arc;

/// A prepared, immutable pruning plan: everything meta-blocking computes
/// *before* the per-edge retention decisions, packaged so pruned pairs
/// can be emitted range by range (see the module docs).
pub struct StreamingMetaBlocking {
    graph: Arc<BlockGraph>,
    scoring: ScoringContext,
    /// Per-node retention statistics; empty for the global-threshold rules
    /// (WEP/CEP), whose [`RetentionRule::keeps`] ignores them.
    node_stats: Vec<NodeStats>,
    rule: RetentionRule,
    /// Node degrees observed during pass A, for degree-cost morsel cuts.
    degrees: Vec<u32>,
}

impl StreamingMetaBlocking {
    /// Run pass A (per-node statistics and/or the global weight pool) on
    /// the context's worker pool and resolve the retention rule.
    ///
    /// The global rules (WEP/CEP) never read `NodeStats`, so their pass
    /// A is specialized: it computes only the forward (`node < j`) edge
    /// weights — in the same neighborhood order the staged pass collects
    /// them, preserving f64 summation order — and skips the mean/max/k-th
    /// folding entirely, roughly halving pass-A weight computes.
    pub fn prepare(ctx: &Context, graph: &Arc<BlockGraph>, config: &MetaBlockingConfig) -> Self {
        let num_nodes = graph.num_profiles();
        let cnp_k = cnp_budget(config.pruning, graph);
        let needs_global = matches!(
            config.pruning,
            PruningStrategy::Wep { .. } | PruningStrategy::Cep { .. }
        );

        // Scorers that read node degrees (EJS, supervised) need them
        // *before* pass A can weight anything; compute them node-parallel.
        // Every other scorer gets degrees for free out of pass A itself.
        let scoring = if config.scorer.needs_degrees() {
            let (degrees, num_edges) = degrees_parallel(ctx, graph);
            ScoringContext::with_degrees(
                graph,
                config.scorer,
                config.use_entropy,
                degrees,
                num_edges,
            )
        } else {
            config.scoring_context(graph)
        };

        if num_nodes == 0 {
            let mut all_weights = Vec::new();
            let rule = resolve_rule(config.pruning, graph, &mut all_weights);
            return StreamingMetaBlocking {
                graph: Arc::clone(graph),
                scoring,
                node_stats: Vec::new(),
                rule,
                degrees: Vec::new(),
            };
        }

        let b_graph: Broadcast<BlockGraph> = ctx.broadcast(Arc::clone(graph));
        let b_scoring = ctx.broadcast(scoring.clone());
        let scratches = Arc::new(WorkerLocal::new(ctx.workers(), || {
            (graph.scratch(), Vec::<f64>::new())
        }));
        let grain = (num_nodes / (ctx.workers() * 32)).max(1);
        let ids: Vec<u32> = (0..num_nodes as u32).collect();

        // (node stats, forward weights, degrees) per morsel, concatenated
        // in node order — dynamic morsel claiming absorbs degree skew
        // without a separate cost-hint pass.
        type PassA = (Vec<NodeStats>, Vec<f64>, Vec<u32>);
        let pass_a: Vec<PassA> = {
            let scratches = Arc::clone(&scratches);
            ctx.parallelize_default(ids)
                .map_morsels_named("fused_pass_a", grain, move |worker, nodes| {
                    scratches.with(worker, |(scratch, weights)| {
                        let mut stats_out = Vec::new();
                        let mut forward = Vec::new();
                        let mut degs = Vec::with_capacity(nodes.len());
                        for &i in nodes {
                            let node = ProfileId(i);
                            if needs_global {
                                // Global rule: forward weights only.
                                let blocks_node = b_graph.blocks_of(node).len();
                                let neighborhood = b_graph.neighborhood_buffered(node, scratch);
                                degs.push(neighborhood.len() as u32);
                                for &(j, ref acc) in neighborhood {
                                    if node < j {
                                        forward.push(b_scoring.weigh(
                                            node,
                                            j,
                                            acc,
                                            blocks_node,
                                            b_graph.blocks_of(j).len(),
                                        ));
                                    }
                                }
                            } else {
                                stats_out.push(node_pass_single(
                                    &b_graph,
                                    node,
                                    &b_scoring,
                                    cnp_k,
                                    false,
                                    &mut forward,
                                    scratch,
                                    weights,
                                ));
                                degs.push(scratch.last_neighborhood_len() as u32);
                            }
                        }
                        vec![(stats_out, forward, degs)]
                    })
                })
                .collect()
        };

        let mut node_stats = Vec::with_capacity(if needs_global { 0 } else { num_nodes });
        let mut all_weights = Vec::new();
        let mut degrees = Vec::with_capacity(num_nodes);
        for (s, fw, d) in pass_a {
            node_stats.extend(s);
            all_weights.extend(fw);
            degrees.extend(d);
        }
        let rule = resolve_rule(config.pruning, graph, &mut all_weights);

        StreamingMetaBlocking {
            graph: Arc::clone(graph),
            scoring,
            node_stats,
            rule,
            degrees,
        }
    }

    /// Number of nodes in the underlying blocking graph.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_profiles()
    }

    /// Total forward edges observed in pass A (Σ degree / 2) — an upper
    /// bound on emitted pairs, used to size fused channel payloads.
    pub fn total_edges(&self) -> u64 {
        self.degrees.iter().map(|&d| u64::from(d)).sum::<u64>() / 2
    }

    /// A reusable neighborhood buffer for [`StreamingMetaBlocking::prune_range`].
    pub fn make_scratch(&self) -> NeighborhoodScratch {
        self.graph.scratch()
    }

    /// Cut `0..num_nodes` into contiguous ranges of roughly equal *degree*
    /// cost (degree + 1 per node, so isolated nodes still advance), about
    /// `target_tasks` of them. Boundaries are schedule-only: concatenating
    /// [`StreamingMetaBlocking::prune_range`] over any disjoint ascending
    /// cover yields the same pairs.
    pub fn cost_morsels(&self, target_tasks: usize) -> Vec<Range<u32>> {
        let n = self.num_nodes() as u32;
        if n == 0 {
            return Vec::new();
        }
        let total: u64 = self.degrees.iter().map(|&d| u64::from(d) + 1).sum();
        let per_task = (total / target_tasks.max(1) as u64).max(1);
        let mut cuts = Vec::new();
        let mut start = 0u32;
        let mut acc = 0u64;
        for i in 0..n {
            acc += u64::from(self.degrees[i as usize]) + 1;
            if acc >= per_task {
                cuts.push(start..i + 1);
                start = i + 1;
                acc = 0;
            }
        }
        if start < n {
            cuts.push(start..n);
        }
        cuts
    }

    /// Emit the retained pairs of a contiguous node range: re-materialize
    /// each node's neighborhood, weight its forward (`node < j`) edges and
    /// apply the resolved retention rule — the staged pass B, scoped to
    /// `range`. Output is sorted by pair (see the module docs); disjoint
    /// ranges are independent, so fused producers call this concurrently.
    pub fn prune_range(
        &self,
        range: Range<u32>,
        scratch: &mut NeighborhoodScratch,
    ) -> Vec<(Pair, f64)> {
        let default_stats = NodeStats::default();
        let mut out = Vec::new();
        for i in range {
            let node = ProfileId(i);
            let blocks_node = self.graph.blocks_of(node).len();
            for &(j, ref acc) in self.graph.neighborhood_buffered(node, scratch) {
                if node >= j {
                    continue;
                }
                let w =
                    self.scoring
                        .weigh(node, j, acc, blocks_node, self.graph.blocks_of(j).len());
                let (sa, sb) = if self.node_stats.is_empty() {
                    (&default_stats, &default_stats)
                } else {
                    (&self.node_stats[i as usize], &self.node_stats[j.index()])
                };
                if self.rule.keeps(w, sa, sb) {
                    out.push((Pair::new(node, j), w));
                }
            }
        }
        out
    }

    /// Prune every node sequentially — the staged result, used by parity
    /// tests and as a fallback for contexts without a pool.
    pub fn prune_all(&self) -> Vec<(Pair, f64)> {
        let mut scratch = self.make_scratch();
        self.prune_range(0..self.num_nodes() as u32, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::BlockEntropies;
    use crate::pruning::meta_blocking_graph;
    use crate::scorer::EdgeScorer;
    use crate::weights::WeightScheme;
    use sparker_blocking::token_blocking;
    use sparker_dataflow::Context;
    use sparker_profiles::{Profile, ProfileCollection, SourceId};

    fn skewed_collection(n: usize) -> ProfileCollection {
        ProfileCollection::dirty(
            (0..n)
                .map(|i| {
                    let mut b = Profile::builder(SourceId(0), i.to_string());
                    if i < n / 10 {
                        b = b.attr("hot", "hub0 hub1 hub2");
                    }
                    b.attr("name", format!("tok{} tok{}", i % 9, (i + 4) % 9))
                        .build()
                })
                .collect(),
        )
    }

    const ALL_PRUNINGS: [PruningStrategy; 5] = [
        PruningStrategy::Wep { factor: 1.0 },
        PruningStrategy::Cep { retain: None },
        PruningStrategy::Wnp {
            factor: 1.0,
            reciprocal: false,
        },
        PruningStrategy::Cnp {
            k: None,
            reciprocal: false,
        },
        PruningStrategy::Blast { ratio: 0.35 },
    ];

    #[test]
    fn streamed_ranges_match_staged_for_all_configs() {
        let coll = skewed_collection(80);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let ctx = Context::new(4);
        for scheme in WeightScheme::ALL {
            for pruning in ALL_PRUNINGS {
                let config = MetaBlockingConfig {
                    scorer: EdgeScorer::Classic(scheme),
                    pruning,
                    use_entropy: false,
                };
                let staged = meta_blocking_graph(&graph, &config);
                let stream = StreamingMetaBlocking::prepare(&ctx, &graph, &config);
                // Whole-graph emission…
                assert_eq!(
                    stream.prune_all(),
                    staged,
                    "{}+{} prune_all diverged",
                    scheme.name(),
                    pruning.name()
                );
                // …and any disjoint ascending cover concatenates to it.
                let mut scratch = stream.make_scratch();
                let streamed: Vec<_> = stream
                    .cost_morsels(7)
                    .into_iter()
                    .flat_map(|r| stream.prune_range(r, &mut scratch))
                    .collect();
                assert_eq!(
                    streamed,
                    staged,
                    "{}+{} morsel cover diverged",
                    scheme.name(),
                    pruning.name()
                );
            }
        }
    }

    #[test]
    fn streamed_matches_staged_with_entropy() {
        let coll = skewed_collection(60);
        let blocks = token_blocking(&coll);
        let entropies = BlockEntropies::new(
            (0..blocks.len())
                .map(|b| 0.1 + (b % 5) as f64 * 0.3)
                .collect(),
        );
        let graph = Arc::new(BlockGraph::new(&blocks, Some(&entropies)));
        let ctx = Context::new(2);
        let config = MetaBlockingConfig::blast();
        let staged = meta_blocking_graph(&graph, &config);
        let stream = StreamingMetaBlocking::prepare(&ctx, &graph, &config);
        assert_eq!(stream.prune_all(), staged);
    }

    #[test]
    fn streamed_matches_staged_with_supervised_scorer() {
        let coll = skewed_collection(60);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let ctx = Context::new(3);
        let mut model = crate::LinearModel::zero();
        model.weights[0] = 0.6; // shared blocks
        model.weights[4] = 1.5; // dice
        model.bias = -0.5;
        for pruning in ALL_PRUNINGS {
            let config = MetaBlockingConfig {
                scorer: EdgeScorer::Supervised(model),
                pruning,
                use_entropy: false,
            };
            let staged = meta_blocking_graph(&graph, &config);
            let stream = StreamingMetaBlocking::prepare(&ctx, &graph, &config);
            assert_eq!(
                stream.prune_all(),
                staged,
                "supervised {} diverged",
                pruning.name()
            );
        }
    }

    #[test]
    fn prepare_is_worker_count_invariant() {
        let coll = skewed_collection(50);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let config = MetaBlockingConfig::default();
        let base = StreamingMetaBlocking::prepare(&Context::new(1), &graph, &config).prune_all();
        for w in [2, 4, 8] {
            let got = StreamingMetaBlocking::prepare(&Context::new(w), &graph, &config).prune_all();
            assert_eq!(got, base, "diverged at {w} workers");
        }
    }

    #[test]
    fn range_emissions_are_sorted_by_pair() {
        let coll = skewed_collection(70);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let ctx = Context::new(2);
        let stream = StreamingMetaBlocking::prepare(&ctx, &graph, &MetaBlockingConfig::default());
        let mut scratch = stream.make_scratch();
        let mut last = None;
        for range in stream.cost_morsels(5) {
            for (p, _) in stream.prune_range(range, &mut scratch) {
                assert!(last.is_none_or(|prev| prev < p), "pairs not ascending");
                last = Some(p);
            }
        }
        assert!(last.is_some(), "expected at least one retained pair");
    }

    #[test]
    fn cost_morsels_cover_all_nodes_exactly_once() {
        let coll = skewed_collection(90);
        let blocks = token_blocking(&coll);
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let ctx = Context::new(2);
        let stream = StreamingMetaBlocking::prepare(&ctx, &graph, &MetaBlockingConfig::default());
        for target in [1, 3, 16, 1000] {
            let morsels = stream.cost_morsels(target);
            let mut expect = 0u32;
            for r in &morsels {
                assert_eq!(r.start, expect, "gap or overlap at target {target}");
                assert!(r.end > r.start);
                expect = r.end;
            }
            assert_eq!(expect, stream.num_nodes() as u32);
        }
    }

    #[test]
    fn empty_graph_streams_nothing() {
        let blocks =
            sparker_blocking::BlockCollection::new(sparker_profiles::ErKind::Dirty, Vec::new());
        let graph = Arc::new(BlockGraph::new(&blocks, None));
        let ctx = Context::new(2);
        let stream = StreamingMetaBlocking::prepare(&ctx, &graph, &MetaBlockingConfig::default());
        assert!(stream.prune_all().is_empty());
        assert!(stream.cost_morsels(4).is_empty());
        assert_eq!(stream.total_edges(), 0);
    }
}
