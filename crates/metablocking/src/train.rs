//! In-repo training for the supervised edge scorer.
//!
//! Generalized Supervised Meta-blocking replaces the hand-picked weighting
//! scheme with a cheap classifier over per-edge features. Following the
//! BLOSS recipe, training does not label the full (quadratic-ish) edge
//! set: it draws a small **class-balanced** sample of blocking-graph edges
//! — positives are edges whose pair appears in the ground truth — and fits
//! a logistic regression with plain full-batch gradient descent.
//! Everything is seeded and deterministic: the same graph, truth and
//! options always produce the same model bits.
//!
//! Features are z-scaled during optimization for conditioning, and the
//! scaling is folded back into the returned coefficients
//! (`w/σ`, `bias − Σ wμ/σ`), so the model scores **raw**
//! [`crate::EdgeFeatures`] — the hot scoring loop pays no normalization.

use crate::graph::BlockGraph;
use crate::scorer::{EdgeFeatures, EdgeScorer, LinearModel, ScoringContext, NUM_FEATURES};
use sparker_profiles::{GroundTruth, Pair, ProfileId};

/// Knobs for [`train_supervised`]; the defaults suit the synthetic presets.
#[derive(Debug, Clone, Copy)]
pub struct TrainOptions {
    /// Per-class sample cap (BLOSS-style balanced sampling).
    pub max_per_class: usize,
    /// Full-batch gradient-descent epochs.
    pub epochs: usize,
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Seed for the reservoir sampler.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        // A wide negative sample matters more than a balanced one: models
        // fitted on few negatives overfit the training graph's density and
        // misrank denser graphs (the E21 weights bench pins this — 20k
        // negatives roughly doubles transfer F1 over a 4k cap).
        TrainOptions {
            max_per_class: 20_000,
            epochs: 1_000,
            learning_rate: 0.3,
            seed: 0x5bd1e995,
        }
    }
}

/// A trained model plus what it was fitted on.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// The fitted logistic model over raw features.
    pub model: LinearModel,
    /// Positive (ground-truth) edges sampled.
    pub positives: usize,
    /// Negative edges sampled.
    pub negatives: usize,
    /// Mean logistic loss over the sample after the final epoch.
    pub final_loss: f64,
}

/// Deterministic xorshift64* generator for the reservoir sampler.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform draw in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// One reservoir per class: keeps a uniform sample of at most `cap`
/// feature vectors (Algorithm R), deterministic under the shared RNG.
struct Reservoir {
    cap: usize,
    seen: u64,
    rows: Vec<EdgeFeatures>,
}

impl Reservoir {
    fn new(cap: usize) -> Reservoir {
        Reservoir {
            cap,
            seen: 0,
            rows: Vec::new(),
        }
    }

    fn offer(&mut self, row: EdgeFeatures, rng: &mut XorShift) {
        self.seen += 1;
        if self.rows.len() < self.cap {
            self.rows.push(row);
        } else {
            let j = rng.below(self.seen);
            if (j as usize) < self.cap {
                self.rows[j as usize] = row;
            }
        }
    }
}

/// Train a supervised edge scorer on a blocking graph labeled by `truth`.
///
/// Edges are enumerated in the drivers' canonical order (ascending node,
/// forward `node < j` neighbors), their features extracted through the
/// same [`ScoringContext`] the scoring paths use, and a balanced sample is
/// fitted by seeded logistic regression. Returns the model with feature
/// scaling folded back in, ready for [`EdgeScorer::Supervised`].
pub fn train_supervised(
    graph: &BlockGraph,
    truth: &GroundTruth,
    opts: &TrainOptions,
) -> TrainReport {
    // Any supervised model needs degrees; the zero model stands in for the
    // one being trained.
    let scoring = ScoringContext::new(graph, EdgeScorer::Supervised(LinearModel::zero()), false);
    let mut rng = XorShift(opts.seed | 1);
    let mut pos = Reservoir::new(opts.max_per_class.max(1));
    let mut neg = Reservoir::new(opts.max_per_class.max(1));
    let mut scratch = graph.scratch();
    for i in 0..graph.num_profiles() {
        let node = ProfileId(i as u32);
        let blocks_node = graph.blocks_of(node).len();
        for &(j, ref acc) in graph.neighborhood_buffered(node, &mut scratch) {
            if node >= j {
                continue;
            }
            let f = scoring.features(node, j, acc, blocks_node, graph.blocks_of(j).len());
            if truth.contains(&Pair::new(node, j)) {
                pos.offer(f, &mut rng);
            } else {
                neg.offer(f, &mut rng);
            }
        }
    }
    let (model, final_loss) = fit_logistic(&pos.rows, &neg.rows, opts);
    TrainReport {
        model,
        positives: pos.rows.len(),
        negatives: neg.rows.len(),
        final_loss,
    }
}

/// Fit logistic regression on the sampled rows; returns the model in raw
/// feature space and the final mean loss.
fn fit_logistic(
    pos: &[EdgeFeatures],
    neg: &[EdgeFeatures],
    opts: &TrainOptions,
) -> (LinearModel, f64) {
    let rows: Vec<(&EdgeFeatures, f64)> = pos
        .iter()
        .map(|f| (f, 1.0))
        .chain(neg.iter().map(|f| (f, 0.0)))
        .collect();
    if rows.is_empty() || pos.is_empty() || neg.is_empty() {
        // Degenerate truth (no positives or no negatives among the edges):
        // fall back to a CBS-reading model so scoring stays sane.
        return (LinearModel::one_hot(0), f64::NAN);
    }
    let n = rows.len() as f64;

    // Per-feature z-scaling for conditioning.
    let mut mean = [0.0f64; NUM_FEATURES];
    for (f, _) in &rows {
        for (m, v) in mean.iter_mut().zip(f.as_array()) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut scale = [0.0f64; NUM_FEATURES];
    for (f, _) in &rows {
        for ((s, v), m) in scale.iter_mut().zip(f.as_array()).zip(&mean) {
            let d = v - m;
            *s += d * d;
        }
    }
    for s in &mut scale {
        *s = (*s / n).sqrt();
        if *s < 1e-12 {
            *s = 1.0; // constant feature: leave it unscaled (zero-centered)
        }
    }
    let scaled = |f: &EdgeFeatures| -> [f64; NUM_FEATURES] {
        let mut out = [0.0; NUM_FEATURES];
        for (((o, v), m), s) in out.iter_mut().zip(f.as_array()).zip(&mean).zip(&scale) {
            *o = (v - m) / s;
        }
        out
    };

    // Full-batch gradient descent on the mean logistic loss. Positives are
    // up-weighted to their inverse class frequency so an imperfectly
    // balanced sample (fewer matches than the cap) still trains evenly.
    let pos_w = n / (2.0 * pos.len() as f64);
    let neg_w = n / (2.0 * neg.len() as f64);
    let mut w = [0.0f64; NUM_FEATURES];
    let mut b = 0.0f64;
    let mut loss = f64::NAN;
    for _ in 0..opts.epochs {
        let mut gw = [0.0f64; NUM_FEATURES];
        let mut gb = 0.0f64;
        loss = 0.0;
        for (f, y) in &rows {
            let x = scaled(f);
            let mut z = b;
            for (wi, xi) in w.iter().zip(&x) {
                z += wi * xi;
            }
            let p = 1.0 / (1.0 + (-z).exp());
            let cw = if *y > 0.5 { pos_w } else { neg_w };
            let err = cw * (p - y);
            for (g, xi) in gw.iter_mut().zip(&x) {
                *g += err * xi;
            }
            gb += err;
            let p_clamped = p.clamp(1e-12, 1.0 - 1e-12);
            loss -= cw * (y * p_clamped.ln() + (1.0 - y) * (1.0 - p_clamped).ln());
        }
        loss /= n;
        let step = opts.learning_rate / n;
        for (wi, g) in w.iter_mut().zip(&gw) {
            *wi -= step * g;
        }
        b -= step * gb;
    }

    // Fold the z-scaling back: score(raw) == score(scaled).
    let mut raw_w = [0.0f64; NUM_FEATURES];
    let mut raw_b = b;
    for i in 0..NUM_FEATURES {
        raw_w[i] = w[i] / scale[i];
        raw_b -= w[i] * mean[i] / scale[i];
    }
    (
        LinearModel {
            weights: raw_w,
            bias: raw_b,
        },
        loss,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{meta_blocking_graph, MetaBlockingConfig};
    use sparker_blocking::token_blocking;
    use sparker_profiles::{Profile, ProfileCollection, SourceId};

    /// A dirty collection of duplicate pairs (2i, 2i+1) sharing strong
    /// tokens, against a pool of weakly-overlapping noise.
    fn labeled_collection(n: usize) -> (ProfileCollection, GroundTruth) {
        let mut profiles = Vec::new();
        let mut pairs = Vec::new();
        for i in 0..n {
            let core = format!("entity{i} brand{} model{}", i % 7, i % 11);
            profiles.push(
                Profile::builder(SourceId(0), format!("{i}a"))
                    .attr("name", format!("{core} alpha common"))
                    .build(),
            );
            profiles.push(
                Profile::builder(SourceId(0), format!("{i}b"))
                    .attr("name", format!("{core} beta common"))
                    .build(),
            );
            pairs.push(Pair::new(
                ProfileId(2 * i as u32),
                ProfileId(2 * i as u32 + 1),
            ));
        }
        (
            ProfileCollection::dirty(profiles),
            GroundTruth::from_pairs(pairs),
        )
    }

    #[test]
    fn training_is_deterministic() {
        let (coll, gt) = labeled_collection(40);
        let graph = BlockGraph::new(&token_blocking(&coll), None);
        let opts = TrainOptions::default();
        let a = train_supervised(&graph, &gt, &opts);
        let b = train_supervised(&graph, &gt, &opts);
        assert_eq!(a.model, b.model);
        assert_eq!((a.positives, a.negatives), (b.positives, b.negatives));
    }

    #[test]
    fn trained_model_separates_matches_from_noise() {
        let (coll, gt) = labeled_collection(60);
        let graph = BlockGraph::new(&token_blocking(&coll), None);
        let report = train_supervised(&graph, &gt, &TrainOptions::default());
        assert!(report.positives > 0 && report.negatives > 0);
        assert!(report.final_loss.is_finite());

        // Scoring through the seam with the trained model and pruning at
        // the mean must retain the true pairs far more precisely than
        // chance: every ground-truth edge scores above the mean retained
        // threshold in this easy synthetic setting.
        let config = MetaBlockingConfig {
            scorer: EdgeScorer::Supervised(report.model),
            ..MetaBlockingConfig::default()
        };
        let retained = meta_blocking_graph(&graph, &config);
        assert!(!retained.is_empty());
        let kept: std::collections::HashSet<Pair> = retained.iter().map(|(p, _)| *p).collect();
        let recall = gt.iter().filter(|p| kept.contains(p)).count() as f64 / gt.len() as f64;
        assert!(recall > 0.9, "trained scorer lost matches: recall {recall}");
    }

    #[test]
    fn degenerate_truth_falls_back_to_cbs_model() {
        let (coll, _) = labeled_collection(10);
        let graph = BlockGraph::new(&token_blocking(&coll), None);
        let empty = GroundTruth::from_pairs(Vec::<Pair>::new());
        let report = train_supervised(&graph, &empty, &TrainOptions::default());
        assert_eq!(report.model, LinearModel::one_hot(0));
        assert_eq!(report.positives, 0);
    }

    #[test]
    fn sampling_respects_the_per_class_cap() {
        let (coll, gt) = labeled_collection(50);
        let graph = BlockGraph::new(&token_blocking(&coll), None);
        let opts = TrainOptions {
            max_per_class: 16,
            ..TrainOptions::default()
        };
        let report = train_supervised(&graph, &gt, &opts);
        assert!(report.positives <= 16 && report.negatives <= 16);
        assert!(report.positives > 0 && report.negatives > 0);
    }
}
