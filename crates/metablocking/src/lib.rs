//! # sparker-metablocking
//!
//! Meta-blocking — the heart of SparkER's blocker. The block collection is
//! recast as a graph (profiles = nodes; an edge wherever two comparable
//! profiles co-occur in ≥ 1 block), edges are weighted by co-occurrence
//! statistics, per-edge thresholds are derived, and low-weight edges are
//! pruned. What survives are the candidate pairs handed to the entity
//! matcher.
//!
//! Implemented exactly as the paper stack defines it:
//!
//! * **Weighting schemes** ([`WeightScheme`]): CBS, ECBS, JS, EJS, ARCS
//!   (Papadakis et al.) and χ² (Blast).
//! * **Entropy re-weighting** ([`BlockEntropies`]): Blast's loose-schema
//!   entropy scales each co-occurrence by the entropy of the attribute
//!   partition that generated the block (Figure 2(c)).
//! * **Pruning strategies** ([`PruningStrategy`]): WEP, CEP, WNP, CNP
//!   (Papadakis et al.) and the Blast local-maxima threshold.
//! * **Pluggable edge scoring** ([`EdgeScorer`]): every execution path
//!   weighs edges through one seam — either a classic [`WeightScheme`]
//!   (bit-identical to the hand-coded formulas) or a supervised
//!   [`LinearModel`] over the full [`EdgeFeatures`] vector, trained
//!   in-repo against synthetic ground truth via [`train_supervised`]
//!   (generalized supervised meta-blocking).
//! * **Parallel execution** ([`parallel::meta_blocking`]): the paper's
//!   broadcast-join formulation — "it partitions the nodes of the blocking
//!   graph and sends in broadcast all the information needed to materialize
//!   the neighborhood of each node one at a time". By default the node
//!   work is scheduled skew-aware ([`Scheduling::CostMorsel`]):
//!   degree-cost-balanced partitions executed as dynamically claimed
//!   morsels with per-worker scratch reuse, byte-identical to the
//!   equal-count baseline.
//!
//! ```
//! use sparker_blocking::token_blocking;
//! use sparker_metablocking::{meta_blocking, MetaBlockingConfig};
//! use sparker_profiles::{Profile, ProfileCollection, SourceId};
//!
//! let coll = ProfileCollection::dirty(vec![
//!     Profile::builder(SourceId(0), "1").attr("n", "alpha beta gamma").build(),
//!     Profile::builder(SourceId(0), "2").attr("n", "alpha beta gamma").build(),
//!     Profile::builder(SourceId(0), "3").attr("n", "alpha zeta").build(),
//! ]);
//! let blocks = token_blocking(&coll);
//! let pruned = meta_blocking(&blocks, &MetaBlockingConfig::default());
//! // The strongly co-occurring pair (1,2) survives; weak edges to 3 are pruned.
//! assert_eq!(pruned.len(), 1);
//! ```

mod entropy;
mod graph;
pub mod parallel;
pub mod progressive;
mod pruning;
mod scorer;
mod streaming;
mod train;
mod weights;

pub use entropy::{block_entropies, BlockEntropies};
pub use graph::{BlockGraph, EdgeAccumulator, NeighborhoodScratch};
pub use parallel::Scheduling;
pub use progressive::{progressive_global, progressive_node_first};
pub use pruning::{
    derived_cnp_k, meta_blocking, meta_blocking_graph, MetaBlockingConfig, NodeStats,
    PruningStrategy, RetentionRule,
};
pub use scorer::{
    EdgeFeatures, EdgeScorer, LinearModel, ScoringContext, FEATURE_NAMES, NUM_FEATURES,
};
pub use streaming::StreamingMetaBlocking;
pub use train::{train_supervised, TrainOptions, TrainReport};
pub use weights::WeightScheme;

#[doc(hidden)]
pub use pruning::{node_stats_pass_baseline_checksum, node_stats_pass_checksum};
