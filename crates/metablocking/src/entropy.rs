//! Per-block entropies for Blast's entropy re-weighting.

use sparker_blocking::BlockCollection;
use sparker_looseschema::{AttributePartitioning, PartitionId};

/// Entropy of the attribute partition that generated each block, aligned
/// with the block collection's block order.
///
/// Blast re-weights every meta-blocking edge by these values: co-occurring
/// in a block from a high-entropy partition (product names) is stronger
/// evidence than co-occurring in a low-entropy one (prices).
#[derive(Debug, Clone)]
pub struct BlockEntropies {
    values: Vec<f64>,
}

impl BlockEntropies {
    /// Wrap raw per-block entropies (must align with the block collection).
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "entropies must be finite and non-negative"
        );
        BlockEntropies { values }
    }

    /// Entropy of block `index`.
    pub fn of(&self, index: usize) -> f64 {
        self.values[index]
    }

    /// Number of blocks covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no blocks are covered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw entropy vector.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

/// Derive per-block entropies from loose-schema blocking keys.
///
/// Loose-schema keys have the shape `token_<partition id>`
/// ([`sparker_looseschema::loose_schema_keys`]); the block inherits the
/// Shannon entropy of that partition. Blocks whose key has no recognizable
/// suffix (i.e. plain schema-agnostic keys) get the blob partition's
/// entropy.
pub fn block_entropies(
    blocks: &BlockCollection,
    partitioning: &AttributePartitioning,
) -> BlockEntropies {
    let values = blocks
        .blocks()
        .iter()
        .map(|b| {
            let pid = b
                .key
                .rsplit_once('_')
                .and_then(|(_, suffix)| suffix.parse::<u32>().ok())
                .map(PartitionId)
                .filter(|p| (p.0 as usize) < partitioning.len())
                .unwrap_or_else(|| partitioning.blob_id());
            partitioning.entropy_of(pid)
        })
        .collect();
    BlockEntropies::new(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_blocking::keyed_blocking;
    use sparker_looseschema::loose_schema_keys;
    use sparker_profiles::{Profile, ProfileCollection, SourceId};

    fn collection() -> ProfileCollection {
        ProfileCollection::dirty(
            (0..6)
                .map(|i| {
                    Profile::builder(SourceId(0), i.to_string())
                        .attr("name", format!("product item variant {}", i % 3))
                        .attr("price", "9.99")
                        .build()
                })
                .collect(),
        )
    }

    #[test]
    fn loose_schema_blocks_inherit_partition_entropy() {
        let coll = collection();
        let parts = AttributePartitioning::manual(
            &coll,
            vec![
                vec![(SourceId(0), "name".to_string())],
                vec![(SourceId(0), "price".to_string())],
            ],
        );
        let blocks = keyed_blocking(&coll, |p| loose_schema_keys(p, &parts));
        let entropies = block_entropies(&blocks, &parts);
        assert_eq!(entropies.len(), blocks.len());
        let name_entropy = parts.entropy_of(parts.partition_of(SourceId(0), "name"));
        let price_entropy = parts.entropy_of(parts.partition_of(SourceId(0), "price"));
        for (i, b) in blocks.blocks().iter().enumerate() {
            if b.key.ends_with("_0") {
                assert_eq!(entropies.of(i), name_entropy, "block {}", b.key);
            } else {
                assert_eq!(entropies.of(i), price_entropy, "block {}", b.key);
            }
        }
        assert!(name_entropy > price_entropy);
    }

    #[test]
    fn schema_agnostic_keys_fall_back_to_blob() {
        let coll = collection();
        let parts = AttributePartitioning::manual(&coll, vec![]);
        // Plain token blocking: keys carry no _<pid> suffix.
        let blocks = sparker_blocking::token_blocking(&coll);
        let entropies = block_entropies(&blocks, &parts);
        let blob_entropy = parts.entropy_of(parts.blob_id());
        assert!(entropies.as_slice().iter().all(|&e| e == blob_entropy));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        BlockEntropies::new(vec![f64::NAN]);
    }

    #[test]
    fn numeric_suffix_out_of_range_is_blob() {
        let coll = collection();
        let parts = AttributePartitioning::manual(&coll, vec![]);
        let blocks = keyed_blocking(&coll, |p| {
            p.token_set()
                .into_iter()
                .map(|t| format!("{t}_99"))
                .collect()
        });
        let entropies = block_entropies(&blocks, &parts);
        let blob = parts.entropy_of(parts.blob_id());
        assert!(entropies.as_slice().iter().all(|&e| e == blob));
    }
}
