//! Edge weighting schemes for the blocking graph.

use crate::graph::EdgeAccumulator;
use sparker_profiles::ProfileId;

/// Global statistics some schemes need, computed once per graph.
#[derive(Debug, Clone)]
pub(crate) struct GlobalStats {
    /// Total number of blocks.
    pub num_blocks: u64,
    /// Node degrees (for EJS), empty unless the scheme needs them.
    pub degrees: Vec<u32>,
    /// Total number of distinct edges (for EJS).
    pub num_edges: u64,
}

/// The edge weighting schemes of the meta-blocking literature, plus
/// Blast's χ².
///
/// All weights grow with the evidence that the two profiles match; the
/// pruning strategies are scheme-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightScheme {
    /// Common Blocks Scheme: the number of shared blocks. The weighting of
    /// the paper's Figure 1(c) toy example.
    Cbs,
    /// Enhanced CBS: CBS × log(|B|/|Bᵢ|) × log(|B|/|Bⱼ|) — discounts
    /// profiles that appear in many blocks.
    Ecbs,
    /// Jaccard Scheme: |Bᵢ∩Bⱼ| / |Bᵢ∪Bⱼ|.
    Js,
    /// Enhanced JS: JS × log(|E|/vᵢ) × log(|E|/vⱼ) with v = node degree,
    /// |E| = total edges.
    Ejs,
    /// Aggregate Reciprocal Comparisons: Σ_b 1/‖b‖ — small blocks count
    /// more.
    Arcs,
    /// Pearson's χ² test of the co-occurrence contingency table — the
    /// weighting Blast introduces.
    ChiSquare,
}

impl WeightScheme {
    /// All schemes, for experiment sweeps.
    pub const ALL: [WeightScheme; 6] = [
        WeightScheme::Cbs,
        WeightScheme::Ecbs,
        WeightScheme::Js,
        WeightScheme::Ejs,
        WeightScheme::Arcs,
        WeightScheme::ChiSquare,
    ];

    /// Stable name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            WeightScheme::Cbs => "CBS",
            WeightScheme::Ecbs => "ECBS",
            WeightScheme::Js => "JS",
            WeightScheme::Ejs => "EJS",
            WeightScheme::Arcs => "ARCS",
            WeightScheme::ChiSquare => "CHI2",
        }
    }

    /// `true` when entropy re-weighting multiplies per-block contributions
    /// (CBS/ARCS) rather than the final weight.
    fn entropy_is_additive(&self) -> bool {
        matches!(self, WeightScheme::Cbs | WeightScheme::Arcs)
    }

    /// Weight of the edge `(a, b)` from its accumulator and both nodes'
    /// block counts.
    ///
    /// With `use_entropy`, CBS becomes Σ entropy(b) over shared blocks —
    /// the exact weighting of the paper's Figure 2(c) toy example — ARCS
    /// weights each reciprocal by the entropy, and the remaining schemes
    /// multiply their weight by the mean entropy of the shared blocks.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn weight(
        &self,
        a: ProfileId,
        b: ProfileId,
        acc: &EdgeAccumulator,
        blocks_a: usize,
        blocks_b: usize,
        stats: &GlobalStats,
        use_entropy: bool,
    ) -> f64 {
        let shared = acc.shared_blocks as f64;
        debug_assert!(acc.shared_blocks > 0, "edges require ≥1 shared block");
        let base = match self {
            WeightScheme::Cbs => {
                if use_entropy {
                    return acc.entropy_sum;
                }
                shared
            }
            WeightScheme::Arcs => {
                if use_entropy {
                    // Mean entropy scales the reciprocal-comparisons mass.
                    return acc.arcs * (acc.entropy_sum / shared);
                }
                acc.arcs
            }
            WeightScheme::Ecbs => {
                let nb = stats.num_blocks.max(1) as f64;
                shared
                    * (nb / (blocks_a.max(1)) as f64).ln().max(0.0)
                    * (nb / (blocks_b.max(1)) as f64).ln().max(0.0)
            }
            WeightScheme::Js => shared / (blocks_a as f64 + blocks_b as f64 - shared),
            WeightScheme::Ejs => {
                let js = shared / (blocks_a as f64 + blocks_b as f64 - shared);
                let e = stats.num_edges.max(1) as f64;
                let va = stats.degrees[a.index()].max(1) as f64;
                let vb = stats.degrees[b.index()].max(1) as f64;
                js * (e / va).ln().max(0.0) * (e / vb).ln().max(0.0)
            }
            WeightScheme::ChiSquare => {
                // 2×2 contingency table over blocks: does co-occurrence
                // exceed what the two profiles' block counts predict?
                let n = stats.num_blocks.max(1) as f64;
                let n11 = shared;
                let n10 = blocks_a as f64 - shared;
                let n01 = blocks_b as f64 - shared;
                let n00 = (n - blocks_a as f64 - blocks_b as f64 + shared).max(0.0);
                chi_square_2x2(n11, n10, n01, n00)
            }
        };
        if use_entropy && !self.entropy_is_additive() {
            base * (acc.entropy_sum / shared)
        } else {
            base
        }
    }
}

/// Pearson χ² statistic of a 2×2 contingency table.
fn chi_square_2x2(n11: f64, n10: f64, n01: f64, n00: f64) -> f64 {
    let total = n11 + n10 + n01 + n00;
    if total == 0.0 {
        return 0.0;
    }
    let r1 = n11 + n10;
    let r0 = n01 + n00;
    let c1 = n11 + n01;
    let c0 = n10 + n00;
    let mut chi = 0.0;
    for (observed, row, col) in [(n11, r1, c1), (n10, r1, c0), (n01, r0, c1), (n00, r0, c0)] {
        let expected = row * col / total;
        if expected > 0.0 {
            let d = observed - expected;
            chi += d * d / expected;
        }
    }
    chi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(shared: u32, arcs: f64, entropy_sum: f64) -> EdgeAccumulator {
        EdgeAccumulator {
            shared_blocks: shared,
            arcs,
            entropy_sum,
        }
    }

    fn stats(num_blocks: u64) -> GlobalStats {
        GlobalStats {
            num_blocks,
            degrees: vec![2, 2, 2, 2],
            num_edges: 4,
        }
    }

    fn w(
        scheme: WeightScheme,
        a: &EdgeAccumulator,
        ba: usize,
        bb: usize,
        s: &GlobalStats,
        ent: bool,
    ) -> f64 {
        scheme.weight(ProfileId(0), ProfileId(2), a, ba, bb, s, ent)
    }

    #[test]
    fn cbs_counts_shared_blocks() {
        assert_eq!(
            w(WeightScheme::Cbs, &acc(3, 1.5, 1.2), 4, 4, &stats(5), false),
            3.0
        );
    }

    #[test]
    fn cbs_with_entropy_sums_entropies() {
        // Figure 2(c): w(p1,p3) = 0.4 + 0.8 + 0.4 = 1.6.
        assert!(
            (w(WeightScheme::Cbs, &acc(3, 1.5, 1.6), 4, 4, &stats(5), true) - 1.6).abs() < 1e-12
        );
    }

    #[test]
    fn js_is_jaccard_of_block_sets() {
        // 3 shared, 4+4 total → 3/5.
        assert!(
            (w(WeightScheme::Js, &acc(3, 0.0, 0.0), 4, 4, &stats(5), false) - 0.6).abs() < 1e-12
        );
    }

    #[test]
    fn arcs_passes_through_accumulator() {
        assert_eq!(
            w(
                WeightScheme::Arcs,
                &acc(2, 0.75, 0.0),
                4,
                4,
                &stats(5),
                false
            ),
            0.75
        );
    }

    #[test]
    fn ecbs_discounts_block_heavy_profiles() {
        let s = stats(100);
        let light = w(WeightScheme::Ecbs, &acc(2, 0.0, 0.0), 4, 4, &s, false);
        let heavy = w(WeightScheme::Ecbs, &acc(2, 0.0, 0.0), 50, 50, &s, false);
        assert!(light > heavy);
    }

    #[test]
    fn ejs_uses_degrees_and_edges() {
        let s = GlobalStats {
            num_blocks: 10,
            degrees: vec![1, 0, 4, 0],
            num_edges: 8,
        };
        let low_degree = WeightScheme::Ejs.weight(
            ProfileId(0),
            ProfileId(0),
            &acc(2, 0.0, 0.0),
            4,
            4,
            &s,
            false,
        );
        let high_degree = WeightScheme::Ejs.weight(
            ProfileId(2),
            ProfileId(2),
            &acc(2, 0.0, 0.0),
            4,
            4,
            &s,
            false,
        );
        assert!(low_degree > high_degree);
    }

    #[test]
    fn chi_square_detects_association() {
        // Perfect co-occurrence vs independence.
        let s = stats(100);
        let associated = w(
            WeightScheme::ChiSquare,
            &acc(10, 0.0, 0.0),
            10,
            10,
            &s,
            false,
        );
        let independent = w(
            WeightScheme::ChiSquare,
            &acc(1, 0.0, 0.0),
            10,
            10,
            &s,
            false,
        );
        assert!(associated > independent);
        assert!(associated > 0.0);
    }

    #[test]
    fn chi_square_2x2_known_value() {
        // Table [[10,0],[0,10]] → χ² = 20.
        assert!((chi_square_2x2(10.0, 0.0, 0.0, 10.0) - 20.0).abs() < 1e-9);
        assert_eq!(chi_square_2x2(0.0, 0.0, 0.0, 0.0), 0.0);
        // Independent table → χ² = 0.
        assert!(chi_square_2x2(25.0, 25.0, 25.0, 25.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_multiplies_ratio_schemes() {
        let a = acc(2, 0.0, 1.0); // mean entropy 0.5
        let plain = w(WeightScheme::Js, &a, 4, 4, &stats(5), false);
        let weighted = w(WeightScheme::Js, &a, 4, 4, &stats(5), true);
        assert!((weighted - plain * 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_schemes_nonnegative() {
        let s = stats(20);
        for scheme in WeightScheme::ALL {
            for ent in [false, true] {
                let v = w(scheme, &acc(1, 0.1, 0.3), 3, 7, &s, ent);
                assert!(v >= 0.0, "{} ({ent}) gave {v}", scheme.name());
            }
        }
    }
}
