//! The pluggable edge-scoring seam.
//!
//! Every execution path of meta-blocking — staged ([`crate::meta_blocking_graph`]),
//! broadcast-join parallel ([`crate::parallel::meta_blocking`]), fused
//! streaming ([`crate::StreamingMetaBlocking`]), progressive
//! ([`crate::progressive_global`] / [`crate::progressive_node_first`]) and
//! the online resolver's batch refresh — weighs a candidate edge the same
//! way: it materializes the edge's [`EdgeAccumulator`] and asks a
//! [`ScoringContext`] for the weight. The context owns everything global
//! (block count, node degrees when the scorer reads them, the entropy
//! precondition) so the per-path drivers carry no weighting logic of their
//! own.
//!
//! Two scorer families plug into the seam:
//!
//! * [`EdgeScorer::Classic`] — the literature's closed-form schemes
//!   ([`WeightScheme`]). The context delegates verbatim to
//!   [`WeightScheme`]'s own weight function, so classic runs are
//!   **bit-identical** to the pre-seam implementation (pinned by the
//!   scheme × pruning × backend parity matrix and proptests).
//! * [`EdgeScorer::Supervised`] — *Generalized Supervised Meta-blocking*:
//!   the co-occurrence statistics are treated as a feature vector
//!   ([`EdgeFeatures`]) and scored by a logistic [`LinearModel`] trained
//!   in-repo against synthetic ground truth (see [`crate::train_supervised`]).
//!   Model weights serialize to/from a one-line JSON object so CLI runs
//!   are reproducible.

use crate::graph::{BlockGraph, EdgeAccumulator};
use crate::weights::{GlobalStats, WeightScheme};
use sparker_profiles::ProfileId;

/// Number of features in an [`EdgeFeatures`] vector.
pub const NUM_FEATURES: usize = 12;

/// Stable feature names, index-aligned with [`EdgeFeatures::as_array`].
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "shared_blocks",
    "arcs",
    "entropy_sum",
    "jaccard",
    "dice",
    "cosine",
    "blocks_min",
    "blocks_max",
    "norm_blocks_min",
    "norm_blocks_max",
    "degree_min",
    "degree_max",
];

/// The full per-edge feature vector, extracted in one pass from the same
/// [`EdgeAccumulator`] the classic schemes consume.
///
/// Features are **symmetric** in the two endpoints (min/max instead of
/// (a, b) order): the node-centric passes weigh every edge from both
/// endpoints, and the two evaluations must agree bit for bit.
///
/// | index | feature | range |
/// |---|---|---|
/// | 0 | shared blocks (CBS) | ≥ 1 |
/// | 1 | ARCS mass Σ 1/‖b‖ | > 0 |
/// | 2 | summed block entropy (= shared when the graph has none) | ≥ 0 |
/// | 3 | Jaccard of the block sets | (0, 1] |
/// | 4 | Dice 2s/(‖Bᵢ‖+‖Bⱼ‖) | (0, 1] |
/// | 5 | cosine s/√(‖Bᵢ‖·‖Bⱼ‖) | (0, 1] |
/// | 6 | min block count | ≥ 1 |
/// | 7 | max block count | ≥ 1 |
/// | 8 | min block count / total blocks | (0, 1] |
/// | 9 | max block count / total blocks | (0, 1] |
/// | 10 | min node degree | ≥ 0 |
/// | 11 | max node degree | ≥ 0 |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeFeatures([f64; NUM_FEATURES]);

impl EdgeFeatures {
    /// Extract the feature vector from one edge's accumulator and both
    /// endpoints' global statistics.
    pub fn extract(
        acc: &EdgeAccumulator,
        blocks_a: usize,
        blocks_b: usize,
        num_blocks: u64,
        degree_a: u32,
        degree_b: u32,
    ) -> EdgeFeatures {
        let shared = acc.shared_blocks as f64;
        debug_assert!(acc.shared_blocks > 0, "edges require ≥1 shared block");
        let (ba, bb) = (blocks_a.max(1) as f64, blocks_b.max(1) as f64);
        let (bmin, bmax) = if ba <= bb { (ba, bb) } else { (bb, ba) };
        let nb = num_blocks.max(1) as f64;
        let (da, db) = (degree_a as f64, degree_b as f64);
        let (dmin, dmax) = if da <= db { (da, db) } else { (db, da) };
        EdgeFeatures([
            shared,
            acc.arcs,
            acc.entropy_sum,
            shared / (ba + bb - shared),
            2.0 * shared / (ba + bb),
            shared / (ba * bb).sqrt(),
            bmin,
            bmax,
            bmin / nb,
            bmax / nb,
            dmin,
            dmax,
        ])
    }

    /// The features as a fixed array, index-aligned with [`FEATURE_NAMES`].
    pub fn as_array(&self) -> &[f64; NUM_FEATURES] {
        &self.0
    }
}

/// A linear (logistic) model over [`EdgeFeatures`]: the supervised edge
/// scorer's weights, `score = σ(bias + w · features)`.
///
/// The sigmoid is strictly monotone, so a model with a single non-zero
/// weight ranks edges exactly as that raw feature does — a one-hot model
/// over the CBS feature reproduces CBS's edge ordering (pinned by
/// proptest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Per-feature coefficients, index-aligned with [`FEATURE_NAMES`].
    pub weights: [f64; NUM_FEATURES],
    /// Intercept.
    pub bias: f64,
}

impl LinearModel {
    /// The all-zero model (scores every edge 0.5).
    pub fn zero() -> LinearModel {
        LinearModel {
            weights: [0.0; NUM_FEATURES],
            bias: 0.0,
        }
    }

    /// A model reading a single raw feature with unit weight.
    pub fn one_hot(feature: usize) -> LinearModel {
        let mut m = LinearModel::zero();
        m.weights[feature] = 1.0;
        m
    }

    /// Score a feature vector: `σ(bias + w · f)` ∈ (0, 1).
    pub fn score(&self, features: &EdgeFeatures) -> f64 {
        let mut z = self.bias;
        for (w, f) in self.weights.iter().zip(features.as_array()) {
            z += w * f;
        }
        sigmoid(z)
    }

    /// Serialize to a one-line JSON object:
    /// `{"bias":…,"weights":[…12 floats…]}`. Floats use Rust's shortest
    /// round-trip formatting, so [`LinearModel::from_json`] restores the
    /// exact bits.
    pub fn to_json(&self) -> String {
        let ws: Vec<String> = self.weights.iter().map(|w| format!("{w:?}")).collect();
        format!(
            "{{\"bias\":{:?},\"weights\":[{}]}}",
            self.bias,
            ws.join(",")
        )
    }

    /// Parse the JSON produced by [`LinearModel::to_json`] (whitespace and
    /// key order are flexible).
    pub fn from_json(text: &str) -> Result<LinearModel, String> {
        let bias = json_number_field(text, "bias")?;
        let list = json_array_field(text, "weights")?;
        let mut weights = [0.0f64; NUM_FEATURES];
        let parts: Vec<&str> = list
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .collect();
        if parts.len() != NUM_FEATURES {
            return Err(format!(
                "\"weights\" needs exactly {NUM_FEATURES} entries, got {}",
                parts.len()
            ));
        }
        for (slot, part) in weights.iter_mut().zip(&parts) {
            *slot = part
                .parse::<f64>()
                .map_err(|_| format!("invalid weight {part:?}"))?;
        }
        if !bias.is_finite() || weights.iter().any(|w| !w.is_finite()) {
            return Err("model coefficients must be finite".to_string());
        }
        Ok(LinearModel { weights, bias })
    }
}

/// Locate `"key":` in `text` and return the byte offset just past the colon.
fn json_value_start(text: &str, key: &str) -> Result<usize, String> {
    let pat = format!("\"{key}\"");
    let at = text
        .find(&pat)
        .ok_or_else(|| format!("missing \"{key}\" field"))?;
    let rest = &text[at + pat.len()..];
    let colon = rest
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("expected ':' after \"{key}\""))?;
    Ok(text.len() - colon.len())
}

/// Parse a bare JSON number field.
fn json_number_field(text: &str, key: &str) -> Result<f64, String> {
    let start = json_value_start(text, key)?;
    let rest = text[start..].trim_start();
    let end = rest
        .find([',', '}', ']'])
        .ok_or_else(|| format!("unterminated \"{key}\" value"))?;
    rest[..end]
        .trim()
        .parse::<f64>()
        .map_err(|_| format!("invalid number for \"{key}\": {:?}", rest[..end].trim()))
}

/// Return the contents of a JSON array field (between `[` and `]`).
fn json_array_field<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let start = json_value_start(text, key)?;
    let rest = text[start..].trim_start();
    let inner = rest
        .strip_prefix('[')
        .ok_or_else(|| format!("\"{key}\" must be an array"))?;
    let close = inner
        .find(']')
        .ok_or_else(|| format!("unterminated \"{key}\" array"))?;
    Ok(&inner[..close])
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// The pluggable edge scorer: which function maps an edge's co-occurrence
/// statistics to its weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeScorer {
    /// A closed-form scheme from the meta-blocking literature; routed
    /// verbatim through [`WeightScheme`], bit-identical to the pre-seam
    /// code.
    Classic(WeightScheme),
    /// A trained logistic model over [`EdgeFeatures`] (Generalized
    /// Supervised Meta-blocking).
    Supervised(LinearModel),
}

impl EdgeScorer {
    /// Stable name for reports and experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            EdgeScorer::Classic(scheme) => scheme.name(),
            EdgeScorer::Supervised(_) => "SUPERVISED",
        }
    }

    /// Does weighing an edge read node degrees? True for EJS (its
    /// discounting terms) and every supervised model (the degree
    /// features) — the drivers use this to decide whether a degree pass
    /// must run before pass A.
    pub fn needs_degrees(&self) -> bool {
        matches!(
            self,
            EdgeScorer::Classic(WeightScheme::Ejs) | EdgeScorer::Supervised(_)
        )
    }

    /// The classic scheme, if this is one.
    pub fn classic(&self) -> Option<WeightScheme> {
        match self {
            EdgeScorer::Classic(scheme) => Some(*scheme),
            EdgeScorer::Supervised(_) => None,
        }
    }
}

impl Default for EdgeScorer {
    /// CBS — the default of [`crate::MetaBlockingConfig`].
    fn default() -> Self {
        EdgeScorer::Classic(WeightScheme::Cbs)
    }
}

/// Everything global an edge weight depends on, checked and computed once
/// per graph: the scorer, the entropy flag, block count and (when the
/// scorer reads them) node degrees.
///
/// This is the single home of the `use_entropy` precondition that used to
/// be asserted separately by every driver: both constructors reject a
/// graph built without [`crate::BlockEntropies`] when entropy weighting is
/// requested.
#[derive(Debug, Clone)]
pub struct ScoringContext {
    scorer: EdgeScorer,
    use_entropy: bool,
    stats: GlobalStats,
}

impl ScoringContext {
    /// Build a context, computing node degrees serially iff
    /// [`EdgeScorer::needs_degrees`].
    ///
    /// # Panics
    /// When `use_entropy` is set but `graph` was built without
    /// [`crate::BlockEntropies`].
    pub fn new(graph: &BlockGraph, scorer: EdgeScorer, use_entropy: bool) -> ScoringContext {
        Self::check_entropy(graph, use_entropy);
        let (degrees, num_edges) = if scorer.needs_degrees() {
            graph.degrees()
        } else {
            (Vec::new(), 0)
        };
        ScoringContext {
            scorer,
            use_entropy,
            stats: GlobalStats {
                num_blocks: graph.num_blocks() as u64,
                degrees,
                num_edges,
            },
        }
    }

    /// Build a context from a degree vector the caller already computed
    /// (e.g. the parallel degree pass that also feeds cost-hinted
    /// partitioning). Degrees are kept only when the scorer reads them, so
    /// the resulting context is identical to [`ScoringContext::new`].
    ///
    /// # Panics
    /// As [`ScoringContext::new`].
    pub fn with_degrees(
        graph: &BlockGraph,
        scorer: EdgeScorer,
        use_entropy: bool,
        degrees: Vec<u32>,
        num_edges: u64,
    ) -> ScoringContext {
        Self::check_entropy(graph, use_entropy);
        let (degrees, num_edges) = if scorer.needs_degrees() {
            (degrees, num_edges)
        } else {
            (Vec::new(), 0)
        };
        ScoringContext {
            scorer,
            use_entropy,
            stats: GlobalStats {
                num_blocks: graph.num_blocks() as u64,
                degrees,
                num_edges,
            },
        }
    }

    /// The deduplicated entropy precondition (formerly copy-pasted into
    /// every driver).
    fn check_entropy(graph: &BlockGraph, use_entropy: bool) {
        if use_entropy {
            assert!(
                graph.has_entropies(),
                "use_entropy requires a BlockGraph built with BlockEntropies"
            );
        }
    }

    /// The scorer this context evaluates.
    pub fn scorer(&self) -> EdgeScorer {
        self.scorer
    }

    /// Is entropy re-weighting active?
    pub fn use_entropy(&self) -> bool {
        self.use_entropy
    }

    /// Weight the edge `(a, b)` from its accumulator and both endpoints'
    /// block counts — THE per-edge scoring function every execution path
    /// calls.
    pub fn weigh(
        &self,
        a: ProfileId,
        b: ProfileId,
        acc: &EdgeAccumulator,
        blocks_a: usize,
        blocks_b: usize,
    ) -> f64 {
        match &self.scorer {
            EdgeScorer::Classic(scheme) => {
                scheme.weight(a, b, acc, blocks_a, blocks_b, &self.stats, self.use_entropy)
            }
            EdgeScorer::Supervised(model) => {
                model.score(&self.features(a, b, acc, blocks_a, blocks_b))
            }
        }
    }

    /// Extract the edge's full feature vector under this context's global
    /// statistics (degrees read 0 when the scorer did not request them).
    pub fn features(
        &self,
        a: ProfileId,
        b: ProfileId,
        acc: &EdgeAccumulator,
        blocks_a: usize,
        blocks_b: usize,
    ) -> EdgeFeatures {
        let degree = |p: ProfileId| self.stats.degrees.get(p.index()).copied().unwrap_or(0);
        EdgeFeatures::extract(
            acc,
            blocks_a,
            blocks_b,
            self.stats.num_blocks,
            degree(a),
            degree(b),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(shared: u32, arcs: f64, entropy_sum: f64) -> EdgeAccumulator {
        EdgeAccumulator {
            shared_blocks: shared,
            arcs,
            entropy_sum,
        }
    }

    #[test]
    fn features_are_symmetric_in_endpoints() {
        let a = EdgeFeatures::extract(&acc(2, 0.5, 2.0), 3, 7, 10, 4, 9);
        let b = EdgeFeatures::extract(&acc(2, 0.5, 2.0), 7, 3, 10, 9, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn feature_values_match_definitions() {
        let f = EdgeFeatures::extract(&acc(2, 0.75, 1.5), 4, 6, 20, 3, 8);
        let v = f.as_array();
        assert_eq!(v[0], 2.0); // shared
        assert_eq!(v[1], 0.75); // arcs
        assert_eq!(v[2], 1.5); // entropy_sum
        assert!((v[3] - 2.0 / 8.0).abs() < 1e-12); // jaccard
        assert!((v[4] - 4.0 / 10.0).abs() < 1e-12); // dice
        assert!((v[5] - 2.0 / 24.0f64.sqrt()).abs() < 1e-12); // cosine
        assert_eq!((v[6], v[7]), (4.0, 6.0)); // blocks min/max
        assert!((v[8] - 0.2).abs() < 1e-12 && (v[9] - 0.3).abs() < 1e-12);
        assert_eq!((v[10], v[11]), (3.0, 8.0)); // degree min/max
    }

    #[test]
    fn one_hot_cbs_score_is_monotone_in_shared_blocks() {
        let m = LinearModel::one_hot(0);
        let lo = m.score(&EdgeFeatures::extract(&acc(1, 0.0, 1.0), 5, 5, 10, 0, 0));
        let hi = m.score(&EdgeFeatures::extract(&acc(4, 0.0, 4.0), 5, 5, 10, 0, 0));
        assert!(hi > lo);
        assert!(lo > 0.0 && hi < 1.0);
    }

    #[test]
    fn model_json_roundtrips_exactly() {
        let mut m = LinearModel::zero();
        for (i, w) in m.weights.iter_mut().enumerate() {
            *w = (i as f64 + 1.0) * 0.317 - 2.0;
        }
        m.bias = -1.25e-3;
        let back = LinearModel::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn model_json_accepts_whitespace_and_key_order() {
        let text = r#" { "weights" : [1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0.5] ,
                         "bias" : -2.0 } "#;
        let m = LinearModel::from_json(text).unwrap();
        assert_eq!(m.weights[0], 1.0);
        assert_eq!(m.weights[11], 0.5);
        assert_eq!(m.bias, -2.0);
    }

    #[test]
    fn malformed_model_json_is_rejected() {
        for (text, needle) in [
            ("{}", "missing \"bias\""),
            ("{\"bias\":0}", "missing \"weights\""),
            ("{\"bias\":x,\"weights\":[]}", "invalid number"),
            ("{\"bias\":0,\"weights\":[1,2]}", "exactly 12"),
            ("{\"bias\":0,\"weights\":0}", "must be an array"),
            ("{\"bias\":0,\"weights\":[1,2,3", "unterminated"),
            (
                // Rust's f64 parser accepts "nan", so this trips the
                // finiteness check rather than the parse.
                "{\"bias\":0,\"weights\":[1,2,3,4,5,6,7,8,9,10,11,nan]}",
                "must be finite",
            ),
            (
                "{\"bias\":0,\"weights\":[1,2,3,4,5,6,7,8,9,10,11,x]}",
                "invalid weight",
            ),
        ] {
            let err = LinearModel::from_json(text).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn scorer_names_and_degree_needs() {
        assert_eq!(EdgeScorer::default().name(), "CBS");
        assert_eq!(
            EdgeScorer::Supervised(LinearModel::zero()).name(),
            "SUPERVISED"
        );
        assert!(!EdgeScorer::Classic(WeightScheme::Cbs).needs_degrees());
        assert!(EdgeScorer::Classic(WeightScheme::Ejs).needs_degrees());
        assert!(EdgeScorer::Supervised(LinearModel::zero()).needs_degrees());
        assert_eq!(
            EdgeScorer::Classic(WeightScheme::Js).classic(),
            Some(WeightScheme::Js)
        );
        assert_eq!(EdgeScorer::Supervised(LinearModel::zero()).classic(), None);
    }
}
