//! Per-worker mutable scratch state for pool stages.
//!
//! Morsel-granular stages run many small tasks per worker; allocating
//! scratch buffers per task would undo the point of reusing them. A
//! [`WorkerLocal`] holds one value per worker *slot* so every task reuses
//! the buffer warmed by the previous task on the same slot, regardless of
//! how tasks are claimed.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// One mutable value per worker slot of a [`crate::WorkerPool`].
///
/// The pool guarantees that at most one task executes on a given slot at a
/// time (the slot *is* a thread: slot 0 the submitter, slots 1.. the pool
/// threads), so slot-indexed access needs no locking. A per-slot borrow
/// flag still guards against the one way that invariant can be subverted —
/// a nested stage re-entering the same slot's value — turning potential UB
/// into a panic.
pub struct WorkerLocal<T> {
    slots: Vec<(AtomicBool, UnsafeCell<T>)>,
}

// SAFETY: access is serialized per slot by the pool's one-thread-per-slot
// scheduling plus the borrow flag; values move across threads only when the
// owner moves (`T: Send`).
unsafe impl<T: Send> Sync for WorkerLocal<T> {}

impl<T> WorkerLocal<T> {
    /// One value per worker slot, built by `init` (called `workers` times).
    pub fn new(workers: usize, mut init: impl FnMut() -> T) -> Self {
        WorkerLocal {
            slots: (0..workers.max(1))
                .map(|_| (AtomicBool::new(false), UnsafeCell::new(init())))
                .collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if there are no slots (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Mutably borrow slot `worker`'s value for the duration of `f`.
    ///
    /// Panics if the slot is already borrowed (nested stages on one thread)
    /// or `worker` is out of range.
    pub fn with<R>(&self, worker: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let (flag, cell) = &self.slots[worker];
        assert!(
            !flag.swap(true, Ordering::Acquire),
            "WorkerLocal slot {worker} borrowed re-entrantly"
        );
        // SAFETY: the flag grants exclusive access to the cell until it is
        // released below; the pool runs one task per slot at a time.
        let result = f(unsafe { &mut *cell.get() });
        flag.store(false, Ordering::Release);
        result
    }

    /// Consume the structure and return the per-slot values in slot order.
    pub fn into_inner(self) -> Vec<T> {
        self.slots
            .into_iter()
            .map(|(_, c)| c.into_inner())
            .collect()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for WorkerLocal<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerLocal")
            .field("slots", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkerPool;

    #[test]
    fn one_value_per_slot_accumulates() {
        let pool = WorkerPool::new(4);
        let local = WorkerLocal::new(4, || 0u64);
        pool.run_on_workers(100, |worker, i| {
            local.with(worker, |v| *v += i as u64 + 1);
        });
        let total: u64 = local.into_inner().into_iter().sum();
        assert_eq!(total, (1..=100).sum::<u64>());
    }

    #[test]
    fn scratch_survives_across_tasks_on_a_slot() {
        let pool = WorkerPool::new(1);
        let local = WorkerLocal::new(1, Vec::<usize>::new);
        pool.run_on_workers(5, |worker, i| local.with(worker, |v| v.push(i)));
        assert_eq!(local.into_inner()[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "re-entrantly")]
    fn reentrant_borrow_panics() {
        let local = WorkerLocal::new(1, || 0u8);
        local.with(0, |_| local.with(0, |_| {}));
    }

    #[test]
    fn zero_workers_clamped() {
        let local = WorkerLocal::new(0, || 1i32);
        assert_eq!(local.len(), 1);
        assert!(!local.is_empty());
    }
}
