//! Broadcast variables: read-only values shared with every task.
//!
//! In Spark a broadcast variable ships one copy of a value to each executor
//! instead of one copy per task. In this in-process engine the value is held
//! behind an [`Arc`], so "shipping" is free, but the abstraction is kept so
//! that algorithms (notably SparkER's broadcast-join meta-blocking) are
//! written exactly as they would be on a cluster, and so the engine can count
//! broadcast usage in its metrics.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A read-only value shared with every task of every stage.
///
/// Created with [`crate::Context::broadcast`]. Cloning is cheap (an `Arc`
/// clone) and the payload is accessible through `Deref`:
///
/// ```
/// use sparker_dataflow::Context;
/// let ctx = Context::new(2);
/// let lookup = ctx.broadcast(vec![10, 20, 30]);
/// let ds = ctx.parallelize(vec![0usize, 1, 2], 2);
/// let looked_up = {
///     let lookup = lookup.clone();
///     ds.map(move |i| lookup[*i])
/// };
/// assert_eq!(looked_up.collect(), vec![10, 20, 30]);
/// ```
pub struct Broadcast<T> {
    value: Arc<T>,
}

impl<T> Broadcast<T> {
    pub(crate) fn new(value: T) -> Self {
        Broadcast {
            value: Arc::new(value),
        }
    }

    /// Borrow the broadcast payload.
    pub fn value(&self) -> &T {
        &self.value
    }
}

/// Owned values are wrapped in a fresh `Arc`.
impl<T> From<T> for Broadcast<T> {
    fn from(value: T) -> Self {
        Broadcast::new(value)
    }
}

/// Already-shared values are adopted as-is — broadcasting an `Arc<T>` the
/// driver keeps a handle to costs one refcount bump, not a deep clone of
/// `T`. (SparkER's meta-blocking broadcasts the block graph this way.)
impl<T> From<Arc<T>> for Broadcast<T> {
    fn from(value: Arc<T>) -> Self {
        Broadcast { value }
    }
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            value: Arc::clone(&self.value),
        }
    }
}

impl<T> Deref for Broadcast<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for Broadcast<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Broadcast").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deref_and_value_agree() {
        let b = Broadcast::new(String::from("hello"));
        assert_eq!(b.len(), 5);
        assert_eq!(b.value(), "hello");
    }

    #[test]
    fn clones_share_storage() {
        let b = Broadcast::new(vec![1, 2, 3]);
        let c = b.clone();
        assert!(std::ptr::eq(b.value(), c.value()));
    }

    #[test]
    fn from_arc_adopts_without_copying() {
        let shared = Arc::new(vec![1, 2, 3]);
        let b: Broadcast<Vec<i32>> = Arc::clone(&shared).into();
        assert!(std::ptr::eq(b.value(), &*shared), "same allocation");
        assert_eq!(Arc::strong_count(&shared), 2);
    }
}
