//! Execution metrics: per-stage task/record/shuffle/time accounting.
//!
//! The scalability experiments (DESIGN.md E8) read these counters to report
//! tasks, shuffled records and wall-clock per stage, mirroring what the
//! Spark UI exposes for the original SparkER. Since the move to the
//! persistent worker pool, each stage also reports aggregate worker busy
//! time and queue wait, and the snapshot carries cumulative per-worker busy
//! time — enough to compute utilisation (`busy / (workers * wall)`) and
//! spot skew without external profilers.

use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Metrics for one executed stage (one engine operator invocation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageMetrics {
    /// Operator name, e.g. `"map"` or `"group_by_key"`.
    pub name: String,
    /// Number of tasks (= partitions processed).
    pub tasks: usize,
    /// Records read by the stage.
    pub input_records: u64,
    /// Records produced by the stage.
    pub output_records: u64,
    /// Records moved across the shuffle boundary (0 for narrow stages).
    pub shuffle_records: u64,
    /// High-water mark of shuffle bytes buffered in RAM during the stage,
    /// as accounted against the context's [`crate::MemBudget`] (0 for
    /// narrow stages and for operators that don't account their buffers).
    pub buffered_bytes: u64,
    /// Wall-clock time of the stage (submission to last task completion).
    pub wall_time: Duration,
    /// Sum of task CPU time across all workers (preemption excluded, so
    /// the number reflects work executed even on an oversubscribed host).
    /// Under perfect parallelism on dedicated cores this approaches
    /// `wall_time * workers`.
    pub busy_time: Duration,
    /// Sum over participating workers of the delay between stage
    /// publication and that worker claiming its first task.
    pub queue_wait: Duration,
    /// CPU time per worker slot for this stage (slot 0 = the submitting
    /// thread). Empty for driver-side pseudo-stages. The spread is the
    /// stage's load balance; the maximum entry is its critical path.
    pub per_worker_busy: Vec<Duration>,
}

impl StageMetrics {
    /// A zeroed stage record; callers fill in what they measured.
    pub fn named(name: &str) -> Self {
        StageMetrics {
            name: name.to_string(),
            tasks: 0,
            input_records: 0,
            output_records: 0,
            shuffle_records: 0,
            buffered_bytes: 0,
            wall_time: Duration::ZERO,
            busy_time: Duration::ZERO,
            queue_wait: Duration::ZERO,
            per_worker_busy: Vec::new(),
        }
    }

    /// The slowest worker's busy time in this stage — the stage's critical
    /// path (wall-clock lower bound on a one-core-per-worker machine).
    pub fn critical_path(&self) -> Duration {
        self.per_worker_busy
            .iter()
            .copied()
            .max()
            .unwrap_or_default()
    }
}

/// Point-in-time copy of all metrics recorded by a [`crate::Context`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Stages in execution order.
    pub stages: Vec<StageMetrics>,
    /// Number of broadcast variables created.
    pub broadcasts: u64,
    /// Cumulative busy time per worker slot (0 = the submitting thread).
    /// Filled by [`crate::Context::metrics`] from the pool's counters;
    /// spans the pool's whole lifetime, not just the recorded stages.
    pub worker_busy: Vec<Duration>,
}

impl MetricsSnapshot {
    /// Total tasks across all stages.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.tasks).sum()
    }

    /// Total records moved across shuffle boundaries.
    pub fn total_shuffle_records(&self) -> u64 {
        self.stages.iter().map(|s| s.shuffle_records).sum()
    }

    /// Total wall-clock time spent in stages.
    ///
    /// Stages execute sequentially (each operator is eager), so this is a
    /// faithful pipeline time excluding driver-side work.
    pub fn total_wall_time(&self) -> Duration {
        self.stages.iter().map(|s| s.wall_time).sum()
    }

    /// Total worker busy time across all stages.
    pub fn total_busy_time(&self) -> Duration {
        self.stages.iter().map(|s| s.busy_time).sum()
    }

    /// Total queue wait across all stages.
    pub fn total_queue_wait(&self) -> Duration {
        self.stages.iter().map(|s| s.queue_wait).sum()
    }

    /// Per-worker busy time summed over all recorded stages (slot-indexed).
    ///
    /// Unlike [`MetricsSnapshot::worker_busy`] this covers exactly the
    /// recorded stages, so it composes with [`crate::Context::reset_metrics`]
    /// for per-run load-balance measurements.
    pub fn stage_worker_busy(&self) -> Vec<Duration> {
        let mut totals: Vec<Duration> = Vec::new();
        for s in &self.stages {
            if s.per_worker_busy.len() > totals.len() {
                totals.resize(s.per_worker_busy.len(), Duration::ZERO);
            }
            for (slot, d) in s.per_worker_busy.iter().enumerate() {
                totals[slot] += *d;
            }
        }
        totals
    }

    /// Sum over stages of each stage's slowest worker: the pipeline's
    /// critical path under the recorded schedule.
    pub fn total_critical_path(&self) -> Duration {
        self.stages.iter().map(StageMetrics::critical_path).sum()
    }
}

/// Shared, thread-safe metrics sink owned by a [`crate::Context`].
#[derive(Debug, Clone, Default)]
pub struct ExecutionMetrics {
    inner: Arc<Mutex<MetricsSnapshot>>,
}

impl ExecutionMetrics {
    /// Record a completed stage.
    pub fn record_stage(&self, stage: StageMetrics) {
        self.inner.lock().unwrap().stages.push(stage);
    }

    /// Record the creation of a broadcast variable.
    pub fn record_broadcast(&self) {
        self.inner.lock().unwrap().broadcasts += 1;
    }

    /// Copy out everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().unwrap().clone()
    }

    /// Drop all recorded metrics (used between experiment repetitions).
    pub fn reset(&self) {
        let mut g = self.inner.lock().unwrap();
        g.stages.clear();
        g.broadcasts = 0;
        g.worker_busy.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, tasks: usize, shuffle: u64) -> StageMetrics {
        StageMetrics {
            name: name.to_string(),
            tasks,
            input_records: 10,
            output_records: 10,
            shuffle_records: shuffle,
            buffered_bytes: 0,
            wall_time: Duration::from_millis(5),
            busy_time: Duration::from_millis(8),
            queue_wait: Duration::from_micros(20),
            per_worker_busy: vec![Duration::from_millis(5), Duration::from_millis(3)],
        }
    }

    #[test]
    fn snapshot_aggregates() {
        let m = ExecutionMetrics::default();
        m.record_stage(stage("map", 4, 0));
        m.record_stage(stage("group_by_key", 8, 40));
        m.record_broadcast();
        let s = m.snapshot();
        assert_eq!(s.stages.len(), 2);
        assert_eq!(s.total_tasks(), 12);
        assert_eq!(s.total_shuffle_records(), 40);
        assert_eq!(s.broadcasts, 1);
        assert_eq!(s.total_wall_time(), Duration::from_millis(10));
        assert_eq!(s.total_busy_time(), Duration::from_millis(16));
        assert_eq!(s.total_queue_wait(), Duration::from_micros(40));
        assert_eq!(
            s.stage_worker_busy(),
            vec![Duration::from_millis(10), Duration::from_millis(6)]
        );
        assert_eq!(s.total_critical_path(), Duration::from_millis(10));
    }

    #[test]
    fn reset_clears_everything() {
        let m = ExecutionMetrics::default();
        m.record_stage(stage("map", 1, 0));
        m.record_broadcast();
        m.reset();
        let s = m.snapshot();
        assert!(s.stages.is_empty());
        assert_eq!(s.broadcasts, 0);
        assert!(s.worker_busy.is_empty());
    }

    #[test]
    fn clones_share_the_sink() {
        let m = ExecutionMetrics::default();
        let m2 = m.clone();
        m2.record_stage(stage("map", 1, 0));
        assert_eq!(m.snapshot().stages.len(), 1);
    }

    #[test]
    fn named_starts_zeroed() {
        let s = StageMetrics::named("map");
        assert_eq!(s.name, "map");
        assert_eq!(s.tasks, 0);
        assert_eq!(s.busy_time, Duration::ZERO);
        assert_eq!(s.queue_wait, Duration::ZERO);
    }
}
