//! Execution metrics: per-stage task/record/shuffle accounting.
//!
//! The scalability experiments (DESIGN.md E8) read these counters to report
//! tasks, shuffled records and wall-clock per stage, mirroring what the
//! Spark UI exposes for the original SparkER.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Metrics for one executed stage (one engine operator invocation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageMetrics {
    /// Operator name, e.g. `"map"` or `"group_by_key"`.
    pub name: String,
    /// Number of tasks (= partitions processed).
    pub tasks: usize,
    /// Records read by the stage.
    pub input_records: u64,
    /// Records produced by the stage.
    pub output_records: u64,
    /// Records moved across the shuffle boundary (0 for narrow stages).
    pub shuffle_records: u64,
    /// Wall-clock time of the stage.
    pub wall_time: Duration,
}

/// Point-in-time copy of all metrics recorded by a [`crate::Context`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Stages in execution order.
    pub stages: Vec<StageMetrics>,
    /// Number of broadcast variables created.
    pub broadcasts: u64,
}

impl MetricsSnapshot {
    /// Total tasks across all stages.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.tasks).sum()
    }

    /// Total records moved across shuffle boundaries.
    pub fn total_shuffle_records(&self) -> u64 {
        self.stages.iter().map(|s| s.shuffle_records).sum()
    }

    /// Total wall-clock time spent in stages.
    ///
    /// Stages execute sequentially (each operator is eager), so this is a
    /// faithful pipeline time excluding driver-side work.
    pub fn total_wall_time(&self) -> Duration {
        self.stages.iter().map(|s| s.wall_time).sum()
    }
}

/// Shared, thread-safe metrics sink owned by a [`crate::Context`].
#[derive(Debug, Clone, Default)]
pub struct ExecutionMetrics {
    inner: Arc<Mutex<MetricsSnapshot>>,
}

impl ExecutionMetrics {
    /// Record a completed stage.
    pub fn record_stage(&self, stage: StageMetrics) {
        self.inner.lock().stages.push(stage);
    }

    /// Record the creation of a broadcast variable.
    pub fn record_broadcast(&self) {
        self.inner.lock().broadcasts += 1;
    }

    /// Copy out everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().clone()
    }

    /// Drop all recorded metrics (used between experiment repetitions).
    pub fn reset(&self) {
        let mut g = self.inner.lock();
        g.stages.clear();
        g.broadcasts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, tasks: usize, shuffle: u64) -> StageMetrics {
        StageMetrics {
            name: name.to_string(),
            tasks,
            input_records: 10,
            output_records: 10,
            shuffle_records: shuffle,
            wall_time: Duration::from_millis(5),
        }
    }

    #[test]
    fn snapshot_aggregates() {
        let m = ExecutionMetrics::default();
        m.record_stage(stage("map", 4, 0));
        m.record_stage(stage("group_by_key", 8, 40));
        m.record_broadcast();
        let s = m.snapshot();
        assert_eq!(s.stages.len(), 2);
        assert_eq!(s.total_tasks(), 12);
        assert_eq!(s.total_shuffle_records(), 40);
        assert_eq!(s.broadcasts, 1);
        assert_eq!(s.total_wall_time(), Duration::from_millis(10));
    }

    #[test]
    fn reset_clears_everything() {
        let m = ExecutionMetrics::default();
        m.record_stage(stage("map", 1, 0));
        m.record_broadcast();
        m.reset();
        let s = m.snapshot();
        assert!(s.stages.is_empty());
        assert_eq!(s.broadcasts, 0);
    }

    #[test]
    fn clones_share_the_sink() {
        let m = ExecutionMetrics::default();
        let m2 = m.clone();
        m2.record_stage(stage("map", 1, 0));
        assert_eq!(m.snapshot().stages.len(), 1);
    }
}
