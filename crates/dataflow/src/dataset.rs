//! Partitioned datasets: narrow and wide (shuffle) operators plus actions.

use crate::context::Context;
use crate::metrics::StageMetrics;
use crate::partition_for;
use crate::pool::StageStats;
use crate::spill::{SpillCodec, SpilledBuckets};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;
use std::time::Instant;

/// An eagerly evaluated, immutable, partitioned collection.
///
/// `Dataset` mirrors Spark's RDD: transformations produce new datasets and
/// run as parallel stages on the owning [`Context`]'s worker pool. Unlike
/// Spark, evaluation is eager — every operator call is one stage — which
/// keeps the engine simple and makes per-stage metrics trivially exact.
///
/// Partitions are reference-counted, so cheap operations like
/// [`Dataset::union`] never copy data. Wide (shuffle) operators **consume**
/// the dataset: when a partition's reference count is 1 — the common case
/// of a freshly produced intermediate — its records are *moved* through the
/// shuffle instead of cloned. Keep a `.clone()` (cheap: `Arc` bumps) if you
/// need the input again.
pub struct Dataset<T> {
    ctx: Context,
    parts: Vec<Arc<Vec<T>>>,
}

/// A dataset of key–value pairs; all keyed (shuffle) operators live on this
/// shape. This is a type alias — any `Dataset<(K, V)>` has the keyed API.
pub type KeyedDataset<K, V> = Dataset<(K, V)>;

impl<T> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Dataset {
            ctx: self.ctx.clone(),
            parts: self.parts.clone(),
        }
    }
}

/// Push one completed stage into the context's metrics sink.
#[allow(clippy::too_many_arguments)]
fn record_stage(
    ctx: &Context,
    name: &str,
    tasks: usize,
    input_records: u64,
    output_records: u64,
    shuffle_records: u64,
    t0: Instant,
    stats: StageStats,
) {
    record_stage_buffered(
        ctx,
        name,
        tasks,
        input_records,
        output_records,
        shuffle_records,
        0,
        t0,
        stats,
    );
}

/// [`record_stage`] for operators that account their shuffle buffers
/// against the context's memory budget.
#[allow(clippy::too_many_arguments)]
fn record_stage_buffered(
    ctx: &Context,
    name: &str,
    tasks: usize,
    input_records: u64,
    output_records: u64,
    shuffle_records: u64,
    buffered_bytes: u64,
    t0: Instant,
    stats: StageStats,
) {
    ctx.metrics_sink().record_stage(StageMetrics {
        name: name.to_string(),
        tasks,
        input_records,
        output_records,
        shuffle_records,
        buffered_bytes,
        wall_time: t0.elapsed(),
        busy_time: stats.busy_time,
        queue_wait: stats.queue_wait,
        per_worker_busy: stats.per_worker_busy,
    });
}

impl<T: Send + Sync> Dataset<T> {
    pub(crate) fn from_parts(ctx: Context, parts: Vec<Arc<Vec<T>>>) -> Self {
        debug_assert!(!parts.is_empty());
        Dataset { ctx, parts }
    }

    /// The context this dataset executes on.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Record count per partition, in partition order.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.parts.iter().map(|p| p.len()).collect()
    }

    /// Total number of records (an action; computed without a stage).
    pub fn count(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// `true` if the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    fn record_stage(
        &self,
        name: &str,
        output_records: u64,
        shuffle_records: u64,
        t0: Instant,
        stats: StageStats,
    ) {
        record_stage(
            &self.ctx,
            name,
            self.parts.len(),
            self.count() as u64,
            output_records,
            shuffle_records,
            t0,
            stats,
        );
    }

    /// Run one narrow stage: `f(partition_index, partition) -> new partition`.
    fn narrow_stage<U, F>(&self, name: &str, f: F) -> Dataset<U>
    where
        U: Send + Sync,
        F: Fn(usize, &[T]) -> Vec<U> + Send + Sync,
    {
        let t0 = Instant::now();
        let (out, stats) = self
            .ctx
            .pool()
            .run_with_stats(self.parts.len(), |i| f(i, self.parts[i].as_slice()));
        let produced: u64 = out.iter().map(|p| p.len() as u64).sum();
        self.record_stage(name, produced, 0, t0, stats);
        Dataset::from_parts(self.ctx.clone(), out.into_iter().map(Arc::new).collect())
    }

    /// Narrow stage that consumes the dataset: each partition is *moved*
    /// into `f` when this dataset holds the only reference to it (the owned
    /// fast path), and copied only when the partition is shared.
    fn narrow_stage_owned<U, F>(self, name: &str, f: F) -> Dataset<U>
    where
        T: Clone,
        U: Send + Sync,
        F: Fn(Vec<T>) -> Vec<U> + Send + Sync,
    {
        let t0 = Instant::now();
        let Dataset { ctx, parts } = self;
        let tasks = parts.len();
        let input: u64 = parts.iter().map(|p| p.len() as u64).sum();
        let (out, stats) = ctx.pool().run_owned(parts, |_, part| {
            f(match Arc::try_unwrap(part) {
                Ok(owned) => owned,
                Err(shared) => shared.to_vec(),
            })
        });
        let produced: u64 = out.iter().map(|p| p.len() as u64).sum();
        record_stage(&ctx, name, tasks, input, produced, 0, t0, stats);
        Dataset::from_parts(ctx, out.into_iter().map(Arc::new).collect())
    }

    /// Apply `f` to every record.
    pub fn map<U, F>(&self, f: F) -> Dataset<U>
    where
        U: Send + Sync,
        F: Fn(&T) -> U + Send + Sync,
    {
        self.narrow_stage("map", |_, p| p.iter().map(&f).collect())
    }

    /// Apply `f` to every record and flatten the results.
    pub fn flat_map<U, I, F>(&self, f: F) -> Dataset<U>
    where
        U: Send + Sync,
        I: IntoIterator<Item = U>,
        F: Fn(&T) -> I + Send + Sync,
    {
        self.narrow_stage("flat_map", |_, p| p.iter().flat_map(&f).collect())
    }

    /// Transform whole partitions at once (`f(partition_index, records)`).
    pub fn map_partitions<U, F>(&self, f: F) -> Dataset<U>
    where
        U: Send + Sync,
        F: Fn(usize, &[T]) -> Vec<U> + Send + Sync,
    {
        self.narrow_stage("map_partitions", f)
    }

    /// Morsel-granular narrow stage: split every partition into contiguous
    /// runs of at most `grain` records and make each run its own pool task,
    /// claimed dynamically off the stage's atomic counter.
    ///
    /// With one task per partition (`map_partitions`), a stage's wall-clock
    /// is the *heaviest partition*; with morsels it tracks *total work*,
    /// because a worker that finishes a cheap morsel immediately claims the
    /// next one — the standard morsel-driven remedy for skew. `f` receives
    /// the executing **worker slot** (stable in `0..ctx.workers()`, one task
    /// per slot at a time) so callers can reuse per-worker scratch state
    /// (see [`crate::WorkerLocal`]) across morsels.
    ///
    /// Output is deterministic: morsel results are written to slots and
    /// re-concatenated per input partition in record order, so the result
    /// equals `map_partitions` applied to the same per-record function —
    /// only the schedule changes, never the order.
    pub fn map_morsels<U, F>(&self, grain: usize, f: F) -> Dataset<U>
    where
        U: Send + Sync,
        F: Fn(usize, &[T]) -> Vec<U> + Send + Sync,
    {
        self.map_morsels_named("map_morsels", grain, f)
    }

    /// [`Dataset::map_morsels`] recorded under an explicit stage name, so
    /// pipeline-level operators (entity matching, clustering) appear as
    /// their own stages in [`crate::MetricsSnapshot`] instead of an
    /// anonymous `map_morsels` entry.
    pub fn map_morsels_named<U, F>(&self, name: &str, grain: usize, f: F) -> Dataset<U>
    where
        U: Send + Sync,
        F: Fn(usize, &[T]) -> Vec<U> + Send + Sync,
    {
        let grain = grain.max(1);
        let t0 = Instant::now();
        // Morsel descriptors, partition-major: (partition, start, end).
        // Ceil-divide within each partition so morsel sizes differ by ≤ 1.
        let mut morsels: Vec<(usize, usize, usize)> = Vec::new();
        let mut morsels_per_part: Vec<usize> = Vec::with_capacity(self.parts.len());
        for (p, part) in self.parts.iter().enumerate() {
            let count = part.len().div_ceil(grain).max(1);
            morsels_per_part.push(count);
            let base = part.len() / count;
            let extra = part.len() % count;
            let mut start = 0usize;
            for m in 0..count {
                let end = start + base + usize::from(m < extra);
                morsels.push((p, start, end));
                start = end;
            }
        }
        let (out, stats) = self.ctx.pool().run_on_workers(morsels.len(), |worker, t| {
            let (p, start, end) = morsels[t];
            f(worker, &self.parts[p][start..end])
        });
        let produced: u64 = out.iter().map(|m| m.len() as u64).sum();
        let mut parts: Vec<Vec<U>> = Vec::with_capacity(self.parts.len());
        let mut it = out.into_iter();
        for count in morsels_per_part {
            let mut merged: Vec<U> = Vec::new();
            for chunk in it.by_ref().take(count) {
                if merged.is_empty() {
                    merged = chunk;
                } else {
                    merged.extend(chunk);
                }
            }
            parts.push(merged);
        }
        record_stage(
            &self.ctx,
            name,
            morsels.len(),
            self.count() as u64,
            produced,
            0,
            t0,
            stats,
        );
        Dataset::from_parts(self.ctx.clone(), parts.into_iter().map(Arc::new).collect())
    }

    /// Execute `f` once per record for its side effects (an action).
    pub fn for_each<F>(&self, f: F)
    where
        F: Fn(&T) + Send + Sync,
    {
        let t0 = Instant::now();
        let (_, stats) = self.ctx.pool().run_with_stats(self.parts.len(), |i| {
            self.parts[i].iter().for_each(&f);
        });
        self.record_stage("for_each", 0, 0, t0, stats);
    }

    /// Fold all records into one value.
    ///
    /// `combine` must be commutative and associative for the result to be
    /// independent of partitioning; partition-level results are folded in
    /// partition order, so associativity alone suffices for the engine's
    /// determinism guarantee.
    pub fn fold<U, F>(&self, init: U, combine: F) -> U
    where
        U: Clone + Send + Sync,
        T: Clone + Into<U>,
        F: Fn(U, U) -> U + Send + Sync,
    {
        let t0 = Instant::now();
        let (partials, stats) = self.ctx.pool().run_with_stats(self.parts.len(), |i| {
            self.parts[i]
                .iter()
                .fold(init.clone(), |acc, x| combine(acc, x.clone().into()))
        });
        self.record_stage("fold", 1, 0, t0, stats);
        partials.into_iter().fold(init, combine)
    }

    /// Combine all records with `f`; `None` when empty.
    pub fn reduce<F>(&self, f: F) -> Option<T>
    where
        T: Clone,
        F: Fn(T, T) -> T + Send + Sync,
    {
        let t0 = Instant::now();
        let (partials, stats) = self.ctx.pool().run_with_stats(self.parts.len(), |i| {
            self.parts[i].iter().cloned().reduce(&f)
        });
        self.record_stage("reduce", 1, 0, t0, stats);
        partials.into_iter().flatten().reduce(f)
    }

    /// Keep only records matching the predicate.
    pub fn filter<F>(&self, pred: F) -> Dataset<T>
    where
        T: Clone,
        F: Fn(&T) -> bool + Send + Sync,
    {
        self.narrow_stage("filter", |_, p| {
            p.iter().filter(|x| pred(x)).cloned().collect()
        })
    }

    /// Gather all records to the caller in partition order.
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.count());
        for p in &self.parts {
            out.extend(p.iter().cloned());
        }
        out
    }

    /// Consume the dataset and return its partitions as owned vectors, in
    /// partition order. Uniquely held partitions (the common case of a
    /// fresh intermediate) are moved out without copying; shared ones are
    /// cloned. Used where the partition boundaries themselves carry meaning
    /// — e.g. merging per-partition result shards shard-by-shard.
    pub fn into_partitions(self) -> Vec<Vec<T>>
    where
        T: Clone,
    {
        self.parts
            .into_iter()
            .map(|p| match Arc::try_unwrap(p) {
                Ok(owned) => owned,
                Err(shared) => shared.to_vec(),
            })
            .collect()
    }

    /// Pair every record with its global index (partition-order positions).
    pub fn zip_with_index(&self) -> Dataset<(T, u64)>
    where
        T: Clone,
    {
        let mut offsets = Vec::with_capacity(self.parts.len());
        let mut acc = 0u64;
        for p in &self.parts {
            offsets.push(acc);
            acc += p.len() as u64;
        }
        self.narrow_stage("zip_with_index", move |i, p| {
            p.iter()
                .cloned()
                .enumerate()
                .map(|(j, x)| (x, offsets[i] + j as u64))
                .collect()
        })
    }

    /// Concatenate two datasets (no data movement; partitions are shared).
    pub fn union(&self, other: &Dataset<T>) -> Dataset<T> {
        let mut parts = self.parts.clone();
        parts.extend(other.parts.iter().cloned());
        Dataset::from_parts(self.ctx.clone(), parts)
    }

    /// Redistribute records over `n` partitions, preserving global order
    /// (contiguous ranges, like [`Context::parallelize`]).
    pub fn repartition(&self, n: usize) -> Dataset<T>
    where
        T: Clone,
    {
        let t0 = Instant::now();
        let all = self.collect();
        let moved = all.len() as u64;
        let out = self.ctx.parallelize(all, n.max(1));
        self.record_stage("repartition", moved, moved, t0, StageStats::default());
        out
    }

    /// Key every record with `key_fn`, keeping the record as the value.
    pub fn key_by<K, F>(&self, key_fn: F) -> Dataset<(K, T)>
    where
        K: Send + Sync,
        T: Clone,
        F: Fn(&T) -> K + Send + Sync,
    {
        self.narrow_stage("key_by", |_, p| {
            p.iter().map(|x| (key_fn(x), x.clone())).collect()
        })
    }

    /// Remove duplicate records (hash shuffle so equal records meet).
    ///
    /// Consumes the dataset; when partitions are uniquely owned no record
    /// is cloned anywhere in the pipeline.
    pub fn distinct(self) -> Dataset<T>
    where
        T: Clone + Hash + Eq,
    {
        self.narrow_stage_owned("map", |p| {
            p.into_iter().map(|x| (x, ())).collect::<Vec<_>>()
        })
        .group_by_key()
        .narrow_stage_owned("distinct", |p| p.into_iter().map(|(k, _)| k).collect())
    }

    /// Total order sort by a key function (driver-side merge, like a 1-stage
    /// `sortBy`); output is range-partitioned over the current partition
    /// count.
    pub fn sort_by<K, F>(&self, key_fn: F) -> Dataset<T>
    where
        T: Clone,
        K: Ord,
        F: Fn(&T) -> K + Send + Sync,
    {
        let t0 = Instant::now();
        let mut all = self.collect();
        all.sort_by_key(|a| key_fn(a));
        let moved = all.len() as u64;
        let out = self.ctx.parallelize(all, self.parts.len());
        self.record_stage("sort_by", moved, moved, t0, StageStats::default());
        out
    }

    /// Deterministic Bernoulli sample: keeps each record with probability
    /// `fraction`, decided by a hash of `(seed, global index)`.
    pub fn sample(&self, seed: u64, fraction: f64) -> Dataset<T>
    where
        T: Clone,
    {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "sample fraction must be in [0, 1], got {fraction}"
        );
        let threshold = (fraction * u64::MAX as f64) as u64;
        self.zip_with_index().narrow_stage("sample", move |_, p| {
            p.iter()
                .filter(|(_, idx)| {
                    splitmix64(seed ^ idx.wrapping_mul(0x9E3779B97F4A7C15)) <= threshold
                })
                .map(|(x, _)| x.clone())
                .collect()
        })
    }
}

impl<T: Send + Sync> Dataset<T> {
    /// First `n` records in partition order (an action).
    pub fn take(&self, n: usize) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(n.min(self.count()));
        for p in &self.parts {
            for x in p.iter() {
                if out.len() == n {
                    return out;
                }
                out.push(x.clone());
            }
        }
        out
    }

    /// The first record, if any.
    pub fn first(&self) -> Option<T>
    where
        T: Clone,
    {
        self.take(1).into_iter().next()
    }

    /// Record with the maximum key (first such record in partition order on
    /// ties).
    pub fn max_by_key<K, F>(&self, key_fn: F) -> Option<T>
    where
        T: Clone,
        K: Ord + Send,
        F: Fn(&T) -> K + Send + Sync,
    {
        let partials: Vec<Option<T>> = self.ctx.pool().run(self.parts.len(), |i| {
            self.parts[i]
                .iter()
                .max_by(|a, b| key_fn(a).cmp(&key_fn(b)).then(std::cmp::Ordering::Greater))
                .cloned()
        });
        partials
            .into_iter()
            .flatten()
            .max_by(|a, b| key_fn(a).cmp(&key_fn(b)).then(std::cmp::Ordering::Greater))
    }

    /// Record with the minimum key (first such record in partition order on
    /// ties).
    pub fn min_by_key<K, F>(&self, key_fn: F) -> Option<T>
    where
        T: Clone,
        K: Ord + Send,
        F: Fn(&T) -> K + Send + Sync,
    {
        self.max_by_key(|x| std::cmp::Reverse(key_fn(x)))
    }
}

/// SplitMix64: cheap, high-quality 64-bit mixer used for sampling decisions.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Keyed (shuffle) operators.
// ---------------------------------------------------------------------------

impl<K, V> Dataset<(K, V)>
where
    K: Clone + Hash + Eq + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Hash-shuffle owned partitions into `n` target buckets.
    ///
    /// Records are routed by `hash(key) % n`; within each target bucket,
    /// records appear in (input partition, input offset) order, which makes
    /// every downstream grouping deterministic. A partition whose `Arc` is
    /// uniquely held is unwrapped and its records *moved* into the buckets;
    /// shared partitions fall back to per-record cloning.
    fn shuffle_parts(
        ctx: &Context,
        parts: Vec<Arc<Vec<(K, V)>>>,
        n: usize,
    ) -> (Vec<Vec<(K, V)>>, StageStats) {
        let n = n.max(1);
        // Map side: bucket each input partition.
        let (bucketed, stats) = ctx.pool().run_owned(parts, |_, part| {
            let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
            match Arc::try_unwrap(part) {
                Ok(owned) => {
                    for (k, v) in owned {
                        let target = partition_for(&k, n);
                        buckets[target].push((k, v));
                    }
                }
                Err(shared) => {
                    for (k, v) in shared.iter() {
                        buckets[partition_for(k, n)].push((k.clone(), v.clone()));
                    }
                }
            }
            buckets
        });
        // Reduce side: concatenate per-target buckets in input order.
        let mut targets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
        for input in bucketed {
            for (j, bucket) in input.into_iter().enumerate() {
                targets[j].extend(bucket);
            }
        }
        (targets, stats)
    }

    /// Group values by key. Keys keep first-seen order inside each output
    /// partition; values keep input order.
    pub fn group_by_key(self) -> Dataset<(K, Vec<V>)> {
        let n = self.ctx.default_partitions();
        self.group_by_key_with(n)
    }

    /// [`Dataset::group_by_key`] with an explicit output partition count.
    pub fn group_by_key_with(self, n: usize) -> Dataset<(K, Vec<V>)> {
        let t0 = Instant::now();
        let Dataset { ctx, parts } = self;
        let tasks = parts.len();
        let input: u64 = parts.iter().map(|p| p.len() as u64).sum();
        let (shuffled, map_stats) = Self::shuffle_parts(&ctx, parts, n);
        let moved: u64 = shuffled.iter().map(|p| p.len() as u64).sum();
        let (grouped, reduce_stats) = ctx
            .pool()
            .run_owned(shuffled, |_, bucket| group_preserving_order(bucket));
        let produced: u64 = grouped.iter().map(|p| p.len() as u64).sum();
        record_stage(
            &ctx,
            "group_by_key",
            tasks,
            input,
            produced,
            moved,
            t0,
            map_stats + reduce_stats,
        );
        Dataset::from_parts(ctx, grouped.into_iter().map(Arc::new).collect())
    }

    /// Hash-shuffle with byte accounting against the context's
    /// [`crate::MemBudget`]: each map task reserves its buckets' exact
    /// encoded size; when the reservation would exceed the budget, that
    /// input partition's buckets are spilled to the run-scoped temp dir in
    /// the [`SpillCodec`] batch format and streamed back on the reduce
    /// side. Routing, intra-bucket order and the input-order concatenation
    /// are identical to [`Dataset::shuffle_parts`], and the codec
    /// round-trip is bit-exact, so the output is byte-identical whether or
    /// not anything spilled — the resident/spilled decision (which depends
    /// on task completion order) only moves bytes between RAM and disk.
    fn shuffle_parts_spillable(
        ctx: &Context,
        parts: Vec<Arc<Vec<(K, V)>>>,
        n: usize,
    ) -> (Vec<Vec<(K, V)>>, StageStats)
    where
        (K, V): SpillCodec,
    {
        let n = n.max(1);
        let budget = ctx.budget().clone();
        enum MapOutput<T> {
            Resident { buckets: Vec<Vec<T>>, bytes: u64 },
            Spilled(SpilledBuckets),
        }
        // Map side: bucket each input partition, then keep it in RAM only
        // if the budget still has room for its bytes.
        let (bucketed, stats) = ctx.pool().run_owned(parts, |_, part| {
            let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
            let mut bytes = 0u64;
            match Arc::try_unwrap(part) {
                Ok(owned) => {
                    for record in owned {
                        bytes += record.encoded_len() as u64;
                        let target = partition_for(&record.0, n);
                        buckets[target].push(record);
                    }
                }
                Err(shared) => {
                    for (k, v) in shared.iter() {
                        let record = (k.clone(), v.clone());
                        bytes += record.encoded_len() as u64;
                        let target = partition_for(&record.0, n);
                        buckets[target].push(record);
                    }
                }
            }
            if budget.try_reserve(bytes) {
                MapOutput::Resident { buckets, bytes }
            } else {
                let spilled =
                    SpilledBuckets::write(&budget, &buckets).expect("spill shuffle buckets");
                MapOutput::Spilled(spilled)
            }
        });
        // Reduce side: concatenate per-target buckets in input order,
        // streaming spilled ones back from disk.
        let mut targets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
        for input in bucketed {
            match input {
                MapOutput::Resident { buckets, bytes } => {
                    for (j, bucket) in buckets.into_iter().enumerate() {
                        targets[j].extend(bucket);
                    }
                    budget.release(bytes);
                }
                MapOutput::Spilled(spilled) => {
                    for (j, target) in targets.iter_mut().enumerate() {
                        spilled
                            .read_bucket_into(j, target)
                            .expect("read spilled shuffle bucket");
                    }
                }
            }
        }
        (targets, stats)
    }

    /// [`Dataset::group_by_key`] with spill-to-disk under the context's
    /// memory budget. Byte-identical to the in-RAM operator at any budget
    /// (including when spilling triggers); records the stage under the same
    /// `"group_by_key"` name with its buffered-bytes high-water filled in.
    pub fn group_by_key_spillable(self) -> Dataset<(K, Vec<V>)>
    where
        (K, V): SpillCodec,
    {
        let n = self.ctx.default_partitions();
        self.group_by_key_spillable_with(n)
    }

    /// [`Dataset::group_by_key_spillable`] with an explicit output
    /// partition count.
    pub fn group_by_key_spillable_with(self, n: usize) -> Dataset<(K, Vec<V>)>
    where
        (K, V): SpillCodec,
    {
        let t0 = Instant::now();
        let Dataset { ctx, parts } = self;
        let tasks = parts.len();
        let input: u64 = parts.iter().map(|p| p.len() as u64).sum();
        let budget = ctx.budget().clone();
        budget.begin_op();
        let (shuffled, map_stats) = Self::shuffle_parts_spillable(&ctx, parts, n);
        let moved: u64 = shuffled.iter().map(|p| p.len() as u64).sum();
        let (grouped, reduce_stats) = ctx
            .pool()
            .run_owned(shuffled, |_, bucket| group_preserving_order(bucket));
        let produced: u64 = grouped.iter().map(|p| p.len() as u64).sum();
        record_stage_buffered(
            &ctx,
            "group_by_key",
            tasks,
            input,
            produced,
            moved,
            budget.op_high_water(),
            t0,
            map_stats + reduce_stats,
        );
        Dataset::from_parts(ctx, grouped.into_iter().map(Arc::new).collect())
    }

    /// Merge values per key with map-side combining (Spark `reduceByKey`).
    ///
    /// `combine` must be associative; commutativity is not required because
    /// values are combined in deterministic input order.
    pub fn reduce_by_key<F>(self, combine: F) -> Dataset<(K, V)>
    where
        F: Fn(V, &V) -> V + Send + Sync,
    {
        let n = self.ctx.default_partitions();
        self.reduce_by_key_with(n, combine)
    }

    /// [`Dataset::reduce_by_key`] with an explicit output partition count.
    pub fn reduce_by_key_with<F>(self, n: usize, combine: F) -> Dataset<(K, V)>
    where
        F: Fn(V, &V) -> V + Send + Sync,
    {
        let t0 = Instant::now();
        let Dataset { ctx, parts } = self;
        let tasks = parts.len();
        let input: u64 = parts.iter().map(|p| p.len() as u64).sum();
        let fold_group = |(k, vs): (K, Vec<V>)| {
            let mut it = vs.into_iter();
            let first = it.next().expect("group is never empty");
            (k, it.fold(first, |acc, v| combine(acc, &v)))
        };
        // Map-side combine shrinks the shuffle.
        let (combined, pre_stats) = ctx.pool().run_owned(parts, |_, part| {
            let pairs = match Arc::try_unwrap(part) {
                Ok(owned) => owned,
                Err(shared) => shared.to_vec(),
            };
            group_preserving_order(pairs)
                .into_iter()
                .map(&fold_group)
                .collect::<Vec<(K, V)>>()
        });
        // The combined partitions are freshly built, so wrapping them in new
        // `Arc`s keeps the shuffle on the owned (move) path.
        let (shuffled, map_stats) =
            Self::shuffle_parts(&ctx, combined.into_iter().map(Arc::new).collect(), n);
        let moved: u64 = shuffled.iter().map(|p| p.len() as u64).sum();
        let (reduced, reduce_stats) = ctx.pool().run_owned(shuffled, |_, bucket| {
            group_preserving_order(bucket)
                .into_iter()
                .map(&fold_group)
                .collect::<Vec<(K, V)>>()
        });
        let produced: u64 = reduced.iter().map(|p| p.len() as u64).sum();
        record_stage(
            &ctx,
            "reduce_by_key",
            tasks,
            input,
            produced,
            moved,
            t0,
            pre_stats + map_stats + reduce_stats,
        );
        Dataset::from_parts(ctx, reduced.into_iter().map(Arc::new).collect())
    }

    /// Count records per key.
    pub fn count_by_key(&self) -> Dataset<(K, u64)> {
        self.map(|(k, _)| (k.clone(), 1u64))
            .reduce_by_key(|a, b| a + *b)
    }

    /// Keys only, in partition order (with duplicates).
    pub fn keys(&self) -> Dataset<K> {
        self.map(|(k, _)| k.clone())
    }

    /// Values only, in partition order.
    pub fn values(&self) -> Dataset<V> {
        self.map(|(_, v)| v.clone())
    }

    /// Transform values, keeping keys (no shuffle).
    pub fn map_values<W, F>(&self, f: F) -> Dataset<(K, W)>
    where
        W: Send + Sync,
        F: Fn(&V) -> W + Send + Sync,
    {
        self.narrow_stage("map_values", |_, p| {
            p.iter().map(|(k, v)| (k.clone(), f(v))).collect()
        })
    }

    /// Group this dataset and `other` by key simultaneously.
    ///
    /// Output contains one record per key appearing in either side, in
    /// first-seen order (all of `self`'s records before `other`'s within
    /// each target partition).
    #[allow(clippy::type_complexity)]
    pub fn cogroup<W>(self, other: &Dataset<(K, W)>) -> Dataset<(K, (Vec<V>, Vec<W>))>
    where
        W: Clone + Send + Sync,
    {
        let n = self.ctx.default_partitions();
        let t0 = Instant::now();
        let Dataset { ctx, parts } = self;
        let tasks = parts.len().max(other.parts.len());
        let input: u64 = parts.iter().map(|p| p.len() as u64).sum::<u64>() + other.count() as u64;
        let (left, left_stats) = Self::shuffle_parts(&ctx, parts, n);
        let (right, right_stats) = Dataset::<(K, W)>::shuffle_parts(&ctx, other.parts.clone(), n);
        let moved: u64 = left.iter().map(|p| p.len() as u64).sum::<u64>()
            + right.iter().map(|p| p.len() as u64).sum::<u64>();
        let zipped: Vec<(Vec<(K, V)>, Vec<(K, W)>)> = left.into_iter().zip(right).collect();
        let (merged, merge_stats) = ctx.pool().run_owned(zipped, |_, (lv, rv)| {
            let mut index: HashMap<K, usize> = HashMap::new();
            let mut out: Vec<(K, (Vec<V>, Vec<W>))> = Vec::new();
            for (k, v) in lv {
                let slot = *index.entry(k.clone()).or_insert_with(|| {
                    out.push((k, (Vec::new(), Vec::new())));
                    out.len() - 1
                });
                out[slot].1 .0.push(v);
            }
            for (k, w) in rv {
                let slot = *index.entry(k.clone()).or_insert_with(|| {
                    out.push((k, (Vec::new(), Vec::new())));
                    out.len() - 1
                });
                out[slot].1 .1.push(w);
            }
            out
        });
        let produced: u64 = merged.iter().map(|p| p.len() as u64).sum();
        record_stage(
            &ctx,
            "cogroup",
            tasks,
            input,
            produced,
            moved,
            t0,
            left_stats + right_stats + merge_stats,
        );
        Dataset::from_parts(ctx, merged.into_iter().map(Arc::new).collect())
    }

    /// Inner join on key: one output record per (left value, right value)
    /// pair of a shared key.
    pub fn join<W>(self, other: &Dataset<(K, W)>) -> Dataset<(K, (V, W))>
    where
        W: Clone + Send + Sync,
    {
        self.cogroup(other).narrow_stage_owned("join", |p| {
            let mut out = Vec::new();
            for (k, (vs, ws)) in p {
                for v in vs {
                    for w in &ws {
                        out.push((k.clone(), (v.clone(), w.clone())));
                    }
                }
            }
            out
        })
    }

    /// Left outer join: every left record appears at least once; the right
    /// side is `None` when the key has no match.
    pub fn left_outer_join<W>(self, other: &Dataset<(K, W)>) -> Dataset<(K, (V, Option<W>))>
    where
        W: Clone + Send + Sync,
    {
        self.cogroup(other)
            .narrow_stage_owned("left_outer_join", |p| {
                let mut out = Vec::new();
                for (k, (vs, ws)) in p {
                    for v in vs {
                        if ws.is_empty() {
                            out.push((k.clone(), (v.clone(), None)));
                        } else {
                            for w in &ws {
                                out.push((k.clone(), (v.clone(), Some(w.clone()))));
                            }
                        }
                    }
                }
                out
            })
    }

    /// Hash-partition by key into `n` partitions (no grouping); used to
    /// co-partition datasets before node-local algorithms.
    pub fn partition_by_key(self, n: usize) -> Dataset<(K, V)> {
        let t0 = Instant::now();
        let Dataset { ctx, parts } = self;
        let tasks = parts.len();
        let input: u64 = parts.iter().map(|p| p.len() as u64).sum();
        let (shuffled, stats) = Self::shuffle_parts(&ctx, parts, n);
        let moved: u64 = shuffled.iter().map(|p| p.len() as u64).sum();
        record_stage(
            &ctx,
            "partition_by_key",
            tasks,
            input,
            moved,
            moved,
            t0,
            stats,
        );
        Dataset::from_parts(ctx, shuffled.into_iter().map(Arc::new).collect())
    }

    /// Collect into a `HashMap`, keeping the **last** value per key
    /// (matching Spark's `collectAsMap`).
    pub fn collect_as_map(&self) -> HashMap<K, V> {
        let mut out = HashMap::with_capacity(self.count());
        for p in &self.parts {
            for (k, v) in p.iter() {
                out.insert(k.clone(), v.clone());
            }
        }
        out
    }
}

/// Group `(K, V)` pairs preserving first-seen key order and input value
/// order — the deterministic grouping kernel shared by the shuffle
/// operators.
fn group_preserving_order<K: Hash + Eq, V>(pairs: Vec<(K, V)>) -> Vec<(K, Vec<V>)> {
    // First pass: assign every record a group slot, borrowing the keys so
    // no key is cloned.
    let mut index: HashMap<&K, usize> = HashMap::with_capacity(pairs.len());
    let mut slots: Vec<usize> = Vec::with_capacity(pairs.len());
    let mut num_groups = 0usize;
    for (k, _) in &pairs {
        let slot = *index.entry(k).or_insert_with(|| {
            let s = num_groups;
            num_groups += 1;
            s
        });
        slots.push(slot);
    }
    drop(index);
    // Second pass: move keys and values into their groups.
    let mut out: Vec<Option<(K, Vec<V>)>> = (0..num_groups).map(|_| None).collect();
    for ((k, v), slot) in pairs.into_iter().zip(slots) {
        match &mut out[slot] {
            Some((_, vs)) => vs.push(v),
            empty => *empty = Some((k, vec![v])),
        }
    }
    out.into_iter()
        .map(|g| g.expect("every group slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    fn ctx() -> Context {
        Context::with_partitions(4, 5)
    }

    #[test]
    fn map_and_collect() {
        let ds = ctx().parallelize((1..=6).collect::<Vec<i64>>(), 3);
        assert_eq!(ds.map(|x| x * 10).collect(), vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn flat_map_flattens_in_order() {
        let ds = ctx().parallelize(vec![1, 2, 3], 2);
        let out = ds.flat_map(|x| vec![*x; *x as usize]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn filter_keeps_order() {
        let ds = ctx().parallelize((0..20).collect::<Vec<_>>(), 4);
        assert_eq!(ds.filter(|x| x % 5 == 0).collect(), vec![0, 5, 10, 15]);
    }

    #[test]
    fn map_partitions_sees_partition_index() {
        let ds = ctx().parallelize(vec![(); 8], 4);
        let out = ds.map_partitions(|i, p| vec![(i, p.len())]).collect();
        assert_eq!(out, vec![(0, 2), (1, 2), (2, 2), (3, 2)]);
    }

    #[test]
    fn fold_sums() {
        let ds = ctx().parallelize((1..=100).collect::<Vec<u64>>(), 7);
        assert_eq!(ds.fold(0u64, |a, b| a + b), 5050);
    }

    #[test]
    fn reduce_empty_is_none() {
        let ds: Dataset<u64> = ctx().empty();
        assert_eq!(ds.reduce(|a, b| a + b), None);
    }

    #[test]
    fn reduce_max() {
        let ds = ctx().parallelize(vec![3, 9, 1, 7, 5], 3);
        assert_eq!(ds.reduce(|a, b| a.max(b)), Some(9));
    }

    #[test]
    fn group_by_key_groups_all_values_deterministically() {
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (i % 7, i)).collect();
        let ds = ctx().parallelize(pairs, 6);
        let grouped = ds.group_by_key();
        let mut out = grouped.collect();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out.len(), 7);
        for (k, vs) in &out {
            let expected: Vec<u32> = (0..100).filter(|i| i % 7 == *k).collect();
            assert_eq!(vs, &expected, "values for key {k} keep input order");
        }
        // Same result regardless of worker count.
        let seq = Context::with_partitions(1, 5)
            .parallelize((0..100).map(|i| (i % 7, i)).collect(), 6)
            .group_by_key()
            .collect();
        assert_eq!(grouped.collect(), seq);
    }

    #[test]
    fn spillable_group_by_key_matches_plain_when_spilling() {
        use crate::MemBudget;
        // A budget far below the data size: every map task must spill.
        let budget = MemBudget::limited(64);
        let c = Context::with_partitions(4, 5).with_budget(budget.clone());
        let pairs: Vec<(String, u64)> = (0..200).map(|i| (format!("key-{}", i % 11), i)).collect();
        let plain = c.parallelize(pairs.clone(), 6).group_by_key().collect();
        let spilled = c.parallelize(pairs, 6).group_by_key_spillable().collect();
        assert_eq!(spilled, plain);
        assert!(budget.spill_batches() > 0, "tiny budget forces spilling");
        assert!(budget.spilled_bytes() > 0);
        assert_eq!(budget.tracked_bytes(), 0, "all reservations released");
    }

    #[test]
    fn spillable_group_by_key_stays_resident_when_unlimited() {
        use crate::MemBudget;
        let budget = MemBudget::unlimited();
        let c = Context::with_partitions(4, 5).with_budget(budget.clone());
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (i % 7, i)).collect();
        let grouped = c.parallelize(pairs, 6).group_by_key_spillable().collect();
        assert_eq!(grouped.len(), 7);
        assert_eq!(budget.spill_batches(), 0, "unlimited never spills");
        assert!(
            budget.run_high_water() > 0,
            "buffered bytes are tracked even without a limit"
        );
        assert_eq!(budget.tracked_bytes(), 0);
        // The stage row carries the buffered high-water under the plain
        // operator name.
        let snap = c.metrics();
        let stage = snap
            .stages
            .iter()
            .find(|s| s.name == "group_by_key")
            .expect("stage recorded");
        assert_eq!(stage.buffered_bytes, budget.run_high_water());
    }

    #[test]
    fn reduce_by_key_matches_group_then_fold() {
        let pairs: Vec<(String, u64)> = (0..50).map(|i| (format!("k{}", i % 4), i)).collect();
        let ds = ctx().parallelize(pairs, 5);
        let mut reduced = ds.reduce_by_key(|a, b| a + b).collect();
        reduced.sort();
        let mut expected: HashMap<String, u64> = HashMap::new();
        for i in 0..50u64 {
            *expected.entry(format!("k{}", i % 4)).or_default() += i;
        }
        let mut expected: Vec<(String, u64)> = expected.into_iter().collect();
        expected.sort();
        assert_eq!(reduced, expected);
    }

    #[test]
    fn count_by_key_counts() {
        let ds = ctx().parallelize(vec![("a", 1), ("b", 2), ("a", 3)], 2);
        let m = ds.count_by_key().collect_as_map();
        assert_eq!(m[&"a"], 2);
        assert_eq!(m[&"b"], 1);
    }

    #[test]
    fn join_produces_cross_product_per_key() {
        let c = ctx();
        let left = c.parallelize(vec![(1, "a"), (1, "b"), (2, "c")], 2);
        let right = c.parallelize(vec![(1, 10), (2, 20), (2, 30), (3, 99)], 2);
        let mut out = left.join(&right).collect();
        out.sort();
        assert_eq!(
            out,
            vec![
                (1, ("a", 10)),
                (1, ("b", 10)),
                (2, ("c", 20)),
                (2, ("c", 30))
            ]
        );
    }

    #[test]
    fn left_outer_join_keeps_unmatched_left() {
        let c = ctx();
        let left = c.parallelize(vec![(1, "a"), (4, "d")], 2);
        let right = c.parallelize(vec![(1, 10)], 1);
        let mut out = left.left_outer_join(&right).collect();
        out.sort();
        assert_eq!(out, vec![(1, ("a", Some(10))), (4, ("d", None))]);
    }

    #[test]
    fn cogroup_covers_keys_on_either_side() {
        let c = ctx();
        let left = c.parallelize(vec![(1, 'x')], 1);
        let right = c.parallelize(vec![(2, 'y')], 1);
        let mut out = left.cogroup(&right).collect();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(
            out,
            vec![(1, (vec!['x'], vec![])), (2, (vec![], vec!['y']))]
        );
    }

    #[test]
    fn distinct_removes_duplicates() {
        let ds = ctx().parallelize(vec![1, 2, 2, 3, 3, 3, 1], 3);
        let mut out = ds.distinct().collect();
        out.sort();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn union_concatenates() {
        let c = ctx();
        let a = c.parallelize(vec![1, 2], 1);
        let b = c.parallelize(vec![3], 1);
        assert_eq!(a.union(&b).collect(), vec![1, 2, 3]);
        assert_eq!(a.union(&b).num_partitions(), 2);
    }

    #[test]
    fn sort_by_total_order() {
        let ds = ctx().parallelize(vec![5, 3, 9, 1, 7], 3);
        assert_eq!(ds.sort_by(|x| *x).collect(), vec![1, 3, 5, 7, 9]);
        assert_eq!(
            ds.sort_by(|x| std::cmp::Reverse(*x)).collect(),
            vec![9, 7, 5, 3, 1]
        );
    }

    #[test]
    fn zip_with_index_is_global() {
        let ds = ctx().parallelize(vec!["a", "b", "c", "d"], 3);
        assert_eq!(
            ds.zip_with_index().collect(),
            vec![("a", 0), ("b", 1), ("c", 2), ("d", 3)]
        );
    }

    #[test]
    fn repartition_preserves_order() {
        let ds = ctx().parallelize((0..10).collect::<Vec<_>>(), 2);
        let rp = ds.repartition(5);
        assert_eq!(rp.num_partitions(), 5);
        assert_eq!(rp.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn key_by_pairs_records_with_keys() {
        let ds = ctx().parallelize(vec!["apple", "banana"], 1);
        assert_eq!(
            ds.key_by(|s| s.len()).collect(),
            vec![(5, "apple"), (6, "banana")]
        );
    }

    #[test]
    fn map_values_keeps_keys() {
        let ds = ctx().parallelize(vec![(1, 2), (3, 4)], 2);
        assert_eq!(ds.map_values(|v| v * v).collect(), vec![(1, 4), (3, 16)]);
    }

    #[test]
    fn sample_is_deterministic_and_roughly_sized() {
        let ds = ctx().parallelize((0..10_000).collect::<Vec<_>>(), 8);
        let s1 = ds.sample(42, 0.1).collect();
        let s2 = ds.sample(42, 0.1).collect();
        assert_eq!(s1, s2);
        assert!(
            (800..1200).contains(&s1.len()),
            "expected ~1000 samples, got {}",
            s1.len()
        );
        let s3 = ds.sample(43, 0.1).collect();
        assert_ne!(s1, s3, "different seeds give different samples");
        assert!(ds.sample(7, 0.0).collect().is_empty());
        assert_eq!(ds.sample(7, 1.0).count(), 10_000);
    }

    #[test]
    fn metrics_track_stages_and_shuffles() {
        let c = Context::with_partitions(2, 3);
        let ds = c.parallelize((0..30).map(|i| (i % 5, i)).collect::<Vec<_>>(), 4);
        ds.group_by_key();
        let snap = c.metrics();
        assert_eq!(snap.stages.len(), 1);
        assert_eq!(snap.stages[0].name, "group_by_key");
        assert_eq!(snap.stages[0].shuffle_records, 30);
        assert_eq!(snap.stages[0].output_records, 5);
    }

    #[test]
    fn stage_metrics_include_busy_and_worker_times() {
        let c = Context::with_partitions(2, 3);
        let ds = c.parallelize((0..100_000u64).collect::<Vec<_>>(), 4);
        let total = ds.fold(0u64, |a, b| a.wrapping_add(b));
        assert!(total > 0);
        let snap = c.metrics();
        assert_eq!(snap.stages[0].name, "fold");
        assert!(snap.stages[0].busy_time > Duration::ZERO);
        assert_eq!(
            snap.worker_busy.len(),
            2,
            "one busy counter per worker slot"
        );
        assert!(snap.total_busy_time() > Duration::ZERO);
    }

    /// A value whose clones are counted, to pin the zero-copy fast paths.
    #[derive(Debug)]
    struct Tracked {
        id: u32,
        clones: Arc<AtomicU64>,
    }

    impl PartialEq for Tracked {
        fn eq(&self, other: &Self) -> bool {
            self.id == other.id
        }
    }
    impl Eq for Tracked {}
    impl std::hash::Hash for Tracked {
        fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
            self.id.hash(state);
        }
    }

    impl Clone for Tracked {
        fn clone(&self) -> Self {
            self.clones.fetch_add(1, Ordering::Relaxed);
            Tracked {
                id: self.id,
                clones: Arc::clone(&self.clones),
            }
        }
    }

    fn tracked(n: u32) -> (Vec<Tracked>, Arc<AtomicU64>) {
        let counter = Arc::new(AtomicU64::new(0));
        let items = (0..n)
            .map(|id| Tracked {
                id,
                clones: Arc::clone(&counter),
            })
            .collect();
        (items, counter)
    }

    #[test]
    fn group_by_key_moves_uniquely_owned_partitions() {
        let (items, counter) = tracked(40);
        let pairs: Vec<(u32, Tracked)> = items.into_iter().map(|t| (t.id % 4, t)).collect();
        let grouped = ctx().parallelize(pairs, 4).group_by_key();
        assert_eq!(grouped.count(), 4);
        assert_eq!(
            counter.load(Ordering::Relaxed),
            0,
            "owned fast path must not clone values"
        );
    }

    #[test]
    fn group_by_key_clones_only_when_partitions_are_shared() {
        let (items, counter) = tracked(40);
        let pairs: Vec<(u32, Tracked)> = items.into_iter().map(|t| (t.id % 4, t)).collect();
        let ds = ctx().parallelize(pairs, 4);
        let _kept = ds.clone();
        ds.group_by_key();
        assert_eq!(
            counter.load(Ordering::Relaxed),
            40,
            "shared partitions clone each record exactly once"
        );
    }

    #[test]
    fn distinct_moves_uniquely_owned_partitions() {
        let (items, counter) = tracked(30);
        let out = ctx().parallelize(items, 3).distinct();
        assert_eq!(out.count(), 30);
        assert_eq!(
            counter.load(Ordering::Relaxed),
            0,
            "distinct on owned partitions must not clone records"
        );
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let build = |workers: usize| {
            let c = Context::with_partitions(workers, 7);
            let ds = c.parallelize((0..500u64).map(|i| (i % 13, i)).collect::<Vec<_>>(), 9);
            let grouped = ds.group_by_key().map_values(|v| v.iter().sum::<u64>());
            grouped.sort_by(|(k, _)| *k).collect()
        };
        let base = build(1);
        for w in [2, 4, 8] {
            assert_eq!(build(w), base, "workers={w}");
        }
    }

    #[test]
    fn group_preserving_order_kernel() {
        let groups = group_preserving_order(vec![("b", 1), ("a", 2), ("b", 3)]);
        assert_eq!(groups, vec![("b", vec![1, 3]), ("a", vec![2])]);
    }

    #[test]
    fn take_and_first() {
        let ds = ctx().parallelize((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(ds.take(4), vec![0, 1, 2, 3]);
        assert_eq!(ds.take(0), Vec::<i32>::new());
        assert_eq!(ds.take(100), (0..10).collect::<Vec<_>>());
        assert_eq!(ds.first(), Some(0));
        let empty: Dataset<i32> = ctx().empty();
        assert_eq!(empty.first(), None);
    }

    #[test]
    fn max_min_by_key() {
        let ds = ctx().parallelize(vec![("a", 3), ("b", 9), ("c", 1)], 2);
        assert_eq!(ds.max_by_key(|(_, v)| *v), Some(("b", 9)));
        assert_eq!(ds.min_by_key(|(_, v)| *v), Some(("c", 1)));
        // Ties: first in partition order wins.
        let ties = ctx().parallelize(vec![("x", 5), ("y", 5)], 2);
        assert_eq!(ties.max_by_key(|(_, v)| *v), Some(("x", 5)));
        let empty: Dataset<(u8, u8)> = ctx().empty();
        assert_eq!(empty.max_by_key(|(_, v)| *v), None);
    }

    #[test]
    #[should_panic(expected = "sample fraction")]
    fn sample_rejects_bad_fraction() {
        ctx().parallelize(vec![1], 1).sample(0, 1.5);
    }

    #[test]
    fn into_partitions_preserves_boundaries() {
        let c = Context::new(2);
        let ds = c.parallelize((0..10).collect::<Vec<_>>(), 4);
        let keep = ds.clone(); // shared handle: forces the clone path
        assert_eq!(
            ds.into_partitions(),
            vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7], vec![8, 9]]
        );
        assert_eq!(keep.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn map_morsels_matches_map_partitions() {
        let c = Context::with_partitions(4, 3);
        let ds = c.parallelize((0..103u64).collect::<Vec<_>>(), 3);
        let by_parts = ds.map_partitions(|_, p| p.iter().map(|x| x * 2).collect::<Vec<_>>());
        for grain in [1, 2, 7, 50, 1000] {
            let by_morsels = ds.map_morsels(grain, |_, p| p.iter().map(|x| x * 2).collect());
            assert_eq!(by_morsels.collect(), by_parts.collect(), "grain={grain}");
            assert_eq!(by_morsels.num_partitions(), ds.num_partitions());
            assert_eq!(by_morsels.partition_sizes(), ds.partition_sizes());
        }
    }

    #[test]
    fn map_morsels_records_one_task_per_morsel() {
        let c = Context::with_partitions(2, 2);
        let ds = c.parallelize((0..40u64).collect::<Vec<_>>(), 2);
        c.reset_metrics();
        ds.map_morsels(5, |_, p| p.to_vec());
        let snap = c.metrics();
        assert_eq!(snap.stages[0].name, "map_morsels");
        assert_eq!(snap.stages[0].tasks, 8, "40 records / grain 5");
        assert_eq!(snap.stages[0].per_worker_busy.len(), 2);
    }

    #[test]
    fn map_morsels_named_records_custom_stage_name() {
        let c = Context::with_partitions(2, 2);
        let ds = c.parallelize((0..20u64).collect::<Vec<_>>(), 2);
        c.reset_metrics();
        let out = ds.map_morsels_named("match_candidates", 4, |_, p| p.to_vec());
        let snap = c.metrics();
        assert_eq!(snap.stages[0].name, "match_candidates");
        assert_eq!(out.collect(), (0..20u64).collect::<Vec<_>>());
    }

    #[test]
    fn map_morsels_worker_slots_are_valid() {
        let c = Context::new(4);
        let ds = c.parallelize((0..200u64).collect::<Vec<_>>(), 8);
        let slots = ds.map_morsels(3, |worker, p| vec![worker; p.len()]);
        assert!(slots.collect().iter().all(|&w| w < 4));
    }

    #[test]
    fn map_morsels_empty_partitions_survive() {
        let c = Context::new(2);
        let ds = c.parallelize(vec![1u8, 2], 5);
        let out = ds.map_morsels(4, |_, p| p.to_vec());
        assert_eq!(out.num_partitions(), 5);
        assert_eq!(out.collect(), vec![1, 2]);
    }

    #[test]
    fn map_morsels_identical_across_worker_counts() {
        let run = |workers: usize| {
            let c = Context::with_partitions(workers, 5);
            let ds = c.parallelize((0..301u64).collect::<Vec<_>>(), 5);
            ds.map_morsels(8, |_, p| p.iter().map(|x| x.wrapping_mul(31)).collect())
                .collect()
        };
        let base = run(1);
        for w in [2, 4, 8] {
            assert_eq!(run(w), base, "workers={w}");
        }
    }
}
