//! Worker pool: bounded-parallelism execution of independent tasks.
//!
//! Stages are executed by spawning up to `workers` scoped threads that pull
//! task indices from a shared atomic counter (work stealing by index). Using
//! scoped threads keeps closures free of `'static` bounds, so tasks can
//! borrow stage-local state such as input partitions.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width pool of workers that runs batches of independent tasks.
///
/// The pool itself is stateless between batches; `workers` only bounds the
/// parallelism of each [`WorkerPool::run`] call. Results are returned in task
/// order regardless of completion order, which is one half of the engine's
/// determinism guarantee.
#[derive(Debug)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// Create a pool that runs at most `workers` tasks concurrently.
    ///
    /// `workers == 0` is clamped to 1.
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// Number of concurrent workers used by [`WorkerPool::run`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute `num_tasks` independent tasks and collect their results in
    /// task order.
    ///
    /// `task(i)` is invoked exactly once for every `i in 0..num_tasks`, from
    /// at most `self.workers` threads concurrently. Panics in tasks propagate
    /// to the caller.
    pub fn run<R, F>(&self, num_tasks: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        if num_tasks == 0 {
            return Vec::new();
        }
        // Single-worker (or single-task) fast path: run inline, no threads.
        if self.workers == 1 || num_tasks == 1 {
            return (0..num_tasks).map(&task).collect();
        }

        let next = AtomicUsize::new(0);
        let threads = self.workers.min(num_tasks);
        let mut collected: Vec<(usize, R)> = Vec::with_capacity(num_tasks);

        crossbeam::thread::scope(|scope| {
            let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let task = &task;
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= num_tasks {
                        break;
                    }
                    let r = task(i);
                    // The receiver outlives all senders inside this scope;
                    // a send failure means the parent thread panicked.
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            collected.extend(rx.iter());
        })
        .expect("dataflow task panicked");

        collected.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(collected.len(), num_tasks);
        collected.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits = AtomicU64::new(0);
        let out = pool.run(100, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i * i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_in_task_order_under_contention() {
        let pool = WorkerPool::new(8);
        let out = pool.run(257, |i| {
            // Stagger completion order.
            if i % 3 == 0 {
                std::thread::yield_now();
            }
            i
        });
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks_is_empty() {
        let pool = WorkerPool::new(3);
        let out: Vec<u32> = pool.run(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkerPool::new(1);
        let tid = std::thread::current().id();
        let out = pool.run(4, move |i| (i, std::thread::current().id() == tid));
        assert!(out.iter().all(|(_, same)| *same));
    }

    #[test]
    #[should_panic(expected = "dataflow task panicked")]
    fn task_panic_propagates() {
        let pool = WorkerPool::new(4);
        pool.run(8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn tasks_can_borrow_local_state() {
        let pool = WorkerPool::new(4);
        let data: Vec<u64> = (0..64).collect();
        let out = pool.run(8, |i| data[i * 8..(i + 1) * 8].iter().sum::<u64>());
        assert_eq!(out.iter().sum::<u64>(), (0..64).sum::<u64>());
    }
}
