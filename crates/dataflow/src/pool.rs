//! Persistent worker pool: threads spawned once, reused across stages.
//!
//! The previous engine respawned scoped threads and funnelled results
//! through an unbounded channel on every stage, so pipelines made of many
//! short stages (purging → filtering → meta-blocking pruning is exactly
//! that shape) paid thread-creation and channel-contention costs per stage.
//! This pool spawns its threads once, parks them on a condvar between
//! stages, and hands each stage out through a shared atomic task counter.
//!
//! Results are written directly into a pre-sized **slot vector**: task `i`
//! writes slot `i`, so output order equals task order by construction — no
//! channel, no post-hoc sort. This "determinism by slot indexing" is one
//! half of the engine's ordering guarantee (the other half is that shuffle
//! buckets are concatenated in input-partition order).
//!
//! Stage closures may borrow stage-local state (the old scoped-thread
//! ergonomics are preserved): internally the closure reference is
//! lifetime-erased before being published to the workers, and
//! [`WorkerPool::run`] does not return until every task has completed, so
//! the borrow can never be outlived.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-stage execution statistics reported by [`WorkerPool::run_with_stats`].
///
/// Busy times are **thread CPU time**, not wall clock: on an oversubscribed
/// host (more workers than cores) a task's wall time includes the slices
/// the OS gave to other threads, which would make every schedule look
/// balanced. CPU time charges each worker exactly the work it executed, so
/// the per-slot spread reflects the schedule itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Sum of task CPU time across all workers.
    pub busy_time: Duration,
    /// Sum over participating workers of the delay between stage publication
    /// and that worker claiming its first task (wall clock — it is a wait).
    pub queue_wait: Duration,
    /// CPU time per worker slot for *this stage* (slot 0 = the submitting
    /// thread). The spread across slots is the stage's load balance: the
    /// maximum entry is the stage's critical path — the wall-clock lower
    /// bound on a machine with one core per worker.
    pub per_worker_busy: Vec<Duration>,
}

impl StageStats {
    /// The slowest worker's busy time — the stage's critical path.
    pub fn critical_path(&self) -> Duration {
        self.per_worker_busy
            .iter()
            .copied()
            .max()
            .unwrap_or_default()
    }
}

impl std::ops::Add for StageStats {
    type Output = StageStats;

    fn add(self, rhs: StageStats) -> StageStats {
        let (mut long, short) = if self.per_worker_busy.len() >= rhs.per_worker_busy.len() {
            (self.per_worker_busy, rhs.per_worker_busy)
        } else {
            (rhs.per_worker_busy, self.per_worker_busy)
        };
        for (slot, d) in short.into_iter().enumerate() {
            long[slot] += d;
        }
        StageStats {
            busy_time: self.busy_time + rhs.busy_time,
            queue_wait: self.queue_wait + rhs.queue_wait,
            per_worker_busy: long,
        }
    }
}

/// Nanoseconds of CPU time consumed by the calling thread.
///
/// On Linux this reads `CLOCK_THREAD_CPUTIME_ID` directly (the symbol is in
/// the libc the binary already links; no crate dependency), so time spent
/// preempted does not count. Elsewhere it degrades to the monotonic wall
/// clock — correct on a machine with a core per worker, pessimistic
/// otherwise.
#[cfg(target_os = "linux")]
pub(crate) fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    extern "C" {
        fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
    }
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` is a valid out-pointer and the clock id is a constant
    // every Linux kernel supports; the call writes `ts` and nothing else.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    debug_assert_eq!(rc, 0, "CLOCK_THREAD_CPUTIME_ID unavailable");
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

#[cfg(not(target_os = "linux"))]
pub(crate) fn thread_cpu_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Type-erased stage closure: `(worker_slot, task_index)`.
///
/// The `'static` lifetime is a lie told only inside this module: the
/// underlying closure lives on the submitting thread's stack and the
/// submitter blocks until `remaining == 0`, after which workers never
/// dereference the pointer again.
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize, usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the submitter keeps it alive for the whole batch (see `TaskRef` docs).
unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

/// One published stage: a work queue drained by atomic index claiming.
struct Batch {
    task: TaskRef,
    num_tasks: usize,
    /// Next task index to claim.
    next: AtomicUsize,
    /// Tasks not yet completed; the submitter waits for this to hit zero.
    remaining: AtomicUsize,
    /// Set when a task panicked: remaining tasks are claimed but skipped.
    abort: AtomicBool,
    /// First panic payload, re-thrown verbatim on the submitting thread.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    published_at: Instant,
    busy_ns: AtomicU64,
    queue_wait_ns: AtomicU64,
    /// Busy time of this batch broken down by worker slot.
    worker_busy_ns: Vec<AtomicU64>,
}

impl Batch {
    /// Claim-and-run loop shared by workers and the submitting thread.
    fn drain(&self, worker_slot: usize, shared: &Shared) {
        let mut first_claim = true;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.num_tasks {
                break;
            }
            if first_claim {
                first_claim = false;
                self.queue_wait_ns.fetch_add(
                    self.published_at.elapsed().as_nanos() as u64,
                    Ordering::Relaxed,
                );
            }
            if !self.abort.load(Ordering::Relaxed) {
                let t0 = thread_cpu_ns();
                // SAFETY: `i < num_tasks` and `remaining > 0` (this task has
                // not completed), so the submitter is still blocked and the
                // closure is alive.
                let result = catch_unwind(AssertUnwindSafe(|| unsafe {
                    (*self.task.0)(worker_slot, i)
                }));
                let dt = thread_cpu_ns().saturating_sub(t0);
                self.busy_ns.fetch_add(dt, Ordering::Relaxed);
                self.worker_busy_ns[worker_slot].fetch_add(dt, Ordering::Relaxed);
                shared.busy_ns[worker_slot].fetch_add(dt, Ordering::Relaxed);
                if let Err(payload) = result {
                    self.abort.store(true, Ordering::Relaxed);
                    let mut slot = self
                        .panic
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            if self.remaining.fetch_sub(1, Ordering::Release) == 1 {
                // Last task done: wake the submitter. Lock/unlock pairs the
                // notification with the submitter's wait loop so it cannot
                // be missed.
                drop(
                    shared
                        .state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                );
                shared.done_cv.notify_all();
            }
        }
    }
}

struct PublishState {
    /// Bumped once per published batch; workers use it to avoid re-draining
    /// a batch they have already seen.
    epoch: u64,
    batch: Option<Arc<Batch>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PublishState>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Cumulative per-worker busy time (nanoseconds); slot 0 is the
    /// submitting thread, slots 1.. are pool threads.
    busy_ns: Vec<AtomicU64>,
}

thread_local! {
    /// True while this thread is executing inside a stage (as a pool worker
    /// or as a participating submitter). Nested `run` calls from stage code
    /// fall back to inline execution instead of deadlocking on the pool.
    static IN_STAGE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A fixed-width pool of **persistent** workers that runs batches of
/// independent tasks.
///
/// `workers - 1` threads are spawned lazily on the first parallel batch and
/// live until the pool is dropped; the submitting thread itself acts as
/// worker 0, so `workers` bounds total parallelism. Results are returned in
/// task order regardless of completion order (slot indexing).
pub struct WorkerPool {
    workers: usize,
    shared: Arc<Shared>,
    /// Serialises whole stages: one batch in flight at a time.
    stage_lock: Mutex<()>,
    /// Lazily spawned persistent threads, joined on drop.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field(
                "spawned",
                &self
                    .threads
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len(),
            )
            .finish()
    }
}

impl WorkerPool {
    /// Create a pool that runs at most `workers` tasks concurrently.
    ///
    /// `workers == 0` is clamped to 1. No threads are spawned until the
    /// first batch that can use them.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        WorkerPool {
            workers,
            shared: Arc::new(Shared {
                state: Mutex::new(PublishState {
                    epoch: 0,
                    batch: None,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            }),
            stage_lock: Mutex::new(()),
            threads: Mutex::new(Vec::new()),
        }
    }

    /// Number of concurrent workers used by [`WorkerPool::run`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cumulative busy (thread CPU) time per worker slot (0 = submitting
    /// thread).
    pub fn worker_busy_times(&self) -> Vec<Duration> {
        self.shared
            .busy_ns
            .iter()
            .map(|ns| Duration::from_nanos(ns.load(Ordering::Relaxed)))
            .collect()
    }

    /// Spawn the persistent threads if they are not running yet.
    fn ensure_spawned(&self) {
        let mut threads = self
            .threads
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !threads.is_empty() {
            return;
        }
        for slot in 1..self.workers {
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("sparker-worker-{slot}"))
                .spawn(move || worker_loop(shared, slot))
                .expect("spawn dataflow worker");
            threads.push(handle);
        }
    }

    /// Execute `num_tasks` independent tasks and collect their results in
    /// task order.
    ///
    /// `task(i)` is invoked exactly once for every `i in 0..num_tasks`, from
    /// at most `self.workers` threads concurrently. The first task panic is
    /// re-thrown on the caller with its original payload.
    pub fn run<R, F>(&self, num_tasks: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        self.run_with_stats(num_tasks, task).0
    }

    /// [`WorkerPool::run`] plus per-stage busy/queue-wait statistics.
    pub fn run_with_stats<R, F>(&self, num_tasks: usize, task: F) -> (Vec<R>, StageStats)
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        self.run_on_workers(num_tasks, |_worker, i| task(i))
    }

    /// [`WorkerPool::run_with_stats`] with the executing worker slot exposed
    /// to the task as `task(worker_slot, task_index)`.
    ///
    /// The slot is in `0..self.workers()` and at most one task runs on a
    /// given slot at any time, so slot-indexed scratch state (see
    /// [`crate::WorkerLocal`]) is data-race free. Results are still returned
    /// in task order — the slot only identifies *where* a task ran, never
    /// where its result lands.
    pub fn run_on_workers<R, F>(&self, num_tasks: usize, task: F) -> (Vec<R>, StageStats)
    where
        R: Send,
        F: Fn(usize, usize) -> R + Send + Sync,
    {
        if num_tasks == 0 {
            return (Vec::new(), StageStats::default());
        }
        let slots: Vec<Slot<R>> = (0..num_tasks).map(|_| Slot::empty()).collect();
        let slots_ref = SlotWriter(&slots);
        let runner = move |worker: usize, i: usize| {
            let value = task(worker, i);
            // SAFETY: task index `i` is claimed exactly once, so slot `i`
            // has a unique writer.
            unsafe { slots_ref.write(i, value) };
        };
        let stats = self.execute(num_tasks, &runner);
        let results: Vec<R> = slots.into_iter().map_while(Slot::into_inner).collect();
        // A short-fall is a pool bug; fail loudly in release builds too
        // rather than silently returning a truncated stage.
        assert_eq!(
            results.len(),
            num_tasks,
            "worker pool lost {} of {} task results",
            num_tasks - results.len(),
            num_tasks
        );
        (results, stats)
    }

    /// Execute one task per element of `inputs`, passing each task
    /// **ownership** of its element — the zero-copy variant used by shuffle
    /// stages to move (not clone) partition data.
    pub fn run_owned<I, R, F>(&self, inputs: Vec<I>, f: F) -> (Vec<R>, StageStats)
    where
        I: Send,
        R: Send,
        F: Fn(usize, I) -> R + Send + Sync,
    {
        let num_tasks = inputs.len();
        if num_tasks == 0 {
            return (Vec::new(), StageStats::default());
        }
        let inputs: Vec<Slot<I>> = inputs.into_iter().map(Slot::new).collect();
        let inputs_ref = SlotWriter(&inputs);
        let slots: Vec<Slot<R>> = (0..num_tasks).map(|_| Slot::empty()).collect();
        let slots_ref = SlotWriter(&slots);
        let runner = move |_worker: usize, i: usize| {
            // SAFETY: task index `i` is claimed exactly once; its input slot
            // is taken once and its output slot written once.
            let input = unsafe { inputs_ref.take(i) }.expect("input slot already taken");
            let value = f(i, input);
            unsafe { slots_ref.write(i, value) };
        };
        let stats = self.execute(num_tasks, &runner);
        let results: Vec<R> = slots.into_iter().map_while(Slot::into_inner).collect();
        assert_eq!(
            results.len(),
            num_tasks,
            "worker pool lost {} of {} task results",
            num_tasks - results.len(),
            num_tasks
        );
        (results, stats)
    }

    /// Dispatch: inline for trivial batches and nested calls, otherwise
    /// publish to the persistent workers.
    fn execute(&self, num_tasks: usize, runner: &(dyn Fn(usize, usize) + Sync)) -> StageStats {
        let nested = IN_STAGE.with(|f| f.get());
        if self.workers == 1 || num_tasks == 1 || nested {
            let t0 = thread_cpu_ns();
            let was = IN_STAGE.with(|f| f.replace(true));
            let result = catch_unwind(AssertUnwindSafe(|| {
                for i in 0..num_tasks {
                    runner(0, i);
                }
            }));
            IN_STAGE.with(|f| f.set(was));
            let busy = Duration::from_nanos(thread_cpu_ns().saturating_sub(t0));
            self.shared.busy_ns[0].fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
            if let Err(payload) = result {
                resume_unwind(payload);
            }
            let mut per_worker_busy = vec![Duration::ZERO; self.workers];
            per_worker_busy[0] = busy;
            return StageStats {
                busy_time: busy,
                queue_wait: Duration::ZERO,
                per_worker_busy,
            };
        }

        self.ensure_spawned();
        let _stage = self
            .stage_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);

        // SAFETY: see `TaskRef` — the reference is only used while this
        // call frame is alive (we block on `remaining == 0` below).
        let task: TaskRef = TaskRef(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize, usize) + Sync),
                *const (dyn Fn(usize, usize) + Sync),
            >(runner as *const (dyn Fn(usize, usize) + Sync))
        });
        let batch = Arc::new(Batch {
            task,
            num_tasks,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(num_tasks),
            abort: AtomicBool::new(false),
            panic: Mutex::new(None),
            published_at: Instant::now(),
            busy_ns: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
            worker_busy_ns: (0..self.workers).map(|_| AtomicU64::new(0)).collect(),
        });

        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.epoch += 1;
            st.batch = Some(Arc::clone(&batch));
        }
        self.shared.work_cv.notify_all();

        // The submitter is worker 0.
        IN_STAGE.with(|f| f.set(true));
        batch.drain(0, &self.shared);
        IN_STAGE.with(|f| f.set(false));

        // Wait for the stragglers.
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while batch.remaining.load(Ordering::Acquire) != 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.batch = None;
        }

        if let Some(payload) = batch
            .panic
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            resume_unwind(payload);
        }

        StageStats {
            busy_time: Duration::from_nanos(batch.busy_ns.load(Ordering::Relaxed)),
            queue_wait: Duration::from_nanos(batch.queue_wait_ns.load(Ordering::Relaxed)),
            per_worker_busy: batch
                .worker_busy_ns
                .iter()
                .map(|ns| Duration::from_nanos(ns.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self
            .threads
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, slot: usize) {
    IN_STAGE.with(|f| f.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let batch = {
            let mut st = shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(batch) = &st.batch {
                        seen_epoch = st.epoch;
                        break Arc::clone(batch);
                    }
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        batch.drain(slot, &shared);
    }
}

/// One result slot, written by exactly one task.
struct Slot<T>(std::cell::UnsafeCell<Option<T>>);

impl<T> Slot<T> {
    fn empty() -> Self {
        Slot(std::cell::UnsafeCell::new(None))
    }

    fn new(value: T) -> Self {
        Slot(std::cell::UnsafeCell::new(Some(value)))
    }

    fn into_inner(self) -> Option<T> {
        self.0.into_inner()
    }
}

/// Shared view over the slot vector handed to tasks.
///
/// SAFETY invariant: slot `i` is accessed only by the (unique) task that
/// claimed index `i`, so there are never two simultaneous accesses to the
/// same slot.
struct SlotWriter<'a, T>(&'a [Slot<T>]);

impl<T> Clone for SlotWriter<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SlotWriter<'_, T> {}

unsafe impl<T: Send> Send for SlotWriter<'_, T> {}
unsafe impl<T: Send> Sync for SlotWriter<'_, T> {}

impl<T> SlotWriter<'_, T> {
    /// Write slot `i`. Caller must be the unique claimant of `i`.
    unsafe fn write(&self, i: usize, value: T) {
        *self.0[i].0.get() = Some(value);
    }

    /// Take slot `i`'s value. Caller must be the unique claimant of `i`.
    unsafe fn take(&self, i: usize) -> Option<T> {
        (*self.0[i].0.get()).take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits = AtomicU64::new(0);
        let out = pool.run(100, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i * i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_in_task_order_under_contention() {
        let pool = WorkerPool::new(8);
        let out = pool.run(257, |i| {
            // Stagger completion order.
            if i % 3 == 0 {
                std::thread::yield_now();
            }
            i
        });
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn threads_persist_across_batches() {
        let pool = WorkerPool::new(4);
        pool.run(16, |i| i);
        let spawned = pool
            .threads
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        assert_eq!(spawned, 3, "workers - 1 persistent threads");
        for round in 0..50 {
            let out = pool.run(32, move |i| i + round);
            assert_eq!(out, (round..32 + round).collect::<Vec<_>>());
        }
        assert_eq!(
            pool.threads
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len(),
            spawned,
            "no respawn"
        );
    }

    #[test]
    fn zero_tasks_is_empty() {
        let pool = WorkerPool::new(3);
        let out: Vec<u32> = pool.run(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkerPool::new(1);
        let tid = std::thread::current().id();
        let out = pool.run(4, move |i| (i, std::thread::current().id() == tid));
        assert!(out.iter().all(|(_, same)| *same));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates_with_payload() {
        let pool = WorkerPool::new(4);
        pool.run(8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "boom-inline")]
    fn inline_panic_propagates_with_payload() {
        let pool = WorkerPool::new(1);
        pool.run(3, |i| {
            if i == 1 {
                panic!("boom-inline");
            }
            i
        });
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |i| {
                if i == 3 {
                    panic!("transient");
                }
                i
            })
        }));
        assert!(result.is_err());
        // The pool still works after a panicked stage.
        assert_eq!(
            pool.run(8, |i| i * 2),
            (0..8).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tasks_can_borrow_local_state() {
        let pool = WorkerPool::new(4);
        let data: Vec<u64> = (0..64).collect();
        let out = pool.run(8, |i| data[i * 8..(i + 1) * 8].iter().sum::<u64>());
        assert_eq!(out.iter().sum::<u64>(), (0..64).sum::<u64>());
    }

    #[test]
    fn nested_runs_fall_back_to_inline() {
        let pool = Arc::new(WorkerPool::new(4));
        let inner = Arc::clone(&pool);
        let out = pool.run(4, move |i| {
            inner.run(3, |j| i * 10 + j).iter().sum::<usize>()
        });
        assert_eq!(out, vec![3, 33, 63, 93]);
    }

    #[test]
    fn run_owned_moves_inputs() {
        let pool = WorkerPool::new(4);
        let inputs: Vec<Vec<u64>> = (0..10).map(|i| vec![i; 4]).collect();
        let (out, _) = pool.run_owned(inputs, |i, v| {
            assert_eq!(v, vec![i as u64; 4]);
            v.into_iter().sum::<u64>()
        });
        assert_eq!(out, (0..10).map(|i| i * 4).collect::<Vec<_>>());
    }

    /// Burn `d` of thread CPU time (sleeping would accrue none — busy
    /// accounting charges CPU, not wall).
    fn burn_cpu(d: Duration) {
        let t0 = thread_cpu_ns();
        let target = d.as_nanos() as u64;
        let mut h = 0u64;
        while thread_cpu_ns().saturating_sub(t0) < target {
            h = std::hint::black_box(h.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17));
        }
    }

    #[test]
    fn stats_account_busy_time() {
        let pool = WorkerPool::new(2);
        let (_, stats) = pool.run_with_stats(8, |_| {
            burn_cpu(Duration::from_millis(2));
        });
        assert!(
            stats.busy_time >= Duration::from_millis(10),
            "got {:?}",
            stats.busy_time
        );
        let busy = pool.worker_busy_times();
        assert_eq!(busy.len(), 2);
        assert!(busy.iter().sum::<Duration>() >= stats.busy_time);
    }

    #[test]
    fn per_worker_busy_partitions_stage_busy_time() {
        let pool = WorkerPool::new(4);
        let (_, stats) = pool.run_with_stats(32, |_| {
            burn_cpu(Duration::from_micros(300));
        });
        assert_eq!(stats.per_worker_busy.len(), 4);
        let sum: Duration = stats.per_worker_busy.iter().sum();
        assert_eq!(sum, stats.busy_time, "per-worker slices cover the stage");
        assert!(stats.critical_path() >= sum / 4, "max ≥ mean");
        assert!(stats.critical_path() <= stats.busy_time);
    }

    #[test]
    fn inline_stage_attributes_busy_to_slot_zero() {
        let pool = WorkerPool::new(1);
        let (_, stats) = pool.run_with_stats(4, |_| {
            burn_cpu(Duration::from_micros(200));
        });
        assert_eq!(stats.per_worker_busy.len(), 1);
        assert_eq!(stats.per_worker_busy[0], stats.busy_time);
    }

    #[test]
    fn run_on_workers_exposes_valid_slots() {
        let pool = WorkerPool::new(4);
        let out = pool.run_on_workers(64, |worker, i| (worker, i)).0;
        assert_eq!(out.len(), 64);
        for (idx, (worker, i)) in out.iter().enumerate() {
            assert!(*worker < 4, "slot {worker} out of range");
            assert_eq!(*i, idx, "results stay in task order");
        }
    }

    #[test]
    fn stage_stats_add_merges_per_worker() {
        let a = StageStats {
            busy_time: Duration::from_millis(3),
            queue_wait: Duration::ZERO,
            per_worker_busy: vec![Duration::from_millis(1), Duration::from_millis(2)],
        };
        let b = StageStats {
            busy_time: Duration::from_millis(4),
            queue_wait: Duration::ZERO,
            per_worker_busy: vec![Duration::from_millis(4)],
        };
        let sum = a + b;
        assert_eq!(sum.busy_time, Duration::from_millis(7));
        assert_eq!(
            sum.per_worker_busy,
            vec![Duration::from_millis(5), Duration::from_millis(2)]
        );
        assert_eq!(sum.critical_path(), Duration::from_millis(5));
    }
}
