//! Memory budget accounting and the run-scoped spill directory.
//!
//! SparkER scales by partitioning the big blocking/edge structures across
//! executors; on one node the equivalent lever is a fixed memory budget
//! with spill-to-disk. [`MemBudget`] is that budget: a cheaply clonable
//! handle (shared atomics) that wide operators consult before buffering
//! shuffle partitions and that chunked CSR builders derive their chunk
//! sizes from. Accounting is byte-based and explicit — operators
//! [`MemBudget::try_reserve`] before holding data and [`MemBudget::release`]
//! when they hand it off — so the per-stage high-water marks reported in
//! the pipeline report reflect what the engine actually buffered, not a
//! sampled guess. Peak RSS is sampled separately from `/proc/self/status`
//! (`VmHWM`) as the ground truth the accounting is validated against.
//!
//! Spill files live in one run-scoped temp directory ([`SpillDir`]) whose
//! `Drop` removes the whole tree — including on panic unwind, so an
//! aborted run leaves nothing behind (pinned by a test).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable holding the memory budget in MiB (0 or unset =
/// unlimited). The CLI's `--mem-budget-mb` flag sets this before the
/// execution backend is constructed.
pub const MEM_BUDGET_ENV: &str = "SPARKER_MEM_BUDGET_MB";

#[derive(Debug)]
struct BudgetInner {
    /// Budget in bytes; 0 means unlimited (accounting still runs, spilling
    /// never triggers).
    limit_bytes: u64,
    /// Bytes currently reserved by operators.
    tracked: AtomicU64,
    /// Highest `tracked` seen since the budget was created.
    run_high: AtomicU64,
    /// Highest `tracked` seen since the last [`MemBudget::begin_stage`].
    stage_high: AtomicU64,
    /// Highest `tracked` seen since the last [`MemBudget::begin_op`].
    op_high: AtomicU64,
    /// Spill batches written so far.
    spill_batches: AtomicU64,
    /// Spill bytes written so far.
    spilled_bytes: AtomicU64,
    /// Lazily created run-scoped spill directory.
    spill_dir: Mutex<Option<Arc<SpillDir>>>,
    /// Monotonic file-name counter within the spill directory.
    file_seq: AtomicU64,
}

/// A caller-specified RAM budget with byte-level accounting, shared by
/// every operator of one run.
///
/// Clones share the same counters (the handle is an `Arc`), so the budget
/// a [`crate::Context`] carries is the budget every stage of the run
/// accounts against. An unlimited budget (`limit_bytes == 0`) still tracks
/// reservations — the buffered-bytes high-water columns in the pipeline
/// report work without a limit — but never asks an operator to spill.
#[derive(Debug, Clone)]
pub struct MemBudget {
    inner: Arc<BudgetInner>,
}

impl Default for MemBudget {
    fn default() -> Self {
        MemBudget::unlimited()
    }
}

impl MemBudget {
    fn with_limit(limit_bytes: u64) -> Self {
        MemBudget {
            inner: Arc::new(BudgetInner {
                limit_bytes,
                tracked: AtomicU64::new(0),
                run_high: AtomicU64::new(0),
                stage_high: AtomicU64::new(0),
                op_high: AtomicU64::new(0),
                spill_batches: AtomicU64::new(0),
                spilled_bytes: AtomicU64::new(0),
                spill_dir: Mutex::new(None),
                file_seq: AtomicU64::new(0),
            }),
        }
    }

    /// A budget that never spills; reservations are still tracked so the
    /// high-water metrics stay meaningful.
    pub fn unlimited() -> Self {
        MemBudget::with_limit(0)
    }

    /// A hard budget of `limit_bytes` bytes.
    pub fn limited(limit_bytes: u64) -> Self {
        MemBudget::with_limit(limit_bytes.max(1))
    }

    /// A hard budget of `mb` MiB (`0` = unlimited).
    pub fn limited_mb(mb: u64) -> Self {
        if mb == 0 {
            MemBudget::unlimited()
        } else {
            MemBudget::limited(mb * 1024 * 1024)
        }
    }

    /// Resolve the budget from [`MEM_BUDGET_ENV`]; unset, empty, `0` or
    /// unparsable values mean unlimited.
    pub fn from_env() -> Self {
        let mb = std::env::var(MEM_BUDGET_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        MemBudget::limited_mb(mb)
    }

    /// The budget in bytes (0 = unlimited).
    pub fn limit_bytes(&self) -> u64 {
        self.inner.limit_bytes
    }

    /// `true` when a hard limit is set.
    pub fn is_limited(&self) -> bool {
        self.inner.limit_bytes > 0
    }

    /// Try to reserve `bytes` of buffer space. Returns `true` (and records
    /// the reservation) when the budget allows holding them in RAM;
    /// `false` when buffering them would exceed the limit — the caller
    /// should spill instead and must **not** call [`MemBudget::release`]
    /// for them.
    pub fn try_reserve(&self, bytes: u64) -> bool {
        let inner = &*self.inner;
        let new = inner.tracked.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if inner.limit_bytes > 0 && new > inner.limit_bytes {
            inner.tracked.fetch_sub(bytes, Ordering::Relaxed);
            return false;
        }
        inner.run_high.fetch_max(new, Ordering::Relaxed);
        inner.stage_high.fetch_max(new, Ordering::Relaxed);
        inner.op_high.fetch_max(new, Ordering::Relaxed);
        true
    }

    /// Return `bytes` previously reserved with [`MemBudget::try_reserve`].
    pub fn release(&self, bytes: u64) {
        self.inner.tracked.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Record that `batches` spill batches totalling `bytes` bytes were
    /// written to disk.
    pub fn note_spill(&self, batches: u64, bytes: u64) {
        self.inner
            .spill_batches
            .fetch_add(batches, Ordering::Relaxed);
        self.inner.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Reset the per-stage high-water mark (called by the pipeline's stage
    /// scopes at stage entry).
    pub fn begin_stage(&self) {
        self.inner.stage_high.store(
            self.inner.tracked.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Reset the per-operator high-water mark (called by wide operators at
    /// entry; the engine runs operators sequentially, so per-op marks never
    /// interleave).
    pub fn begin_op(&self) {
        self.inner.op_high.store(
            self.inner.tracked.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Highest reservation level since the last [`MemBudget::begin_op`].
    pub fn op_high_water(&self) -> u64 {
        self.inner.op_high.load(Ordering::Relaxed)
    }

    /// Bytes currently reserved.
    pub fn tracked_bytes(&self) -> u64 {
        self.inner.tracked.load(Ordering::Relaxed)
    }

    /// Highest reservation level since the last [`MemBudget::begin_stage`].
    pub fn stage_high_water(&self) -> u64 {
        self.inner.stage_high.load(Ordering::Relaxed)
    }

    /// Highest reservation level over the budget's whole lifetime.
    pub fn run_high_water(&self) -> u64 {
        self.inner.run_high.load(Ordering::Relaxed)
    }

    /// Spill batches written so far.
    pub fn spill_batches(&self) -> u64 {
        self.inner.spill_batches.load(Ordering::Relaxed)
    }

    /// Spill bytes written so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.inner.spilled_bytes.load(Ordering::Relaxed)
    }

    /// The run-scoped spill directory, created on first use. Every spill
    /// file holds an `Arc` to it, so the directory tree is removed exactly
    /// when the budget and all spill readers are gone — including on panic
    /// unwind.
    pub fn spill_dir(&self) -> io::Result<Arc<SpillDir>> {
        let mut guard = self
            .inner
            .spill_dir
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(dir) = &*guard {
            return Ok(Arc::clone(dir));
        }
        let dir = SpillDir::create()?;
        *guard = Some(Arc::clone(&dir));
        Ok(dir)
    }

    /// A fresh, unique spill file path inside the run's spill directory.
    pub fn spill_file(&self) -> io::Result<(Arc<SpillDir>, PathBuf)> {
        let dir = self.spill_dir()?;
        let seq = self.inner.file_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.path().join(format!("spill-{seq}.bin"));
        Ok((dir, path))
    }

    /// Budget-driven chunk length for chunked builders: how many of
    /// `total_items` items (each needing `bytes_per_item` of temporary
    /// space) to process per chunk. Unlimited budgets get one chunk;
    /// limited budgets size chunks so the temporaries take at most a
    /// quarter of the limit, floored so tiny budgets stay usable.
    pub fn chunk_len(&self, total_items: usize, bytes_per_item: usize) -> usize {
        if !self.is_limited() || total_items == 0 {
            return total_items.max(1);
        }
        let target = (self.inner.limit_bytes / 4).max(1 << 20) as usize;
        (target / bytes_per_item.max(1)).max(4096).min(total_items)
    }

    /// Peak resident set size of this process in bytes (`VmHWM`), or 0
    /// where the kernel does not expose it. Monotonic over the process
    /// lifetime.
    pub fn peak_rss_bytes() -> u64 {
        proc_status_kb("VmHWM") * 1024
    }

    /// Current resident set size of this process in bytes (`VmRSS`), or 0
    /// where the kernel does not expose it.
    pub fn current_rss_bytes() -> u64 {
        proc_status_kb("VmRSS") * 1024
    }
}

/// Read a `kB`-denominated field from `/proc/self/status`.
#[cfg(target_os = "linux")]
fn proc_status_kb(field: &str) -> u64 {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            if let Some(value) = rest.strip_prefix(':') {
                return value
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .unwrap_or(0);
            }
        }
    }
    0
}

#[cfg(not(target_os = "linux"))]
fn proc_status_kb(_field: &str) -> u64 {
    0
}

/// A run-scoped temporary directory for spill files, removed (recursively)
/// when the last handle drops — normal exit and panic unwind alike.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    fn create() -> io::Result<Arc<SpillDir>> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("sparker-spill-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(Arc::new(SpillDir { path }))
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_tracks_but_never_spills() {
        let b = MemBudget::unlimited();
        assert!(!b.is_limited());
        assert!(b.try_reserve(1 << 40));
        assert_eq!(b.tracked_bytes(), 1 << 40);
        assert_eq!(b.run_high_water(), 1 << 40);
        b.release(1 << 40);
        assert_eq!(b.tracked_bytes(), 0);
        assert_eq!(b.run_high_water(), 1 << 40, "high water is sticky");
    }

    #[test]
    fn limited_rejects_over_budget_reservations() {
        let b = MemBudget::limited(1000);
        assert!(b.try_reserve(600));
        assert!(!b.try_reserve(600), "would exceed the limit");
        assert_eq!(b.tracked_bytes(), 600, "failed reservation rolled back");
        assert!(b.try_reserve(400));
        b.release(1000);
        assert_eq!(b.tracked_bytes(), 0);
    }

    #[test]
    fn stage_high_water_resets_per_stage() {
        let b = MemBudget::unlimited();
        assert!(b.try_reserve(500));
        b.release(500);
        assert_eq!(b.stage_high_water(), 500);
        b.begin_stage();
        assert_eq!(b.stage_high_water(), 0);
        assert!(b.try_reserve(200));
        b.release(200);
        assert_eq!(b.stage_high_water(), 200);
        assert_eq!(b.run_high_water(), 500);
    }

    #[test]
    fn clones_share_counters() {
        let a = MemBudget::limited(100);
        let b = a.clone();
        assert!(a.try_reserve(80));
        assert!(!b.try_reserve(80), "clone sees the shared reservation");
        b.note_spill(2, 64);
        assert_eq!(a.spill_batches(), 2);
        assert_eq!(a.spilled_bytes(), 64);
    }

    #[test]
    fn limited_mb_zero_is_unlimited() {
        assert!(!MemBudget::limited_mb(0).is_limited());
        assert_eq!(MemBudget::limited_mb(2).limit_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn chunk_len_scales_with_budget() {
        let unlimited = MemBudget::unlimited();
        assert_eq!(unlimited.chunk_len(1_000_000, 8), 1_000_000);
        let tiny = MemBudget::limited(1); // floor kicks in
        assert_eq!(tiny.chunk_len(1_000_000, 8), (1 << 20) / 8);
        let tight = MemBudget::limited(8 << 20); // 8 MiB / 4 / 8 B
        assert_eq!(tight.chunk_len(1_000_000, 8), (2 << 20) / 8);
        assert_eq!(tight.chunk_len(10, 8), 10, "chunk never exceeds total");
        assert_eq!(unlimited.chunk_len(0, 8), 1, "empty input still chunks");
    }

    #[test]
    fn spill_dir_is_removed_on_drop() {
        let b = MemBudget::limited(1);
        let path = {
            let dir = b.spill_dir().unwrap();
            std::fs::write(dir.path().join("leftover.bin"), b"x").unwrap();
            dir.path().to_path_buf()
        };
        assert!(path.exists(), "dir alive while the budget holds it");
        drop(b);
        assert!(!path.exists(), "dir removed with its contents");
    }

    #[test]
    fn spill_dir_is_removed_on_panic_unwind() {
        let b = MemBudget::limited(1);
        let path = b.spill_dir().unwrap().path().to_path_buf();
        std::fs::write(path.join("mid-run.bin"), b"x").unwrap();
        let result = std::panic::catch_unwind(move || {
            let _moved_in = b; // the panicking scope owns the budget
            panic!("simulated stage failure");
        });
        assert!(result.is_err());
        assert!(
            !path.exists(),
            "unwinding dropped the budget and cleaned the spill dir"
        );
    }

    #[test]
    fn spill_files_get_unique_paths() {
        let b = MemBudget::limited(1);
        let (_, p1) = b.spill_file().unwrap();
        let (_, p2) = b.spill_file().unwrap();
        assert_ne!(p1, p2);
        assert_eq!(p1.parent(), p2.parent());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_sampling_reports_nonzero_on_linux() {
        assert!(MemBudget::peak_rss_bytes() > 0);
        assert!(MemBudget::current_rss_bytes() > 0);
    }

    #[test]
    fn from_env_defaults_to_unlimited() {
        // The test environment does not set the variable; if it ever does,
        // the parse path is still exercised by limited_mb above.
        if std::env::var(MEM_BUDGET_ENV).is_err() {
            assert!(!MemBudget::from_env().is_limited());
        }
    }
}
