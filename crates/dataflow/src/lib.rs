//! # sparker-dataflow
//!
//! A deterministic, in-process, partitioned dataflow engine with a Spark-like
//! API. This crate is the substrate on which the SparkER entity-resolution
//! pipeline is parallelised: the original system runs on Apache Spark, and
//! every SparkER algorithm is expressed as data-parallel operators over
//! partitions with explicit shuffles and broadcast variables. This engine
//! reproduces exactly that programming model on a single machine:
//!
//! * [`Context`] — entry point; owns the worker pool and execution metrics.
//! * [`Dataset<T>`] — an eagerly evaluated, partitioned collection supporting
//!   narrow transformations (`map`, `flat_map`, `filter`, `map_partitions`),
//!   wide (shuffle) transformations (`group_by_key`, `reduce_by_key`, `join`,
//!   `cogroup`, `distinct`, `repartition`), and actions (`collect`, `count`,
//!   `reduce`, `fold`).
//! * [`Broadcast<T>`] — a read-only value shared with every task, mirroring
//!   Spark broadcast variables (SparkER's parallel meta-blocking is built on
//!   a broadcast join).
//! * [`ExecutionMetrics`] — per-stage task counts, record counts and shuffle
//!   volumes, used by the scalability experiments.
//!
//! ## Determinism
//!
//! All operators produce results that are independent of the worker count:
//! partitions are totally ordered, shuffle buckets are concatenated in input
//! partition order, and grouping preserves first-seen key order. This lets
//! the test-suite assert exact outputs while still exercising real
//! multi-threaded execution.
//!
//! ## Example
//!
//! ```
//! use sparker_dataflow::Context;
//!
//! let ctx = Context::new(4);
//! let data = ctx.parallelize((0..100).collect::<Vec<_>>(), 8);
//! let doubled = data.map(|x| x * 2);
//! let sum: i32 = doubled.fold(0, |a, b| a + b);
//! assert_eq!(sum, 9900);
//! ```

mod accumulator;
mod broadcast;
mod context;
mod dataset;
mod metrics;
mod pool;

pub use accumulator::Accumulator;
pub use broadcast::Broadcast;
pub use context::Context;
pub use dataset::{Dataset, KeyedDataset};
pub use metrics::{ExecutionMetrics, MetricsSnapshot, StageMetrics};
pub use pool::WorkerPool;

/// Hash a key to a shuffle partition index.
///
/// Exposed so that algorithm crates can co-partition hand-built structures
/// with engine-produced ones (e.g. the meta-blocking broadcast join).
pub fn partition_for<K: std::hash::Hash>(key: &K, num_partitions: usize) -> usize {
    use std::hash::Hasher;
    debug_assert!(num_partitions > 0);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % num_partitions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_for_is_stable_and_in_range() {
        for n in 1..17usize {
            for k in 0..1000u64 {
                let p = partition_for(&k, n);
                assert!(p < n);
                assert_eq!(p, partition_for(&k, n));
            }
        }
    }
}
