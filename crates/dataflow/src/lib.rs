//! # sparker-dataflow
//!
//! A deterministic, in-process, partitioned dataflow engine with a Spark-like
//! API. This crate is the substrate on which the SparkER entity-resolution
//! pipeline is parallelised: the original system runs on Apache Spark, and
//! every SparkER algorithm is expressed as data-parallel operators over
//! partitions with explicit shuffles and broadcast variables. This engine
//! reproduces exactly that programming model on a single machine:
//!
//! * [`Context`] — entry point; owns the worker pool and execution metrics.
//! * [`Dataset<T>`] — an eagerly evaluated, partitioned collection supporting
//!   narrow transformations (`map`, `flat_map`, `filter`, `map_partitions`),
//!   wide (shuffle) transformations (`group_by_key`, `reduce_by_key`, `join`,
//!   `cogroup`, `distinct`, `repartition`), and actions (`collect`, `count`,
//!   `reduce`, `fold`).
//! * [`Broadcast<T>`] — a read-only value shared with every task, mirroring
//!   Spark broadcast variables (SparkER's parallel meta-blocking is built on
//!   a broadcast join).
//! * [`MemBudget`] — byte-level memory accounting with spill-to-disk for
//!   wide operators ([`Dataset::group_by_key_spillable`]), so shuffles run
//!   within a caller-specified RAM budget (`SPARKER_MEM_BUDGET_MB`); spilled
//!   batches use the length-prefixed [`SpillCodec`] format under a
//!   run-scoped temp dir that cleans up even on panic.
//! * [`ExecutionMetrics`] — per-stage task counts, record counts, shuffle
//!   volumes and timing (wall, worker-busy, queue-wait), used by the
//!   scalability experiments.
//!
//! ## Execution model: one persistent worker pool
//!
//! A [`Context`] owns a single [`WorkerPool`] whose threads are spawned
//! once (lazily, on the first parallel stage) and reused for every stage
//! until the context is dropped. Each stage is published to the pool as a
//! batch of independent tasks behind an atomic work queue: workers claim
//! task indices with a `fetch_add`, so scheduling is dynamic (good under
//! skew) while thread start-up costs are paid exactly once per context
//! rather than once per stage. The submitting thread participates as
//! worker 0, so a pool of `n` workers uses `n - 1` background threads and
//! never idles the caller. Entity-resolution pipelines are dominated by
//! many short stages (purging, filtering, per-block pruning), which is
//! precisely the shape that benefits.
//!
//! ## Skew-aware scheduling: cost hints + morsels
//!
//! Real blocking graphs have power-law degree skew, so equal-*count*
//! partitioning stalls a stage on its hub-heavy slice. Two mechanisms keep
//! stage wall-clock tracking total work instead of the heaviest partition:
//!
//! 1. **Cost-hinted partitioning** — [`Context::parallelize_by_cost`] cuts
//!    contiguous chunks at the prefix-sum quantiles of per-record cost
//!    weights, so partitions are balanced by *work*, not record count.
//! 2. **Morsel execution** — [`Dataset::map_morsels`] splits each partition
//!    into many small contiguous runs, each an independently claimed pool
//!    task; idle workers steal the next morsel off the atomic counter, and
//!    [`WorkerLocal`] gives every worker slot a reusable scratch value
//!    across the morsels it runs.
//!
//! Both are schedule-only: outputs stay slot-indexed, partition-major and
//! byte-identical to their equal-count, one-task-per-partition equivalents.
//! Per-stage [`StageMetrics::per_worker_busy`] records where the time
//! actually went, so balance is measured, not assumed.
//!
//! ## Determinism by slot indexing
//!
//! All operators produce results that are independent of the worker count.
//! Two mechanisms provide this:
//!
//! 1. **Slot indexing** — task `i` of a stage writes its result into slot
//!    `i` of a pre-sized output vector. Output order equals task order by
//!    construction, no matter which worker finishes first; there is no
//!    channel and no post-hoc sort.
//! 2. **Ordered shuffles** — shuffle buckets are concatenated in input
//!    partition order, grouping preserves first-seen key order, and
//!    [`partition_for`] is a pinned FNV-1a hash, stable across Rust
//!    releases and platforms.
//!
//! This lets the test-suite assert exact outputs while still exercising
//! real multi-threaded execution.
//!
//! ## Zero-copy wide operators
//!
//! Wide (shuffle) operators consume their input dataset. Partitions are
//! reference-counted; when an input partition is uniquely owned — the
//! common case of a freshly produced intermediate — the shuffle *moves*
//! records end-to-end (`Arc::try_unwrap` fast path) instead of cloning
//! them. Call `.clone()` on a dataset first (cheap `Arc` bumps) to keep
//! using it after a wide operator.
//!
//! ## Metrics
//!
//! Every stage records [`StageMetrics`]: task and record counts, shuffle
//! volume, wall-clock time, aggregate worker **busy time** and **queue
//! wait** (delay between stage publication and each worker's first claim).
//! [`Context::metrics`] additionally reports cumulative per-worker busy
//! time, so utilisation and skew are visible without external profilers.
//!
//! ## Example
//!
//! ```
//! use sparker_dataflow::Context;
//!
//! let ctx = Context::new(4);
//! let data = ctx.parallelize((0..100).collect::<Vec<_>>(), 8);
//! let doubled = data.map(|x| x * 2);
//! let sum: i32 = doubled.fold(0, |a, b| a + b);
//! assert_eq!(sum, 9900);
//! ```

mod accumulator;
mod broadcast;
mod budget;
mod context;
mod dataset;
mod fused;
mod metrics;
mod pool;
mod spill;
mod worker_local;

pub use accumulator::Accumulator;
pub use broadcast::Broadcast;
pub use budget::{MemBudget, SpillDir, MEM_BUDGET_ENV};
pub use context::Context;
pub use dataset::{Dataset, KeyedDataset};
pub use fused::{fused_channel_capacity, pipelined_stage, FusedStageStats, MorselQueue};
pub use metrics::{ExecutionMetrics, MetricsSnapshot, StageMetrics};
pub use pool::{StageStats, WorkerPool};
pub use spill::{
    encoded_len_of, RunCursor, SpillCodec, SpillRun, SpilledBuckets, SPILL_BATCH_RECORDS,
};
pub use worker_local::WorkerLocal;

/// Hash a key to a shuffle partition index.
///
/// Exposed so that algorithm crates can co-partition hand-built structures
/// with engine-produced ones (e.g. the meta-blocking broadcast join).
///
/// The hash is a pinned FNV-1a over the key's `Hash` byte stream. The
/// standard library's `DefaultHasher` is explicitly *not* stable across
/// Rust releases, which would silently re-route records between partitions
/// (and change every golden shuffle output) on a toolchain upgrade; FNV-1a
/// with fixed constants gives the same routing forever.
pub fn partition_for<K: std::hash::Hash>(key: &K, num_partitions: usize) -> usize {
    use std::hash::Hasher;
    debug_assert!(num_partitions > 0);
    let mut h = Fnv1aHasher::default();
    key.hash(&mut h);
    (h.finish() as usize) % num_partitions
}

/// FNV-1a with the standard 64-bit offset basis and prime, byte-at-a-time.
struct Fnv1aHasher(u64);

impl Default for Fnv1aHasher {
    fn default() -> Self {
        Fnv1aHasher(0xCBF2_9CE4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv1aHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_for_is_stable_and_in_range() {
        for n in 1..17usize {
            for k in 0..1000u64 {
                let p = partition_for(&k, n);
                assert!(p < n);
                assert_eq!(p, partition_for(&k, n));
            }
        }
    }

    /// Golden routing values. These pin the concrete FNV-1a output so a
    /// hasher regression (or an accidental return to the release-unstable
    /// `DefaultHasher`) fails loudly instead of silently re-partitioning.
    #[test]
    fn partition_for_matches_golden_values() {
        assert_eq!(partition_for(&0u64, 16), 5);
        assert_eq!(partition_for(&1u64, 16), 4);
        assert_eq!(partition_for(&42u64, 16), 15);
        assert_eq!(partition_for(&u64::MAX, 16), 13);
        assert_eq!(partition_for(&"", 7), 0);
        assert_eq!(partition_for(&"a", 7), 1);
        assert_eq!(partition_for(&"token", 7), 5);
        assert_eq!(partition_for(&"blocking", 7), 5);
        assert_eq!(partition_for(&(3u32, 7u32), 5), 2);
    }

    #[test]
    fn fnv1a_reference_vectors() {
        // Published FNV-1a/64 test vectors.
        let hash = |bytes: &[u8]| {
            use std::hash::Hasher;
            let mut h = Fnv1aHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(hash(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(hash(b"foobar"), 0x85944171F73967E8);
    }
}
