//! Execution context: worker pool + metrics + dataset construction.

use crate::{Accumulator, Broadcast, Dataset, ExecutionMetrics, MetricsSnapshot, WorkerPool};
use std::sync::Arc;

/// Entry point of the dataflow engine.
///
/// A `Context` plays the role of Spark's `SparkContext`: it owns the worker
/// pool, creates [`Dataset`]s and [`Broadcast`] variables, and accumulates
/// [`ExecutionMetrics`]. Cloning a `Context` is cheap and clones share the
/// pool and metrics sink.
#[derive(Clone, Debug)]
pub struct Context {
    pool: Arc<WorkerPool>,
    metrics: ExecutionMetrics,
    default_partitions: usize,
}

impl Context {
    /// Create a context with `workers` concurrent workers and
    /// `2 * workers` default partitions (a common Spark rule of thumb that
    /// keeps all workers busy under skew).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Context {
            pool: Arc::new(WorkerPool::new(workers)),
            metrics: ExecutionMetrics::default(),
            default_partitions: workers * 2,
        }
    }

    /// Create a context with an explicit default partition count.
    pub fn with_partitions(workers: usize, default_partitions: usize) -> Self {
        let mut ctx = Context::new(workers);
        ctx.default_partitions = default_partitions.max(1);
        ctx
    }

    /// Number of concurrent workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Default number of partitions for new datasets and shuffles.
    pub fn default_partitions(&self) -> usize {
        self.default_partitions
    }

    pub(crate) fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    pub(crate) fn metrics_sink(&self) -> &ExecutionMetrics {
        &self.metrics
    }

    /// Copy out all execution metrics recorded so far.
    ///
    /// The snapshot's `worker_busy` field is read live from the pool's
    /// per-worker counters (slot 0 is the submitting thread).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.worker_busy = self.pool.worker_busy_times();
        snap
    }

    /// Drop all recorded metrics (between experiment repetitions).
    pub fn reset_metrics(&self) {
        self.metrics.reset()
    }

    /// Distribute `data` over `num_partitions` contiguous slices.
    ///
    /// Partitioning is by contiguous ranges (like Spark's `parallelize`), so
    /// the concatenation of partitions equals the input order.
    pub fn parallelize<T: Send + Sync>(&self, data: Vec<T>, num_partitions: usize) -> Dataset<T> {
        let n = num_partitions.max(1);
        let total = data.len();
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(n);
        // Ceil-divide so the leftover records spread over the first chunks.
        let base = total / n;
        let extra = total % n;
        let mut it = data.into_iter();
        for i in 0..n {
            let take = base + usize::from(i < extra);
            parts.push(it.by_ref().take(take).collect());
        }
        Dataset::from_parts(self.clone(), parts.into_iter().map(Arc::new).collect())
    }

    /// [`Context::parallelize`] with the context's default partition count.
    pub fn parallelize_default<T: Send + Sync>(&self, data: Vec<T>) -> Dataset<T> {
        self.parallelize(data, self.default_partitions)
    }

    /// An empty dataset with one (empty) partition.
    pub fn empty<T: Send + Sync>(&self) -> Dataset<T> {
        Dataset::from_parts(self.clone(), vec![Arc::new(Vec::new())])
    }

    /// Create a broadcast variable visible to every task.
    ///
    /// Accepts either an owned `T` (wrapped in a fresh `Arc`) or an
    /// `Arc<T>` the driver already shares — the latter is adopted without
    /// cloning the payload, so broadcasting a large read-only structure
    /// (e.g. a block graph) costs a refcount bump.
    pub fn broadcast<T>(&self, value: impl Into<Broadcast<T>>) -> Broadcast<T> {
        self.metrics.record_broadcast();
        value.into()
    }

    /// Create a named accumulator tasks can bump and the driver can read.
    pub fn accumulator(&self, name: &str) -> Accumulator {
        Accumulator::new(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelize_preserves_order_and_balances() {
        let ctx = Context::new(4);
        let ds = ctx.parallelize((0..10).collect::<Vec<_>>(), 4);
        assert_eq!(ds.num_partitions(), 4);
        assert_eq!(ds.partition_sizes(), vec![3, 3, 2, 2]);
        assert_eq!(ds.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn parallelize_more_partitions_than_records() {
        let ctx = Context::new(2);
        let ds = ctx.parallelize(vec![1, 2], 5);
        assert_eq!(ds.num_partitions(), 5);
        assert_eq!(ds.collect(), vec![1, 2]);
        assert_eq!(ds.partition_sizes().iter().sum::<usize>(), 2);
    }

    #[test]
    fn zero_partitions_clamped() {
        let ctx = Context::new(2);
        let ds = ctx.parallelize(vec![1, 2, 3], 0);
        assert_eq!(ds.num_partitions(), 1);
    }

    #[test]
    fn empty_dataset() {
        let ctx = Context::new(2);
        let ds: Dataset<u8> = ctx.empty();
        assert_eq!(ds.count(), 0);
        assert!(ds.collect().is_empty());
    }

    #[test]
    fn broadcast_counted_in_metrics() {
        let ctx = Context::new(2);
        let _b = ctx.broadcast(42);
        let _b2 = ctx.broadcast("x");
        assert_eq!(ctx.metrics().broadcasts, 2);
        ctx.reset_metrics();
        assert_eq!(ctx.metrics().broadcasts, 0);
    }

    #[test]
    fn default_partitions_follow_workers() {
        assert_eq!(Context::new(3).default_partitions(), 6);
        assert_eq!(Context::with_partitions(3, 5).default_partitions(), 5);
        assert_eq!(Context::with_partitions(3, 0).default_partitions(), 1);
    }
}
