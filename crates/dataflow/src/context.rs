//! Execution context: worker pool + metrics + dataset construction.

use crate::{
    Accumulator, Broadcast, Dataset, ExecutionMetrics, MemBudget, MetricsSnapshot, WorkerPool,
};
use std::sync::Arc;

/// Entry point of the dataflow engine.
///
/// A `Context` plays the role of Spark's `SparkContext`: it owns the worker
/// pool, creates [`Dataset`]s and [`Broadcast`] variables, and accumulates
/// [`ExecutionMetrics`]. Cloning a `Context` is cheap and clones share the
/// pool and metrics sink.
#[derive(Clone, Debug)]
pub struct Context {
    pool: Arc<WorkerPool>,
    metrics: ExecutionMetrics,
    default_partitions: usize,
    budget: MemBudget,
}

impl Context {
    /// Create a context with `workers` concurrent workers and
    /// `2 * workers` default partitions (a common Spark rule of thumb that
    /// keeps all workers busy under skew).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Context {
            pool: Arc::new(WorkerPool::new(workers)),
            metrics: ExecutionMetrics::default(),
            default_partitions: workers * 2,
            budget: MemBudget::from_env(),
        }
    }

    /// Create a context with an explicit default partition count.
    pub fn with_partitions(workers: usize, default_partitions: usize) -> Self {
        let mut ctx = Context::new(workers);
        ctx.default_partitions = default_partitions.max(1);
        ctx
    }

    /// Replace the context's memory budget (builder-style). `Context::new`
    /// resolves the budget from `SPARKER_MEM_BUDGET_MB`; tests and embedders
    /// use this to set an explicit one without touching the environment.
    pub fn with_budget(mut self, budget: MemBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The memory budget every stage of this context accounts against.
    /// Clones of the handle share counters.
    pub fn budget(&self) -> &MemBudget {
        &self.budget
    }

    /// Number of concurrent workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Default number of partitions for new datasets and shuffles.
    pub fn default_partitions(&self) -> usize {
        self.default_partitions
    }

    pub(crate) fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    pub(crate) fn metrics_sink(&self) -> &ExecutionMetrics {
        &self.metrics
    }

    /// Copy out all execution metrics recorded so far.
    ///
    /// The snapshot's `worker_busy` field is read live from the pool's
    /// per-worker counters (slot 0 is the submitting thread).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.worker_busy = self.pool.worker_busy_times();
        snap
    }

    /// Drop all recorded metrics (between experiment repetitions).
    pub fn reset_metrics(&self) {
        self.metrics.reset()
    }

    /// Record a driver-named stage into the metrics stream.
    ///
    /// Pipeline drivers use this to append stage-scope markers (e.g.
    /// `"pipeline/score_pairs"`) alongside the operator stages the engine
    /// records itself, so a [`MetricsSnapshot`] can attribute operator work
    /// to pipeline stages. Driver-recorded stages carry whatever fields the
    /// caller filled in; `per_worker_busy` stays empty for them.
    pub fn record_stage(&self, stage: crate::StageMetrics) {
        self.metrics.record_stage(stage)
    }

    /// Distribute `data` over `num_partitions` contiguous slices.
    ///
    /// Partitioning is by contiguous ranges (like Spark's `parallelize`), so
    /// the concatenation of partitions equals the input order.
    pub fn parallelize<T: Send + Sync>(&self, data: Vec<T>, num_partitions: usize) -> Dataset<T> {
        let n = num_partitions.max(1);
        let total = data.len();
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(n);
        // Ceil-divide so the leftover records spread over the first chunks.
        let base = total / n;
        let extra = total % n;
        let mut it = data.into_iter();
        for i in 0..n {
            let take = base + usize::from(i < extra);
            parts.push(it.by_ref().take(take).collect());
        }
        Dataset::from_parts(self.clone(), parts.into_iter().map(Arc::new).collect())
    }

    /// [`Context::parallelize`] with the context's default partition count.
    pub fn parallelize_default<T: Send + Sync>(&self, data: Vec<T>) -> Dataset<T> {
        self.parallelize(data, self.default_partitions)
    }

    /// Distribute `data` over `num_partitions` contiguous slices whose
    /// **total cost** — not record count — is balanced.
    ///
    /// `costs[i]` is a relative work hint for `data[i]` (e.g. a node's
    /// degree in meta-blocking). Chunk boundaries are cut at the prefix-sum
    /// quantiles `k · Σcosts / n`, so a contiguous run of expensive records
    /// (the hub region of a skewed graph) is spread over many partitions
    /// instead of landing in one. Zero costs are treated as 1 so every
    /// record still advances the prefix. Like [`Context::parallelize`],
    /// partitions are contiguous ranges: concatenation order equals input
    /// order, and the result is a pure function of `(data, costs, n)` —
    /// worker-count independent.
    pub fn parallelize_by_cost<T: Send + Sync>(
        &self,
        data: Vec<T>,
        costs: &[u64],
        num_partitions: usize,
    ) -> Dataset<T> {
        assert_eq!(data.len(), costs.len(), "one cost per record");
        let n = num_partitions.max(1);
        let total: u128 = costs.iter().map(|&c| c.max(1) as u128).sum();
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(n);
        let mut acc: u128 = 0;
        let mut start = 0usize;
        let mut it = data.into_iter();
        for k in 1..=n {
            let target = total * k as u128 / n as u128;
            let mut end = start;
            while end < costs.len() && (acc < target || k == n) {
                acc += costs[end].max(1) as u128;
                end += 1;
            }
            parts.push(it.by_ref().take(end - start).collect());
            start = end;
        }
        Dataset::from_parts(self.clone(), parts.into_iter().map(Arc::new).collect())
    }

    /// [`Context::parallelize_by_cost`] with the default partition count.
    pub fn parallelize_by_cost_default<T: Send + Sync>(
        &self,
        data: Vec<T>,
        costs: &[u64],
    ) -> Dataset<T> {
        self.parallelize_by_cost(data, costs, self.default_partitions)
    }

    /// An empty dataset with one (empty) partition.
    pub fn empty<T: Send + Sync>(&self) -> Dataset<T> {
        Dataset::from_parts(self.clone(), vec![Arc::new(Vec::new())])
    }

    /// Create a broadcast variable visible to every task.
    ///
    /// Accepts either an owned `T` (wrapped in a fresh `Arc`) or an
    /// `Arc<T>` the driver already shares — the latter is adopted without
    /// cloning the payload, so broadcasting a large read-only structure
    /// (e.g. a block graph) costs a refcount bump.
    pub fn broadcast<T>(&self, value: impl Into<Broadcast<T>>) -> Broadcast<T> {
        self.metrics.record_broadcast();
        value.into()
    }

    /// Create a named accumulator tasks can bump and the driver can read.
    pub fn accumulator(&self, name: &str) -> Accumulator {
        Accumulator::new(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelize_preserves_order_and_balances() {
        let ctx = Context::new(4);
        let ds = ctx.parallelize((0..10).collect::<Vec<_>>(), 4);
        assert_eq!(ds.num_partitions(), 4);
        assert_eq!(ds.partition_sizes(), vec![3, 3, 2, 2]);
        assert_eq!(ds.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn parallelize_more_partitions_than_records() {
        let ctx = Context::new(2);
        let ds = ctx.parallelize(vec![1, 2], 5);
        assert_eq!(ds.num_partitions(), 5);
        assert_eq!(ds.collect(), vec![1, 2]);
        assert_eq!(ds.partition_sizes().iter().sum::<usize>(), 2);
    }

    #[test]
    fn parallelize_by_cost_balances_skewed_costs() {
        let ctx = Context::new(2);
        // One hub record worth 90% of the work at the front.
        let costs = [90u64, 2, 2, 2, 2, 2];
        let ds = ctx.parallelize_by_cost((0..6).collect::<Vec<_>>(), &costs, 2);
        assert_eq!(ds.num_partitions(), 2);
        // The hub alone crosses the 50% quantile: it gets its own chunk.
        assert_eq!(ds.partition_sizes(), vec![1, 5]);
        assert_eq!(ds.collect(), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn parallelize_by_cost_uniform_costs_match_equal_count() {
        let ctx = Context::new(4);
        let costs = vec![1u64; 10];
        let ds = ctx.parallelize_by_cost((0..10).collect::<Vec<_>>(), &costs, 4);
        // Quantile cuts at 2.5/5/7.5 → ceil boundaries 3/5/8.
        assert_eq!(ds.partition_sizes().iter().sum::<usize>(), 10);
        assert_eq!(ds.collect(), (0..10).collect::<Vec<_>>());
        assert!(ds.partition_sizes().iter().all(|&s| (2..=3).contains(&s)));
    }

    #[test]
    fn parallelize_by_cost_zero_costs_still_distribute() {
        let ctx = Context::new(2);
        let ds = ctx.parallelize_by_cost((0..8).collect::<Vec<_>>(), &[0u64; 8], 4);
        assert_eq!(ds.num_partitions(), 4);
        assert_eq!(ds.partition_sizes(), vec![2, 2, 2, 2]);
        assert_eq!(ds.collect(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn parallelize_by_cost_empty_and_clamped() {
        let ctx = Context::new(2);
        let ds: Dataset<u8> = ctx.parallelize_by_cost(Vec::new(), &[], 0);
        assert_eq!(ds.num_partitions(), 1);
        assert!(ds.collect().is_empty());
        let ds = ctx.parallelize_by_cost_default(vec![1, 2, 3], &[5, 1, 1]);
        assert_eq!(ds.num_partitions(), ctx.default_partitions());
        assert_eq!(ds.collect(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "one cost per record")]
    fn parallelize_by_cost_length_mismatch_rejected() {
        let ctx = Context::new(2);
        let _ = ctx.parallelize_by_cost(vec![1, 2, 3], &[1u64], 2);
    }

    #[test]
    fn zero_partitions_clamped() {
        let ctx = Context::new(2);
        let ds = ctx.parallelize(vec![1, 2, 3], 0);
        assert_eq!(ds.num_partitions(), 1);
    }

    #[test]
    fn empty_dataset() {
        let ctx = Context::new(2);
        let ds: Dataset<u8> = ctx.empty();
        assert_eq!(ds.count(), 0);
        assert!(ds.collect().is_empty());
    }

    #[test]
    fn broadcast_counted_in_metrics() {
        let ctx = Context::new(2);
        let _b = ctx.broadcast(42);
        let _b2 = ctx.broadcast("x");
        assert_eq!(ctx.metrics().broadcasts, 2);
        ctx.reset_metrics();
        assert_eq!(ctx.metrics().broadcasts, 0);
    }

    #[test]
    fn default_partitions_follow_workers() {
        assert_eq!(Context::new(3).default_partitions(), 6);
        assert_eq!(Context::with_partitions(3, 5).default_partitions(), 5);
        assert_eq!(Context::with_partitions(3, 0).default_partitions(), 1);
    }
}
