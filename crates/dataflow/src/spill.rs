//! On-disk spill format for out-of-core wide operators.
//!
//! When a shuffle's buffered partitions exceed the [`crate::MemBudget`],
//! record batches are serialized to a compact length-prefixed format under
//! the run-scoped spill directory and merge-streamed back on the consuming
//! side. The format is deliberately minimal (no serde in the offline
//! container): fixed little-endian primitives, length-prefixed strings and
//! sequences, and a batch frame of
//!
//! ```text
//! [u64 LE payload byte length][u32 LE record count][payload]
//! ```
//!
//! Decoding a batch and re-encoding it reproduces the bytes exactly
//! (pinned by proptests), which is what makes spilled shuffles
//! byte-identical to in-RAM ones.

use crate::budget::{MemBudget, SpillDir};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// Records per spill batch: bounds the encode/decode buffer regardless of
/// partition size.
pub const SPILL_BATCH_RECORDS: usize = 1 << 16;

/// Fixed-layout binary encoding for records that may be spilled to disk.
///
/// `encoded_len` must return exactly the number of bytes `encode` appends
/// — operators use it to account buffered bytes against the budget without
/// actually encoding.
pub trait SpillCodec: Sized {
    /// Exact number of bytes [`SpillCodec::encode`] will append.
    fn encoded_len(&self) -> usize;
    /// Append this record's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one record from the front of `input`, advancing it. Returns
    /// `None` on truncated input.
    fn decode(input: &mut &[u8]) -> Option<Self>;
}

macro_rules! impl_spill_codec_int {
    ($($ty:ty),*) => {$(
        impl SpillCodec for $ty {
            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$ty>()
            }
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                const N: usize = std::mem::size_of::<$ty>();
                let (head, rest) = input.split_first_chunk::<N>()?;
                *input = rest;
                Some(<$ty>::from_le_bytes(*head))
            }
        }
    )*};
}

impl_spill_codec_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl SpillCodec for usize {
    fn encoded_len(&self) -> usize {
        8
    }
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        u64::decode(input).map(|v| v as usize)
    }
}

impl SpillCodec for bool {
    fn encoded_len(&self) -> usize {
        1
    }
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        u8::decode(input).map(|v| v != 0)
    }
}

impl SpillCodec for f32 {
    fn encoded_len(&self) -> usize {
        4
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        u32::decode(input).map(f32::from_bits)
    }
}

impl SpillCodec for f64 {
    fn encoded_len(&self) -> usize {
        8
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        u64::decode(input).map(f64::from_bits)
    }
}

impl SpillCodec for String {
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        if input.len() < len {
            return None;
        }
        let (head, rest) = input.split_at(len);
        let s = std::str::from_utf8(head).ok()?.to_owned();
        *input = rest;
        Some(s)
    }
}

impl<T: SpillCodec> SpillCodec for Vec<T> {
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(SpillCodec::encoded_len).sum::<usize>()
    }
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        let mut items = Vec::with_capacity(len.min(SPILL_BATCH_RECORDS));
        for _ in 0..len {
            items.push(T::decode(input)?);
        }
        Some(items)
    }
}

impl<T: SpillCodec> SpillCodec for Option<T> {
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, SpillCodec::encoded_len)
    }
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(None),
            1 => T::decode(input).map(Some),
            _ => None,
        }
    }
}

impl<A: SpillCodec, B: SpillCodec> SpillCodec for (A, B) {
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: SpillCodec, B: SpillCodec, C: SpillCodec> SpillCodec for (A, B, C) {
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len() + self.2.encoded_len()
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

impl<A: SpillCodec, B: SpillCodec, C: SpillCodec, D: SpillCodec> SpillCodec for (A, B, C, D) {
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len() + self.2.encoded_len() + self.3.encoded_len()
    }
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
        self.3.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((
            A::decode(input)?,
            B::decode(input)?,
            C::decode(input)?,
            D::decode(input)?,
        ))
    }
}

/// Exact encoded size of a record slice, batch headers excluded.
pub fn encoded_len_of<T: SpillCodec>(records: &[T]) -> u64 {
    records.iter().map(|r| r.encoded_len() as u64).sum()
}

/// Write one `[len][count][payload]` batch frame; returns bytes written.
/// `scratch` is reused across calls to avoid re-allocating the payload
/// buffer.
fn write_batch<T: SpillCodec, W: Write>(
    out: &mut W,
    records: &[T],
    scratch: &mut Vec<u8>,
) -> io::Result<u64> {
    scratch.clear();
    for record in records {
        record.encode(scratch);
    }
    out.write_all(&(scratch.len() as u64).to_le_bytes())?;
    out.write_all(&(records.len() as u32).to_le_bytes())?;
    out.write_all(scratch)?;
    Ok(12 + scratch.len() as u64)
}

/// Read one batch frame into `records`; returns `false` at clean EOF.
fn read_batch<T: SpillCodec, R: Read>(input: &mut R, records: &mut Vec<T>) -> io::Result<bool> {
    let mut header = [0u8; 8];
    match input.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(false),
        Err(e) => return Err(e),
    }
    let payload_len = u64::from_le_bytes(header) as usize;
    let mut count_bytes = [0u8; 4];
    input.read_exact(&mut count_bytes)?;
    let count = u32::from_le_bytes(count_bytes) as usize;
    let mut payload = vec![0u8; payload_len];
    input.read_exact(&mut payload)?;
    let mut cursor: &[u8] = &payload;
    records.clear();
    records.reserve(count);
    for _ in 0..count {
        let record = T::decode(&mut cursor)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "corrupt spill batch"))?;
        records.push(record);
    }
    if !cursor.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes in spill batch",
        ));
    }
    Ok(true)
}

/// Byte span of one bucket inside a spill file.
#[derive(Debug, Clone, Copy)]
struct BucketSpan {
    offset: u64,
    len: u64,
}

/// One map-side input partition's shuffle buckets, spilled to a single
/// file: the `n` target buckets are written sequentially, each as a run of
/// batch frames, with the byte span of every bucket kept in memory so the
/// consuming side can stream exactly the bucket it needs.
#[derive(Debug)]
pub struct SpilledBuckets {
    _dir: Arc<SpillDir>,
    path: PathBuf,
    spans: Vec<BucketSpan>,
}

impl SpilledBuckets {
    /// Spill `buckets` to a fresh file in the budget's run directory and
    /// record the spill volume against the budget's counters.
    pub fn write<T: SpillCodec>(budget: &MemBudget, buckets: &[Vec<T>]) -> io::Result<Self> {
        let (dir, path) = budget.spill_file()?;
        let mut out = BufWriter::new(File::create(&path)?);
        let mut scratch = Vec::new();
        let mut spans = Vec::with_capacity(buckets.len());
        let mut offset = 0u64;
        let mut batches = 0u64;
        for bucket in buckets {
            let mut len = 0u64;
            for chunk in bucket.chunks(SPILL_BATCH_RECORDS.max(1)) {
                len += write_batch(&mut out, chunk, &mut scratch)?;
                batches += 1;
            }
            spans.push(BucketSpan { offset, len });
            offset += len;
        }
        out.flush()?;
        budget.note_spill(batches, offset);
        Ok(SpilledBuckets {
            _dir: dir,
            path,
            spans,
        })
    }

    /// Number of target buckets in this spill file.
    pub fn num_buckets(&self) -> usize {
        self.spans.len()
    }

    /// Read bucket `j` back, appending its records (in original order) to
    /// `out`.
    pub fn read_bucket_into<T: SpillCodec>(&self, j: usize, out: &mut Vec<T>) -> io::Result<()> {
        let span = self.spans[j];
        if span.len == 0 {
            return Ok(());
        }
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(span.offset))?;
        let mut reader = BufReader::new(file).take(span.len);
        let mut batch = Vec::new();
        while read_batch(&mut reader, &mut batch)? {
            out.append(&mut batch);
        }
        Ok(())
    }
}

/// A sorted run of records spilled to its own file, for external sorts:
/// write runs with [`SpillRun::write`], then merge-stream them back with
/// [`SpillRun::cursor`].
#[derive(Debug)]
pub struct SpillRun {
    _dir: Arc<SpillDir>,
    path: PathBuf,
    records: u64,
}

impl SpillRun {
    /// Spill `records` (already sorted by the caller) to a fresh file.
    pub fn write<T: SpillCodec>(budget: &MemBudget, records: &[T]) -> io::Result<Self> {
        let (dir, path) = budget.spill_file()?;
        let mut out = BufWriter::new(File::create(&path)?);
        let mut scratch = Vec::new();
        let mut bytes = 0u64;
        let mut batches = 0u64;
        for chunk in records.chunks(SPILL_BATCH_RECORDS.max(1)) {
            bytes += write_batch(&mut out, chunk, &mut scratch)?;
            batches += 1;
        }
        out.flush()?;
        budget.note_spill(batches, bytes);
        Ok(SpillRun {
            _dir: dir,
            path,
            records: records.len() as u64,
        })
    }

    /// Number of records in the run.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// `true` when the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// A streaming cursor over the run, one batch resident at a time.
    pub fn cursor<T: SpillCodec>(&self) -> io::Result<RunCursor<T>> {
        Ok(RunCursor {
            reader: BufReader::new(File::open(&self.path)?),
            batch: Vec::new().into_iter(),
        })
    }
}

/// Streaming reader over one [`SpillRun`]; holds a single decoded batch in
/// memory at a time.
#[derive(Debug)]
pub struct RunCursor<T> {
    reader: BufReader<File>,
    batch: std::vec::IntoIter<T>,
}

impl<T: SpillCodec> RunCursor<T> {
    /// Next record, or `Ok(None)` at end of run.
    pub fn next_record(&mut self) -> io::Result<Option<T>> {
        loop {
            if let Some(record) = self.batch.next() {
                return Ok(Some(record));
            }
            let mut batch = Vec::new();
            if !read_batch(&mut self.reader, &mut batch)? {
                return Ok(None);
            }
            self.batch = batch.into_iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip<T: SpillCodec + Clone + PartialEq + std::fmt::Debug>(records: &[T]) {
        let mut payload = Vec::new();
        for r in records {
            r.encode(&mut payload);
        }
        assert_eq!(
            payload.len() as u64,
            encoded_len_of(records),
            "encoded_len exact"
        );
        let mut cursor: &[u8] = &payload;
        let decoded: Vec<T> = (0..records.len())
            .map(|_| T::decode(&mut cursor).expect("decode"))
            .collect();
        assert!(cursor.is_empty(), "decode consumed everything");
        assert_eq!(&decoded, records);
        // Re-encoding the decoded records reproduces the bytes exactly.
        let mut again = Vec::new();
        for r in &decoded {
            r.encode(&mut again);
        }
        assert_eq!(again, payload, "re-encode is bit-exact");
    }

    proptest! {
        #[test]
        fn prop_primitive_tuples_round_trip(records in proptest::collection::vec(
            (any::<u32>(), (any::<u8>(), any::<u64>())), 0..200)) {
            round_trip(&records);
        }

        #[test]
        fn prop_strings_round_trip(records in proptest::collection::vec(
            (any::<u32>(), "[a-zA-Z0-9 àéîøū]{0,24}"), 0..100)) {
            round_trip(&records);
        }

        #[test]
        fn prop_nested_round_trip(records in proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u16>(), 0..8),
             proptest::option::of(any::<i64>())), 0..100)) {
            round_trip(&records);
        }

        #[test]
        fn prop_floats_round_trip_bit_exact(records in proptest::collection::vec(
            (any::<f64>(), any::<f32>()), 0..100)) {
            // PartialEq on NaN would fail, so compare bit patterns.
            let mut payload = Vec::new();
            for r in &records { r.encode(&mut payload); }
            let mut cursor: &[u8] = &payload;
            for r in &records {
                let (a, b) = <(f64, f32)>::decode(&mut cursor).expect("decode");
                prop_assert_eq!(a.to_bits(), r.0.to_bits());
                prop_assert_eq!(b.to_bits(), r.1.to_bits());
            }
            prop_assert!(cursor.is_empty());
        }

        #[test]
        fn prop_spilled_buckets_round_trip(buckets in proptest::collection::vec(
            proptest::collection::vec((any::<u32>(), any::<u64>()), 0..50), 1..8)) {
            let budget = MemBudget::limited(1);
            let spilled = SpilledBuckets::write(&budget, &buckets).expect("spill");
            prop_assert_eq!(spilled.num_buckets(), buckets.len());
            for (j, bucket) in buckets.iter().enumerate() {
                let mut back: Vec<(u32, u64)> = Vec::new();
                spilled.read_bucket_into(j, &mut back).expect("read bucket");
                prop_assert_eq!(&back, bucket);
            }
            if buckets.iter().any(|b| !b.is_empty()) {
                prop_assert!(budget.spilled_bytes() > 0);
            }
        }

        #[test]
        fn prop_spill_run_streams_in_order(mut records in proptest::collection::vec(
            (any::<u32>(), any::<u32>()), 0..500)) {
            records.sort_unstable();
            let budget = MemBudget::limited(1);
            let run = SpillRun::write(&budget, &records).expect("spill run");
            prop_assert_eq!(run.len(), records.len() as u64);
            let mut cursor = run.cursor::<(u32, u32)>().expect("cursor");
            let mut back = Vec::new();
            while let Some(r) = cursor.next_record().expect("stream") {
                back.push(r);
            }
            prop_assert_eq!(back, records);
        }
    }

    #[test]
    fn batch_frames_span_multiple_batches() {
        // More records than one batch frame holds: exercises the chunked
        // writer and the cursor's batch-refill path.
        let records: Vec<u32> = (0..(SPILL_BATCH_RECORDS as u32 * 2 + 17)).collect();
        let budget = MemBudget::limited(1);
        let run = SpillRun::write(&budget, &records).expect("spill run");
        assert!(budget.spill_batches() >= 3, "multiple frames written");
        let mut cursor = run.cursor::<u32>().expect("cursor");
        let mut count = 0u32;
        while let Some(r) = cursor.next_record().expect("stream") {
            assert_eq!(r, count);
            count += 1;
        }
        assert_eq!(count as usize, records.len());
    }

    #[test]
    fn truncated_batch_is_invalid_data() {
        let mut payload = Vec::new();
        let records: Vec<u32> = vec![1, 2, 3];
        let mut scratch = Vec::new();
        write_batch(&mut payload, &records, &mut scratch).unwrap();
        payload.truncate(payload.len() - 1);
        let mut reader: &[u8] = &payload;
        let mut batch: Vec<u32> = Vec::new();
        assert!(read_batch(&mut reader, &mut batch).is_err());
    }
}
