//! Fused pipelined execution: a bounded MPMC morsel channel plus a
//! produce-or-consume stage operator that overlaps two stages of a
//! pipeline inside one pool batch.
//!
//! The staged engine runs `prune → score` as two barriers: every pruned
//! candidate pair is materialized before the first one is scored. The
//! [`pipelined_stage`] operator fuses them: every worker runs a small
//! scheduling loop that either *produces* the next morsel (claimed off an
//! atomic counter) or *consumes* a produced payload popped from the
//! bounded [`MorselQueue`]. Backpressure is cooperative — a worker that
//! finds the channel at capacity drains it before producing more — so the
//! set of in-flight payloads is bounded by `capacity + workers` and the
//! full producer output is never resident at once on the hot path.
//!
//! ## Determinism
//!
//! Results are slot-indexed: morsel `k`'s produced payload and consumed
//! output land in slots `k` of two pre-sized vectors, regardless of which
//! worker ran them or in what order the channel interleaved them. The
//! returned vectors are therefore a pure function of `(morsels, produce,
//! consume)` — worker count and channel capacity are schedule-only knobs
//! (pinned by tests and the core parity suite).

use crate::pool::thread_cpu_ns;
use crate::{Context, MemBudget, StageMetrics};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A bounded multi-producer multi-consumer queue of morsel indices.
///
/// The bound is cooperative: [`MorselQueue::push`] never blocks (a
/// producer has already done the work; refusing the result would waste
/// it), and producers are expected to check [`MorselQueue::is_full`]
/// *before* starting the next morsel and drain the queue instead — the
/// backpressure protocol [`pipelined_stage`] implements. Depth can
/// therefore transiently exceed `capacity` by at most one in-flight
/// payload per worker.
pub struct MorselQueue {
    capacity: usize,
    inner: Mutex<VecDeque<usize>>,
    max_depth: AtomicUsize,
}

impl MorselQueue {
    /// A queue that signals backpressure at `capacity` queued morsels
    /// (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        MorselQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
            max_depth: AtomicUsize::new(0),
        }
    }

    /// The backpressure threshold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` when the queue holds at least `capacity` morsels — producers
    /// should consume instead of producing.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// `true` when no morsel is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue ever got (for stage reports).
    pub fn max_depth(&self) -> usize {
        self.max_depth.load(Ordering::Relaxed)
    }

    /// Enqueue a produced morsel index. Never blocks (see type docs).
    pub fn push(&self, k: usize) {
        let mut q = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        q.push_back(k);
        self.max_depth.fetch_max(q.len(), Ordering::Relaxed);
    }

    /// Dequeue the oldest produced morsel index, if any.
    pub fn pop(&self) -> Option<usize> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front()
    }
}

/// What one [`pipelined_stage`] run did, beyond its outputs: the overlap
/// accounting a fused stage reports (produce vs consume CPU on the same
/// wall interval, channel pressure, stall time).
#[derive(Debug, Clone, Default)]
pub struct FusedStageStats {
    /// Number of morsels processed (produced and consumed).
    pub morsels: usize,
    /// CPU time spent inside `produce` closures across all workers.
    pub produce_busy: Duration,
    /// CPU time spent inside `consume` closures across all workers.
    pub consume_busy: Duration,
    /// Wall time workers spent with nothing claimable — production
    /// exhausted, channel empty, but peers still in flight (plus the
    /// pool's own first-claim dispatch wait).
    pub queue_wait: Duration,
    /// Times a worker found the channel at capacity and drained it instead
    /// of producing — each one is a backpressure event.
    pub backpressure_yields: u64,
    /// Deepest the channel ever got (≤ capacity + workers by protocol).
    pub max_queue_depth: usize,
    /// Wall-clock time of the whole fused batch.
    pub wall: Duration,
    /// Per-worker-slot CPU time for the batch (max entry = critical path).
    pub per_worker_busy: Vec<Duration>,
}

impl FusedStageStats {
    /// Total CPU across produce + consume — on the staged path this work
    /// runs in two serial barriers, so `busy / wall` per worker is the
    /// overlap win the fused schedule achieved.
    pub fn busy_time(&self) -> Duration {
        self.produce_busy + self.consume_busy
    }

    /// The slowest worker's CPU time — the batch's critical path.
    pub fn critical_path(&self) -> Duration {
        self.per_worker_busy
            .iter()
            .copied()
            .max()
            .unwrap_or_default()
    }
}

/// Write-once result slots shared across the fused batch's workers.
///
/// SAFETY invariant: slot `k` is written exactly once — by the producer
/// that claimed morsel `k` (produced slots) or the consumer that popped
/// `k` from the channel (consumed slots) — and only read after that write
/// is published through the channel mutex (consumers) or the pool's batch
/// join (the driver).
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

unsafe impl<T: Send + Sync> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(n: usize) -> Self {
        Slots((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// Write slot `k`. Caller must be its unique writer.
    unsafe fn write(&self, k: usize, value: T) {
        *self.0[k].get() = Some(value);
    }

    /// Borrow slot `k`. Caller must have observed the write via the
    /// channel (or the batch join).
    unsafe fn get(&self, k: usize) -> &T {
        (*self.0[k].get())
            .as_ref()
            .expect("fused slot read before its write was published")
    }

    fn into_vec(self) -> Vec<T> {
        self.0
            .into_iter()
            .map(|c| {
                c.into_inner()
                    .expect("fused stage lost a morsel result slot")
            })
            .collect()
    }
}

/// Run a fused two-stage pipeline over `morsels` on the context's worker
/// pool: `produce(worker, &morsel)` builds morsel `k`'s payload,
/// `consume(worker, &payload)` transforms it, and both stages execute
/// concurrently inside **one** pool batch — worker loops interleave
/// producing and consuming through a bounded [`MorselQueue`] of
/// `capacity` payloads (see [`fused_channel_capacity`] for a
/// budget-aware default).
///
/// Returns `(produced, consumed, stats)` with both vectors in morsel
/// order — byte-identical at any worker count and any capacity, provided
/// `produce`/`consume` are pure functions of their morsel (scratch reuse
/// via [`crate::WorkerLocal`] is fine). A [`StageMetrics`] row named
/// `name` is recorded with the batch's busy/queue-wait/per-worker times.
pub fn pipelined_stage<M, P, C, FP, FC>(
    ctx: &Context,
    name: &str,
    morsels: &[M],
    capacity: usize,
    produce: FP,
    consume: FC,
) -> (Vec<P>, Vec<C>, FusedStageStats)
where
    M: Sync,
    P: Send + Sync,
    C: Send + Sync,
    FP: Fn(usize, &M) -> P + Send + Sync,
    FC: Fn(usize, &P) -> C + Send + Sync,
{
    let wall_start = Instant::now();
    let n = morsels.len();
    if n == 0 {
        ctx.record_stage(StageMetrics::named(name));
        return (Vec::new(), Vec::new(), FusedStageStats::default());
    }

    let queue = MorselQueue::new(capacity);
    let next = AtomicUsize::new(0);
    let consumed_count = AtomicUsize::new(0);
    let produce_busy_ns = AtomicU64::new(0);
    let consume_busy_ns = AtomicU64::new(0);
    let stall_ns = AtomicU64::new(0);
    let backpressure = AtomicU64::new(0);
    let produced_slots = Slots::<P>::new(n);
    let consumed_slots = Slots::<C>::new(n);

    let drain_one = |worker: usize, is_backpressure: bool| -> bool {
        let Some(k) = queue.pop() else { return false };
        if is_backpressure {
            backpressure.fetch_add(1, Ordering::Relaxed);
        }
        let t0 = thread_cpu_ns();
        // SAFETY: `k` was pushed after its produced slot was written (the
        // channel mutex publishes the write), and pop grants this worker
        // unique consumption rights for `k`.
        let c = consume(worker, unsafe { produced_slots.get(k) });
        consume_busy_ns.fetch_add(thread_cpu_ns().saturating_sub(t0), Ordering::Relaxed);
        // SAFETY: unique consumer of `k` writes consumed slot `k` once.
        unsafe { consumed_slots.write(k, c) };
        consumed_count.fetch_add(1, Ordering::Release);
        true
    };

    let worker_loop = |worker: usize| {
        loop {
            // Backpressure protocol: with the channel at capacity (or
            // production exhausted), drain before producing more.
            let full = queue.is_full();
            let exhausted = next.load(Ordering::Relaxed) >= n;
            if (full || exhausted) && drain_one(worker, full && !exhausted) {
                continue;
            }
            // Claim and produce the next morsel.
            if !exhausted {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i < n {
                    let t0 = thread_cpu_ns();
                    let p = produce(worker, &morsels[i]);
                    produce_busy_ns
                        .fetch_add(thread_cpu_ns().saturating_sub(t0), Ordering::Relaxed);
                    // SAFETY: `i` was claimed exactly once; write precedes
                    // the push that publishes it.
                    unsafe { produced_slots.write(i, p) };
                    queue.push(i);
                    continue;
                }
            }
            // Nothing claimable right now: either everything is done, or a
            // peer is mid-morsel and will push shortly.
            if drain_one(worker, false) {
                continue;
            }
            if consumed_count.load(Ordering::Acquire) >= n {
                break;
            }
            let t0 = Instant::now();
            std::thread::yield_now();
            stall_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    };

    // One long-lived loop task per worker slot, all inside a single pool
    // batch — the pool's one-batch-at-a-time invariant holds because the
    // fusion happens *inside* the batch, not across two of them.
    let (_, pool_stats) = ctx
        .pool()
        .run_on_workers(ctx.workers(), |worker, _task| worker_loop(worker));

    let stats = FusedStageStats {
        morsels: n,
        produce_busy: Duration::from_nanos(produce_busy_ns.into_inner()),
        consume_busy: Duration::from_nanos(consume_busy_ns.into_inner()),
        queue_wait: pool_stats.queue_wait + Duration::from_nanos(stall_ns.into_inner()),
        backpressure_yields: backpressure.into_inner(),
        max_queue_depth: queue.max_depth(),
        wall: wall_start.elapsed(),
        per_worker_busy: pool_stats.per_worker_busy.clone(),
    };

    let mut metrics = StageMetrics::named(name);
    metrics.tasks = n;
    metrics.input_records = n as u64;
    metrics.output_records = n as u64;
    metrics.wall_time = stats.wall;
    metrics.busy_time = pool_stats.busy_time;
    metrics.queue_wait = stats.queue_wait;
    metrics.per_worker_busy = pool_stats.per_worker_busy;
    ctx.record_stage(metrics);

    (produced_slots.into_vec(), consumed_slots.into_vec(), stats)
}

/// Channel capacity for a fused stage under a [`MemBudget`]: unlimited
/// budgets get `4 × workers` queued payloads (enough slack that neither
/// side stalls on the other's jitter); limited budgets are clamped so the
/// queued payloads fit in an eighth of the budget at the caller's
/// estimated payload size, never below 1 (the pipeline must still move).
pub fn fused_channel_capacity(budget: &MemBudget, workers: usize, payload_bytes: u64) -> usize {
    let base = (workers * 4).max(2);
    if !budget.is_limited() {
        return base;
    }
    let allowed = (budget.limit_bytes() / 8).max(64 * 1024) / payload_bytes.max(1);
    (allowed as usize).clamp(1, base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_sum(workers: usize, capacity: usize, n: u64) -> (Vec<u64>, Vec<u64>, FusedStageStats) {
        let ctx = Context::new(workers);
        let morsels: Vec<u64> = (0..n).collect();
        pipelined_stage(
            &ctx,
            "fused_test",
            &morsels,
            capacity,
            |_, &m| m * 3,
            |_, &p| p + 1,
        )
    }

    #[test]
    fn outputs_are_morsel_ordered_and_schedule_invariant() {
        let expected_p: Vec<u64> = (0..257).map(|m| m * 3).collect();
        let expected_c: Vec<u64> = (0..257).map(|m| m * 3 + 1).collect();
        for workers in [1, 2, 4, 8] {
            for capacity in [1, 2, 7, 1 << 20] {
                let (p, c, stats) = run_sum(workers, capacity, 257);
                assert_eq!(p, expected_p, "workers={workers} capacity={capacity}");
                assert_eq!(c, expected_c, "workers={workers} capacity={capacity}");
                assert_eq!(stats.morsels, 257);
            }
        }
    }

    #[test]
    fn queue_depth_respects_cooperative_bound() {
        for (workers, capacity) in [(4, 1), (4, 2), (2, 3)] {
            let (_, _, stats) = run_sum(workers, capacity, 500);
            assert!(
                stats.max_queue_depth <= capacity + workers,
                "depth {} exceeds capacity {capacity} + workers {workers}",
                stats.max_queue_depth
            );
        }
    }

    #[test]
    fn tiny_capacity_under_contention_sees_backpressure() {
        // With a single-payload channel, many workers and cheap consume,
        // producers must keep running into a full channel.
        let ctx = Context::new(4);
        let morsels: Vec<u64> = (0..2000).collect();
        let (_, _, stats) = pipelined_stage(
            &ctx,
            "fused_bp",
            &morsels,
            1,
            |_, &m| {
                // Production outpaces consumption.
                std::hint::black_box(m)
            },
            |_, &p| {
                let mut h = p;
                for _ in 0..2000 {
                    h = std::hint::black_box(h.wrapping_mul(0x9E3779B97F4A7C15));
                }
                h
            },
        );
        assert!(
            stats.backpressure_yields > 0,
            "expected backpressure events, got {stats:?}"
        );
    }

    #[test]
    fn empty_morsel_list() {
        let (p, c, stats) = run_sum(4, 4, 0);
        assert!(p.is_empty() && c.is_empty());
        assert_eq!(stats.morsels, 0);
    }

    #[test]
    fn single_worker_runs_inline_and_completes() {
        let (p, c, _) = run_sum(1, 1, 64);
        assert_eq!(p.len(), 64);
        assert_eq!(c[63], 63 * 3 + 1);
    }

    #[test]
    fn records_stage_metrics_with_queue_wait_accounting() {
        let ctx = Context::new(2);
        let morsels: Vec<u64> = (0..100).collect();
        let (_, _, stats) =
            pipelined_stage(&ctx, "fused_metrics", &morsels, 4, |_, &m| m, |_, &p| p);
        let snap = ctx.metrics();
        let stage = snap
            .stages
            .iter()
            .find(|s| s.name == "fused_metrics")
            .expect("fused stage recorded");
        assert_eq!(stage.tasks, 100);
        assert_eq!(stage.input_records, 100);
        assert_eq!(stage.queue_wait, stats.queue_wait);
        assert!(!stage.per_worker_busy.is_empty());
        assert!(stats.busy_time() <= stage.busy_time + Duration::from_millis(50));
    }

    #[test]
    fn channel_capacity_scales_with_budget() {
        let unlimited = MemBudget::unlimited();
        assert_eq!(fused_channel_capacity(&unlimited, 4, 1 << 20), 16);
        assert_eq!(fused_channel_capacity(&unlimited, 1, 1 << 20), 4);
        // 1 MiB budget / 8 = 128 KiB headroom; 1 MiB payloads clamp to 1.
        let tight = MemBudget::limited_mb(1);
        assert_eq!(fused_channel_capacity(&tight, 4, 1 << 20), 1);
        // Tiny payloads fill the headroom: capped at 4 × workers.
        assert_eq!(fused_channel_capacity(&tight, 4, 16), 16);
    }

    #[test]
    fn morsel_queue_is_fifo_and_tracks_depth() {
        let q = MorselQueue::new(2);
        assert!(q.is_empty());
        q.push(7);
        q.push(3);
        assert!(q.is_full());
        q.push(9); // cooperative bound: push never blocks
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), None);
        assert_eq!(q.max_depth(), 3);
        assert_eq!(MorselQueue::new(0).capacity(), 1);
    }
}
