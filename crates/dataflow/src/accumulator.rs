//! Accumulators: write-only counters tasks can bump, read on the driver.
//!
//! Spark jobs use accumulators for side-channel statistics (records
//! dropped, malformed rows, comparisons executed) that don't belong in the
//! dataset itself. Same contract here: any task may `add`, only the driver
//! should `value()` — and because stages are eager, a read after the stage
//! returns the final count (no Spark-style lazy-evaluation surprises).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, thread-safe counter. Cheap to clone into task closures.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    value: Arc<AtomicU64>,
    name: Arc<str>,
}

impl Accumulator {
    pub(crate) fn new(name: &str) -> Self {
        Accumulator {
            value: Arc::new(AtomicU64::new(0)),
            name: Arc::from(name),
        }
    }

    /// Add `n` to the counter (callable from any task).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value. Exact once the stages that bump it have completed
    /// (which is always the case after the operator call returns — stages
    /// are eager).
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The accumulator's name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reset to zero (between experiment repetitions).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Context;

    #[test]
    fn counts_across_tasks() {
        let ctx = Context::new(4);
        let acc = ctx.accumulator("evens");
        let ds = ctx.parallelize((0..1000).collect::<Vec<u64>>(), 8);
        let acc2 = acc.clone();
        ds.for_each(move |x| {
            if x % 2 == 0 {
                acc2.add(1);
            }
        });
        assert_eq!(acc.value(), 500);
        assert_eq!(acc.name(), "evens");
    }

    #[test]
    fn add_amounts_and_reset() {
        let ctx = Context::new(2);
        let acc = ctx.accumulator("bytes");
        acc.add(10);
        acc.add(32);
        assert_eq!(acc.value(), 42);
        acc.reset();
        assert_eq!(acc.value(), 0);
    }

    #[test]
    fn clones_share_state() {
        let acc = Accumulator::new("x");
        let c = acc.clone();
        c.add(7);
        assert_eq!(acc.value(), 7);
    }

    #[test]
    fn exact_after_eager_stage() {
        // The value read immediately after a map is final — eager stages.
        let ctx = Context::new(4);
        let acc = ctx.accumulator("seen");
        let ds = ctx.parallelize((0..100).collect::<Vec<u64>>(), 4);
        let acc2 = acc.clone();
        let mapped = ds.map(move |x| {
            acc2.add(1);
            x + 1
        });
        assert_eq!(acc.value(), 100);
        assert_eq!(mapped.count(), 100);
    }
}
