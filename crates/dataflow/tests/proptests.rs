//! Property-based tests of the dataflow engine against sequential models.

use proptest::prelude::*;
use sparker_dataflow::{Context, MemBudget};
use std::collections::BTreeMap;

fn ctx_strategy() -> impl Strategy<Value = (usize, usize)> {
    // (workers, partitions)
    (1usize..=8, 1usize..=12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_collect_is_identity_plus_fn(
        data in prop::collection::vec(any::<i32>(), 0..300),
        (workers, parts) in ctx_strategy(),
    ) {
        let ctx = Context::with_partitions(workers, parts);
        let ds = ctx.parallelize(data.clone(), parts);
        let out = ds.map(|x| x.wrapping_mul(3)).collect();
        let expected: Vec<i32> = data.iter().map(|x| x.wrapping_mul(3)).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn filter_preserves_relative_order(
        data in prop::collection::vec(any::<u8>(), 0..300),
        (workers, parts) in ctx_strategy(),
    ) {
        let ctx = Context::with_partitions(workers, parts);
        let ds = ctx.parallelize(data.clone(), parts);
        let out = ds.filter(|x| x % 2 == 0).collect();
        let expected: Vec<u8> = data.into_iter().filter(|x| x % 2 == 0).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn group_by_key_matches_btreemap_model(
        data in prop::collection::vec((0u8..20, any::<i16>()), 0..300),
        (workers, parts) in ctx_strategy(),
    ) {
        let ctx = Context::with_partitions(workers, parts);
        let ds = ctx.parallelize(data.clone(), parts);
        let mut grouped: BTreeMap<u8, Vec<i16>> = BTreeMap::new();
        for (k, v) in ds.group_by_key().collect() {
            prop_assert!(grouped.insert(k, v).is_none(), "duplicate key in output");
        }
        let mut model: BTreeMap<u8, Vec<i16>> = BTreeMap::new();
        for (k, v) in data {
            model.entry(k).or_default().push(v);
        }
        prop_assert_eq!(grouped, model);
    }

    #[test]
    fn spillable_group_by_key_is_identical_at_any_budget(
        data in prop::collection::vec((0u32..40, any::<u32>()), 0..300),
        (workers, parts) in ctx_strategy(),
        budget_bytes in prop_oneof![Just(0u64), 1u64..4096],
    ) {
        // 0 = unlimited; tiny byte budgets force every partition to spill.
        let budget = if budget_bytes == 0 {
            MemBudget::unlimited()
        } else {
            MemBudget::limited(budget_bytes)
        };
        let ctx = Context::with_partitions(workers, parts).with_budget(budget);
        let plain = ctx.parallelize(data.clone(), parts).group_by_key().collect();
        let spillable = ctx
            .parallelize(data.clone(), parts)
            .group_by_key_spillable()
            .collect();
        prop_assert_eq!(spillable, plain);
    }

    #[test]
    fn reduce_by_key_matches_group_then_fold(
        data in prop::collection::vec((0u8..10, -100i64..100), 0..200),
        (workers, parts) in ctx_strategy(),
    ) {
        let ctx = Context::with_partitions(workers, parts);
        let ds = ctx.parallelize(data.clone(), parts);
        let reduced: BTreeMap<u8, i64> = ds.reduce_by_key(|a, b| a + *b).collect_as_map().into_iter().collect();
        let mut model: BTreeMap<u8, i64> = BTreeMap::new();
        for (k, v) in data {
            *model.entry(k).or_default() += v;
        }
        prop_assert_eq!(reduced, model);
    }

    #[test]
    fn fold_equals_iterator_sum(
        data in prop::collection::vec(-1000i64..1000, 0..300),
        (workers, parts) in ctx_strategy(),
    ) {
        let ctx = Context::with_partitions(workers, parts);
        let ds = ctx.parallelize(data.clone(), parts);
        prop_assert_eq!(ds.fold(0i64, |a, b| a + b), data.iter().sum::<i64>());
    }

    #[test]
    fn distinct_matches_set_model(
        data in prop::collection::vec(0u16..50, 0..300),
        (workers, parts) in ctx_strategy(),
    ) {
        let ctx = Context::with_partitions(workers, parts);
        let ds = ctx.parallelize(data.clone(), parts);
        let mut out = ds.distinct().collect();
        out.sort_unstable();
        let mut expected: Vec<u16> = data.into_iter().collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn join_matches_nested_loop_model(
        left in prop::collection::vec((0u8..8, any::<u8>()), 0..60),
        right in prop::collection::vec((0u8..8, any::<u8>()), 0..60),
        (workers, parts) in ctx_strategy(),
    ) {
        let ctx = Context::with_partitions(workers, parts);
        let l = ctx.parallelize(left.clone(), parts);
        let r = ctx.parallelize(right.clone(), parts);
        let mut out = l.join(&r).collect();
        out.sort_unstable();
        let mut model: Vec<(u8, (u8, u8))> = Vec::new();
        for &(kl, vl) in &left {
            for &(kr, vr) in &right {
                if kl == kr {
                    model.push((kl, (vl, vr)));
                }
            }
        }
        model.sort_unstable();
        prop_assert_eq!(out, model);
    }

    #[test]
    fn results_invariant_to_worker_count(
        data in prop::collection::vec((0u8..15, any::<i8>()), 0..200),
        parts in 1usize..10,
    ) {
        let run = |workers: usize| {
            let ctx = Context::with_partitions(workers, parts);
            ctx.parallelize(data.clone(), parts)
                .group_by_key()
                .map_values(|v| v.len())
                .sort_by(|(k, _)| *k)
                .collect()
        };
        let base = run(1);
        prop_assert_eq!(run(4), base.clone());
        prop_assert_eq!(run(7), base);
    }

    #[test]
    fn sort_by_is_total_and_stable_under_reparition(
        data in prop::collection::vec(any::<i32>(), 0..300),
        (workers, parts) in ctx_strategy(),
    ) {
        let ctx = Context::with_partitions(workers, parts);
        let ds = ctx.parallelize(data.clone(), parts);
        let out = ds.sort_by(|x| *x).collect();
        let mut expected = data;
        expected.sort();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn zip_with_index_is_dense(
        data in prop::collection::vec(any::<u8>(), 0..300),
        (workers, parts) in ctx_strategy(),
    ) {
        let ctx = Context::with_partitions(workers, parts);
        let ds = ctx.parallelize(data.clone(), parts);
        let out = ds.zip_with_index().collect();
        for (i, (v, idx)) in out.iter().enumerate() {
            prop_assert_eq!(*idx, i as u64);
            prop_assert_eq!(*v, data[i]);
        }
    }
}
