//! Shared helpers for the experiment binaries: canonical dataset presets
//! (fixed seeds so every experiment is reproducible) and plain-text table
//! rendering.

use sparker_datasets::{
    generate, generate_dirty, DatasetConfig, Domain, GeneratedDataset, NoiseConfig, ZipfSkew,
};

/// The canonical benchmark suite used by the experiments: one dataset per
/// domain the paper's demo offers, at laptop scale.
pub fn standard_suite() -> Vec<(&'static str, GeneratedDataset)> {
    vec![
        ("abt-buy-like", abt_buy_like(1000)),
        ("dblp-acm-like", bibliographic(1200)),
        ("movies-like", movies(1000)),
        ("dblp-scholar-like", citations(1000)),
    ]
}

/// Abt-Buy-shaped products dataset (the demo's dataset: ~2k products from
/// two catalogues with ~1k matches).
pub fn abt_buy_like(entities: usize) -> GeneratedDataset {
    generate(&DatasetConfig {
        entities,
        unmatched_per_source: entities / 4,
        domain: Domain::Products,
        noise: NoiseConfig::default(),
        seed: 0xAB7_B07,
        skew: None,
    })
}

/// DBLP-ACM-shaped bibliographic dataset.
pub fn bibliographic(entities: usize) -> GeneratedDataset {
    generate(&DatasetConfig {
        entities,
        unmatched_per_source: entities / 4,
        domain: Domain::Bibliographic,
        noise: NoiseConfig::default(),
        seed: 0xDB1_AC4,
        skew: None,
    })
}

/// Movies-shaped dataset.
pub fn movies(entities: usize) -> GeneratedDataset {
    generate(&DatasetConfig {
        entities,
        unmatched_per_source: entities / 4,
        domain: Domain::Movies,
        noise: NoiseConfig::default(),
        seed: 0x303135,
        skew: None,
    })
}

/// DBLP–Scholar-shaped dataset: structured bibliography vs free-text
/// citation strings.
pub fn citations(entities: usize) -> GeneratedDataset {
    generate(&DatasetConfig {
        entities,
        unmatched_per_source: entities / 4,
        domain: Domain::Citations,
        noise: NoiseConfig::default(),
        seed: 0x5C401A,
        skew: None,
    })
}

/// Dirty products catalogue with rank-correlated Zipfian block skew: the
/// first eighth of the file is "popular" and draws many tokens from a
/// Zipf-distributed hot pool, so the blocking graph has a contiguous hub
/// region at low profile ids — the worst case for equal-count contiguous
/// partitioning. The pool is wide and the exponent mild so the hub is made
/// of *many mid-size* hot blocks: those survive the standard
/// purge + block-filtering pipeline (which kills the few monster blocks)
/// and keep the hub dense while the tail goes sparse. Same seed as
/// [`uniform_dirty`], so the skew knob is the only delta.
pub fn skewed_dirty(entities: usize) -> GeneratedDataset {
    generate_dirty(
        &DatasetConfig {
            entities,
            unmatched_per_source: 0,
            domain: Domain::Products,
            noise: NoiseConfig::default(),
            seed: 0x51E3BF,
            skew: Some(ZipfSkew {
                hot_tokens: 1000,
                exponent: 0.4,
                hot_entity_fraction: 0.125,
                appends: 96,
            }),
        },
        2,
    )
}

/// The unskewed control for [`skewed_dirty`]: identical configuration with
/// the Zipf knob off.
pub fn uniform_dirty(entities: usize) -> GeneratedDataset {
    generate_dirty(
        &DatasetConfig {
            entities,
            unmatched_per_source: 0,
            domain: Domain::Products,
            noise: NoiseConfig::default(),
            seed: 0x51E3BF,
            skew: None,
        },
        2,
    )
}

/// Minimal fixed-width table printer for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with per-column widths, right-aligning numeric-looking cells.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let numeric: Vec<bool> = (0..cols)
            .map(|i| {
                !self.rows.is_empty()
                    && self.rows.iter().all(|r| {
                        r[i].trim_start_matches(['-', '+'])
                            .chars()
                            .all(|ch| ch.is_ascii_digit() || ch == '.' || ch == 'x' || ch == '%')
                            && !r[i].is_empty()
                    })
            })
            .collect();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if numeric[i] {
                        format!("{:>width$}", c, width = widths[i])
                    } else {
                        format!("{:<width$}", c, width = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 4 decimals (the experiments' standard precision).
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".to_string(), "1.0".to_string()]);
        t.row(vec!["b".to_string(), "20.5".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("20.5"));
        // Numeric column right-aligned.
        assert!(lines[2].ends_with(" 1.0"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".to_string()]);
    }

    #[test]
    fn presets_are_deterministic() {
        let a = abt_buy_like(50);
        let b = abt_buy_like(50);
        assert_eq!(a.collection.profiles(), b.collection.profiles());
        assert_eq!(a.ground_truth.len(), 50);
    }
}
