//! E4 — Figure 6(c,d): manually editing the attribute clusters and
//! drilling into the false positives.
//!
//! The demo's user splits the name-like attributes from the
//! description-like ones ("apparently … a good idea"), sees the number of
//! lost ground-truth pairs increase, and uses the Debug view to learn that
//! the lost pairs matched on keys spanning name *and* description — so the
//! automatic partitioning was better than the manual edit.
//!
//! ```text
//! cargo run --release --bin exp_fig6_manual_edit
//! ```

use sparker_bench::{abt_buy_like, f, Table};
use sparker_blocking::{block_filtering, keyed_blocking, purge_oversized};
use sparker_core::looseschema::AttributePartitioning;
use sparker_core::metablocking::{block_entropies, meta_blocking_graph, BlockGraph};
use sparker_core::profiles::{Pair, SourceId};
use sparker_core::{BlockingQuality, LostPairsReport, Pipeline, PipelineConfig};
use sparker_looseschema::loose_schema_keys;
use std::collections::HashSet;

fn run_with_partitioning(
    ds: &sparker_datasets::GeneratedDataset,
    parts: &AttributePartitioning,
) -> (HashSet<Pair>, BlockingQuality) {
    let blocks = keyed_blocking(&ds.collection, |p| loose_schema_keys(p, parts));
    let blocks = purge_oversized(blocks, ds.collection.len(), 0.5);
    let blocks = block_filtering(blocks, 0.8);
    let entropies = block_entropies(&blocks, parts);
    let graph = BlockGraph::new(&blocks, Some(&entropies));
    let config = sparker_metablocking::MetaBlockingConfig {
        use_entropy: true,
        ..Default::default()
    };
    let retained = meta_blocking_graph(&graph, &config);
    let candidates: HashSet<Pair> = retained.iter().map(|(p, _)| *p).collect();
    let q = BlockingQuality::measure(&candidates, &ds.ground_truth, &ds.collection);
    (candidates, q)
}

fn main() {
    let ds = abt_buy_like(1000);

    // The automatic partitioning found by the loose-schema generator.
    let mut auto_config = PipelineConfig::default();
    auto_config.blocking.loose_schema = Some(Default::default());
    let auto_out = Pipeline::new(auto_config).run_blocker(&ds.collection);
    let auto_parts = auto_out.partitioning.expect("loose schema enabled");

    // The user's manual edit: split names from descriptions (Figure 6(c)).
    let manual_parts = AttributePartitioning::manual(
        &ds.collection,
        vec![
            vec![
                (SourceId(0), "name".to_string()),
                (SourceId(1), "title".to_string()),
            ],
            vec![
                (SourceId(0), "description".to_string()),
                (SourceId(1), "descr".to_string()),
            ],
            vec![
                (SourceId(0), "price".to_string()),
                (SourceId(1), "cost".to_string()),
            ],
        ],
    );

    let (auto_candidates, auto_q) = run_with_partitioning(&ds, &auto_parts);
    let (manual_candidates, manual_q) = run_with_partitioning(&ds, &manual_parts);

    let mut t = Table::new(&[
        "partitioning",
        "partitions",
        "candidates",
        "recall",
        "precision",
        "lost-pairs",
    ]);
    for (name, parts, q) in [
        ("automatic", &auto_parts, &auto_q),
        ("manual-split", &manual_parts, &manual_q),
    ] {
        t.row(vec![
            name.to_string(),
            parts.len().to_string(),
            q.candidates.to_string(),
            f(q.recall),
            f(q.precision),
            q.lost_matches.to_string(),
        ]);
    }
    t.print();

    // The Debug button (Figure 6(d)): why did the manual edit lose pairs?
    let report = LostPairsReport::build(&ds.collection, &ds.ground_truth, &manual_candidates);
    println!(
        "\nDebug view — {} pairs lost under the manual split (vs {} automatic):",
        report.len(),
        LostPairsReport::build(&ds.collection, &ds.ground_truth, &auto_candidates).len()
    );
    for fp in report.lost.iter().take(5) {
        println!(
            "  {} <-> {} | shared keys: {}",
            fp.original_ids.0,
            fp.original_ids.1,
            fp.shared_tokens
                .iter()
                .take(8)
                .cloned()
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    let common = report.most_common_shared_tokens(8);
    println!("\nmost common shared keys among lost pairs: {common:?}");
    println!(
        "\npaper's conclusion: the lost pairs match on keys that span the name and\n\
         description attributes; splitting them was a bad idea — the automatic\n\
         partitioning was better, and schema-name-based partitioning can mislead."
    );
}
