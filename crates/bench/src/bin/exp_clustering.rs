//! E12 — entity-clustering algorithm comparison (the framework of
//! Hassanzadeh et al. the paper cites for its clusterer).
//!
//! Runs the same similarity graph through connected components (the
//! paper's default), center, merge–center and unique-mapping clustering,
//! on clean and noisy matcher outputs, reporting pairwise P/R/F1 and the
//! cluster-count statistics. Also demonstrates the GraphX-style
//! label-propagation implementation agreeing with union–find.
//!
//! ```text
//! cargo run --release --bin exp_clustering
//! ```

use sparker_bench::{abt_buy_like, f, Table};
use sparker_clustering::{
    center_clustering, connected_components, connected_components_dataflow,
    merge_center_clustering, star_clustering, unique_mapping_clustering, EntityClusters,
};
use sparker_core::matching::{Matcher, SimilarityMeasure, ThresholdMatcher};
use sparker_core::{PairQuality, Pipeline, PipelineConfig};
use sparker_dataflow::Context;

fn main() {
    let ds = abt_buy_like(1000);
    let blocker = Pipeline::new(PipelineConfig::default()).run_blocker(&ds.collection);

    // Two matcher operating points: strict (clean graph) and loose (noisy
    // graph with spurious edges — where clustering choice matters).
    for (label, threshold) in [("strict matcher (0.5)", 0.5), ("loose matcher (0.2)", 0.2)] {
        let matcher = ThresholdMatcher::new(SimilarityMeasure::Jaccard, threshold);
        let graph = matcher.match_pairs(&ds.collection, blocker.candidates.iter().copied());
        println!("== {label}: {} matching edges ==\n", graph.len());
        let n = ds.collection.len();
        let algos: Vec<(&str, EntityClusters)> = vec![
            (
                "connected-components",
                connected_components(graph.edges(), n),
            ),
            ("center", center_clustering(graph.edges(), n)),
            ("merge-center", merge_center_clustering(graph.edges(), n)),
            ("star", star_clustering(graph.edges(), n)),
            (
                "unique-mapping",
                unique_mapping_clustering(graph.edges(), n, ds.collection.separator()),
            ),
        ];
        let mut t = Table::new(&[
            "algorithm",
            "clusters",
            "non-trivial",
            "largest",
            "precision",
            "recall",
            "F1",
        ]);
        for (name, clusters) in &algos {
            let q = PairQuality::of_clusters(clusters, &ds.ground_truth);
            let largest = clusters
                .non_trivial_clusters()
                .iter()
                .map(|(_, m)| m.len())
                .max()
                .unwrap_or(1);
            t.row(vec![
                name.to_string(),
                clusters.num_clusters().to_string(),
                clusters.non_trivial_clusters().len().to_string(),
                largest.to_string(),
                f(q.precision),
                f(q.recall),
                f(q.f1),
            ]);
        }
        t.print();
        println!();

        // GraphX-style label propagation agrees with union–find.
        let ctx = Context::new(4);
        let lp = connected_components_dataflow(&ctx, graph.edges(), n);
        assert_eq!(lp, algos[0].1, "label propagation == union-find");
    }
    println!(
        "reading: with a strict matcher all algorithms coincide; with a loose\n\
         matcher connected components chains errors into giant clusters (low\n\
         precision), while center/merge-center/unique-mapping contain them —\n\
         the trade-off the clustering framework the paper cites documents."
    );
}
