//! E8 — scalability of the parallel (broadcast-join) meta-blocking.
//!
//! The paper's system exists to scale ER on a cluster; with the dataflow
//! substrate the cluster dimension becomes the engine's worker count.
//! This experiment measures wall-clock, speedup and parallel efficiency of
//! parallel meta-blocking at 1..N workers, the effect of the partition
//! count, and the engine's shuffle/task accounting for the full blocking
//! pipeline.
//!
//! ```text
//! cargo run --release --bin exp_scalability
//! ```

use sparker_bench::{abt_buy_like, Table};
use sparker_blocking::{block_filtering, purge_oversized, token_blocking};
use sparker_dataflow::Context;
use sparker_metablocking::{parallel, BlockGraph, MetaBlockingConfig};
use std::time::Instant;

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "host parallelism: {cores} core(s).{}
",
        if cores == 1 {
            " NOTE: on a single-core host the speedup column is expected to be
             ~1.0x for every worker count; the meaningful readings here are (a) the
             parallelization overhead (time vs the sequential driver) and (b) the
             result equality across worker counts. On a multi-core host the same
             binary reports real speedups."
        } else {
            ""
        }
    );
    let ds = abt_buy_like(3000);
    let blocks = purge_oversized(token_blocking(&ds.collection), ds.collection.len(), 0.5);
    let blocks = block_filtering(blocks, 0.8);
    let graph = std::sync::Arc::new(BlockGraph::new(&blocks, None));
    let config = MetaBlockingConfig::default();
    println!(
        "graph: {} profiles, {} blocks, {} assignments\n",
        graph.num_profiles(),
        graph.num_blocks(),
        graph.total_assignments()
    );

    // Sequential reference.
    let t0 = Instant::now();
    let seq = sparker_metablocking::meta_blocking_graph(&graph, &config);
    let seq_time = t0.elapsed();
    println!(
        "sequential meta-blocking: {:?} ({} retained pairs)\n",
        seq_time,
        seq.len()
    );

    // ---- Speedup vs workers ---------------------------------------------
    println!("== speedup vs workers (parallel broadcast-join meta-blocking) ==\n");
    let mut t = Table::new(&["workers", "time-ms", "speedup", "efficiency", "pairs"]);
    let mut t1 = None;
    for workers in [1usize, 2, 4, 8] {
        let ctx = Context::new(workers);
        // Warm-up + best-of-3 to damp scheduler noise.
        let mut best = None;
        let mut pairs = 0usize;
        for _ in 0..3 {
            let s = Instant::now();
            let out = parallel::meta_blocking(&ctx, &graph, &config);
            let el = s.elapsed();
            pairs = out.len();
            best = Some(best.map_or(el, |b: std::time::Duration| b.min(el)));
        }
        let best = best.unwrap();
        let base = *t1.get_or_insert(best);
        let speedup = base.as_secs_f64() / best.as_secs_f64();
        let _ = cores;
        t.row(vec![
            workers.to_string(),
            format!("{:.1}", best.as_secs_f64() * 1e3),
            format!("{speedup:.2}x"),
            format!("{:.2}", speedup / workers as f64),
            pairs.to_string(),
        ]);
        assert_eq!(pairs, seq.len(), "parallel result must match sequential");
    }
    t.print();

    // ---- Partition-count sensitivity -------------------------------------
    println!("\n== partition-count sensitivity (4 workers) ==\n");
    let mut t = Table::new(&["partitions", "time-ms"]);
    for parts in [1usize, 2, 4, 8, 16, 64] {
        let ctx = Context::with_partitions(4, parts);
        let mut best: Option<std::time::Duration> = None;
        for _ in 0..3 {
            let s = Instant::now();
            let _ = parallel::meta_blocking(&ctx, &graph, &config);
            let el = s.elapsed();
            best = Some(best.map_or(el, |b| b.min(el)));
        }
        t.row(vec![
            parts.to_string(),
            format!("{:.1}", best.unwrap().as_secs_f64() * 1e3),
        ]);
    }
    t.print();

    // ---- Engine accounting for the dataflow blocking pipeline ------------
    println!("\n== engine accounting: dataflow token blocking + filtering (4 workers) ==\n");
    let ctx = Context::new(4);
    let dblocks = sparker_blocking::dataflow::token_blocking(&ctx, &ds.collection);
    let _f = sparker_blocking::dataflow::block_filtering(&ctx, dblocks, 0.8);
    let snap = ctx.metrics();
    let mut t = Table::new(&["stage", "tasks", "in-records", "out-records", "shuffled"]);
    for s in &snap.stages {
        t.row(vec![
            s.name.clone(),
            s.tasks.to_string(),
            s.input_records.to_string(),
            s.output_records.to_string(),
            s.shuffle_records.to_string(),
        ]);
    }
    t.print();
    println!(
        "\ntotals: {} tasks, {} shuffled records, {:?} in stages",
        snap.total_tasks(),
        snap.total_shuffle_records(),
        snap.total_wall_time()
    );
}
