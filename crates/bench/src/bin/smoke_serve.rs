//! Serve smoke for CI: boot the online resolver behind its HTTP API, feed
//! it a slice of the `dirty_10k` preset over the wire from concurrent
//! clients, and print the final `/stats` counts in the batch CLI's
//! `result counts:` format. `ci.sh` also writes the same slice to a
//! JSON-lines file (the path passed as `argv[1]`) and diffs this line
//! against a cold `sparker --source-a <file>` batch run — pinning the
//! service's end state to the batch pipeline through both public
//! front-ends.
//!
//! Usage: `smoke_serve <out.jsonl> [num_profiles]` (default 1000).

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use sparker_core::PipelineConfig;
use sparker_datasets::Preset;
use sparker_profiles::{parse_json, ErKind, JsonValue, Profile};
use sparker_serve::{serve, ResolverState};

/// Serialize one profile the way the JSON-lines loader reads it back:
/// `{"id": ..., "<attr>": "text" | ["text", ...]}` with repeated attribute
/// names folded into arrays.
fn profile_to_json_line(p: &Profile) -> String {
    let mut attrs: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for a in &p.attributes {
        attrs
            .entry(a.name.clone())
            .or_default()
            .push(a.value.clone());
    }
    let mut map = BTreeMap::new();
    map.insert("id".to_string(), JsonValue::String(p.original_id.clone()));
    for (name, mut values) in attrs {
        let v = if values.len() == 1 {
            JsonValue::String(values.pop().unwrap())
        } else {
            JsonValue::Array(values.into_iter().map(JsonValue::String).collect())
        };
        map.insert(name, v);
    }
    JsonValue::Object(map).to_string()
}

/// Serialize one profile for the HTTP API's `POST /profiles` shape:
/// `{"id": ..., "attributes": {"<attr>": "text" | ["text", ...]}}`.
fn profile_to_http_json(p: &Profile) -> String {
    let mut attrs: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for a in &p.attributes {
        attrs
            .entry(a.name.clone())
            .or_default()
            .push(a.value.clone());
    }
    let attributes = attrs
        .into_iter()
        .map(|(name, mut values)| {
            let v = if values.len() == 1 {
                JsonValue::String(values.pop().unwrap())
            } else {
                JsonValue::Array(values.into_iter().map(JsonValue::String).collect())
            };
            (name, v)
        })
        .collect();
    let mut map = BTreeMap::new();
    map.insert("id".to_string(), JsonValue::String(p.original_id.clone()));
    map.insert("attributes".to_string(), JsonValue::Object(attributes));
    JsonValue::Object(map).to_string()
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to smoke server");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().expect("usage: smoke_serve <out.jsonl> [n]");
    let n: usize = args.next().map_or(1000, |v| v.parse().expect("numeric n"));

    let preset = Preset::by_name("dirty_10k").expect("dirty_10k preset");
    let ds = preset.generate();
    let profiles: Vec<Profile> = ds.collection.profiles()[..n].to_vec();

    let jsonl: String = profiles
        .iter()
        .map(profile_to_json_line)
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write(&out_path, &jsonl).expect("write JSONL slice");

    // The batch CLI runs file sources under PipelineConfig::default(); the
    // resolver must be configured identically for the counts to line up.
    let resolver = ResolverState::new(PipelineConfig::default(), ErKind::Dirty);
    let mut handle = serve(resolver, "127.0.0.1:0", 8).expect("bind ephemeral port");
    let addr = handle.addr();

    // Concurrent clients, disjoint slices, batches of 100 per request.
    let clients = 4usize;
    let per_client = profiles.len().div_ceil(clients);
    std::thread::scope(|scope| {
        for chunk in profiles.chunks(per_client) {
            scope.spawn(move || {
                for batch in chunk.chunks(100) {
                    let body = format!(
                        "[{}]",
                        batch
                            .iter()
                            .map(profile_to_http_json)
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                    let (status, reply) = http(addr, "POST", "/profiles", &body);
                    assert_eq!(status, 200, "insert batch rejected: {reply}");
                }
            });
        }
    });

    let (status, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(status, 200, "stats failed: {stats}");
    let stats = parse_json(&stats).expect("stats is well-formed JSON");
    let JsonValue::Object(map) = &stats else {
        panic!("stats must be an object")
    };
    let count = |key: &str| -> u64 {
        match map.get(key) {
            Some(JsonValue::Number(v)) => *v as u64,
            other => panic!("stats field {key}: expected number, got {other:?}"),
        }
    };
    assert_eq!(count("profiles") as usize, profiles.len());
    assert_eq!(count("inserts") as usize, profiles.len());

    handle.shutdown();

    println!(
        "serve smoke: {} profiles over HTTP, fast_path={}",
        profiles.len(),
        matches!(map.get("fast_path"), Some(JsonValue::Bool(true))),
    );
    println!(
        "result counts: candidates={} matches={} entities={}",
        count("candidates"),
        count("matches"),
        count("entities"),
    );
}
