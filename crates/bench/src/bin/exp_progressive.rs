//! E13 (extension) — progressive meta-blocking: recall under a comparison
//! budget.
//!
//! Reproduces the shape of the progressive-ER evaluation (Simonini et al.,
//! ICDE 2018 — reference \[6\] of the demo paper): emit candidate pairs
//! best-first and measure how quickly recall accumulates, compared with
//! block order (the non-progressive baseline) and random order. The
//! progressive curves must dominate: most true matches surface within a
//! small fraction of the comparisons.
//!
//! ```text
//! cargo run --release --bin exp_progressive
//! ```

use sparker_bench::{abt_buy_like, f, Table};
use sparker_blocking::{block_filtering, purge_oversized, token_blocking};
use sparker_metablocking::{
    progressive_global, progressive_node_first, BlockGraph, EdgeScorer, WeightScheme,
};
use sparker_profiles::Pair;

fn recall_at(order: &[Pair], gt: &sparker_profiles::GroundTruth, budget: usize) -> f64 {
    let found = order.iter().take(budget).filter(|p| gt.contains(p)).count();
    found as f64 / gt.len() as f64
}

fn main() {
    let ds = abt_buy_like(1000);
    let blocks = purge_oversized(token_blocking(&ds.collection), ds.collection.len(), 0.5);
    let blocks = block_filtering(blocks, 0.8);
    let graph = BlockGraph::new(&blocks, None);

    // Orders under comparison.
    let global: Vec<Pair> =
        progressive_global(&graph, EdgeScorer::Classic(WeightScheme::ChiSquare), false)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
    let node_first: Vec<Pair> =
        progressive_node_first(&graph, EdgeScorer::Classic(WeightScheme::ChiSquare), false)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
    // Non-progressive baseline: pairs in block order (deduplicated).
    let mut block_order = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for b in blocks.blocks() {
        for p in b.pairs(blocks.kind()) {
            if seen.insert(p) {
                block_order.push(p);
            }
        }
    }
    // Random baseline: deterministic shuffle of the block order.
    let mut random = block_order.clone();
    let mut state = 0x9E3779B97F4A7C15u64;
    for i in (1..random.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        random.swap(i, (state % (i as u64 + 1)) as usize);
    }

    let total = global.len();
    println!(
        "candidate pairs: {total}; true matches: {}\n",
        ds.ground_truth.len()
    );
    println!("== recall at comparison budget (fraction of all candidates) ==\n");
    let mut t = Table::new(&[
        "budget",
        "budget-pairs",
        "progressive-global",
        "progressive-node",
        "block-order",
        "random",
    ]);
    for pct in [0.001, 0.005, 0.01, 0.05, 0.10, 0.25, 0.50, 1.0] {
        let budget = ((total as f64 * pct) as usize).max(1);
        t.row(vec![
            format!("{:.1}%", pct * 100.0),
            budget.to_string(),
            f(recall_at(&global, &ds.ground_truth, budget)),
            f(recall_at(&node_first, &ds.ground_truth, budget)),
            f(recall_at(&block_order, &ds.ground_truth, budget)),
            f(recall_at(&random, &ds.ground_truth, budget)),
        ]);
    }
    t.print();

    // Comparisons needed to reach fixed recall levels.
    println!("\n== comparisons needed for target recall ==\n");
    let mut t = Table::new(&["target", "progressive-global", "block-order", "speedup"]);
    for target in [0.5, 0.8, 0.9, 0.95] {
        let needed = |order: &[Pair]| {
            let goal = (ds.ground_truth.len() as f64 * target).ceil() as usize;
            let mut found = 0usize;
            for (i, p) in order.iter().enumerate() {
                if ds.ground_truth.contains(p) {
                    found += 1;
                    if found >= goal {
                        return Some(i + 1);
                    }
                }
            }
            None
        };
        let (a, b) = (needed(&global), needed(&block_order));
        t.row(vec![
            format!("{:.0}%", target * 100.0),
            a.map_or("-".to_string(), |v| v.to_string()),
            b.map_or("-".to_string(), |v| v.to_string()),
            match (a, b) {
                (Some(a), Some(b)) => format!("{:.1}x", b as f64 / a as f64),
                _ => "-".to_string(),
            },
        ]);
    }
    t.print();
}
