//! E1 + E2 — the paper's toy walk-throughs (Figures 1 and 2), regenerated.
//!
//! Prints the exact blocks, edge weights and pruning decisions of the
//! paper's running example: four bibliographic profiles from two sources,
//! first under schema-agnostic token blocking + CBS/WEP meta-blocking
//! (Figure 1), then under Blast's loose-schema keys with entropy-weighted
//! edges (Figure 2), showing that the two spurious edges retained by the
//! schema-agnostic pass are removed by the entropy weighting.
//!
//! ```text
//! cargo run --release --bin exp_toy_figures
//! ```

use sparker_bench::Table;
use sparker_blocking::{token_blocking, Block, BlockCollection};
use sparker_core::profiles::{ErKind, Profile, ProfileCollection, ProfileId, SourceId};
use sparker_metablocking::{
    meta_blocking_graph, BlockEntropies, BlockGraph, EdgeScorer, MetaBlockingConfig,
    PruningStrategy, WeightScheme,
};

fn figure1_collection() -> ProfileCollection {
    let p1 = Profile::builder(SourceId(0), "p1")
        .attr("Name", "Blast")
        .attr("Authors", "G. Simonini")
        .attr("Abstract", "how to improve meta-blocking")
        .build();
    let p2 = Profile::builder(SourceId(0), "p2")
        .attr("Name", "SparkER")
        .attr("Authors", "L. Gagliardelli")
        .attr("Abstract", "Simonini et al proposed blocking")
        .build();
    let p3 = Profile::builder(SourceId(1), "p3")
        .attr("title", "Blast: loosely schema blocking")
        .attr("author", "Giovanni Simonini")
        .attr("year", "2016")
        .build();
    let p4 = Profile::builder(SourceId(1), "p4")
        .attr("title", "SparkER: parallel Blast")
        .attr("author", "Luca Gagliardelli")
        .attr("year", "2017")
        .build();
    ProfileCollection::clean_clean(vec![p1, p2], vec![p3, p4])
}

fn main() {
    let coll = figure1_collection();
    let name = |p: ProfileId| format!("p{}", p.0 + 1);

    // ---- Figure 1(b): schema-agnostic token blocking -------------------
    println!("== Figure 1(b): schema-agnostic token blocking ==\n");
    let blocks = token_blocking(&coll);
    let mut t = Table::new(&["key", "members"]);
    for b in blocks.blocks() {
        t.row(vec![
            b.key.clone(),
            b.all_members().map(name).collect::<Vec<_>>().join(" "),
        ]);
    }
    t.print();

    // ---- Figure 1(c): CBS weights + prune-below-average -----------------
    println!("\n== Figure 1(c): meta-blocking (CBS weights, keep >= average) ==\n");
    let graph = BlockGraph::new(&blocks, None);
    let config = MetaBlockingConfig {
        scorer: EdgeScorer::Classic(WeightScheme::Cbs),
        pruning: PruningStrategy::Wep { factor: 1.0 },
        use_entropy: false,
    };
    let retained = meta_blocking_graph(&graph, &config);
    let mut t = Table::new(&["edge", "weight", "kept"]);
    for i in 0..4u32 {
        for (j, acc) in graph.neighborhood(ProfileId(i)) {
            if ProfileId(i) >= j {
                continue;
            }
            let kept = retained
                .iter()
                .any(|(p, _)| p.first == ProfileId(i) && p.second == j);
            t.row(vec![
                format!("{}-{}", name(ProfileId(i)), name(j)),
                acc.shared_blocks.to_string(),
                if kept { "yes" } else { "pruned" }.to_string(),
            ]);
        }
    }
    t.print();

    // ---- Figure 2: loose-schema keys + entropy weighting ----------------
    println!("\n== Figure 2(b): loose-schema blocking keys ==\n");
    println!("partition 0 = {{Authors, author}} (entropy 0.8)");
    println!("partition 1 = {{Name, Abstract, title}} (entropy 0.4)\n");
    // The toy's loose-schema blocks (Simonini as author vs Simonini cited).
    let pid = ProfileId;
    let blocks2 = BlockCollection::new(
        ErKind::CleanClean,
        vec![
            Block::clean_clean("blast_1", vec![pid(0)], vec![pid(2), pid(3)]),
            Block::clean_clean("blocking_1", vec![pid(0), pid(1)], vec![pid(2)]),
            Block::clean_clean("simonini_0", vec![pid(0)], vec![pid(2)]),
            Block::clean_clean("gagliardelli_0", vec![pid(1)], vec![pid(3)]),
            Block::clean_clean("sparker_1", vec![pid(1)], vec![pid(3)]),
        ],
    );
    let mut t = Table::new(&["key", "members"]);
    for b in blocks2.blocks() {
        t.row(vec![
            b.key.clone(),
            b.all_members().map(name).collect::<Vec<_>>().join(" "),
        ]);
    }
    t.print();
    println!(
        "\nnote: simonini_0 (author) blocks p1,p3; simonini_1 would hold only p2 -> no block."
    );

    println!("\n== Figure 2(c): entropy-weighted meta-blocking ==\n");
    let entropies = BlockEntropies::new(vec![0.4, 0.4, 0.8, 0.8, 0.4]);
    let graph2 = BlockGraph::new(&blocks2, Some(&entropies));
    let config2 = MetaBlockingConfig {
        scorer: EdgeScorer::Classic(WeightScheme::Cbs),
        pruning: PruningStrategy::Wep { factor: 1.0 },
        use_entropy: true,
    };
    let retained2 = meta_blocking_graph(&graph2, &config2);
    let mut t = Table::new(&["edge", "weight", "kept"]);
    for i in 0..4u32 {
        for (j, acc) in graph2.neighborhood(ProfileId(i)) {
            if ProfileId(i) >= j {
                continue;
            }
            let kept = retained2
                .iter()
                .any(|(p, _)| p.first == ProfileId(i) && p.second == j);
            t.row(vec![
                format!("{}-{}", name(ProfileId(i)), name(j)),
                format!("{:.1}", acc.entropy_sum),
                if kept { "yes" } else { "pruned" }.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nretained: {} edges (paper: p1-p3 at 1.6 and p2-p4 at 1.2; the two red",
        retained2.len()
    );
    println!("edges of Figure 1(c) — p1-p2 and p2-p3 — are now removed).");
}
