//! E3 — Figure 6(a,b): the loose-schema clustering-threshold sweep.
//!
//! The demo starts at threshold 1 ("a schema-agnostic token blocking is
//! applied and all the attributes fall in the same blob cluster"), then
//! lowers it to 0.3 and observes that attribute clusters form, precision
//! increases and the number of candidate pairs drops while recall stays.
//!
//! ```text
//! cargo run --release --bin exp_fig6_threshold_sweep
//! ```

use sparker_bench::{abt_buy_like, f, Table};
use sparker_core::{threshold_sweep, PipelineConfig};

fn main() {
    let ds = abt_buy_like(1000);
    println!(
        "Abt-Buy-shaped dataset: {} profiles, {} matches, {} comparable pairs\n",
        ds.collection.len(),
        ds.ground_truth.len(),
        ds.collection.comparable_pairs()
    );

    let mut base = PipelineConfig::default();
    base.blocking.loose_schema = Some(Default::default());

    let thresholds = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];
    let rows = threshold_sweep(&ds.collection, &ds.ground_truth, &base, &thresholds);

    let mut t = Table::new(&[
        "threshold",
        "attr-partitions",
        "blocks",
        "candidates",
        "recall",
        "precision",
        "lost-pairs",
    ]);
    for r in &rows {
        t.row(vec![
            format!("{:.1}", r.threshold),
            r.attribute_partitions.to_string(),
            r.blocks.to_string(),
            r.quality.candidates.to_string(),
            f(r.quality.recall),
            f(r.quality.precision),
            r.quality.lost_matches.to_string(),
        ]);
    }
    t.print();

    let high = &rows[0];
    let best = rows
        .iter()
        .filter(|r| r.attribute_partitions > 1)
        .max_by(|a, b| {
            a.quality
                .precision
                .partial_cmp(&b.quality.precision)
                .unwrap()
        });
    if let Some(best) = best {
        println!(
            "\npaper's Figure 6(a)->(b) effect: at threshold 1.0 all attributes share the blob\n\
             ({} partitions, {} candidates); at {:.1} clusters form and candidates drop to {}\n\
             ({:.1}x fewer) while recall moves {} -> {}.",
            high.attribute_partitions,
            high.quality.candidates,
            best.threshold,
            best.quality.candidates,
            high.quality.candidates as f64 / best.quality.candidates.max(1) as f64,
            f(high.quality.recall),
            f(best.quality.recall),
        );
    }
}
