//! E5 — Figure 6(e): the meta-blocking debug screen with entropies.
//!
//! Shows the per-partition entropy values computed by the Entropy
//! Extractor and the "large decrease in the number of candidate pairs
//! w.r.t. 6(b)" once entropy-weighted meta-blocking is applied on top of
//! the loose-schema blocks.
//!
//! ```text
//! cargo run --release --bin exp_fig6_metablocking
//! ```

use sparker_bench::{abt_buy_like, f, Table};
use sparker_blocking::{block_filtering, keyed_blocking, purge_oversized};
use sparker_core::{BlockingQuality, Pipeline, PipelineConfig};
use sparker_looseschema::{loose_schema_keys, partition_attributes, LshConfig};
use sparker_metablocking::{block_entropies, meta_blocking_graph, BlockGraph, MetaBlockingConfig};
use sparker_profiles::Pair;
use std::collections::HashSet;

fn main() {
    let ds = abt_buy_like(1000);
    let lsh = LshConfig::default();
    let parts = partition_attributes(&ds.collection, &lsh);

    // Entropy Extractor output (the values panel of Figure 6(e)).
    println!("== Entropy Extractor ==\n");
    let mut t = Table::new(&["partition", "attributes", "entropy"]);
    for p in parts.partitions() {
        t.row(vec![
            format!("{}{}", p.id.0, if p.is_blob { " (blob)" } else { "" }),
            p.attributes
                .iter()
                .map(|(s, n)| format!("s{}:{n}", s.0))
                .collect::<Vec<_>>()
                .join(" "),
            format!("{:.3}", p.entropy),
        ]);
    }
    t.print();

    // Loose-schema blocks after cleaning — the Figure 6(b) state.
    let blocks = keyed_blocking(&ds.collection, |p| loose_schema_keys(p, &parts));
    let blocks = purge_oversized(blocks, ds.collection.len(), 0.5);
    let blocks = block_filtering(blocks, 0.8);
    let before = blocks.candidate_pairs();
    let q_before = BlockingQuality::measure(&before, &ds.ground_truth, &ds.collection);

    // Meta-blocking with entropy — the Figure 6(e) state.
    let entropies = block_entropies(&blocks, &parts);
    let graph = BlockGraph::new(&blocks, Some(&entropies));
    let retained = meta_blocking_graph(
        &graph,
        &MetaBlockingConfig {
            use_entropy: true,
            ..MetaBlockingConfig::default()
        },
    );
    let after: HashSet<Pair> = retained.iter().map(|(p, _)| *p).collect();
    let q_after = BlockingQuality::measure(&after, &ds.ground_truth, &ds.collection);

    // Schema-agnostic end-to-end baseline for reference (Figure 6(a)).
    let agnostic = Pipeline::new(PipelineConfig::default()).run_blocker(&ds.collection);
    let q_agnostic =
        BlockingQuality::measure(&agnostic.candidates, &ds.ground_truth, &ds.collection);

    println!("\n== Candidate pairs per debugging state ==\n");
    let mut t = Table::new(&["state", "candidates", "recall", "precision", "lost"]);
    for (name, q) in [
        ("6(a) schema-agnostic + MB", &q_agnostic),
        ("6(b) loose-schema blocks", &q_before),
        ("6(e) + entropy meta-blocking", &q_after),
    ] {
        t.row(vec![
            name.to_string(),
            q.candidates.to_string(),
            f(q.recall),
            f(q.precision),
            q.lost_matches.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nlarge decrease w.r.t. 6(b): {:.1}x fewer candidate pairs at recall {} -> {}.",
        q_before.candidates as f64 / q_after.candidates.max(1) as f64,
        f(q_before.recall),
        f(q_after.recall),
    );
}
