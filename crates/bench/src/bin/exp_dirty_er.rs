//! E15 — dirty ER: deduplicating a single source.
//!
//! The paper's pipeline handles both clean–clean and dirty ER (a single
//! source that may contain duplicates; every pair is comparable). This
//! experiment measures the full default pipeline on dirty bibliographic
//! data while sweeping the two knobs that define dirty-ER difficulty:
//! the maximum duplicate-cluster size (1 duplicate vs long chains of
//! re-entered records) and the corruption level. Clustering matters more
//! here than in clean–clean: transitivity must reassemble multi-record
//! clusters, and chaining errors compound.
//!
//! ```text
//! cargo run --release --bin exp_dirty_er
//! ```

use sparker_bench::{f, Table};
use sparker_core::{ClusteringAlgorithm, Pipeline, PipelineConfig};
use sparker_datasets::{generate_dirty, DatasetConfig, Domain, NoiseConfig};

fn main() {
    println!("== recall/F1 vs duplicate-cluster size (default noise) ==\n");
    let mut t = Table::new(&[
        "max-cluster",
        "profiles",
        "true-pairs",
        "block-recall",
        "candidates",
        "cluster-F1",
    ]);
    for max_cluster in [2usize, 3, 5, 8] {
        let ds = generate_dirty(
            &DatasetConfig {
                entities: 600,
                domain: Domain::Bibliographic,
                seed: 0xD1127,
                ..DatasetConfig::default()
            },
            max_cluster,
        );
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        let eval = result.evaluate(&ds.ground_truth);
        t.row(vec![
            max_cluster.to_string(),
            ds.collection.len().to_string(),
            ds.ground_truth.len().to_string(),
            f(eval.blocking.recall),
            eval.blocking.candidates.to_string(),
            f(eval.clustering.f1),
        ]);
    }
    t.print();

    println!("\n== noise sensitivity (max-cluster 3) ==\n");
    let mut t = Table::new(&[
        "noise",
        "block-recall",
        "match-recall",
        "match-precision",
        "cluster-F1",
    ]);
    for (name, noise) in [
        ("none", NoiseConfig::none()),
        ("default", NoiseConfig::default()),
        ("heavy", NoiseConfig::heavy()),
    ] {
        let ds = generate_dirty(
            &DatasetConfig {
                entities: 600,
                domain: Domain::Bibliographic,
                noise,
                seed: 0xD1127,
                ..DatasetConfig::default()
            },
            3,
        );
        let result = Pipeline::new(PipelineConfig::default()).run(&ds.collection);
        let eval = result.evaluate(&ds.ground_truth);
        t.row(vec![
            name.to_string(),
            f(eval.blocking.recall),
            f(eval.matching.recall),
            f(eval.matching.precision),
            f(eval.clustering.f1),
        ]);
    }
    t.print();

    println!("\n== clustering algorithm under dirty chains (max-cluster 5, default noise) ==\n");
    let ds = generate_dirty(
        &DatasetConfig {
            entities: 600,
            domain: Domain::Bibliographic,
            seed: 0xD1127,
            ..DatasetConfig::default()
        },
        5,
    );
    let mut t = Table::new(&[
        "algorithm",
        "cluster-precision",
        "cluster-recall",
        "cluster-F1",
    ]);
    for algo in [
        ClusteringAlgorithm::ConnectedComponents,
        ClusteringAlgorithm::Center,
        ClusteringAlgorithm::MergeCenter,
        ClusteringAlgorithm::Star,
    ] {
        let config = PipelineConfig {
            clustering: algo,
            ..PipelineConfig::default()
        };
        let result = Pipeline::new(config).run(&ds.collection);
        let eval = result.evaluate(&ds.ground_truth);
        t.row(vec![
            algo.name().to_string(),
            f(eval.clustering.precision),
            f(eval.clustering.recall),
            f(eval.clustering.f1),
        ]);
    }
    t.print();
    println!(
        "\nreading: with well-separated matches all clusterers score alike; connected\n\
         components wins on recall for multi-record clusters (transitivity\n\
         reassembles chains) while star/center split long chains — the dirty-ER\n\
         counterpart of E12's trade-off."
    );
}
