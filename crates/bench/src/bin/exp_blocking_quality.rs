//! E6 + E11 — blocking quality per pipeline stage, across datasets, with
//! the entropy ablation.
//!
//! Reproduces the tech-report-style table: pair completeness (PC = recall),
//! pair quality (PQ = precision) and reduction ratio (RR) after each
//! blocker stage — raw token blocking, + purging, + filtering, +
//! meta-blocking — for schema-agnostic and Blast variants, on each dataset
//! shape, plus the Blast-without-entropy ablation (E11) and the
//! purging/filtering parameter sweeps called out in DESIGN.md.
//!
//! ```text
//! cargo run --release --bin exp_blocking_quality
//! ```

use sparker_bench::{f, standard_suite, Table};
use sparker_blocking::{block_filtering, purge_oversized, token_blocking, BlockCollection};
use sparker_core::BlockingQuality;
use sparker_datasets::GeneratedDataset;
use sparker_looseschema::{loose_schema_keys, partition_attributes, LshConfig};
use sparker_metablocking::{block_entropies, meta_blocking_graph, BlockGraph, MetaBlockingConfig};
use sparker_profiles::Pair;
use std::collections::HashSet;

fn quality(ds: &GeneratedDataset, candidates: &HashSet<Pair>) -> BlockingQuality {
    BlockingQuality::measure(candidates, &ds.ground_truth, &ds.collection)
}

fn stage_rows(name: &str, ds: &GeneratedDataset, blast: bool, t: &mut Table) {
    let parts = blast.then(|| partition_attributes(&ds.collection, &LshConfig::default()));
    let blocks: BlockCollection = match &parts {
        Some(p) => sparker_blocking::keyed_blocking(&ds.collection, |pr| loose_schema_keys(pr, p)),
        None => token_blocking(&ds.collection),
    };
    let variant = if blast { "blast" } else { "schema-agnostic" };
    let mut push = |stage: &str, blocks: &BlockCollection, candidates: &HashSet<Pair>| {
        let q = quality(ds, candidates);
        t.row(vec![
            name.to_string(),
            variant.to_string(),
            stage.to_string(),
            blocks.len().to_string(),
            q.candidates.to_string(),
            f(q.recall),
            f(q.precision),
            f(q.reduction_ratio),
        ]);
    };

    push("token-blocking", &blocks, &blocks.candidate_pairs());
    let blocks = purge_oversized(blocks, ds.collection.len(), 0.5);
    push("+purging", &blocks, &blocks.candidate_pairs());
    let blocks = block_filtering(blocks, 0.8);
    push("+filtering", &blocks, &blocks.candidate_pairs());

    let (config, entropies) = if blast {
        (
            MetaBlockingConfig::blast(),
            Some(block_entropies(&blocks, parts.as_ref().unwrap())),
        )
    } else {
        (MetaBlockingConfig::default(), None)
    };
    let graph = BlockGraph::new(&blocks, entropies.as_ref());
    let retained = meta_blocking_graph(&graph, &config);
    let candidates: HashSet<Pair> = retained.iter().map(|(p, _)| *p).collect();
    push("+meta-blocking", &blocks, &candidates);
}

fn main() {
    let suite = standard_suite();

    println!("== E6: blocking quality per stage ==\n");
    let mut t = Table::new(&[
        "dataset",
        "variant",
        "stage",
        "blocks",
        "candidates",
        "PC",
        "PQ",
        "RR",
    ]);
    for (name, ds) in &suite {
        stage_rows(name, ds, false, &mut t);
        stage_rows(name, ds, true, &mut t);
    }
    t.print();

    // ---- E11: entropy ablation -----------------------------------------
    println!("\n== E11: Blast entropy ablation (meta-blocking on loose-schema blocks) ==\n");
    let mut t = Table::new(&["dataset", "entropy", "candidates", "PC", "PQ"]);
    for (name, ds) in &suite {
        let parts = partition_attributes(&ds.collection, &LshConfig::default());
        let blocks =
            sparker_blocking::keyed_blocking(&ds.collection, |pr| loose_schema_keys(pr, &parts));
        let blocks = purge_oversized(blocks, ds.collection.len(), 0.5);
        let blocks = block_filtering(blocks, 0.8);
        let entropies = block_entropies(&blocks, &parts);
        for use_entropy in [false, true] {
            let graph = BlockGraph::new(&blocks, use_entropy.then_some(&entropies));
            let config = MetaBlockingConfig {
                use_entropy,
                ..MetaBlockingConfig::blast()
            };
            let retained = meta_blocking_graph(&graph, &config);
            let candidates: HashSet<Pair> = retained.iter().map(|(p, _)| *p).collect();
            let q = quality(ds, &candidates);
            t.row(vec![
                name.to_string(),
                if use_entropy { "on" } else { "off" }.to_string(),
                q.candidates.to_string(),
                f(q.recall),
                f(q.precision),
            ]);
        }
    }
    t.print();

    // ---- Parameter sweeps: purging fraction and filtering ratio ---------
    let (name, ds) = &suite[0];
    println!("\n== purging-fraction sweep ({name}) ==\n");
    let mut t = Table::new(&["max-fraction", "blocks", "candidates", "PC", "PQ"]);
    for frac in [1.0, 0.75, 0.5, 0.25, 0.1, 0.05] {
        let blocks = purge_oversized(token_blocking(&ds.collection), ds.collection.len(), frac);
        let q = quality(ds, &blocks.candidate_pairs());
        t.row(vec![
            format!("{frac:.2}"),
            blocks.len().to_string(),
            q.candidates.to_string(),
            f(q.recall),
            f(q.precision),
        ]);
    }
    t.print();

    println!("\n== filtering-ratio sweep ({name}) ==\n");
    let mut t = Table::new(&["ratio", "candidates", "PC", "PQ"]);
    for ratio in [1.0, 0.9, 0.8, 0.6, 0.4, 0.2] {
        let blocks = purge_oversized(token_blocking(&ds.collection), ds.collection.len(), 0.5);
        let blocks = block_filtering(blocks, ratio);
        let q = quality(ds, &blocks.candidate_pairs());
        t.row(vec![
            format!("{ratio:.1}"),
            q.candidates.to_string(),
            f(q.recall),
            f(q.precision),
        ]);
    }
    t.print();
}
