//! E9 — end-to-end pipeline quality (the Figure 3 architecture), sweeping
//! matcher measure and threshold.
//!
//! For each similarity measure the matcher supports, a threshold sweep
//! reporting matching-pair quality and final cluster F1 on the
//! Abt-Buy-shaped dataset, under both the schema-agnostic and Blast
//! blockers — the full stack the demo walks attendees through.
//!
//! ```text
//! cargo run --release --bin exp_end_to_end
//! ```

use sparker_bench::{abt_buy_like, f, Table};
use sparker_core::matching::SimilarityMeasure;
use sparker_core::{BlockingConfig, MatcherConfig, Pipeline, PipelineConfig};

fn main() {
    let ds = abt_buy_like(1000);
    println!(
        "dataset: {} profiles, {} matches\n",
        ds.collection.len(),
        ds.ground_truth.len()
    );

    println!("== matcher measure × threshold (schema-agnostic blocker) ==\n");
    let mut t = Table::new(&[
        "measure",
        "threshold",
        "match-recall",
        "match-precision",
        "cluster-F1",
    ]);
    let mut best: Option<(f64, String, f64)> = None;
    for measure in SimilarityMeasure::ALL {
        for threshold in [0.2, 0.35, 0.5, 0.65, 0.8] {
            let config = PipelineConfig {
                matching: MatcherConfig { measure, threshold },
                ..PipelineConfig::default()
            };
            let result = Pipeline::new(config).run(&ds.collection);
            let eval = result.evaluate(&ds.ground_truth);
            t.row(vec![
                measure.name().to_string(),
                format!("{threshold:.2}"),
                f(eval.matching.recall),
                f(eval.matching.precision),
                f(eval.clustering.f1),
            ]);
            if best
                .as_ref()
                .is_none_or(|(b, _, _)| eval.clustering.f1 > *b)
            {
                best = Some((eval.clustering.f1, measure.name().to_string(), threshold));
            }
        }
    }
    // The corpus-level TF-IDF cosine matcher (standing in for measures like
    // CSA the paper mentions) as extra rows.
    {
        use sparker_matching::{Matcher, TfIdfMatcher};
        for threshold in [0.2, 0.35, 0.5, 0.65, 0.8] {
            let matcher = TfIdfMatcher::new(&ds.collection, threshold);
            let blocker = Pipeline::new(PipelineConfig::default()).run_blocker(&ds.collection);
            let graph = matcher.match_pairs(&ds.collection, blocker.candidates.iter().copied());
            let clusters =
                sparker_clustering::connected_components(graph.edges(), ds.collection.len());
            let match_q = sparker_core::PairQuality::measure(
                graph.edges().iter().map(|(p, _)| p),
                &ds.ground_truth,
            );
            let q = sparker_core::PairQuality::of_clusters(&clusters, &ds.ground_truth);
            t.row(vec![
                "tfidf-cosine".to_string(),
                format!("{threshold:.2}"),
                f(match_q.recall),
                f(match_q.precision),
                f(q.f1),
            ]);
            if best.as_ref().is_none_or(|(b, _, _)| q.f1 > *b) {
                best = Some((q.f1, "tfidf-cosine".to_string(), threshold));
            }
        }
    }
    t.print();
    let (best_f1, best_measure, best_threshold) = best.unwrap();
    println!(
        "\nbest: {best_measure}@{best_threshold:.2} with cluster F1 {}",
        f(best_f1)
    );

    println!("\n== blocker variants, each at its own best matcher setting ==\n");
    // Comparing blockers at a matcher tuned for one of them is biased (the
    // optimal threshold shifts with the candidate distribution); tune the
    // matcher per blocker, reusing each blocker's candidates across the grid.
    let mut t = Table::new(&[
        "blocker",
        "candidates",
        "block-recall",
        "best-matcher",
        "cluster-precision",
        "cluster-recall",
        "cluster-F1",
    ]);
    for (name, blocking) in [
        ("schema-agnostic", BlockingConfig::default()),
        ("blast", BlockingConfig::blast()),
    ] {
        let config = PipelineConfig {
            blocking,
            ..PipelineConfig::default()
        };
        let blocker = Pipeline::new(config).run_blocker(&ds.collection);
        let candidates: Vec<sparker_profiles::Pair> = blocker.candidates.iter().copied().collect();
        let block_quality = sparker_core::BlockingQuality::measure(
            &blocker.candidates,
            &ds.ground_truth,
            &ds.collection,
        );
        let mut best: Option<(f64, String, sparker_core::PairQuality)> = None;
        for measure in SimilarityMeasure::ALL {
            for threshold in [0.2, 0.35, 0.5, 0.65, 0.8] {
                let matcher = sparker_matching::ThresholdMatcher::new(measure, threshold);
                let graph = sparker_matching::Matcher::match_pairs(
                    &matcher,
                    &ds.collection,
                    candidates.iter().copied(),
                );
                let clusters =
                    sparker_clustering::connected_components(graph.edges(), ds.collection.len());
                let q = sparker_core::PairQuality::of_clusters(&clusters, &ds.ground_truth);
                if best.as_ref().is_none_or(|(b, _, _)| q.f1 > *b) {
                    best = Some((q.f1, format!("{}@{threshold:.2}", measure.name()), q));
                }
            }
        }
        let (_, setting, q) = best.unwrap();
        t.row(vec![
            name.to_string(),
            block_quality.candidates.to_string(),
            f(block_quality.recall),
            setting,
            f(q.precision),
            f(q.recall),
            f(q.f1),
        ]);
    }
    t.print();
}
