//! E10 — representative sampling (Section 3).
//!
//! Quantifies the paper's debugging-time claim: tuning on a representative
//! sample (K seeds + k/2 token-similar + k/2 random companions) instead of
//! the full data. Reports, for growing K and k, the sample size, how many
//! ground-truth pairs the sample preserves (both ends sampled) and the
//! blocker wall-clock on sample vs full data.
//!
//! ```text
//! cargo run --release --bin exp_sampling
//! ```

use sparker_bench::{abt_buy_like, Table};
use sparker_core::profiles::ProfileCollection;
use sparker_core::{representative_sample, Pipeline, PipelineConfig, SampleConfig};
use std::collections::HashSet;
use std::time::Instant;

fn main() {
    let ds = abt_buy_like(3000);
    println!(
        "full dataset: {} profiles, {} matches",
        ds.collection.len(),
        ds.ground_truth.len()
    );

    let t0 = Instant::now();
    let _ = Pipeline::new(PipelineConfig::default()).run_blocker(&ds.collection);
    let full_time = t0.elapsed();
    println!("full-data blocker time: {full_time:?}\n");

    let mut t = Table::new(&[
        "K",
        "k",
        "sample-size",
        "pct-of-data",
        "pairs-kept",
        "pair-recall",
        "vs-random",
        "blocker-ms",
        "speedup",
    ]);
    for seeds in [50usize, 100, 200, 400] {
        for companions in [4usize, 10, 20] {
            let ids = representative_sample(
                &ds.collection,
                &SampleConfig {
                    seeds,
                    companions_per_seed: companions,
                    seed: 17,
                },
            );
            let set: HashSet<_> = ids.iter().copied().collect();
            let kept = ds
                .ground_truth
                .iter()
                .filter(|p| set.contains(&p.first) && set.contains(&p.second))
                .count();
            // Build the sampled sub-collection and time the blocker on it.
            let sep = ds.collection.separator() as usize;
            let s0: Vec<_> = ds.collection.profiles()[..sep]
                .iter()
                .filter(|p| set.contains(&p.id))
                .cloned()
                .collect();
            let s1: Vec<_> = ds.collection.profiles()[sep..]
                .iter()
                .filter(|p| set.contains(&p.id))
                .cloned()
                .collect();
            let sample = ProfileCollection::clean_clean(s0, s1);
            let t1 = Instant::now();
            let _ = Pipeline::new(PipelineConfig::default()).run_blocker(&sample);
            let sample_time = t1.elapsed();

            // A uniform random sample of the same size keeps a pair only
            // when both endpoints are drawn: expectation ≈ fraction².
            let fraction = ids.len() as f64 / ds.collection.len() as f64;
            let recall = kept as f64 / ds.ground_truth.len() as f64;
            let random_recall = fraction * fraction;
            t.row(vec![
                seeds.to_string(),
                companions.to_string(),
                ids.len().to_string(),
                format!("{:.1}%", 100.0 * fraction),
                kept.to_string(),
                format!("{recall:.3}"),
                format!("{:.1}x", recall / random_recall.max(1e-9)),
                format!("{:.1}", sample_time.as_secs_f64() * 1e3),
                format!(
                    "{:.1}x",
                    full_time.as_secs_f64() / sample_time.as_secs_f64()
                ),
            ]);
        }
    }
    t.print();
    println!(
        "\nreading: the token-similar companions make small samples match-dense —\n\
         a few percent of the data preserves a disproportionate share of the\n\
         ground truth, so configuration iterations run orders of magnitude faster."
    );
}
