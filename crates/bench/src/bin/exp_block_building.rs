//! E14 (baseline study) — block-building methods under increasing noise.
//!
//! The paper's blocker builds on schema-agnostic token blocking; the
//! indexing survey it cites (Christen, TKDE 2012) catalogues alternatives.
//! This experiment compares token blocking, q-gram blocking (q = 3) and
//! sorted neighborhood (windows 5/20) on the Abt-Buy-shaped generator at
//! three noise levels, measuring PC (recall), candidate counts and RR.
//! Expected shape: q-grams resist character noise best but explode the
//! candidate count; sorted neighborhood bounds comparisons by construction
//! but loses recall when duplicates stop sorting adjacently; token blocking
//! is the balanced default the paper builds on.
//!
//! ```text
//! cargo run --release --bin exp_block_building
//! ```

use sparker_bench::{f, Table};
use sparker_blocking::{
    canopy_blocking, ngram_blocking, rarest_token_key, sorted_neighborhood, sorted_neighborhood_by,
    token_blocking,
};
use sparker_core::BlockingQuality;
use sparker_datasets::{generate, DatasetConfig, Domain, NoiseConfig};
use sparker_profiles::Pair;
use std::collections::HashSet;

fn main() {
    let mut t = Table::new(&["noise", "method", "candidates", "PC", "RR"]);
    for (noise_name, noise) in [
        ("none", NoiseConfig::none()),
        ("default", NoiseConfig::default()),
        ("heavy", NoiseConfig::heavy()),
    ] {
        let ds = generate(&DatasetConfig {
            entities: 500,
            unmatched_per_source: 125,
            domain: Domain::Products,
            noise,
            seed: 0xB10C,
            skew: None,
        });
        let methods: Vec<(&str, HashSet<Pair>)> = vec![
            (
                "token-blocking",
                token_blocking(&ds.collection).candidate_pairs(),
            ),
            (
                "3-gram-blocking",
                ngram_blocking(&ds.collection, 3).candidate_pairs(),
            ),
            (
                "sorted-neighborhood-5",
                sorted_neighborhood(&ds.collection, 5),
            ),
            (
                "sorted-neighborhood-20",
                sorted_neighborhood(&ds.collection, 20),
            ),
            (
                "sn-rarest-token-5",
                sorted_neighborhood_by(&ds.collection, 5, rarest_token_key(&ds.collection)),
            ),
            (
                "canopy-0.2/0.5",
                canopy_blocking(&ds.collection, 0.2, 0.5).candidate_pairs(),
            ),
        ];
        for (name, candidates) in methods {
            let q = BlockingQuality::measure(&candidates, &ds.ground_truth, &ds.collection);
            t.row(vec![
                noise_name.to_string(),
                name.to_string(),
                q.candidates.to_string(),
                f(q.recall),
                f(q.reduction_ratio),
            ]);
        }
    }
    t.print();
    println!(
        "\nreading: q-grams hold recall under heavy character noise at a much\n\
         higher candidate count; sorted neighborhood caps candidates by\n\
         construction but its recall collapses once typos break sort adjacency;\n\
         token blocking — the paper's choice — is the balanced default that\n\
         purging/filtering/meta-blocking then refine."
    );
}
