//! E7 — the weighting-scheme × pruning-strategy matrix.
//!
//! Reproduces the tech-report-style comparison of meta-blocking
//! configurations: for every weighting scheme (CBS, ECBS, JS, EJS, ARCS,
//! χ²) and every pruning strategy (WEP, CEP, WNP, CNP, BLAST), the
//! retained candidate pairs and their PC/PQ on the Abt-Buy-shaped dataset.
//!
//! ```text
//! cargo run --release --bin exp_pruning_matrix
//! ```

use sparker_bench::{abt_buy_like, f, Table};
use sparker_blocking::{block_filtering, purge_oversized, token_blocking};
use sparker_core::BlockingQuality;
use sparker_metablocking::{
    meta_blocking_graph, BlockGraph, EdgeScorer, MetaBlockingConfig, PruningStrategy, WeightScheme,
};
use sparker_profiles::Pair;
use std::collections::HashSet;

fn main() {
    let ds = abt_buy_like(1000);
    let blocks = purge_oversized(token_blocking(&ds.collection), ds.collection.len(), 0.5);
    let blocks = block_filtering(blocks, 0.8);
    let graph = BlockGraph::new(&blocks, None);
    let baseline = blocks.candidate_pairs();
    let q0 = BlockingQuality::measure(&baseline, &ds.ground_truth, &ds.collection);
    println!(
        "input blocks (post purge+filter): {} candidates, PC {}, PQ {}\n",
        q0.candidates,
        f(q0.recall),
        f(q0.precision)
    );

    let strategies = [
        PruningStrategy::Wep { factor: 1.0 },
        PruningStrategy::Cep { retain: None },
        PruningStrategy::Wnp {
            factor: 1.0,
            reciprocal: false,
        },
        PruningStrategy::Wnp {
            factor: 1.0,
            reciprocal: true,
        },
        PruningStrategy::Cnp {
            k: None,
            reciprocal: false,
        },
        PruningStrategy::Cnp {
            k: None,
            reciprocal: true,
        },
        PruningStrategy::Blast { ratio: 0.35 },
    ];

    let mut t = Table::new(&["scheme", "pruning", "candidates", "PC", "PQ", "kept%"]);
    for scheme in WeightScheme::ALL {
        for pruning in strategies {
            let config = MetaBlockingConfig {
                scorer: EdgeScorer::Classic(scheme),
                pruning,
                use_entropy: false,
            };
            let retained = meta_blocking_graph(&graph, &config);
            let candidates: HashSet<Pair> = retained.iter().map(|(p, _)| *p).collect();
            let q = BlockingQuality::measure(&candidates, &ds.ground_truth, &ds.collection);
            let pruning_label = match pruning {
                PruningStrategy::Wnp {
                    reciprocal: true, ..
                } => "WNP-recip".to_string(),
                PruningStrategy::Cnp {
                    reciprocal: true, ..
                } => "CNP-recip".to_string(),
                other => other.name().to_string(),
            };
            t.row(vec![
                scheme.name().to_string(),
                pruning_label,
                q.candidates.to_string(),
                f(q.recall),
                f(q.precision),
                format!(
                    "{:.1}%",
                    100.0 * q.candidates as f64 / q0.candidates.max(1) as f64
                ),
            ]);
        }
    }
    t.print();
    println!(
        "\nreading: node-centric strategies (WNP/CNP/BLAST) keep recall high at strong\n\
         reduction; edge-centric CEP prunes hardest; χ²-based weights (Blast) dominate\n\
         the CBS baseline on precision at comparable recall."
    );
}
