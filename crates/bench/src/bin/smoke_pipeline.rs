//! End-to-end pipeline smoke: run the pool-parallel pipeline on a small
//! skewed dataset with 2 workers and assert it is indistinguishable from
//! the sequential pipeline (same clusters, same F1). Exercised by `ci.sh`.

use sparker_bench::skewed_dirty;
use sparker_core::{Pipeline, PipelineConfig};
use sparker_dataflow::Context;

fn main() {
    let ds = skewed_dirty(250);
    let pipeline = Pipeline::new(PipelineConfig::default());

    let sequential = pipeline.run(&ds.collection);
    let ctx = Context::new(2);
    let parallel = pipeline.run_pipeline_parallel(&ctx, &ds.collection);

    assert_eq!(
        sequential.clusters, parallel.clusters,
        "parallel pipeline diverged from sequential clusters"
    );
    let seq_eval = sequential.evaluate(&ds.ground_truth);
    let par_eval = parallel.evaluate(&ds.ground_truth);
    assert_eq!(
        seq_eval, par_eval,
        "parallel pipeline diverged from sequential evaluation"
    );

    let snap = ctx.metrics();
    assert!(
        snap.stages.iter().any(|s| s.name == "match_candidates"),
        "matcher did not run on the pool"
    );
    assert!(
        snap.stages.iter().any(|s| s.name == "cluster_components"),
        "clusterer did not run on the pool"
    );

    println!(
        "pipeline smoke OK: {} profiles, {} clusters, clustering F1 {:.4} (parallel == sequential, 2 workers)",
        ds.collection.len(),
        parallel.clusters.num_clusters(),
        par_eval.clustering.f1,
    );
}
