//! End-to-end pipeline smoke: run the unified driver on a small skewed
//! dataset once per execution backend (2 workers for the engine backends)
//! and assert every backend is indistinguishable from the sequential
//! reference (same clusters, same evaluation). Exercised by `ci.sh`.

use sparker_bench::skewed_dirty;
use sparker_core::{ExecutionBackend, Pipeline, PipelineConfig};

fn main() {
    let ds = skewed_dirty(250);
    let pipeline = Pipeline::new(PipelineConfig::default());

    let sequential = pipeline.run_on(&ExecutionBackend::Sequential, &ds.collection);
    let seq_eval = sequential.evaluate(&ds.ground_truth);

    for backend in [ExecutionBackend::dataflow(2), ExecutionBackend::pool(2)] {
        let result = pipeline.run_on(&backend, &ds.collection);
        assert_eq!(
            sequential.clusters,
            result.clusters,
            "{} backend diverged from sequential clusters",
            backend.name()
        );
        assert_eq!(
            seq_eval,
            result.evaluate(&ds.ground_truth),
            "{} backend diverged from sequential evaluation",
            backend.name()
        );
        assert_eq!(result.report.backend, backend.name());

        let snap = backend.context().unwrap().metrics();
        let has = |name: &str| snap.stages.iter().any(|s| s.name == name);
        assert!(
            has("pipeline/score_pairs") && has("pipeline/cluster_edges"),
            "{} backend missing stage-scope markers",
            backend.name()
        );
        if backend.name() == "pool" {
            assert!(has("match_candidates"), "matcher did not run on the pool");
            assert!(
                has("cluster_components"),
                "clusterer did not run on the pool"
            );
        }
    }

    println!(
        "pipeline smoke OK: {} profiles, {} clusters, clustering F1 {:.4} \
         (dataflow == pool == sequential, 2 workers)",
        ds.collection.len(),
        sequential.clusters.num_clusters(),
        seq_eval.clustering.f1,
    );
}
