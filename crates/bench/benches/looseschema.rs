//! Criterion benches for the loose-schema generator: MinHash signatures,
//! LSH banding, full attribute partitioning and entropy extraction
//! (the Blast machinery behind experiments E3/E5/E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparker_bench::abt_buy_like;
use sparker_looseschema::{partition_attributes, LshConfig, MinHasher};
use std::hint::black_box;

fn bench_minhash(c: &mut Criterion) {
    let tokens: Vec<String> = (0..500).map(|i| format!("token{i}")).collect();
    let mut group = c.benchmark_group("minhash/signature");
    for hashes in [64usize, 128, 256] {
        let mh = MinHasher::new(hashes, 42);
        group.bench_with_input(BenchmarkId::from_parameter(hashes), &mh, |b, mh| {
            b.iter(|| mh.signature(black_box(tokens.iter())))
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("loose-schema/partition-attributes");
    group.sample_size(20);
    for entities in [250usize, 1000] {
        let ds = abt_buy_like(entities);
        group.bench_with_input(
            BenchmarkId::from_parameter(ds.collection.len()),
            &ds,
            |b, ds| {
                b.iter(|| partition_attributes(black_box(&ds.collection), &LshConfig::default()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_minhash, bench_partitioning);
criterion_main!(benches);
