//! Criterion benches for the dataflow substrate itself: narrow ops, the
//! shuffle (group/reduce by key), and worker scaling — calibrating the
//! engine the scalability experiment (E8) builds on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparker_dataflow::Context;
use std::hint::black_box;

fn bench_narrow_ops(c: &mut Criterion) {
    let ctx = Context::new(4);
    let data: Vec<u64> = (0..100_000).collect();
    let ds = ctx.parallelize(data, 8);
    let mut group = c.benchmark_group("dataflow/narrow");
    group.bench_function("map", |b| b.iter(|| black_box(&ds).map(|x| x * 2).count()));
    group.bench_function("filter", |b| {
        b.iter(|| black_box(&ds).filter(|x| x % 3 == 0).count())
    });
    group.bench_function("fold", |b| b.iter(|| black_box(&ds).fold(0u64, |a, b| a + b)));
    group.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    let ctx = Context::new(4);
    let pairs: Vec<(u32, u64)> = (0..100_000).map(|i| (i % 1000, i as u64)).collect();
    let ds = ctx.parallelize(pairs, 8);
    let mut group = c.benchmark_group("dataflow/shuffle");
    group.sample_size(30);
    group.bench_function("group_by_key", |b| b.iter(|| black_box(&ds).group_by_key().count()));
    group.bench_function("reduce_by_key", |b| {
        b.iter(|| black_box(&ds).reduce_by_key(|a, b| a + *b).count())
    });
    group.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflow/worker-scaling");
    group.sample_size(20);
    for workers in [1usize, 2, 4, 8] {
        let ctx = Context::new(workers);
        let data: Vec<u64> = (0..200_000).collect();
        let ds = ctx.parallelize(data, workers * 2);
        group.bench_with_input(BenchmarkId::from_parameter(workers), &ds, |b, ds| {
            // A CPU-bound map: per-record hashing work.
            b.iter(|| {
                ds.map(|&x| {
                    let mut h = x;
                    for _ in 0..32 {
                        h = h.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
                    }
                    h
                })
                .fold(0u64, |a, b| a ^ b)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_narrow_ops, bench_shuffle, bench_worker_scaling);
criterion_main!(benches);
