//! Criterion benches for the dataflow substrate itself: narrow ops, the
//! shuffle (group/reduce by key), worker scaling, and the persistent worker
//! pool against a spawn-threads-per-stage baseline — calibrating the engine
//! the scalability experiment (E8) builds on.
//!
//! Run with `BENCH_JSON=BENCH_dataflow.json cargo bench -p sparker-bench
//! --bench dataflow` to also dump every measurement (including the
//! per-stage wall/busy/queue-wait times the engine records) as JSON.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparker_dataflow::Context;
use std::hint::black_box;

fn bench_narrow_ops(c: &mut Criterion) {
    let ctx = Context::new(4);
    let data: Vec<u64> = (0..100_000).collect();
    let ds = ctx.parallelize(data, 8);
    let mut group = c.benchmark_group("dataflow/narrow");
    group.bench_function("map", |b| b.iter(|| black_box(&ds).map(|x| x * 2).count()));
    group.bench_function("filter", |b| {
        b.iter(|| black_box(&ds).filter(|x| x % 3 == 0).count())
    });
    group.bench_function("fold", |b| {
        b.iter(|| black_box(&ds).fold(0u64, |a, b| a + b))
    });
    group.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    let ctx = Context::new(4);
    let pairs: Vec<(u32, u64)> = (0..100_000).map(|i| (i % 1000, i as u64)).collect();
    let ds = ctx.parallelize(pairs, 8);
    let mut group = c.benchmark_group("dataflow/shuffle");
    group.sample_size(30);
    // Wide operators consume their input; cloning the handle only bumps the
    // partition `Arc`s (the shared-partition clone path inside the shuffle).
    group.bench_function("group_by_key", |b| {
        b.iter(|| black_box(ds.clone()).group_by_key().count())
    });
    group.bench_function("reduce_by_key", |b| {
        b.iter(|| black_box(ds.clone()).reduce_by_key(|a, b| a + *b).count())
    });
    group.finish();
}

/// Per-record spin work: `iters` dependent multiply-rotates.
fn spin(iters: u64) -> u64 {
    let mut h = iters;
    for _ in 0..iters {
        h = h.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
    }
    h
}

/// Skew-aware scheduling on the engine itself, under a rank-correlated
/// skewed workload: the first eighth of the records are 50× as expensive
/// as the tail (the contiguous hub region of a popularity-ordered
/// catalogue). Equal-count partitioning strands the hub in one partition;
/// cost-hinted partitioning + morsel execution spreads it. Wall times go
/// through the sample loop; instrumented runs export each schedule's
/// critical path and per-worker busy spread (wall-clock cannot scale on a
/// single-core host, so the busy-time split is the evidence).
fn bench_worker_scaling(c: &mut Criterion) {
    const N: usize = 4_096;
    const HUB: usize = N / 8;
    let costs: Vec<u64> = (0..N).map(|i| if i < HUB { 20_000 } else { 400 }).collect();
    let mut group = c.benchmark_group("dataflow/worker-scaling");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        let ctx = Context::new(workers);
        let items = costs.clone();
        let by_cost = costs.clone();
        group.bench_function(BenchmarkId::new("equal-count", workers), |b| {
            b.iter(|| {
                ctx.parallelize(items.clone(), ctx.default_partitions())
                    .map_partitions(|_, part| part.iter().map(|&n| spin(n)).collect())
                    .fold(0u64, |a, b| a ^ b)
            })
        });
        group.bench_function(BenchmarkId::new("cost-morsel", workers), |b| {
            b.iter(|| {
                ctx.parallelize_by_cost(items.clone(), &by_cost, ctx.default_partitions())
                    .map_morsels(16, |_, part| part.iter().map(|&n| spin(n)).collect())
                    .fold(0u64, |a, b| a ^ b)
            })
        });
    }
    group.finish();
    for workers in [1usize, 2, 4, 8] {
        for policy in ["equal-count", "cost-morsel"] {
            let ctx = Context::new(workers);
            ctx.reset_metrics();
            let _ = if policy == "equal-count" {
                ctx.parallelize(costs.clone(), ctx.default_partitions())
                    .map_partitions(|_, part| part.iter().map(|&n| spin(n)).collect())
                    .fold(0u64, |a, b| a ^ b)
            } else {
                ctx.parallelize_by_cost(costs.clone(), &costs, ctx.default_partitions())
                    .map_morsels(16, |_, part| part.iter().map(|&n| spin(n)).collect())
                    .fold(0u64, |a, b| a ^ b)
            };
            let snap = ctx.metrics();
            let prefix = format!("dataflow/worker-scaling/{policy}/{workers}");
            c.record(
                format!("{prefix}/critical-path"),
                1,
                snap.total_critical_path(),
            );
            for (slot, busy) in snap.stage_worker_busy().iter().enumerate() {
                c.record(format!("{prefix}/busy-worker-{slot}"), 1, *busy);
            }
        }
    }
}

/// The spawn-per-stage baseline: what stage execution cost before the
/// persistent pool — a fresh `std::thread::scope` + one thread per
/// partition, torn down at the stage barrier.
fn spawn_per_stage(parts: Vec<Vec<u64>>, f: impl Fn(u64) -> u64 + Sync) -> Vec<Vec<u64>> {
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| s.spawn(|| part.into_iter().map(&f).collect::<Vec<u64>>()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn make_parts(records: usize, n: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|p| ((p * records / n) as u64..((p + 1) * records / n) as u64).collect())
        .collect()
}

/// The regime the persistent pool exists for: a pipeline of hundreds of
/// stages each doing microseconds of work, where per-stage thread spawn and
/// teardown dominates a naive executor.
fn bench_many_short_stages(c: &mut Criterion) {
    const STAGES: usize = 200;
    const RECORDS: usize = 2_000;
    const PARTS: usize = 8;
    let step = |x: u64| x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);

    let mut group = c.benchmark_group("dataflow/many-short-stages");
    group.sample_size(15);
    group.bench_function("persistent-pool", |b| {
        let ctx = Context::new(4);
        b.iter(|| {
            let mut ds = ctx.parallelize((0..RECORDS as u64).collect::<Vec<_>>(), PARTS);
            for _ in 0..STAGES {
                ds = ds.map(|&x| step(x));
            }
            ds.fold(0u64, |a, b| a ^ b)
        })
    });
    group.bench_function("spawn-per-stage", |b| {
        b.iter(|| {
            let mut parts = make_parts(RECORDS, PARTS);
            for _ in 0..STAGES {
                parts = spawn_per_stage(parts, step);
            }
            parts.iter().flatten().fold(0u64, |a, b| a ^ b)
        })
    });
    group.finish();
}

/// Sanity guard for the other end of the spectrum: on a few long stages the
/// persistent pool must not be slower than spawning fresh threads (the pool
/// overhead has to amortise to zero against real work).
fn bench_long_stages(c: &mut Criterion) {
    const STAGES: usize = 4;
    const RECORDS: usize = 400_000;
    const PARTS: usize = 8;
    let step = |x: u64| {
        let mut h = x;
        for _ in 0..16 {
            h = h.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        }
        h
    };

    let mut group = c.benchmark_group("dataflow/long-stages");
    group.sample_size(15);
    group.bench_function("persistent-pool", |b| {
        let ctx = Context::new(4);
        b.iter(|| {
            let mut ds = ctx.parallelize((0..RECORDS as u64).collect::<Vec<_>>(), PARTS);
            for _ in 0..STAGES {
                ds = ds.map(|&x| step(x));
            }
            ds.fold(0u64, |a, b| a ^ b)
        })
    });
    group.bench_function("spawn-per-stage", |b| {
        b.iter(|| {
            let mut parts = make_parts(RECORDS, PARTS);
            for _ in 0..STAGES {
                parts = spawn_per_stage(parts, step);
            }
            parts.iter().flatten().fold(0u64, |a, b| a ^ b)
        })
    });
    group.finish();
}

/// Export the engine's own per-stage metrics (wall time, worker busy time,
/// shuffle queue wait) for one representative shuffle pipeline into the
/// bench result set — these land in `BENCH_JSON` next to the timings.
fn record_stage_metrics(c: &mut Criterion) {
    let ctx = Context::new(4);
    let pairs: Vec<(u32, u64)> = (0..100_000).map(|i| (i % 1000, i as u64)).collect();
    ctx.reset_metrics();
    let grouped = ctx.parallelize(pairs, 8).group_by_key();
    let _ = grouped
        .map(|(_, vs)| vs.len() as u64)
        .fold(0u64, |a, b| a + b);
    let snap = ctx.metrics();
    for (i, stage) in snap.stages.iter().enumerate() {
        c.record(
            format!("dataflow/stage-metrics/{}-{}/wall", i, stage.name),
            stage.tasks,
            stage.wall_time,
        );
        c.record(
            format!("dataflow/stage-metrics/{}-{}/busy", i, stage.name),
            stage.tasks,
            stage.busy_time,
        );
        c.record(
            format!("dataflow/stage-metrics/{}-{}/queue-wait", i, stage.name),
            stage.tasks,
            stage.queue_wait,
        );
    }
    for (w, busy) in snap.worker_busy.iter().enumerate() {
        c.record(format!("dataflow/worker-busy/{w}"), 1, *busy);
    }
}

criterion_group!(
    benches,
    bench_narrow_ops,
    bench_shuffle,
    bench_worker_scaling,
    bench_many_short_stages,
    bench_long_stages,
    record_stage_metrics
);
criterion_main!(benches);
