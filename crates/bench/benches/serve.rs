//! Online-serve load bench: sustained mixed insert/query throughput and
//! tail latency against the HTTP front-end on a warm resolver.
//!
//! The resolver is warm-loaded with the `dirty_10k` preset under the
//! scaling-tier configuration (exactly what `sparker serve --preset
//! dirty_10k` boots), then a fixed budget of operations — 90% cluster
//! queries on existing ids, 10% inserts of fresh profiles — is driven
//! through real HTTP connections from concurrent client threads.
//! Per-request latencies are collected client-side; the bench records
//! sustained ops/sec plus p50/p99 overall and per operation kind into the
//! criterion stream (`BENCH_JSON=BENCH_serve.json` via
//! `scripts/bench.sh`, summarized as experiment E20).
//!
//! Latency shape to expect: inserts are cheap (incremental index
//! maintenance only) but mark the derived state dirty; the next query
//! pays the lazy O(E) refresh (retention + matching over cached scores +
//! reclustering). With a 90/10 mix nearly every insert's refresh lands on
//! some query, so query p99 ≈ refresh cost while p50 stays at
//! read-a-warm-snapshot cost — that asymmetry is the design, and the
//! bench reports both ends honestly.
//!
//! Tiers: `dirty_10k` always; `dirty_100k` when `SPARKER_SCALE_1M` is set
//! (the serve bench's big tier — warm-loading 10⁵ profiles and refreshing
//! per insert batch takes minutes). Under `BENCH_SMOKE` a few hundred
//! profiles and a small op budget exercise the full harness in seconds.

use criterion::{criterion_group, criterion_main, smoke_mode, Criterion};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sparker_core::PipelineConfig;
use sparker_datasets::Preset;
use sparker_profiles::ErKind;
use sparker_serve::{serve, ResolverState, ServerHandle};

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty())
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status")
}

/// Tiny deterministic LCG so the op mix needs no RNG dependency and every
/// run issues the identical request sequence.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

struct Percentiles {
    p50: Duration,
    p99: Duration,
}

fn percentiles(lat: &mut [Duration]) -> Percentiles {
    lat.sort_unstable();
    let at = |q: f64| lat[((lat.len() as f64 * q).ceil() as usize).max(1) - 1];
    Percentiles {
        p50: at(0.50),
        p99: at(0.99),
    }
}

struct TierResult {
    wall: Duration,
    total_ops: usize,
    all: Vec<Duration>,
    queries: Vec<Duration>,
    inserts: Vec<Duration>,
}

/// Warm a server with `warm` profiles of `preset`, then drive `total_ops`
/// mixed operations (10% inserts) from `clients` threads.
fn run_tier(preset: &str, warm: usize, clients: usize, total_ops: usize) -> (Duration, TierResult) {
    let ds = Preset::by_name(preset).expect("known preset").generate();
    let profiles = ds.collection.profiles()[..warm.min(ds.collection.len())].to_vec();
    let ids: Vec<String> = profiles.iter().map(|p| p.original_id.clone()).collect();

    let t0 = Instant::now();
    let mut resolver = ResolverState::new(PipelineConfig::scaling(), ErKind::Dirty);
    resolver.bulk_load(profiles).expect("warm load");
    resolver.stats(); // first refresh: postings -> retention -> clusters
    let warm_wall = t0.elapsed();

    let mut handle: ServerHandle =
        serve(resolver, "127.0.0.1:0", clients.max(2)).expect("bind ephemeral port");
    let addr = handle.addr();

    let per_client = total_ops / clients;
    let sink: Mutex<TierResult> = Mutex::new(TierResult {
        wall: Duration::ZERO,
        total_ops: per_client * clients,
        all: Vec::new(),
        queries: Vec::new(),
        inserts: Vec::new(),
    });
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..clients {
            let (ids, sink) = (&ids, &sink);
            scope.spawn(move || {
                let mut rng = Lcg(0x5eed + t as u64);
                let mut queries = Vec::with_capacity(per_client);
                let mut inserts = Vec::with_capacity(per_client / 8);
                for i in 0..per_client {
                    let started = Instant::now();
                    if i % 10 == 3 {
                        // Fresh profile built from preset-vocabulary-ish
                        // tokens so it lands in populated blocks.
                        let body = format!(
                            r#"{{"id":"live-{t}-{i}","attributes":{{"name":"item model {} series {} edition"}}}}"#,
                            rng.next() % 97,
                            rng.next() % 13,
                        );
                        let status = http(addr, "POST", "/profiles", &body);
                        assert_eq!(status, 200);
                        inserts.push(started.elapsed());
                    } else {
                        let id = &ids[(rng.next() as usize) % ids.len()];
                        let status = http(addr, "GET", &format!("/clusters/{id}"), "");
                        assert_eq!(status, 200);
                        queries.push(started.elapsed());
                    }
                }
                let mut sink = sink.lock().expect("latency sink");
                sink.all.extend(queries.iter().chain(&inserts));
                sink.queries.extend(queries);
                sink.inserts.extend(inserts);
            });
        }
    });
    let wall = t0.elapsed();
    handle.shutdown();
    let mut result = sink.into_inner().expect("latency sink");
    result.wall = wall;
    (warm_wall, result)
}

fn record_tier(c: &mut Criterion, tier: &str, warm_wall: Duration, mut r: TierResult) {
    let ops_per_sec = r.total_ops as f64 / r.wall.as_secs_f64().max(1e-9);
    let overall = percentiles(&mut r.all);
    let queries = percentiles(&mut r.queries);
    let inserts = percentiles(&mut r.inserts);
    c.record(format!("serve/{tier}/warm_load/wall"), 1, warm_wall);
    c.record(format!("serve/{tier}/mixed/wall"), 1, r.wall);
    c.record_value(format!("serve/{tier}/mixed/ops_per_sec"), ops_per_sec);
    c.record(format!("serve/{tier}/mixed/p50"), r.all.len(), overall.p50);
    c.record(format!("serve/{tier}/mixed/p99"), r.all.len(), overall.p99);
    c.record(
        format!("serve/{tier}/query/p99"),
        r.queries.len(),
        queries.p99,
    );
    c.record(
        format!("serve/{tier}/insert/p99"),
        r.inserts.len(),
        inserts.p99,
    );
    eprintln!(
        "serve/{tier}: warm {warm_wall:.1?}, {} ops in {:.1?} -> {ops_per_sec:.0} ops/s, \
         p50 {:.1?}, p99 {:.1?} (query p99 {:.1?}, insert p99 {:.1?})",
        r.total_ops, r.wall, overall.p50, overall.p99, queries.p99, inserts.p99,
    );
}

fn bench_serve_load(c: &mut Criterion) {
    let smoke = smoke_mode();
    let (warm, clients, ops) = if smoke {
        (400, 2, 60)
    } else {
        (10_000, 4, 2_000)
    };
    let (warm_wall, result) = run_tier("dirty_10k", warm, clients, ops);
    record_tier(c, "dirty_10k", warm_wall, result);

    if !smoke && env_flag("SPARKER_SCALE_1M") {
        let (warm_wall, result) = run_tier("dirty_100k", 100_000, 4, 1_000);
        record_tier(c, "dirty_100k", warm_wall, result);
    }
}

criterion_group!(benches, bench_serve_load);
criterion_main!(benches);
