//! Criterion benches for meta-blocking: per weighting scheme, per pruning
//! strategy, and the broadcast-join parallel implementation vs the
//! sequential driver (the ablations behind experiments E7/E8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparker_bench::abt_buy_like;
use sparker_blocking::{block_filtering, purge_oversized, token_blocking};
use sparker_dataflow::Context;
use sparker_metablocking::{
    meta_blocking_graph, parallel, BlockGraph, MetaBlockingConfig, PruningStrategy, WeightScheme,
};
use std::hint::black_box;
use std::sync::Arc;

fn graph() -> Arc<BlockGraph> {
    let ds = abt_buy_like(600);
    let blocks = purge_oversized(token_blocking(&ds.collection), ds.collection.len(), 0.5);
    let blocks = block_filtering(blocks, 0.8);
    Arc::new(BlockGraph::new(&blocks, None))
}

fn bench_weight_schemes(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("metablocking/scheme");
    for scheme in WeightScheme::ALL {
        let config = MetaBlockingConfig {
            scheme,
            pruning: PruningStrategy::Wnp { factor: 1.0, reciprocal: false },
            use_entropy: false,
        };
        group.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &config, |b, cfg| {
            b.iter(|| meta_blocking_graph(black_box(&g), cfg))
        });
    }
    group.finish();
}

fn bench_pruning_strategies(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("metablocking/pruning");
    for pruning in [
        PruningStrategy::Wep { factor: 1.0 },
        PruningStrategy::Cep { retain: None },
        PruningStrategy::Wnp { factor: 1.0, reciprocal: false },
        PruningStrategy::Cnp { k: None, reciprocal: false },
        PruningStrategy::Blast { ratio: 0.35 },
    ] {
        let config = MetaBlockingConfig {
            scheme: WeightScheme::Cbs,
            pruning,
            use_entropy: false,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(pruning.name()),
            &config,
            |b, cfg| b.iter(|| meta_blocking_graph(black_box(&g), cfg)),
        );
    }
    group.finish();
}

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let g = graph();
    let config = MetaBlockingConfig::default();
    let mut group = c.benchmark_group("metablocking/parallelism");
    group.bench_function("sequential", |b| {
        b.iter(|| meta_blocking_graph(black_box(&g), &config))
    });
    for workers in [1usize, 2, 4] {
        let ctx = Context::new(workers);
        group.bench_with_input(
            BenchmarkId::new("broadcast-join", workers),
            &ctx,
            |b, ctx| b.iter(|| parallel::meta_blocking(ctx, black_box(&g), &config)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_weight_schemes,
    bench_pruning_strategies,
    bench_parallel_vs_sequential
);
criterion_main!(benches);
