//! Criterion benches for meta-blocking: per weighting scheme, per pruning
//! strategy, the broadcast-join parallel implementation vs the sequential
//! driver (the ablations behind experiments E7/E8), skew-aware scheduling
//! (cost-balanced morsels vs equal-count partitions on Zipf-skewed and
//! uniform graphs, with per-worker busy times recorded so the balance is
//! visible, not asserted), and the allocation-free node pass vs the
//! sort+clone baseline.
//!
//! Run with `BENCH_JSON=BENCH_metablocking.json cargo bench -p
//! sparker-bench --bench metablocking` to dump every measurement as JSON.
//!
//! Note on the scaling numbers: wall-clock cannot speed up on a
//! single-core host, so alongside each wall time the bench records the
//! schedule's **critical path** (the slowest worker slot's busy time, the
//! wall-clock lower bound on a one-core-per-worker machine) and the full
//! per-worker busy spread.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparker_bench::{abt_buy_like, skewed_dirty, uniform_dirty};
use sparker_blocking::{block_filtering, purge_oversized, token_blocking};
use sparker_dataflow::Context;
use sparker_metablocking::{
    meta_blocking_graph, node_stats_pass_baseline_checksum, node_stats_pass_checksum, parallel,
    BlockGraph, EdgeScorer, MetaBlockingConfig, PruningStrategy, Scheduling, WeightScheme,
};
use std::hint::black_box;
use std::sync::Arc;

fn graph() -> Arc<BlockGraph> {
    let ds = abt_buy_like(600);
    let blocks = purge_oversized(token_blocking(&ds.collection), ds.collection.len(), 0.5);
    let blocks = block_filtering(blocks, 0.8);
    Arc::new(BlockGraph::new(&blocks, None))
}

/// Graph for the scheduling benches: the standard purge + block-filtering
/// pipeline over [`skewed_dirty`] / [`uniform_dirty`]. Purging kills the
/// monster blocks (universal stop tokens and the top-rank hot blocks);
/// filtering keeps each profile's smallest blocks, which drains the tail's
/// background degree while hub profiles keep their dozens of mid-size hot
/// blocks. The surviving graph concentrates ~3/4 of the edge work in the
/// contiguous low-id hub — exactly the shape equal-count contiguous
/// partitioning handles worst.
fn scaling_graph(skewed: bool) -> Arc<BlockGraph> {
    let ds = if skewed {
        skewed_dirty(3000)
    } else {
        uniform_dirty(3000)
    };
    let blocks = purge_oversized(token_blocking(&ds.collection), ds.collection.len(), 0.05);
    let blocks = block_filtering(blocks, 0.25);
    Arc::new(BlockGraph::new(&blocks, None))
}

fn bench_weight_schemes(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("metablocking/scheme");
    for scheme in WeightScheme::ALL {
        let config = MetaBlockingConfig {
            scorer: EdgeScorer::Classic(scheme),
            pruning: PruningStrategy::Wnp {
                factor: 1.0,
                reciprocal: false,
            },
            use_entropy: false,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &config,
            |b, cfg| b.iter(|| meta_blocking_graph(black_box(&g), cfg)),
        );
    }
    group.finish();
}

fn bench_pruning_strategies(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("metablocking/pruning");
    for pruning in [
        PruningStrategy::Wep { factor: 1.0 },
        PruningStrategy::Cep { retain: None },
        PruningStrategy::Wnp {
            factor: 1.0,
            reciprocal: false,
        },
        PruningStrategy::Cnp {
            k: None,
            reciprocal: false,
        },
        PruningStrategy::Blast { ratio: 0.35 },
    ] {
        let config = MetaBlockingConfig {
            scorer: EdgeScorer::Classic(WeightScheme::Cbs),
            pruning,
            use_entropy: false,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(pruning.name()),
            &config,
            |b, cfg| b.iter(|| meta_blocking_graph(black_box(&g), cfg)),
        );
    }
    group.finish();
}

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let g = graph();
    let config = MetaBlockingConfig::default();
    let mut group = c.benchmark_group("metablocking/parallelism");
    group.bench_function("sequential", |b| {
        b.iter(|| meta_blocking_graph(black_box(&g), &config))
    });
    for workers in [1usize, 2, 4] {
        let ctx = Context::new(workers);
        group.bench_with_input(
            BenchmarkId::new("broadcast-join", workers),
            &ctx,
            |b, ctx| b.iter(|| parallel::meta_blocking(ctx, black_box(&g), &config)),
        );
    }
    group.finish();
}

const SCHEDULINGS: [Scheduling; 2] = [Scheduling::EqualCount, Scheduling::CostMorsel];
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Skew-aware scheduling ablation: equal-count partitions vs cost-balanced
/// morsels at 1/2/4/8 workers, on a Zipf-skewed and a uniform graph. Wall
/// times go through the normal sample loop; a separate instrumented run
/// per configuration exports the critical path and the per-worker busy
/// spread from the engine's own stage metrics.
fn bench_worker_scaling(c: &mut Criterion) {
    let config = MetaBlockingConfig::default();
    for (kind, g) in [
        ("zipf", scaling_graph(true)),
        ("uniform", scaling_graph(false)),
    ] {
        let mut group = c.benchmark_group(format!("metablocking/worker-scaling/{kind}"));
        group.sample_size(8);
        for sched in SCHEDULINGS {
            for workers in WORKER_COUNTS {
                let ctx = Context::new(workers);
                group.bench_function(BenchmarkId::new(sched.name(), workers), |b| {
                    b.iter(|| {
                        parallel::meta_blocking_scheduled(&ctx, black_box(&g), &config, sched)
                    })
                });
            }
        }
        group.finish();
        for sched in SCHEDULINGS {
            for workers in WORKER_COUNTS {
                let ctx = Context::new(workers);
                ctx.reset_metrics();
                let _ = parallel::meta_blocking_scheduled(&ctx, &g, &config, sched);
                let snap = ctx.metrics();
                let prefix = format!(
                    "metablocking/worker-scaling/{kind}/{}/{workers}",
                    sched.name()
                );
                c.record(
                    format!("{prefix}/critical-path"),
                    1,
                    snap.total_critical_path(),
                );
                for (slot, busy) in snap.stage_worker_busy().iter().enumerate() {
                    c.record(format!("{prefix}/busy-worker-{slot}"), 1, *busy);
                }
            }
        }
    }
}

/// The per-node hot loop in isolation: the allocation-free pass (reused
/// scratch + weights buffers, O(n) k-th selection, fused mean/max) against
/// the pre-optimization baseline (owned neighborhood, fresh weights `Vec`
/// per node, full `clone` + descending sort). Checksums are asserted equal
/// so both sides do identical work.
fn bench_node_pass(c: &mut Criterion) {
    let g = graph();
    let config = MetaBlockingConfig {
        scorer: EdgeScorer::Classic(WeightScheme::Cbs),
        pruning: PruningStrategy::Cnp {
            k: None,
            reciprocal: false,
        },
        use_entropy: false,
    };
    assert_eq!(
        node_stats_pass_checksum(&g, &config).to_bits(),
        node_stats_pass_baseline_checksum(&g, &config).to_bits(),
        "node-pass variants must agree before timing them"
    );
    let mut group = c.benchmark_group("metablocking/node-pass");
    group.sample_size(20);
    group.bench_function("alloc-free", |b| {
        b.iter(|| node_stats_pass_checksum(black_box(&g), &config))
    });
    group.bench_function("sort-clone-baseline", |b| {
        b.iter(|| node_stats_pass_baseline_checksum(black_box(&g), &config))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_weight_schemes,
    bench_pruning_strategies,
    bench_parallel_vs_sequential,
    bench_worker_scaling,
    bench_node_pass
);
criterion_main!(benches);
