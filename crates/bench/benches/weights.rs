//! E21: pair quality of the retained candidate set per edge scorer — the
//! supervised logistic scorer (trained on the held-out `dirty_1k` preset
//! with BLOSS-style balanced sampling) against the classic CBS and JS
//! weighting schemes, under the scaling-tier pruning rule, on the
//! `dirty_10k` preset and a Zipf-skewed dirty catalogue.
//!
//! For every (dataset, scorer) cell the bench records the precision,
//! recall and F1 of the retained candidates against the generator's exact
//! ground truth, the retained-edge count, and the wall time of one full
//! meta-blocking pass. Run with `BENCH_JSON=BENCH_weights.json cargo bench
//! -p sparker-bench --bench weights` to dump the table; under
//! `BENCH_SMOKE` the datasets are shrunk so CI stays fast.
//!
//! Training never sees the evaluation datasets: `dirty_1k` has its own
//! seed, entity count and duplicate clusters. The model transfers because
//! the features are scale-free ratios (Jaccard/Dice/cosine, normalized
//! block sizes) plus raw counts the logistic weights calibrate once.

use criterion::{criterion_group, criterion_main, Criterion};
use sparker_bench::skewed_dirty;
use sparker_blocking::{block_filtering, purge_oversized, token_blocking};
use sparker_datasets::{GeneratedDataset, Preset};
use sparker_metablocking::{
    meta_blocking_graph, train_supervised, BlockGraph, EdgeScorer, LinearModel, MetaBlockingConfig,
    PruningStrategy, TrainOptions, WeightScheme,
};
use sparker_profiles::{GroundTruth, Pair, ProfileCollection};
use std::time::Instant;

/// `true` when `BENCH_SMOKE` is set (to anything non-empty): shrink the
/// datasets so the whole bench runs in seconds.
fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty())
}

/// The default blocker prefix (oversize purging + 0.8 block filtering).
/// Deliberately denser than the scaling tier's aggressive 0.5 filter: the
/// scaling prefix leaves ~1 candidate edge per node, so every scorer
/// retains nearly the same set and the comparison degenerates to ties.
/// On the dense graph pruning has real ranking work to do and the scorers
/// separate.
fn build_graph(collection: &ProfileCollection) -> BlockGraph {
    let blocks = token_blocking(collection);
    let blocks = purge_oversized(blocks, collection.len(), 0.5);
    let blocks = block_filtering(blocks, 0.8);
    BlockGraph::new(&blocks, None)
}

/// Fit the supervised scorer on the held-out `dirty_1k` preset.
fn train_model() -> LinearModel {
    let ds = Preset::by_name("dirty_1k")
        .expect("dirty_1k preset exists")
        .generate();
    let graph = build_graph(&ds.collection);
    train_supervised(&graph, &ds.ground_truth, &TrainOptions::default()).model
}

/// Precision / recall / F1 of the retained pairs against the ground truth.
fn quality(retained: &[(Pair, f64)], truth: &GroundTruth) -> (f64, f64, f64) {
    let pairs: Vec<Pair> = retained.iter().map(|(p, _)| *p).collect();
    let precision = truth.precision_of(pairs.iter());
    let recall = truth.recall_of(pairs.iter());
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision, recall, f1)
}

fn eval_datasets() -> Vec<(&'static str, GeneratedDataset)> {
    let mut dirty = Preset::by_name("dirty_10k").expect("dirty_10k preset exists");
    if smoke() {
        dirty.config.entities = 400;
    }
    let skew_entities = if smoke() { 500 } else { 4000 };
    vec![
        ("dirty_10k", dirty.generate()),
        ("skewed", skewed_dirty(skew_entities)),
    ]
}

/// The E21 table: per dataset, per scorer, pair quality of the retained
/// candidate set under the scaling-tier CNP rule.
fn bench_retained_quality(c: &mut Criterion) {
    let model = train_model();
    let scorers: [(&str, EdgeScorer); 3] = [
        ("CBS", EdgeScorer::Classic(WeightScheme::Cbs)),
        ("JS", EdgeScorer::Classic(WeightScheme::Js)),
        ("SUPERVISED", EdgeScorer::Supervised(model)),
    ];
    for (ds_name, ds) in eval_datasets() {
        let graph = build_graph(&ds.collection);
        for (scorer_name, scorer) in scorers {
            let config = MetaBlockingConfig {
                scorer,
                pruning: PruningStrategy::Cnp {
                    k: None,
                    reciprocal: true,
                },
                use_entropy: false,
            };
            let started = Instant::now();
            let retained = meta_blocking_graph(&graph, &config);
            let elapsed = started.elapsed();
            let (precision, recall, f1) = quality(&retained, &ds.ground_truth);
            let prefix = format!("weights/{ds_name}/{scorer_name}");
            c.record(format!("{prefix}/prune"), 1, elapsed);
            c.record_value(format!("{prefix}/precision"), precision);
            c.record_value(format!("{prefix}/recall"), recall);
            c.record_value(format!("{prefix}/f1"), f1);
            c.record_value(format!("{prefix}/retained"), retained.len() as f64);
        }
    }
}

criterion_group!(benches, bench_retained_quality);
criterion_main!(benches);
