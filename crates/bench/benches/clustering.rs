//! Criterion benches for entity clustering: union–find connected
//! components vs GraphX-style label propagation, and the alternative
//! clustering algorithms (experiment E12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparker_clustering::{
    center_clustering, connected_components, connected_components_dataflow, merge_center_clustering,
};
use sparker_dataflow::Context;
use sparker_profiles::{Pair, ProfileId};
use std::hint::black_box;

/// A synthetic similarity graph: `n` profiles in chains of length 5 plus
/// random cross edges (deterministic).
fn graph(n: u32) -> Vec<(Pair, f64)> {
    let mut edges = Vec::new();
    for i in 0..n - 1 {
        if i % 5 != 4 {
            edges.push((Pair::new(ProfileId(i), ProfileId(i + 1)), 0.9));
        }
    }
    // Deterministic pseudo-random extra edges.
    let mut state = 0x2545F4914F6CDD1Du64;
    for _ in 0..n / 10 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let a = (state % n as u64) as u32;
        let b = ((state >> 32) % n as u64) as u32;
        if a != b {
            edges.push((Pair::new(ProfileId(a), ProfileId(b)), 0.5));
        }
    }
    edges
}

fn bench_connected_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering/connected-components");
    for n in [1_000u32, 10_000] {
        let edges = graph(n);
        group.bench_with_input(BenchmarkId::new("union-find", n), &edges, |b, e| {
            b.iter(|| connected_components(black_box(e), n as usize))
        });
        let ctx = Context::new(4);
        group.bench_with_input(BenchmarkId::new("label-propagation", n), &edges, |b, e| {
            b.iter(|| connected_components_dataflow(&ctx, black_box(e), n as usize))
        });
    }
    group.finish();
}

fn bench_alternatives(c: &mut Criterion) {
    let edges = graph(5_000);
    let mut group = c.benchmark_group("clustering/alternatives");
    group.bench_function("center", |b| {
        b.iter(|| center_clustering(black_box(&edges), 5_000))
    });
    group.bench_function("merge-center", |b| {
        b.iter(|| merge_center_clustering(black_box(&edges), 5_000))
    });
    group.finish();
}

criterion_group!(benches, bench_connected_components, bench_alternatives);
criterion_main!(benches);
