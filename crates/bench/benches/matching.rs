//! Criterion benches for the similarity measures and the matcher loop —
//! the entity-matching costs behind experiment E9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparker_bench::abt_buy_like;
use sparker_core::Pipeline;
use sparker_matching::{similarity, Matcher, SimilarityMeasure, TfIdfIndex, ThresholdMatcher};
use std::hint::black_box;

fn bench_measures(c: &mut Criterion) {
    let a = "Sony BRAVIA KDL-40W600B 40-Inch 1080p Smart LED TV 2014 Model";
    let b = "Sony 40 inch BRAVIA Smart LED Television KDL40W600B 1080p";
    let (ta, tb): (std::collections::BTreeSet<String>, _) = (
        sparker_profiles::tokenize(a).collect(),
        sparker_profiles::tokenize(b).collect(),
    );
    let mut group = c.benchmark_group("similarity");
    group.bench_function("jaccard", |bch| {
        bch.iter(|| similarity::jaccard(black_box(&ta), black_box(&tb)))
    });
    group.bench_function("dice", |bch| {
        bch.iter(|| similarity::dice(black_box(&ta), black_box(&tb)))
    });
    group.bench_function("cosine", |bch| {
        bch.iter(|| similarity::cosine_tokens(black_box(&ta), black_box(&tb)))
    });
    group.bench_function("levenshtein", |bch| {
        bch.iter(|| similarity::levenshtein_similarity(black_box(a), black_box(b)))
    });
    group.bench_function("jaro-winkler", |bch| {
        bch.iter(|| similarity::jaro_winkler(black_box(a), black_box(b)))
    });
    group.bench_function("monge-elkan", |bch| {
        bch.iter(|| similarity::monge_elkan(black_box(a), black_box(b)))
    });
    group.finish();
}

fn bench_matcher_loop(c: &mut Criterion) {
    let ds = abt_buy_like(400);
    let blocker = Pipeline::new(Default::default()).run_blocker(&ds.collection);
    let candidates: Vec<_> = blocker.candidates.iter().copied().collect();
    let mut group = c.benchmark_group("matcher");
    group.sample_size(20);
    for measure in [SimilarityMeasure::Jaccard, SimilarityMeasure::MongeElkan] {
        let matcher = ThresholdMatcher::new(measure, 0.35);
        group.bench_with_input(
            BenchmarkId::from_parameter(measure.name()),
            &matcher,
            |b, m| b.iter(|| m.match_pairs(&ds.collection, candidates.iter().copied())),
        );
    }
    group.finish();
}

fn bench_tfidf(c: &mut Criterion) {
    let ds = abt_buy_like(400);
    c.bench_function("tfidf/build-index", |b| {
        b.iter(|| TfIdfIndex::build(black_box(&ds.collection)))
    });
}

criterion_group!(benches, bench_measures, bench_matcher_loop, bench_tfidf);
criterion_main!(benches);
