//! Memory-budget scaling curve over the named dataset presets
//! (`dirty_10k`, `dirty_100k`, `skewed_1m`).
//!
//! Each cell runs the `sparker` CLI in a **fresh subprocess** — peak RSS
//! (`VmHWM`) is process-monotonic, so in-process measurement of a smaller
//! tier after a bigger one would only ever read the bigger tier's
//! high-water. The CLI already prints a machine-readable `memory:` line
//! (budget, peak RSS, spilled bytes, spill batches) and a `result counts:`
//! line; this bench parses both, records wall time and memory rows into
//! the criterion stream (`BENCH_JSON=BENCH_scaling.json` via
//! `scripts/bench.sh`), and asserts the out-of-core contract: budgeted
//! runs spill yet report counts identical to the in-RAM run.
//!
//! Beyond the pool curve the bench pins two execution-mode contracts:
//!
//! * **dispatch overhead** — one pool worker has no parallelism to pay
//!   for, so `pool --workers 1` must stay within 15% of the sequential
//!   backend on the default-config 10k pipeline (run in-process; the
//!   subprocess preset cells are recorded but not asserted, because at
//!   tens of milliseconds they measure the engine blocking operator's
//!   shuffle formulation, not dispatch);
//! * **fused memory** — the fused backend (which never materializes the
//!   full candidate list) must match the pool's result counts and its
//!   peak RSS is recorded next to the pool's for comparison.
//!
//! Memory and ratio rows are recorded via `record_value` and appear in the
//! JSON dump as a dedicated `"value"` field (not fake `mean_ns` entries).
//!
//! The 10⁶-profile tier (`skewed_1m` under a 4 GiB budget) takes tens of
//! minutes and is gated behind `SPARKER_SCALE_1M=1`; under `BENCH_SMOKE`
//! only the 10k tier runs so CI exercises the harness cheaply.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty())
}

/// The release `sparker` CLI, built on demand when the bench runs before
/// `cargo build --release` has produced it.
fn sparker_binary() -> PathBuf {
    // Bench binaries live in target/<profile>/deps/; the CLI one level up.
    let exe = std::env::current_exe().expect("bench executable path");
    let profile_dir = exe
        .parent()
        .and_then(|p| p.parent())
        .expect("bench target directory");
    let bin = profile_dir.join("sparker");
    if !bin.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let status = Command::new(cargo)
            .args(["build", "--release", "--bin", "sparker"])
            .status()
            .expect("spawn cargo build for the sparker CLI");
        assert!(status.success(), "building the sparker CLI failed");
    }
    bin
}

/// One preset run: wall time plus the CLI's parsed `memory:` and
/// `result counts:` lines.
struct Cell {
    wall: Duration,
    counts: String,
    peak_rss_mb: u64,
    spilled_mb: u64,
    spill_batches: u64,
}

fn parse_field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("field {key} missing from {line:?}"))
}

fn run_cell(bin: &PathBuf, preset: &str, backend: &str, workers: usize, budget_mb: u64) -> Cell {
    run_cell_with(bin, preset, backend, workers, budget_mb, &[])
}

fn run_cell_with(
    bin: &PathBuf,
    preset: &str,
    backend: &str,
    workers: usize,
    budget_mb: u64,
    extra: &[&str],
) -> Cell {
    let mut cmd = Command::new(bin);
    cmd.args([
        "--preset",
        preset,
        "--backend",
        backend,
        "--workers",
        &workers.to_string(),
    ]);
    cmd.args(extra);
    if budget_mb > 0 {
        cmd.args(["--mem-budget-mb", &budget_mb.to_string()]);
    }
    let t0 = Instant::now();
    let out = cmd.output().expect("spawn sparker CLI");
    let wall = t0.elapsed();
    assert!(
        out.status.success(),
        "sparker --preset {preset} --backend {backend} (budget {budget_mb} MiB) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = |prefix: &str| {
        stdout
            .lines()
            .find(|l| l.starts_with(prefix))
            .unwrap_or_else(|| panic!("no {prefix:?} line in CLI output"))
            .to_string()
    };
    let memory = line("memory:");
    Cell {
        wall,
        counts: line("result counts:"),
        peak_rss_mb: parse_field(&memory, "peak_rss_mb"),
        spilled_mb: parse_field(&memory, "spilled_mb"),
        spill_batches: parse_field(&memory, "spill_batches"),
    }
}

/// Record one cell's wall + memory rows under `scaling/<preset>/<tag>/…`.
fn record_cell(c: &mut Criterion, preset: &str, tag: &str, cell: &Cell) {
    eprintln!(
        "scaling/{preset}/{tag}: wall {:?}, peak RSS {} MiB, spilled {} MiB ({} batches)",
        cell.wall, cell.peak_rss_mb, cell.spilled_mb, cell.spill_batches
    );
    c.record(format!("scaling/{preset}/{tag}/wall"), 1, cell.wall);
    c.record_value(
        format!("scaling/{preset}/{tag}/peak_rss_mb"),
        cell.peak_rss_mb as f64,
    );
    c.record_value(
        format!("scaling/{preset}/{tag}/spilled_mb"),
        cell.spilled_mb as f64,
    );
    c.record_value(
        format!("scaling/{preset}/{tag}/spill_batches"),
        cell.spill_batches as f64,
    );
}

fn bench_scaling_curve(c: &mut Criterion) {
    let bin = sparker_binary();
    let smoke = env_flag("BENCH_SMOKE");
    // (preset, budget MiB — 0 = in-RAM reference, expect_spill). Ascending
    // sizes; each budgeted cell is paired with the unbudgeted run it must
    // reproduce. Budgets that expect spilling sit below the tier's shuffle
    // buffer volume; the 4 GiB `skewed_1m` cell instead pins the acceptance
    // bound that the whole process peak RSS stays inside the budget.
    let cells: Vec<(&str, u64, bool)> = if smoke {
        vec![("dirty_10k", 0, false), ("dirty_10k", 1, true)]
    } else {
        let mut cells = vec![
            ("dirty_10k", 0, false),
            ("dirty_10k", 1, true),
            ("dirty_100k", 0, false),
            ("dirty_100k", 8, true),
        ];
        if env_flag("SPARKER_SCALE_1M") {
            cells.push(("skewed_1m", 0, false));
            cells.push(("skewed_1m", 64, true));
            cells.push(("skewed_1m", 4096, false));
        }
        cells
    };

    let mut reference: Vec<(String, String, u64)> = Vec::new();
    for (preset, budget_mb, expect_spill) in cells {
        let tag = if budget_mb == 0 {
            "in-ram".to_string()
        } else {
            format!("budget-{budget_mb}mb")
        };
        let cell = run_cell(&bin, preset, "pool", 4, budget_mb);
        record_cell(c, preset, &tag, &cell);
        if budget_mb == 0 {
            // The fused backend never materializes the full candidate list;
            // run it next to every in-RAM pool cell so its peak RSS lands in
            // the same dump, and pin result-count identity.
            let fused = run_cell(&bin, preset, "fused", 4, 0);
            record_cell(c, preset, "fused-in-ram", &fused);
            assert_eq!(
                fused.counts, cell.counts,
                "{preset}: fused result counts diverged from the pool run"
            );
            reference.push((preset.to_string(), cell.counts, cell.peak_rss_mb));
            continue;
        }
        // The out-of-core contract: a budget changes *where* bytes live,
        // never what the pipeline computes.
        if expect_spill {
            assert!(
                cell.spill_batches > 0,
                "{preset} under {budget_mb} MiB never spilled — budget not exercised"
            );
        } else {
            // The headline acceptance cell: the run's whole peak RSS (not
            // just the accounted buffers) fits the budget.
            assert!(
                cell.peak_rss_mb <= budget_mb,
                "{preset}: peak RSS {} MiB exceeds the {budget_mb} MiB budget",
                cell.peak_rss_mb
            );
        }
        if let Some((_, want, _)) = reference.iter().find(|(p, _, _)| p == preset) {
            assert_eq!(
                &cell.counts, want,
                "{preset}: budgeted result counts diverged from the in-RAM run"
            );
        }
    }

    // Dispatch-overhead guard: one pool worker has no parallelism to pay
    // for, so it must track the sequential backend closely (the historical
    // regression was ~9% from degree-cost morsel construction that a single
    // worker cannot exploit).
    //
    // The subprocess cells are recorded for reference but *not* asserted:
    // the scaling-config preset finishes in tens of milliseconds, so its
    // ratio is dominated by the engine blocking operator's Spark-style
    // shuffle (an algorithmic difference from the sequential dict path,
    // pinned by E8) rather than by dispatch. The asserted guard runs the
    // default-config 10k pipeline in-process, where seconds of morsel-
    // dispatched matcher work dwarf the fixed blocking cost and the ratio
    // actually measures dispatch overhead.
    let seq = run_cell(&bin, "dirty_10k", "sequential", 1, 0);
    let pool1 = run_cell(&bin, "dirty_10k", "pool", 1, 0);
    c.record("scaling/dirty_10k/sequential-1/wall", 1, seq.wall);
    c.record("scaling/dirty_10k/pool-1/wall", 1, pool1.wall);
    let ratio = pool1.wall.as_secs_f64() / seq.wall.as_secs_f64().max(1e-9);
    c.record_value("scaling/dirty_10k/pool1_vs_sequential", ratio);
    eprintln!(
        "scaling/dirty_10k: sequential {:?}, pool/1 {:?} (ratio {ratio:.3})",
        seq.wall, pool1.wall
    );
    assert_eq!(
        pool1.counts, seq.counts,
        "pool/1 result counts diverged from sequential"
    );
    // Fused peak-RSS comparison under the *default* (unbounded) pipeline
    // configuration: the scaling config already caps candidates-per-
    // profile, so its candidate list is small and the fused backend's
    // structural saving — never materializing the CSR `CandidateGraph` —
    // cannot show up in the preset cells above (they come out RSS-equal).
    // With the default config the 10k preset prunes to millions of
    // candidate pairs, and skipping the CSR build is megabytes of
    // high-water difference.
    if !smoke {
        use sparker_core::PipelineConfig;
        let conf = std::env::temp_dir().join("sparker_scaling_default.conf");
        std::fs::write(&conf, PipelineConfig::default().to_config_string())
            .expect("write default-config file");
        let conf_arg = conf.to_string_lossy().into_owned();
        let extra = ["--config", conf_arg.as_str()];
        let pool = run_cell_with(&bin, "dirty_10k", "pool", 4, 0, &extra);
        record_cell(c, "dirty_10k", "default-config-pool", &pool);
        let fused = run_cell_with(&bin, "dirty_10k", "fused", 4, 0, &extra);
        record_cell(c, "dirty_10k", "default-config-fused", &fused);
        assert_eq!(
            fused.counts, pool.counts,
            "default-config dirty_10k: fused result counts diverged from pool"
        );
        assert!(
            fused.peak_rss_mb < pool.peak_rss_mb,
            "fused peak RSS {} MiB is not below the staged pool's {} MiB on \
             the default-config dirty_10k run (the fused path must skip the \
             CSR candidate graph)",
            fused.peak_rss_mb,
            pool.peak_rss_mb
        );
    }

    if !smoke {
        use sparker_core::{ExecutionBackend, Pipeline, PipelineConfig};
        let ds = sparker_bench::skewed_dirty(5000);
        let pipeline = Pipeline::new(PipelineConfig::default());
        let t0 = Instant::now();
        let seq_run = pipeline.run_on(&ExecutionBackend::Sequential, &ds.collection);
        let seq_wall = t0.elapsed();
        let t0 = Instant::now();
        let pool_run = pipeline.run_on(&ExecutionBackend::pool(1), &ds.collection);
        let pool_wall = t0.elapsed();
        assert_eq!(
            seq_run.clusters, pool_run.clusters,
            "pool/1 clusters diverged from sequential on the default config"
        );
        c.record("scaling/default_10k/sequential-1/wall", 1, seq_wall);
        c.record("scaling/default_10k/pool-1/wall", 1, pool_wall);
        let ratio = pool_wall.as_secs_f64() / seq_wall.as_secs_f64().max(1e-9);
        c.record_value("scaling/default_10k/pool1_vs_sequential", ratio);
        eprintln!(
            "scaling/default_10k: sequential {seq_wall:?}, pool/1 {pool_wall:?} (ratio {ratio:.3})"
        );
        assert!(
            ratio <= 1.15,
            "pool --workers 1 is {ratio:.2}x sequential on the default 10k \
             pipeline; single-worker dispatch overhead regressed (bound: 1.15x)"
        );
    }
}

criterion_group!(benches, bench_scaling_curve);
criterion_main!(benches);
