//! Memory-budget scaling curve over the named dataset presets
//! (`dirty_10k`, `dirty_100k`, `skewed_1m`).
//!
//! Each cell runs the `sparker` CLI in a **fresh subprocess** — peak RSS
//! (`VmHWM`) is process-monotonic, so in-process measurement of a smaller
//! tier after a bigger one would only ever read the bigger tier's
//! high-water. The CLI already prints a machine-readable `memory:` line
//! (budget, peak RSS, spilled bytes, spill batches) and a `result counts:`
//! line; this bench parses both, records wall time and memory rows into
//! the criterion stream (`BENCH_JSON=BENCH_scaling.json` via
//! `scripts/bench.sh`), and asserts the out-of-core contract: budgeted
//! runs spill yet report counts identical to the in-RAM run.
//!
//! The 10⁶-profile tier (`skewed_1m` under a 4 GiB budget) takes tens of
//! minutes and is gated behind `SPARKER_SCALE_1M=1`; under `BENCH_SMOKE`
//! only the 10k tier runs so CI exercises the harness cheaply.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty())
}

/// The release `sparker` CLI, built on demand when the bench runs before
/// `cargo build --release` has produced it.
fn sparker_binary() -> PathBuf {
    // Bench binaries live in target/<profile>/deps/; the CLI one level up.
    let exe = std::env::current_exe().expect("bench executable path");
    let profile_dir = exe
        .parent()
        .and_then(|p| p.parent())
        .expect("bench target directory");
    let bin = profile_dir.join("sparker");
    if !bin.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let status = Command::new(cargo)
            .args(["build", "--release", "--bin", "sparker"])
            .status()
            .expect("spawn cargo build for the sparker CLI");
        assert!(status.success(), "building the sparker CLI failed");
    }
    bin
}

/// One preset run: wall time plus the CLI's parsed `memory:` and
/// `result counts:` lines.
struct Cell {
    wall: Duration,
    counts: String,
    peak_rss_mb: u64,
    spilled_mb: u64,
    spill_batches: u64,
}

fn parse_field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("field {key} missing from {line:?}"))
}

fn run_cell(bin: &PathBuf, preset: &str, budget_mb: u64) -> Cell {
    let mut cmd = Command::new(bin);
    cmd.args(["--preset", preset, "--backend", "pool", "--workers", "4"]);
    if budget_mb > 0 {
        cmd.args(["--mem-budget-mb", &budget_mb.to_string()]);
    }
    let t0 = Instant::now();
    let out = cmd.output().expect("spawn sparker CLI");
    let wall = t0.elapsed();
    assert!(
        out.status.success(),
        "sparker --preset {preset} (budget {budget_mb} MiB) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = |prefix: &str| {
        stdout
            .lines()
            .find(|l| l.starts_with(prefix))
            .unwrap_or_else(|| panic!("no {prefix:?} line in CLI output"))
            .to_string()
    };
    let memory = line("memory:");
    Cell {
        wall,
        counts: line("result counts:"),
        peak_rss_mb: parse_field(&memory, "peak_rss_mb"),
        spilled_mb: parse_field(&memory, "spilled_mb"),
        spill_batches: parse_field(&memory, "spill_batches"),
    }
}

fn bench_scaling_curve(c: &mut Criterion) {
    let bin = sparker_binary();
    // (preset, budget MiB — 0 = in-RAM reference, expect_spill). Ascending
    // sizes; each budgeted cell is paired with the unbudgeted run it must
    // reproduce. Budgets that expect spilling sit below the tier's shuffle
    // buffer volume; the 4 GiB `skewed_1m` cell instead pins the acceptance
    // bound that the whole process peak RSS stays inside the budget.
    let cells: Vec<(&str, u64, bool)> = if env_flag("BENCH_SMOKE") {
        vec![("dirty_10k", 0, false), ("dirty_10k", 1, true)]
    } else {
        let mut cells = vec![
            ("dirty_10k", 0, false),
            ("dirty_10k", 1, true),
            ("dirty_100k", 0, false),
            ("dirty_100k", 8, true),
        ];
        if env_flag("SPARKER_SCALE_1M") {
            cells.push(("skewed_1m", 0, false));
            cells.push(("skewed_1m", 64, true));
            cells.push(("skewed_1m", 4096, false));
        }
        cells
    };

    let mut reference: Vec<(String, String)> = Vec::new();
    for (preset, budget_mb, expect_spill) in cells {
        let tag = if budget_mb == 0 {
            "in-ram".to_string()
        } else {
            format!("budget-{budget_mb}mb")
        };
        let cell = run_cell(&bin, preset, budget_mb);
        eprintln!(
            "scaling/{preset}/{tag}: wall {:?}, peak RSS {} MiB, spilled {} MiB ({} batches)",
            cell.wall, cell.peak_rss_mb, cell.spilled_mb, cell.spill_batches
        );
        c.record(format!("scaling/{preset}/{tag}/wall"), 1, cell.wall);
        c.record(
            format!("scaling/{preset}/{tag}/peak_rss_mb"),
            cell.peak_rss_mb as usize,
            Duration::ZERO,
        );
        c.record(
            format!("scaling/{preset}/{tag}/spilled_mb"),
            cell.spilled_mb as usize,
            Duration::ZERO,
        );
        c.record(
            format!("scaling/{preset}/{tag}/spill_batches"),
            cell.spill_batches as usize,
            Duration::ZERO,
        );
        if budget_mb == 0 {
            reference.push((preset.to_string(), cell.counts));
            continue;
        }
        // The out-of-core contract: a budget changes *where* bytes live,
        // never what the pipeline computes.
        if expect_spill {
            assert!(
                cell.spill_batches > 0,
                "{preset} under {budget_mb} MiB never spilled — budget not exercised"
            );
        } else {
            // The headline acceptance cell: the run's whole peak RSS (not
            // just the accounted buffers) fits the budget.
            assert!(
                cell.peak_rss_mb <= budget_mb,
                "{preset}: peak RSS {} MiB exceeds the {budget_mb} MiB budget",
                cell.peak_rss_mb
            );
        }
        if let Some((_, want)) = reference.iter().find(|(p, _)| p == preset) {
            assert_eq!(
                &cell.counts, want,
                "{preset}: budgeted result counts diverged from the in-RAM run"
            );
        }
    }
}

criterion_group!(benches, bench_scaling_curve);
criterion_main!(benches);
