//! Criterion benches for the end-to-end pipeline (experiment E9's cost
//! side): full runs under the schema-agnostic and Blast configurations,
//! and the per-module split.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparker_bench::abt_buy_like;
use sparker_core::{BlockingConfig, Pipeline, PipelineConfig};
use std::hint::black_box;

fn bench_full_pipeline(c: &mut Criterion) {
    let ds = abt_buy_like(400);
    let mut group = c.benchmark_group("pipeline/full");
    group.sample_size(10);
    for (name, blocking) in [
        ("schema-agnostic", BlockingConfig::default()),
        ("blast", BlockingConfig::blast()),
    ] {
        let pipeline = Pipeline::new(PipelineConfig {
            blocking,
            ..PipelineConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(name), &pipeline, |b, p| {
            b.iter(|| p.run(black_box(&ds.collection)))
        });
    }
    group.finish();
}

fn bench_blocker_only(c: &mut Criterion) {
    let ds = abt_buy_like(400);
    let pipeline = Pipeline::new(PipelineConfig::default());
    let mut group = c.benchmark_group("pipeline/blocker");
    group.sample_size(20);
    group.bench_function("default", |b| {
        b.iter(|| pipeline.run_blocker(black_box(&ds.collection)))
    });
    group.finish();
}

criterion_group!(benches, bench_full_pipeline, bench_blocker_only);
criterion_main!(benches);
