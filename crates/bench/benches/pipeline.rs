//! Criterion benches for the end-to-end pipeline (experiment E9's cost
//! side): full runs under the schema-agnostic and Blast configurations,
//! the per-module split, and the `pipeline_10k` worker-scaling group for
//! the pool-parallel pipeline (matcher + clusterer on the persistent pool).
//!
//! Run with `BENCH_JSON=BENCH_pipeline.json cargo bench -p sparker-bench
//! --bench pipeline` to dump every measurement as JSON.
//!
//! Note on the scaling numbers: wall-clock cannot speed up on a
//! single-core host, so alongside each wall time the `pipeline_10k` group
//! records per-stage **critical paths** (the slowest worker slot's busy
//! time, the wall-clock lower bound on a one-core-per-worker machine) from
//! the engine's own stage metrics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparker_bench::{abt_buy_like, skewed_dirty};
use sparker_core::{
    BlockingConfig, ExecutionBackend, Pipeline, PipelineConfig, PipelineReport, PipelineStage,
};
use sparker_dataflow::{Context, MetricsSnapshot};
use sparker_matching::{CandidateGraph, ScoringMode, SimilarityMeasure, ThresholdMatcher};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_full_pipeline(c: &mut Criterion) {
    let ds = abt_buy_like(400);
    let mut group = c.benchmark_group("pipeline/full");
    group.sample_size(10);
    for (name, blocking) in [
        ("schema-agnostic", BlockingConfig::default()),
        ("blast", BlockingConfig::blast()),
    ] {
        let pipeline = Pipeline::new(PipelineConfig {
            blocking,
            ..PipelineConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(name), &pipeline, |b, p| {
            b.iter(|| p.run(black_box(&ds.collection)))
        });
    }
    group.finish();
}

fn bench_blocker_only(c: &mut Criterion) {
    let ds = abt_buy_like(400);
    let pipeline = Pipeline::new(PipelineConfig::default());
    let mut group = c.benchmark_group("pipeline/blocker");
    group.sample_size(20);
    group.bench_function("default", |b| {
        b.iter(|| pipeline.run_blocker(black_box(&ds.collection)))
    });
    group.finish();
}

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty())
}

/// Summed critical path of every engine operator stage submitted inside
/// the named pipeline stage scope. Operator stages are attributed to the
/// `pipeline/<scope>` marker that *follows* them in the metrics stream
/// (the scope appends its marker at `finish`).
fn scope_critical_path(snap: &MetricsSnapshot, scope: &str) -> Duration {
    let mut acc = Duration::ZERO;
    let mut total = Duration::ZERO;
    for stage in &snap.stages {
        if let Some(name) = stage.name.strip_prefix("pipeline/") {
            if name == scope {
                total += acc;
            }
            acc = Duration::ZERO;
        } else {
            acc += stage.critical_path();
        }
    }
    total
}

/// Driver-serial time of the prune→score region: stage wall minus engine
/// busy, summed over the two stage rows. This is the slice of the region's
/// latency no worker count can overlap — on the staged path it holds the
/// global candidate sort and the CSR candidate-graph build, both of which
/// the fused path eliminates. The region's modeled latency on a
/// one-core-per-worker machine is this plus its engine critical path.
fn prune_score_driver_serial(report: &PipelineReport) -> Duration {
    report
        .stages
        .iter()
        .filter(|s| {
            matches!(
                s.stage,
                PipelineStage::PruneCandidates | PipelineStage::ScorePairs
            )
        })
        .map(|s| s.wall.saturating_sub(s.busy))
        .sum()
}

/// Worker-scaling of the pool-parallel pipeline on the skewed 10k-profile
/// preset (5k entities × dirty duplication). Wall times go through the
/// normal sample loop; a separate instrumented run per worker count exports
/// the matcher and clusterer stage critical paths, their combination (the
/// headline matcher+clusterer scaling number), and the step-timing split,
/// plus the sequential pipeline's step timings as the baseline.
fn bench_pipeline_scaling(c: &mut Criterion) {
    // 10k profiles in the real run; a few hundred under BENCH_SMOKE so CI
    // exercises the exporter without paying the full workload.
    let ds = if smoke() {
        skewed_dirty(200)
    } else {
        skewed_dirty(5_000)
    };
    let pipeline = Pipeline::new(PipelineConfig::default());

    let mut group = c.benchmark_group("pipeline_10k");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| pipeline.run(black_box(&ds.collection)))
    });
    for workers in WORKER_COUNTS {
        let ctx = Context::new(workers);
        group.bench_function(BenchmarkId::new("pool", workers), |b| {
            b.iter(|| pipeline.run_pipeline_parallel(&ctx, black_box(&ds.collection)))
        });
    }
    for workers in WORKER_COUNTS {
        let backend = ExecutionBackend::fused(workers);
        group.bench_function(BenchmarkId::new("fused", workers), |b| {
            b.iter(|| pipeline.run_on(&backend, black_box(&ds.collection)))
        });
    }
    group.finish();

    // Instrumented runs: per-stage critical paths out of the engine metrics
    // + the pipeline's own step-timing split.
    let mut candidate_cps: Vec<(usize, Duration)> = Vec::new();
    let mut pool_total_cps: Vec<(usize, Duration)> = Vec::new();
    let mut pool_modeled: Vec<(usize, Duration)> = Vec::new();
    for workers in WORKER_COUNTS {
        let ctx = Context::new(workers);
        ctx.reset_metrics();
        let result = pipeline.run_pipeline_parallel(&ctx, &ds.collection);
        let snap = ctx.metrics();
        let prefix = format!("pipeline_10k/pool/{workers}");
        let mut matcher = Duration::ZERO;
        let mut clusterer = Duration::ZERO;
        for stage in &snap.stages {
            match stage.name.as_str() {
                "match_candidates" => matcher += stage.critical_path(),
                "cluster_components" => clusterer += stage.critical_path(),
                _ => {}
            }
        }
        let candidates_cp = scope_critical_path(&snap, "prune_candidates");
        candidate_cps.push((workers, candidates_cp));
        c.record(
            format!("{prefix}/candidates/critical-path"),
            1,
            candidates_cp,
        );
        c.record(format!("{prefix}/matcher/critical-path"), 1, matcher);
        c.record(format!("{prefix}/clusterer/critical-path"), 1, clusterer);
        c.record(
            format!("{prefix}/matcher+clusterer/critical-path"),
            1,
            matcher + clusterer,
        );
        let total_cp = snap.total_critical_path();
        pool_total_cps.push((workers, total_cp));
        c.record(format!("{prefix}/total/critical-path"), 1, total_cp);
        let modeled = prune_score_driver_serial(&result.report) + candidates_cp + matcher;
        pool_modeled.push((workers, modeled));
        c.record(format!("{prefix}/prune+score/modeled-latency"), 1, modeled);
        c.record(
            format!("{prefix}/step/blocking"),
            1,
            result.timings.blocking,
        );
        c.record(
            format!("{prefix}/step/candidates"),
            1,
            result.timings.candidates,
        );
        c.record(
            format!("{prefix}/step/matching"),
            1,
            result.timings.matching,
        );
        c.record(
            format!("{prefix}/step/clustering"),
            1,
            result.timings.clustering,
        );
    }
    // The candidates step must actually scale now that its degree pass
    // runs node-parallel instead of serially on the driver: its engine
    // critical path (max per-worker-slot busy time — the wall-clock lower
    // bound with one core per worker) has to shrink from 1 to 4 workers.
    let cp = |w: usize| {
        candidate_cps
            .iter()
            .find(|(ws, _)| *ws == w)
            .expect("worker count benched")
            .1
    };
    assert!(
        cp(4) < cp(1),
        "candidates critical path did not scale: 1 worker {:?} vs 4 workers {:?}",
        cp(1),
        cp(4),
    );

    // Instrumented fused runs: the fused batch overlaps the pruning and
    // matching critical paths, so its headline number is the *total*
    // critical path against the staged pool at the same worker count. The
    // fused stage's busy/wall ratio is the measured overlap (busy ≫ wall
    // means pruning and scoring genuinely ran concurrently), exported as a
    // `value` row alongside the speedup ratio.
    for workers in WORKER_COUNTS {
        let backend = ExecutionBackend::fused(workers);
        let ctx = backend.context().unwrap();
        ctx.reset_metrics();
        let result = pipeline.run_on(&backend, &ds.collection);
        let snap = ctx.metrics();
        let prefix = format!("pipeline_10k/fused/{workers}");
        let total_cp = snap.total_critical_path();
        c.record(format!("{prefix}/total/critical-path"), 1, total_cp);
        if let Some(stage) = snap.stages.iter().find(|s| s.name == "fused_prune_score") {
            c.record(format!("{prefix}/fused-stage/wall"), 1, stage.wall_time);
            c.record(format!("{prefix}/fused-stage/busy"), 1, stage.busy_time);
            c.record(
                format!("{prefix}/fused-stage/queue-wait"),
                1,
                stage.queue_wait,
            );
            c.record(
                format!("{prefix}/fused-stage/critical-path"),
                1,
                stage.critical_path(),
            );
            c.record_value(
                format!("{prefix}/fused-stage/overlap"),
                stage.busy_time.as_secs_f64() / stage.wall_time.as_secs_f64().max(1e-9),
            );
        }
        let pool_cp = pool_total_cps
            .iter()
            .find(|(w, _)| *w == workers)
            .expect("worker count benched")
            .1;
        let speedup = pool_cp.as_secs_f64() / total_cp.as_secs_f64().max(1e-9);
        c.record_value(format!("{prefix}/speedup_vs_pool_total_cp"), speedup);
        // Modeled prune→score latency: engine critical paths alone are
        // work-conserving (the fused stage runs at its busy/workers floor,
        // so fusing two balanced stages barely moves their CP sum) — the
        // fused win is the *driver-serial* time it deletes: the staged
        // path's global candidate sort and CSR build. Wall minus busy per
        // stage plus the region's engine CP is the latency a
        // one-core-per-worker host would observe for the region.
        let region_cp = scope_critical_path(&snap, "prune_candidates")
            + scope_critical_path(&snap, "score_pairs");
        let modeled = prune_score_driver_serial(&result.report) + region_cp;
        c.record(format!("{prefix}/prune+score/modeled-latency"), 1, modeled);
        let pool_region = pool_modeled
            .iter()
            .find(|(w, _)| *w == workers)
            .expect("worker count benched")
            .1;
        let region_speedup = pool_region.as_secs_f64() / modeled.as_secs_f64().max(1e-9);
        c.record_value(
            format!("{prefix}/prune+score/modeled-speedup-vs-pool"),
            region_speedup,
        );
        eprintln!(
            "pipeline_10k/fused/{workers}: total critical path {total_cp:?} \
             vs pool {pool_cp:?} ({speedup:.2}x); prune+score modeled latency \
             {modeled:?} vs pool {pool_region:?} ({region_speedup:.2}x)"
        );
        c.record(
            format!("{prefix}/step/candidates"),
            1,
            result.timings.candidates,
        );
        c.record(
            format!("{prefix}/step/matching"),
            1,
            result.timings.matching,
        );
    }

    let seq = pipeline.run(&ds.collection);
    c.record(
        "pipeline_10k/sequential/step/blocking",
        1,
        seq.timings.blocking,
    );
    c.record(
        "pipeline_10k/sequential/step/candidates",
        1,
        seq.timings.candidates,
    );
    c.record(
        "pipeline_10k/sequential/step/matching",
        1,
        seq.timings.matching,
    );
    c.record(
        "pipeline_10k/sequential/step/clustering",
        1,
        seq.timings.clustering,
    );
    c.record(
        "pipeline_10k/sequential/matcher+clusterer/wall",
        1,
        seq.timings.matching + seq.timings.clustering,
    );
}

/// Filter–verify cascade vs the naive score-everything matcher on the
/// pool matcher at one worker, per similarity measure at the default
/// threshold: the wall ratio is the cascade's speedup on the matcher
/// critical path. A second instrumented pass exports the cascade's filter
/// statistics — how many pairs each tier disposed of (bound-rejected
/// without any token comparison, abandoned mid-kernel, fully verified,
/// kept) — as count entries whose `samples` field carries the count and
/// whose duration is zero.
fn bench_matcher_kernels(c: &mut Criterion) {
    // Smaller than the scaling preset: the edit-based naive kernels are
    // quadratic per pair, and every measure runs in both modes.
    let ds = if smoke() {
        skewed_dirty(200)
    } else {
        skewed_dirty(600)
    };
    let pipeline = Pipeline::new(PipelineConfig::default());
    let blocker = pipeline.run_blocker(&ds.collection);
    let graph = Arc::new(CandidateGraph::from_pairs(
        ds.collection.len(),
        blocker.candidates.iter().copied(),
    ));
    let threshold = PipelineConfig::default().matching.threshold;
    let ctx = Context::new(1);

    let mut group = c.benchmark_group("matcher_kernels");
    group.sample_size(3);
    for measure in SimilarityMeasure::ALL {
        for (mode_name, mode) in [
            ("naive", ScoringMode::Naive),
            ("cascade", ScoringMode::Cascade),
        ] {
            let matcher = ThresholdMatcher::with_mode(measure, threshold, mode);
            group.bench_with_input(
                BenchmarkId::new(measure.name(), mode_name),
                &matcher,
                |b, m| b.iter(|| m.match_candidates_pool(&ctx, black_box(&ds.collection), &graph)),
            );
        }
    }
    group.finish();

    for measure in SimilarityMeasure::ALL {
        let matcher = ThresholdMatcher::with_mode(measure, threshold, ScoringMode::Cascade);
        let (_, stats) = matcher.match_candidates_pool_stats(&ctx, &ds.collection, &graph);
        let prefix = format!("matcher_kernels/{}/filter", measure.name());
        for (name, count) in [
            ("pairs", stats.pairs),
            ("bound-rejected", stats.bound_rejected),
            ("abandoned", stats.abandoned),
            ("verified", stats.verified),
            ("kept", stats.kept),
        ] {
            c.record(format!("{prefix}/{name}"), count as usize, Duration::ZERO);
        }
    }
}

/// One instrumented `Pipeline::run_on` per execution backend, exporting
/// each run's structured `PipelineReport`: per-stage wall and busy time go
/// into the criterion measurement stream (so `BENCH_JSON` carries them),
/// and the raw report JSON documents land in the file named by the
/// `PIPELINE_REPORT_JSON` env var (one JSON array entry per backend —
/// `scripts/bench.sh` points it at `results/pipeline_reports.json`; the
/// schema is documented in the README).
fn bench_backend_reports(c: &mut Criterion) {
    let ds = if smoke() {
        skewed_dirty(200)
    } else {
        skewed_dirty(5_000)
    };
    let pipeline = Pipeline::new(PipelineConfig::default());
    let workers = 4;
    let backends = [
        ExecutionBackend::Sequential,
        ExecutionBackend::dataflow(workers),
        ExecutionBackend::pool(workers),
        ExecutionBackend::fused(workers),
    ];

    let mut reports = Vec::new();
    for backend in &backends {
        let result = pipeline.run_on(backend, &ds.collection);
        let report = &result.report;
        let prefix = format!("pipeline_report/{}/{}", report.backend, report.workers);
        for stage in &report.stages {
            c.record(
                format!("{prefix}/{}/wall", stage.stage.name()),
                1,
                stage.wall,
            );
            c.record(
                format!("{prefix}/{}/busy", stage.stage.name()),
                1,
                stage.busy,
            );
            c.record(
                format!("{prefix}/{}/queue-wait", stage.stage.name()),
                1,
                stage.queue_wait,
            );
        }
        c.record(format!("{prefix}/total/wall"), 1, report.total_wall());
        reports.push(report.to_json());
    }

    if let Ok(path) = std::env::var("PIPELINE_REPORT_JSON") {
        let json = format!("[\n{}\n]\n", reports.join(",\n"));
        std::fs::write(&path, json).expect("write PIPELINE_REPORT_JSON");
    }
}

criterion_group!(
    benches,
    bench_full_pipeline,
    bench_blocker_only,
    bench_pipeline_scaling,
    bench_matcher_kernels,
    bench_backend_reports
);
criterion_main!(benches);
