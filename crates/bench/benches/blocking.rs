//! Criterion benches for the blocking stage: tokenization, token blocking,
//! purging, filtering — the per-stage costs behind experiment E6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparker_bench::abt_buy_like;
use sparker_blocking::{block_filtering, purge_by_comparison_level, purge_oversized, token_blocking};
use sparker_profiles::tokenize;
use std::hint::black_box;

fn bench_tokenize(c: &mut Criterion) {
    let text = "Sony BRAVIA KDL-40W600B 40-Inch 1080p Smart LED TV (2014 Model) with remote";
    c.bench_function("tokenize/product-title", |b| {
        b.iter(|| tokenize(black_box(text)).count())
    });
}

fn bench_token_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("token_blocking");
    for entities in [250usize, 1000] {
        let ds = abt_buy_like(entities);
        group.bench_with_input(
            BenchmarkId::from_parameter(ds.collection.len()),
            &ds,
            |b, ds| b.iter(|| token_blocking(black_box(&ds.collection))),
        );
    }
    group.finish();
}

fn bench_purging(c: &mut Criterion) {
    let ds = abt_buy_like(1000);
    let blocks = token_blocking(&ds.collection);
    let n = ds.collection.len();
    c.bench_function("purge/oversized", |b| {
        b.iter(|| purge_oversized(black_box(blocks.clone()), n, 0.5))
    });
    c.bench_function("purge/comparison-level", |b| {
        b.iter(|| purge_by_comparison_level(black_box(blocks.clone()), 1.025))
    });
}

fn bench_filtering(c: &mut Criterion) {
    let ds = abt_buy_like(1000);
    let blocks = purge_oversized(token_blocking(&ds.collection), ds.collection.len(), 0.5);
    c.bench_function("block_filtering/0.8", |b| {
        b.iter(|| block_filtering(black_box(blocks.clone()), 0.8))
    });
}

criterion_group!(
    benches,
    bench_tokenize,
    bench_token_blocking,
    bench_purging,
    bench_filtering
);
criterion_main!(benches);
