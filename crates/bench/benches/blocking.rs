//! Criterion benches for the blocking stage: tokenization, token blocking,
//! purging, filtering — the per-stage costs behind experiment E6 — plus the
//! string-keyed vs interned blocking comparison and TF-IDF build/probe
//! costs on a ~10k-profile collection.
//!
//! Run with `BENCH_JSON=BENCH_blocking.json cargo bench -p sparker-bench
//! --bench blocking` to export the measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparker_bench::abt_buy_like;
use sparker_blocking::{
    block_filtering, purge_by_comparison_level, purge_oversized, token_blocking,
    token_blocking_string, token_blocking_with_dict,
};
use sparker_matching::TfIdfIndex;
use sparker_profiles::{tokenize, ProfileId};
use std::hint::black_box;

fn bench_tokenize(c: &mut Criterion) {
    let text = "Sony BRAVIA KDL-40W600B 40-Inch 1080p Smart LED TV (2014 Model) with remote";
    c.bench_function("tokenize/product-title", |b| {
        b.iter(|| tokenize(black_box(text)).count())
    });
}

fn bench_token_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("token_blocking");
    for entities in [250usize, 1000] {
        let ds = abt_buy_like(entities);
        group.bench_with_input(
            BenchmarkId::from_parameter(ds.collection.len()),
            &ds,
            |b, ds| b.iter(|| token_blocking(black_box(&ds.collection))),
        );
    }
    group.finish();
}

fn bench_purging(c: &mut Criterion) {
    let ds = abt_buy_like(1000);
    let blocks = token_blocking(&ds.collection);
    let n = ds.collection.len();
    c.bench_function("purge/oversized", |b| {
        b.iter(|| purge_oversized(black_box(blocks.clone()), n, 0.5))
    });
    c.bench_function("purge/comparison-level", |b| {
        b.iter(|| purge_by_comparison_level(black_box(blocks.clone()), 1.025))
    });
}

fn bench_filtering(c: &mut Criterion) {
    let ds = abt_buy_like(1000);
    let blocks = purge_oversized(token_blocking(&ds.collection), ds.collection.len(), 0.5);
    c.bench_function("block_filtering/0.8", |b| {
        b.iter(|| block_filtering(black_box(blocks.clone()), 0.8))
    });
}

/// String-keyed vs interned token blocking on ~10k profiles
/// (`abt_buy_like(4000)` → 10 000 profiles): the tentpole speedup this PR
/// claims. `interned` is the full drop-in path (single-pass dictionary
/// build + counting-sort CSR + string materialization, byte-identical
/// output to `string`); `interned-compact` stops at the CSR form the
/// downstream pipeline actually consumes.
fn bench_string_vs_interned(c: &mut Criterion) {
    let ds = abt_buy_like(4000);
    let coll = &ds.collection;
    let mut group = c.benchmark_group("token_blocking_10k");
    group.bench_function("string", |b| {
        b.iter(|| token_blocking_string(black_box(coll)))
    });
    group.bench_function("interned", |b| b.iter(|| token_blocking(black_box(coll))));
    group.bench_function("interned-compact", |b| {
        b.iter(|| token_blocking_with_dict(black_box(coll)))
    });
    group.finish();
}

/// TF-IDF on the same ~10k-profile collection: index construction and the
/// merge-join cosine probe over a fixed candidate set.
fn bench_tfidf(c: &mut Criterion) {
    let ds = abt_buy_like(4000);
    let coll = &ds.collection;
    let mut group = c.benchmark_group("tfidf_10k");
    group.bench_function("build", |b| b.iter(|| TfIdfIndex::build(black_box(coll))));
    let index = TfIdfIndex::build(coll);
    let sep = coll.separator();
    let pairs: Vec<(ProfileId, ProfileId)> = (0..1000u32)
        .map(|i| {
            (
                ProfileId(i % sep),
                ProfileId(sep + (i * 7) % (coll.len() as u32 - sep)),
            )
        })
        .collect();
    group.bench_function("probe-1k-pairs", |b| {
        b.iter(|| pairs.iter().map(|&(x, y)| index.cosine(x, y)).sum::<f64>())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tokenize,
    bench_token_blocking,
    bench_string_vs_interned,
    bench_tfidf,
    bench_purging,
    bench_filtering
);
criterion_main!(benches);
