//! Named scaling presets: fixed, seeded configurations the CLI, benches
//! and CI scripts refer to by name, so every run of `dirty_10k` anywhere
//! is byte-identical.
//!
//! The tier names state the approximate profile count: entity clusters are
//! 1–3 representations, so `entities` is chosen at half the target
//! (expected cluster size 2). `skewed_1m` adds the Zipfian hot-token skew
//! — the 10⁶-profile out-of-core tier whose end-to-end run under a hard
//! memory budget is the scaling experiment's headline row.

use crate::generator::{
    generate_dirty, generate_dirty_chunked, DatasetConfig, Domain, GeneratedDataset, ZipfSkew,
};
use sparker_profiles::{GroundTruth, Profile};

/// A named, fully-determined dataset configuration.
#[derive(Debug, Clone)]
pub struct Preset {
    /// Stable name (CLI `--preset`, bench ids, CI scripts).
    pub name: &'static str,
    /// The generator configuration.
    pub config: DatasetConfig,
    /// Maximum duplicate-cluster size.
    pub max_cluster: usize,
}

impl Preset {
    /// The names of all presets, smallest first.
    pub const NAMES: [&'static str; 4] = ["dirty_1k", "dirty_10k", "dirty_100k", "skewed_1m"];

    /// Look a preset up by name.
    pub fn by_name(name: &str) -> Option<Preset> {
        match name {
            "dirty_1k" => Some(Preset {
                name: "dirty_1k",
                config: DatasetConfig {
                    entities: 500,
                    unmatched_per_source: 0,
                    domain: Domain::Products,
                    seed: 1_009,
                    ..DatasetConfig::default()
                },
                max_cluster: 3,
            }),
            "dirty_10k" => Some(Preset {
                name: "dirty_10k",
                config: DatasetConfig {
                    entities: 5_000,
                    unmatched_per_source: 0,
                    domain: Domain::Products,
                    seed: 10_007,
                    ..DatasetConfig::default()
                },
                max_cluster: 3,
            }),
            "dirty_100k" => Some(Preset {
                name: "dirty_100k",
                config: DatasetConfig {
                    entities: 50_000,
                    unmatched_per_source: 0,
                    domain: Domain::Products,
                    seed: 100_003,
                    ..DatasetConfig::default()
                },
                max_cluster: 3,
            }),
            "skewed_1m" => Some(Preset {
                name: "skewed_1m",
                config: DatasetConfig {
                    entities: 500_000,
                    unmatched_per_source: 0,
                    domain: Domain::Bibliographic,
                    seed: 1_000_003,
                    skew: Some(ZipfSkew::default()),
                    ..DatasetConfig::default()
                },
                max_cluster: 3,
            }),
            _ => None,
        }
    }

    /// All presets, smallest first.
    pub fn all() -> Vec<Preset> {
        Self::NAMES
            .iter()
            .map(|n| Self::by_name(n).expect("NAMES entries resolve"))
            .collect()
    }

    /// Materialize the whole dataset (the in-RAM path; fine up to the 100k
    /// tier).
    pub fn generate(&self) -> GeneratedDataset {
        generate_dirty(&self.config, self.max_cluster)
    }

    /// Stream the dataset's profiles in chunks of at least `chunk_size`
    /// without ever materializing the collection — the 1M-tier entry
    /// point; see [`generate_dirty_chunked`].
    pub fn emit_chunks(&self, chunk_size: usize, emit: impl FnMut(Vec<Profile>)) -> GroundTruth {
        generate_dirty_chunked(&self.config, self.max_cluster, chunk_size, emit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_resolve_and_unknown_does_not() {
        assert_eq!(Preset::all().len(), Preset::NAMES.len());
        for p in Preset::all() {
            assert!(Preset::NAMES.contains(&p.name));
        }
        assert!(Preset::by_name("nope").is_none());
    }

    #[test]
    fn preset_chunks_concatenate_to_the_materialized_collection() {
        // Shrink a preset's entity count so the pin runs fast; the chunked
        // and monolithic paths must agree byte for byte at any chunk size.
        let mut preset = Preset::by_name("dirty_10k").unwrap();
        preset.config.entities = 300;
        let whole = preset.generate();
        for chunk_size in [1usize, 64, 100_000] {
            let mut streamed = Vec::new();
            let mut chunks = 0usize;
            let gt = preset.emit_chunks(chunk_size, |c| {
                assert!(!c.is_empty());
                streamed.extend(c);
                chunks += 1;
            });
            assert_eq!(streamed, *whole.collection.profiles(), "chunk={chunk_size}");
            assert_eq!(gt, whole.ground_truth, "chunk={chunk_size}");
            if chunk_size == 1 {
                assert!(chunks >= 300, "per-cluster flushing expected");
            }
        }
    }

    #[test]
    fn preset_profile_counts_land_near_their_tier() {
        // Expected profiles = entities × (1 + max_cluster) / 2; the seeds
        // are pinned, so the realized counts are stable — assert the 10k
        // tier lands within 5% of its name.
        let ds = Preset::by_name("dirty_10k").unwrap().generate();
        let n = ds.collection.len() as f64;
        assert!((9_500.0..=10_500.0).contains(&n), "got {n}");
    }
}
