//! Noise models: how a second representation of an entity is corrupted.

use rand::Rng;

/// Probabilities of each corruption applied when deriving one source's
/// representation from the canonical entity record.
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    /// Per-token probability of a character-level typo.
    pub typo: f64,
    /// Per-token probability of dropping the token.
    pub token_drop: f64,
    /// Probability of swapping two adjacent tokens in a value.
    pub token_swap: f64,
    /// Per-token probability of abbreviation (truncate to a prefix).
    pub abbreviate: f64,
    /// Per-attribute probability of omitting the attribute entirely.
    pub missing_attribute: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            typo: 0.08,
            token_drop: 0.10,
            token_swap: 0.15,
            abbreviate: 0.05,
            missing_attribute: 0.05,
        }
    }
}

impl NoiseConfig {
    /// No corruption at all (duplicates become verbatim copies).
    pub fn none() -> Self {
        NoiseConfig {
            typo: 0.0,
            token_drop: 0.0,
            token_swap: 0.0,
            abbreviate: 0.0,
            missing_attribute: 0.0,
        }
    }

    /// Heavy corruption, for stress-testing recall.
    pub fn heavy() -> Self {
        NoiseConfig {
            typo: 0.2,
            token_drop: 0.25,
            token_swap: 0.3,
            abbreviate: 0.15,
            missing_attribute: 0.15,
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("typo", self.typo),
            ("token_drop", self.token_drop),
            ("token_swap", self.token_swap),
            ("abbreviate", self.abbreviate),
            ("missing_attribute", self.missing_attribute),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} probability {p} out of range"
            );
        }
    }
}

/// Apply a character-level typo: transpose two adjacent characters or
/// substitute one (choice and position seeded by `rng`).
fn typo(word: &str, rng: &mut impl Rng) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 2 {
        return word.to_string();
    }
    let mut chars = chars;
    if rng.gen_bool(0.5) {
        let i = rng.gen_range(0..chars.len() - 1);
        chars.swap(i, i + 1);
    } else {
        let i = rng.gen_range(0..chars.len());
        let sub = (b'a' + rng.gen_range(0..26u8)) as char;
        chars[i] = sub;
    }
    chars.into_iter().collect()
}

/// Corrupt one attribute value according to the noise configuration.
/// Guarantees a non-empty result when the input had any token (at least one
/// token always survives, so duplicates never become blank).
pub fn corrupt_value(value: &str, noise: &NoiseConfig, rng: &mut impl Rng) -> String {
    noise.validate();
    let tokens: Vec<&str> = value.split_whitespace().collect();
    if tokens.is_empty() {
        return value.to_string();
    }
    let mut out: Vec<String> = Vec::with_capacity(tokens.len());
    for t in &tokens {
        if out.len() + 1 < tokens.len() && rng.gen_bool(noise.token_drop) {
            continue; // drop, but never the would-be-last survivor
        }
        let mut w = t.to_string();
        // Numeric tokens (prices, years, sizes) are transcribed, not typed:
        // they drop or move but do not acquire typos or abbreviations.
        let numeric = w.chars().all(|c| c.is_ascii_digit() || c == '.');
        if !numeric {
            if rng.gen_bool(noise.abbreviate) && w.len() > 3 {
                w.truncate(3);
            } else if rng.gen_bool(noise.typo) {
                w = typo(&w, rng);
            }
        }
        out.push(w);
    }
    if out.is_empty() {
        out.push(tokens[0].to_string());
    }
    if out.len() >= 2 && rng.gen_bool(noise.token_swap) {
        let i = rng.gen_range(0..out.len() - 1);
        out.swap(i, i + 1);
    }
    out.join(" ")
}

/// Decide whether an attribute should be omitted from this representation.
pub fn drop_attribute(noise: &NoiseConfig, rng: &mut impl Rng) -> bool {
    rng.gen_bool(noise.missing_attribute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn no_noise_is_identity() {
        let mut r = rng(1);
        let v = "sony bravia kdl40 television";
        assert_eq!(corrupt_value(v, &NoiseConfig::none(), &mut r), v);
        assert!(!drop_attribute(&NoiseConfig::none(), &mut r));
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let v = "wireless bluetooth noise cancelling headphones premium";
        let a = corrupt_value(v, &NoiseConfig::heavy(), &mut rng(42));
        let b = corrupt_value(v, &NoiseConfig::heavy(), &mut rng(42));
        assert_eq!(a, b);
        let c = corrupt_value(v, &NoiseConfig::heavy(), &mut rng(43));
        assert_ne!(a, c, "different seeds should (generically) differ");
    }

    #[test]
    fn corrupted_value_never_empty() {
        let heavy = NoiseConfig {
            token_drop: 1.0,
            ..NoiseConfig::heavy()
        };
        for seed in 0..50 {
            let out = corrupt_value("alpha beta gamma", &heavy, &mut rng(seed));
            assert!(!out.trim().is_empty(), "seed {seed} emptied the value");
        }
    }

    #[test]
    fn heavy_noise_usually_changes_something() {
        let v = "canon eos digital camera professional kit bundle";
        let changed = (0..100)
            .filter(|&s| corrupt_value(v, &NoiseConfig::heavy(), &mut rng(s)) != v)
            .count();
        assert!(changed > 80, "only {changed}/100 corrupted");
    }

    #[test]
    fn default_noise_preserves_most_tokens() {
        let v = "sony bravia kdl40 led television forty inch";
        let mut survived = 0usize;
        let mut total = 0usize;
        for seed in 0..50 {
            let out = corrupt_value(v, &NoiseConfig::default(), &mut rng(seed));
            let out_tokens: std::collections::HashSet<&str> = out.split(' ').collect();
            for t in v.split(' ') {
                total += 1;
                if out_tokens.contains(t) {
                    survived += 1;
                }
            }
        }
        let ratio = survived as f64 / total as f64;
        assert!(
            ratio > 0.6,
            "only {ratio:.2} of tokens survive default noise"
        );
    }

    #[test]
    fn typo_preserves_length_or_swaps() {
        let mut r = rng(5);
        for _ in 0..20 {
            let out = typo("television", &mut r);
            assert_eq!(out.len(), "television".len());
        }
        assert_eq!(typo("a", &mut r), "a", "single char untouched");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_rejected() {
        let bad = NoiseConfig {
            typo: 1.5,
            ..NoiseConfig::default()
        };
        corrupt_value("x y", &bad, &mut rng(0));
    }
}
