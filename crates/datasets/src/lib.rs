//! # sparker-datasets
//!
//! Seeded synthetic ER benchmarks with exact ground truth.
//!
//! The paper demonstrates SparkER on Abt-Buy (2,000 products from two
//! catalogues plus a curated ground truth) and offers further real datasets
//! (bibliographic, movies). Those datasets cannot be redistributed here, so
//! this crate generates collections with the same *shape*: two heterogeneous
//! dirty sources describing overlapping entity sets, duplicate profiles
//! corrupted by realistic noise (typos, dropped/reordered tokens,
//! abbreviations, missing attributes, renamed attributes), and the exact
//! ground truth of cross-source matches. All generation is driven by a
//! `u64` seed — the same configuration always produces byte-identical
//! datasets, which keeps every experiment reproducible.
//!
//! The blocking/meta-blocking behaviours the paper evaluates (recall of
//! schema-agnostic token blocking, precision gains of meta-blocking,
//! entropy effects) are functions of token co-occurrence statistics, which
//! the generators model directly; see DESIGN.md for the substitution
//! rationale.
//!
//! ```
//! use sparker_datasets::{generate, DatasetConfig, Domain};
//!
//! let ds = generate(&DatasetConfig {
//!     entities: 100,
//!     domain: Domain::Products,
//!     seed: 7,
//!     ..DatasetConfig::default()
//! });
//! assert_eq!(ds.collection.kind(), sparker_profiles::ErKind::CleanClean);
//! assert!(!ds.ground_truth.is_empty());
//! ```

mod export;
mod generator;
mod noise;
mod presets;
mod vocab;

pub use export::{export_dataset, ExportFormat, ExportedFiles};
pub use generator::{
    generate, generate_dirty, generate_dirty_chunked, DatasetConfig, Domain, GeneratedDataset,
    NoiseConfig, ZipfSkew,
};
pub use presets::Preset;
