//! Export generated benchmarks to files consumable by the `sparker` CLI
//! (and any other tool): one CSV or JSON-lines file per source plus a
//! ground-truth CSV of original-id pairs.

use crate::generator::GeneratedDataset;
use sparker_profiles::{write_csv, ErKind, JsonValue, Profile};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// File format for the profile files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    /// One CSV per source with an `id` column plus one column per
    /// attribute name (multi-valued attributes joined by `; `).
    Csv,
    /// One JSON-lines file per source (`id` key plus one key per
    /// attribute; repeated attributes become arrays).
    JsonLines,
}

impl ExportFormat {
    fn extension(&self) -> &'static str {
        match self {
            ExportFormat::Csv => "csv",
            ExportFormat::JsonLines => "jsonl",
        }
    }
}

/// Paths produced by [`export_dataset`].
#[derive(Debug, Clone)]
pub struct ExportedFiles {
    /// Per-source profile files (1 for dirty, 2 for clean–clean).
    pub sources: Vec<std::path::PathBuf>,
    /// Ground-truth CSV (`id_a,id_b`).
    pub ground_truth: std::path::PathBuf,
}

fn profiles_to_csv(profiles: &[Profile]) -> String {
    // Column set: union of attribute names, sorted.
    let mut names: Vec<String> = profiles
        .iter()
        .flat_map(|p| p.attributes.iter().map(|a| a.name.clone()))
        .collect();
    names.sort();
    names.dedup();

    let mut rows = Vec::with_capacity(profiles.len() + 1);
    let mut header = vec!["id".to_string()];
    header.extend(names.iter().cloned());
    rows.push(header);
    for p in profiles {
        let mut row = vec![p.original_id.clone()];
        for name in &names {
            let values: Vec<&str> = p.values_of(name).collect();
            row.push(values.join("; "));
        }
        rows.push(row);
    }
    write_csv(&rows, ',')
}

fn profiles_to_jsonl(profiles: &[Profile]) -> String {
    let mut out = String::new();
    for p in profiles {
        let mut map: BTreeMap<String, JsonValue> = BTreeMap::new();
        map.insert("id".to_string(), JsonValue::String(p.original_id.clone()));
        // Group repeated attributes into arrays.
        let mut grouped: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for a in &p.attributes {
            grouped.entry(&a.name).or_default().push(&a.value);
        }
        for (name, values) in grouped {
            let v = if values.len() == 1 {
                JsonValue::String(values[0].to_string())
            } else {
                JsonValue::Array(
                    values
                        .into_iter()
                        .map(|v| JsonValue::String(v.to_string()))
                        .collect(),
                )
            };
            map.insert(name.to_string(), v);
        }
        out.push_str(&JsonValue::Object(map).to_string());
        out.push('\n');
    }
    out
}

/// Write the dataset into `dir` as `source0.<ext>` (+ `source1.<ext>` for
/// clean–clean) and `ground_truth.csv`, creating the directory if needed.
///
/// The files round-trip through the `sparker-profiles` loaders (and the
/// `sparker` CLI) back into an equivalent collection — asserted by tests.
pub fn export_dataset(
    ds: &GeneratedDataset,
    dir: impl AsRef<Path>,
    format: ExportFormat,
) -> io::Result<ExportedFiles> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;

    let sep = ds.collection.separator() as usize;
    let render = |profiles: &[Profile]| match format {
        ExportFormat::Csv => profiles_to_csv(profiles),
        ExportFormat::JsonLines => profiles_to_jsonl(profiles),
    };

    let mut sources = Vec::new();
    match ds.collection.kind() {
        ErKind::Dirty => {
            let path = dir.join(format!("source0.{}", format.extension()));
            std::fs::write(&path, render(ds.collection.profiles()))?;
            sources.push(path);
        }
        ErKind::CleanClean => {
            for (i, slice) in [
                &ds.collection.profiles()[..sep],
                &ds.collection.profiles()[sep..],
            ]
            .iter()
            .enumerate()
            {
                let path = dir.join(format!("source{i}.{}", format.extension()));
                std::fs::write(&path, render(slice))?;
                sources.push(path);
            }
        }
    }

    // Ground truth as original-id pairs (sorted for reproducible files).
    let mut rows = vec![vec!["id_a".to_string(), "id_b".to_string()]];
    let mut pairs: Vec<(String, String)> = ds
        .ground_truth
        .iter()
        .map(|p| {
            (
                ds.collection.get(p.first).original_id.clone(),
                ds.collection.get(p.second).original_id.clone(),
            )
        })
        .collect();
    pairs.sort();
    rows.extend(pairs.into_iter().map(|(a, b)| vec![a, b]));
    let ground_truth = dir.join("ground_truth.csv");
    std::fs::write(&ground_truth, write_csv(&rows, ','))?;

    Ok(ExportedFiles {
        sources,
        ground_truth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, generate_dirty, DatasetConfig};
    use sparker_profiles::{
        parse_csv, profiles_from_csv, profiles_from_json_lines, CsvOptions, GroundTruth,
        ProfileCollection, SourceId,
    };

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sparker-export-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small() -> GeneratedDataset {
        generate(&DatasetConfig {
            entities: 20,
            unmatched_per_source: 5,
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn csv_export_roundtrips_through_loader() {
        let ds = small();
        let dir = tempdir("csv");
        let files = export_dataset(&ds, &dir, ExportFormat::Csv).unwrap();
        assert_eq!(files.sources.len(), 2);

        let opts = CsvOptions::default();
        let s0 = profiles_from_csv(
            &std::fs::read_to_string(&files.sources[0]).unwrap(),
            SourceId(0),
            &opts,
        )
        .unwrap();
        let s1 = profiles_from_csv(
            &std::fs::read_to_string(&files.sources[1]).unwrap(),
            SourceId(1),
            &opts,
        )
        .unwrap();
        let reloaded = ProfileCollection::clean_clean(s0, s1);
        assert_eq!(reloaded.len(), ds.collection.len());
        // Token sets survive the round trip (attribute values may have been
        // joined, so compare the schema-agnostic view).
        for (a, b) in ds.collection.profiles().iter().zip(reloaded.profiles()) {
            assert_eq!(a.original_id, b.original_id);
            assert_eq!(a.token_set(), b.token_set(), "{}", a.original_id);
        }
        // Ground truth resolves against the reloaded collection.
        let rows = parse_csv(&std::fs::read_to_string(&files.ground_truth).unwrap(), ',').unwrap();
        let gt = GroundTruth::from_original_ids(
            &reloaded,
            rows.iter().skip(1).map(|r| (r[0].as_str(), r[1].as_str())),
        )
        .unwrap();
        assert_eq!(gt.len(), ds.ground_truth.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_export_roundtrips_through_loader() {
        let ds = small();
        let dir = tempdir("jsonl");
        let files = export_dataset(&ds, &dir, ExportFormat::JsonLines).unwrap();
        let s0 = profiles_from_json_lines(
            &std::fs::read_to_string(&files.sources[0]).unwrap(),
            SourceId(0),
            "id",
        )
        .unwrap();
        assert_eq!(s0.len(), 25);
        for (a, b) in ds.collection.profiles()[..25].iter().zip(&s0) {
            assert_eq!(a.original_id, b.original_id);
            assert_eq!(a.token_set(), b.token_set());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dirty_export_produces_single_source() {
        let ds = generate_dirty(
            &DatasetConfig {
                entities: 15,
                ..DatasetConfig::default()
            },
            2,
        );
        let dir = tempdir("dirty");
        let files = export_dataset(&ds, &dir, ExportFormat::Csv).unwrap();
        assert_eq!(files.sources.len(), 1);
        let text = std::fs::read_to_string(&files.sources[0]).unwrap();
        assert_eq!(text.lines().count(), ds.collection.len() + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_is_deterministic() {
        let ds = small();
        let d1 = tempdir("det1");
        let d2 = tempdir("det2");
        let f1 = export_dataset(&ds, &d1, ExportFormat::Csv).unwrap();
        let f2 = export_dataset(&ds, &d2, ExportFormat::Csv).unwrap();
        assert_eq!(
            std::fs::read_to_string(&f1.sources[0]).unwrap(),
            std::fs::read_to_string(&f2.sources[0]).unwrap()
        );
        assert_eq!(
            std::fs::read_to_string(&f1.ground_truth).unwrap(),
            std::fs::read_to_string(&f2.ground_truth).unwrap()
        );
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d2).ok();
    }
}
